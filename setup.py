"""Legacy setup shim.

The execution environment is offline and has no ``wheel`` package, so
PEP-517 editable installs are unavailable; this file lets
``pip install -e .`` fall back to ``setup.py develop``.  All metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
