# Convenience targets for the WEC reproduction.
#
#   make test         tier-1 suite (unit/property/integration tests)
#   make bench-smoke  one figure bench at tiny scale through the
#                     parallel executor path (jobs=2) — fast CI probe
#   make bench        full figure/table regeneration at calibrated scale
#   make calibrate    calibration dashboard (cached, parallel)

PY ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke calibrate

test:
	$(PY) -m pytest -x -q

bench-smoke:
	REPRO_BENCH_SCALE=2e-5 REPRO_JOBS=2 REPRO_NO_CACHE=1 REPRO_BENCH_SMOKE=1 \
	$(PY) -m pytest benchmarks/bench_fig11_configs.py --benchmark-only -q

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only -q

calibrate:
	$(PY) tools/calibrate.py --jobs 2
