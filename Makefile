# Convenience targets for the WEC reproduction.
#
#   make test         tier-1 suite (unit/property/integration tests)
#   make lint         static determinism/invariant analysis over src/
#                     (rule catalog: docs/STATIC_ANALYSIS.md)
#   make bench-smoke  one figure bench at tiny scale — fast CI probe;
#                     records to the perf ledger and leaves
#                     BENCH_smoke.json behind.  Runs serially by
#                     default (BENCH_JOBS=1): per-cell wall times feed
#                     the ledger, and worker processes oversubscribing
#                     the host's cores corrupt them (on a 1-core host,
#                     jobs=2 roughly doubles every recorded wall).  Set
#                     BENCH_JOBS=N on a host with N+ idle cores; the
#                     parallel executor path itself is covered by
#                     diff-smoke and the tier-1 tests.
#   make diff-smoke   oracle-vs-fast differential over the config
#                     ladder at smoke scale; exits non-zero on any
#                     counter mismatch
#   make serve-smoke  sweep service end-to-end: boot `repro serve`
#                     (2 workers), submit the 48-cell acceptance grid
#                     twice, assert bit-identity with a local run_grid,
#                     >=90% cache hits on resubmit, job/tenant
#                     provenance on every ledger record, and a
#                     /v1/metrics scrape whose per-layer dedup counts
#                     sum to both jobs' cells with nonzero latency
#                     buckets; leaves serve-metrics.json behind (CI
#                     uploads it as an artifact, docs/SERVICE.md)
#   make perf-gate    bench-smoke + regression check vs the committed
#                     baseline (benchmarks/BENCH_baseline.json)
#   make fidelity-smoke  full fidelity campaign (fig08-fig17 + tables)
#                     at smoke scale on the fast engine, then a drift
#                     check against the committed smoke baseline
#                     (benchmarks/FIDELITY_smoke_baseline.json); exits
#                     non-zero on any regressed gate claim.  Leaves
#                     FIDELITY_smoke.json / FIDELITY_smoke.md behind
#                     (CI uploads them as artifacts).  The paper-scale
#                     campaign is `repro fidelity run` with defaults;
#                     its committed artifacts are
#                     benchmarks/FIDELITY_baseline.json + docs/FIDELITY.md.
#   make explain-smoke  attribution layer end-to-end at tiny scale:
#                     repro explain on the fig11 WEC-vs-plain pair
#                     (docs/OBSERVABILITY.md, "Attribution")
#   make bench        full figure/table regeneration at calibrated scale
#   make calibrate    calibration dashboard (cached, parallel)

PY ?= python
BENCH_JOBS ?= 1
export PYTHONPATH := src

.PHONY: test lint bench bench-smoke diff-smoke serve-smoke explain-smoke perf-gate fidelity-smoke calibrate

test:
	$(PY) -m pytest -x -q

lint:
	$(PY) -m repro lint src --flow --baseline lint-baseline.json

# Smoke scale 1e-4: cells must run >=10ms per engine or the recorded
# walls are dominated by single-shot scheduler jitter (the grid runs
# each cell exactly once) and engine comparisons drown in noise.
bench-smoke:
	rm -rf .perf-smoke
	REPRO_BENCH_SCALE=1e-4 REPRO_JOBS=$(BENCH_JOBS) REPRO_NO_CACHE=1 \
	REPRO_BENCH_SMOKE=1 REPRO_PERF_DIR=.perf-smoke \
	$(PY) -m pytest benchmarks/bench_fig11_configs.py --benchmark-only -q
	$(PY) -m repro perf report --dir .perf-smoke --json BENCH_smoke.json

diff-smoke:
	$(PY) -m repro diff --scale 2e-5 --seeds 2003,7,42

serve-smoke:
	$(PY) tools/serve_smoke.py

explain-smoke:
	$(PY) -m repro explain 181.mcf wth-wp-wec --vs wth-wp \
	--scale 5e-5 --seed 7 --top 3

perf-gate: bench-smoke
	$(PY) -m repro perf compare benchmarks/BENCH_baseline.json \
	BENCH_smoke.json --threshold 10%

fidelity-smoke:
	rm -rf .perf-fidelity
	$(PY) -m repro fidelity run --scale 2e-5 --engine fast \
	--jobs $(BENCH_JOBS) --no-cache --dir .perf-fidelity \
	--out FIDELITY_smoke.json --md FIDELITY_smoke.md
	$(PY) -m repro fidelity check benchmarks/FIDELITY_smoke_baseline.json \
	--new FIDELITY_smoke.json

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only -q

calibrate:
	$(PY) tools/calibrate.py --jobs 2
