# Convenience targets for the WEC reproduction.
#
#   make test         tier-1 suite (unit/property/integration tests)
#   make lint         static determinism/invariant analysis over src/
#                     (rule catalog: docs/STATIC_ANALYSIS.md)
#   make bench-smoke  one figure bench at tiny scale through the
#                     parallel executor path (jobs=2) — fast CI probe;
#                     records to the perf ledger and leaves
#                     BENCH_smoke.json behind
#   make perf-gate    bench-smoke + regression check vs the committed
#                     baseline (benchmarks/BENCH_baseline.json)
#   make explain-smoke  attribution layer end-to-end at tiny scale:
#                     repro explain on the fig11 WEC-vs-plain pair
#                     (docs/OBSERVABILITY.md, "Attribution")
#   make bench        full figure/table regeneration at calibrated scale
#   make calibrate    calibration dashboard (cached, parallel)

PY ?= python
export PYTHONPATH := src

.PHONY: test lint bench bench-smoke explain-smoke perf-gate calibrate

test:
	$(PY) -m pytest -x -q

lint:
	$(PY) -m repro lint src --baseline lint-baseline.json

bench-smoke:
	rm -rf .perf-smoke
	REPRO_BENCH_SCALE=2e-5 REPRO_JOBS=2 REPRO_NO_CACHE=1 REPRO_BENCH_SMOKE=1 \
	REPRO_PERF_DIR=.perf-smoke \
	$(PY) -m pytest benchmarks/bench_fig11_configs.py --benchmark-only -q
	$(PY) -m repro perf report --dir .perf-smoke --json BENCH_smoke.json

explain-smoke:
	$(PY) -m repro explain 181.mcf wth-wp-wec --vs wth-wp \
	--scale 5e-5 --seed 7 --top 3

perf-gate: bench-smoke
	$(PY) -m repro perf compare benchmarks/BENCH_baseline.json \
	BENCH_smoke.json --threshold 10%

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only -q

calibrate:
	$(PY) tools/calibrate.py --jobs 2
