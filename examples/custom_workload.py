#!/usr/bin/env python
"""Build a custom workload and evaluate the WEC on it.

The six shipped benchmark models are ordinary library clients: this
script builds a *new* program from scratch — a blocked stencil sweep
with a neighbour-gather phase — and runs the Figure-11-style comparison
on it.  Use this as the template for studying your own access patterns.

Run:  python examples/custom_workload.py
"""

from repro import SimParams, named_config, run_program
from repro.isa.cfg import BlockSpec, BranchSpec, IterationCFG, MemSlot
from repro.isa.encoding import StageSplit
from repro.isa.instructions import InstrClass
from repro.sim.tables import TextTable
from repro.workloads.patterns import RandomPattern, SequentialPattern
from repro.workloads.program import (
    ParallelRegionSpec,
    Program,
    SequentialRegionSpec,
    WrongExecProfile,
)

KB = 1024
MB = 1024 * 1024
FP = {InstrClass.IALU: 0.3, InstrClass.FPALU: 0.5, InstrClass.FPMULT: 0.2}

# ---------------------------------------------------------------------------
# 1. Describe the parallel loop body as a small CFG.
#    Each iteration sweeps a row of the grid (streaming) and gathers a
#    few neighbour values through an index table (irregular).
# ---------------------------------------------------------------------------
body = IterationCFG(
    entry="row",
    blocks=[
        BlockSpec(
            "row",
            n_instr=40,
            mix_weights=FP,
            mem_slots=(
                MemSlot("grid"), MemSlot("grid"), MemSlot("grid"),
                MemSlot("grid"),
            ),
            branch=BranchSpec(0.9, "gather", "gather", noise=0.06),
        ),
        BlockSpec(
            "gather",
            n_instr=35,
            mix_weights=FP,
            mem_slots=(
                MemSlot("neigh"), MemSlot("neigh"),
                MemSlot("out", is_store=True, is_target_store=True),
            ),
            branch=BranchSpec(0.12, "row", None, noise=0.04),
        ),
    ],
)

ITERS = 150
patterns = {
    # One grid pass per invocation: cold on first touch, L2-warm after.
    "grid": SequentialPattern("grid", 0x10000000,
                              ITERS * 4 * 64, stride=64, per_iter=4),
    "neigh": RandomPattern("neigh", 0x20000000, 24 * KB, granule=8),
    "out": SequentialPattern("out", 0x30000000, 64 * KB, stride=8, per_iter=1),
    "off_path": RandomPattern("off_path", 0x40000000, 48 * KB, granule=64),
}

stencil = ParallelRegionSpec(
    name="stencil.sweep",
    cfg=body,
    patterns=patterns,
    iters_per_invocation=ITERS,
    stage_split=StageSplit(0.05, 0.05, 0.85, 0.05),
    ilp=3.5,
    dep_coupling=0.1,
    pollution_pattern="off_path",
    wrong_exec=WrongExecProfile(
        wp_mean_loads=3.0, wp_max_loads=8, p_convergent=0.6, wp_lookahead=12,
        wth_fraction=0.7, wth_max_iters=1,
    ),
)

glue = SequentialRegionSpec(
    name="stencil.reduce",
    cfg=IterationCFG(
        entry="acc",
        blocks=[
            BlockSpec(
                "acc",
                n_instr=60,
                mix_weights=FP,
                mem_slots=(
                    MemSlot("out"), MemSlot("out"), MemSlot("neigh"),
                    MemSlot("out", is_store=True),
                ),
                branch=BranchSpec(0.9, None, None, noise=0.04),
            ),
        ],
        pc_base=0x700000,
    ),
    patterns=patterns,
    chunks_per_invocation=120,
    ilp=3.0,
)

program = Program("custom.stencil", [glue, stencil], n_invocations=4)

# ---------------------------------------------------------------------------
# 2. Evaluate: orig vs victim cache vs WEC vs next-line prefetching.
# ---------------------------------------------------------------------------
params = SimParams(seed=7)
base = run_program(program, named_config("orig"), params)

table = TextTable(
    "custom stencil workload — 8 TUs (speedup vs orig)",
    ["config", "speedup", "eff. misses", "miss reduction", "traffic"],
)
table.add_row(["orig", "baseline", base.effective_misses, "-", "-"])
for name in ("vc", "wth-wp", "wth-wp-wec", "nlp"):
    r = run_program(program, named_config(name), params)
    table.add_row([
        name,
        f"{r.relative_speedup_pct_vs(base):+.1f}%",
        r.effective_misses,
        f"{r.miss_reduction_pct_vs(base):+.1f}%",
        f"{r.traffic_increase_pct_vs(base):+.1f}%",
    ])
print(table)
print()
print("The stream component rewards both prefetchers; the neighbour")
print("gather and the WEC's pollution-free wrong-execution fills decide")
print("the winner. Edit the patterns above and re-run to explore.")
