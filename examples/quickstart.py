#!/usr/bin/env python
"""Quickstart: the paper's headline result in a dozen lines.

Simulates 181.mcf (the pointer-chasing, memory-bound benchmark) on the
baseline superthreaded machine and on the same machine with wrong-path
+ wrong-thread execution and a Wrong Execution Cache, then prints the
speedup and the memory-system changes behind it.

Run:  python examples/quickstart.py
"""

from repro import SimParams, build_benchmark, named_config, run_program

params = SimParams(seed=2003, scale=2e-4)
program = build_benchmark("181.mcf", params.scale)

baseline = run_program(program, named_config("orig"), params)
wec = run_program(program, named_config("wth-wp-wec"), params)

print(f"benchmark        : {baseline.benchmark}")
print(f"machine          : {named_config('orig').describe()}")
print()
print(f"orig cycles      : {baseline.total_cycles:12.0f}   ipc={baseline.ipc:.2f}")
print(f"wth-wp-wec cycles: {wec.total_cycles:12.0f}   ipc={wec.ipc:.2f}")
print()
print(f"speedup          : {wec.relative_speedup_pct_vs(baseline):+.1f}%  "
      f"(paper reports +18.5% for mcf, +9.7% suite average)")
print(f"L1 miss reduction: {wec.miss_reduction_pct_vs(baseline):+.1f}%")
print(f"L1 traffic cost  : {wec.traffic_increase_pct_vs(baseline):+.1f}%")
print()
print(f"wrong-path loads executed : {wec.wrong_loads - wec.wrong_thread_loads}")
print(f"wrong-thread loads        : {wec.wrong_thread_loads}")
print(f"correct-path WEC hits     : {wec.sidecar_hits}")
print(f"  ... of which wrong-execution blocks: {wec.useful_wrong_hits}")
print(f"  ... of which next-line prefetches  : {wec.useful_prefetch_hits}")
