#!/usr/bin/env python
"""Trace wrong execution and measure its prefetch timeliness.

The paper's central claim (§1, Figure 5) is that loads issued down
mispredicted paths and by wrong threads act as *prefetches*: they pull
blocks toward the processor early, so the correct path finds them
resident later.  This script makes that mechanism visible on one traced
``181.mcf`` run: it pairs every wrong-execution fill with the first
correct-path use of the same block out of the WEC and reports the cycle
gap between them — the slack the "prefetch" bought.

Run:  python examples/trace_wrong_execution.py         (default scale)
      python examples/trace_wrong_execution.py 1e-4    (custom scale)
"""

import sys

from repro import SimParams, named_config, run_simulation
from repro.mem.cache import WRONG
from repro.obs.events import CAT_MEM, CAT_WEC, WEC_HIT, WRONG_FILL
from repro.obs.export import write_chrome_trace
from repro.obs.tracer import RingBufferTracer

BENCH = "181.mcf"
CONFIG = "wth-wp-wec"


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 2e-4
    params = SimParams(seed=2003, scale=scale)

    # Record only the memory and sidecar categories: that keeps the ring
    # small while capturing every wrong fill and every WEC hit.
    tracer = RingBufferTracer(
        capacity=1 << 20, categories=(CAT_MEM, CAT_WEC)
    )
    result = run_simulation(BENCH, named_config(CONFIG), params, tracer=tracer)
    events = tracer.events()

    # Pair each wrong-execution fill with the first correct-path WEC hit
    # on the same block that still carried the WRONG flag (i.e. the hit
    # that "used" the prefetch — the flag is cleared on promotion).
    pending = {}  # block -> fill cycle
    gaps = []
    for ev in events:
        if ev.kind == WRONG_FILL:
            pending.setdefault(ev.a, ev.cycle)
        elif ev.kind == WEC_HIT and ev.b & WRONG and ev.a in pending:
            gaps.append(ev.cycle - pending.pop(ev.a))
    unused = len(pending)

    n_fills = len(gaps) + unused
    print(f"{BENCH} on {CONFIG}: {result.total_cycles:.0f} cycles, "
          f"{len(events)} events traced")
    print(f"wrong-execution fills : {n_fills}")
    if not gaps:
        print("no wrong-execution fill was used by the correct path "
              "(try a larger scale)")
        return 1
    gaps.sort()
    used_pct = 100.0 * len(gaps) / n_fills
    print(f"used by correct path  : {len(gaps)} ({used_pct:.0f}%); "
          f"{unused} never referenced (pollution the WEC absorbed)")
    print(f"fill -> first-use gap : median {gaps[len(gaps) // 2]:.0f} cycles, "
          f"p10 {gaps[len(gaps) // 10]:.0f}, "
          f"p90 {gaps[(len(gaps) * 9) // 10]:.0f}")
    print("(replay events are stamped with their iteration's start cycle, "
          "so a gap of 0 means fill and use in the same iteration)")

    # A tiny log-bucketed histogram of the gaps.
    buckets = [(64, 0), (256, 0), (1024, 0), (4096, 0), (float("inf"), 0)]
    for g in gaps:
        for i, (limit, _) in enumerate(buckets):
            if g <= limit:
                buckets[i] = (limit, buckets[i][1] + 1)
                break
    width = max(n for _, n in buckets) or 1
    print("\ngap distribution (cycles until the correct path arrived):")
    lo = 0
    for limit, n in buckets:
        label = f"{lo:>5}-{limit:<5.0f}" if limit != float("inf") else f"{lo:>5}+     "
        bar = "#" * max(1, round(40 * n / width)) if n else ""
        print(f"  {label} {n:>6}  {bar}")
        lo = int(limit) if limit != float("inf") else lo

    out = write_chrome_trace(events, "wrong_execution_trace.json",
                             label=f"{BENCH} on {CONFIG}")
    print(f"\nfull trace written to {out} (open in https://ui.perfetto.dev)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
