#!/usr/bin/env python
"""Trace wrong execution and measure its prefetch timeliness.

The paper's central claim (§1, Figure 5) is that loads issued down
mispredicted paths and by wrong threads act as *prefetches*: they pull
blocks toward the processor early, so the correct path finds them
resident later.  This script makes that mechanism visible on one traced
``181.mcf`` run using the provenance-attribution layer
(:mod:`repro.obs.attrib`): every wrong-execution fill is tracked from
insertion to its first correct-path use, and the cycle gap between them
— the slack the "prefetch" bought — lands in the per-source timeliness
histograms that ``repro explain`` renders.

Run:  python examples/trace_wrong_execution.py         (default scale)
      python examples/trace_wrong_execution.py 1e-4    (custom scale)
"""

import sys

from repro import SimParams, named_config, run_simulation
from repro.obs.attrib import (
    AttributionCollector,
    PROV_NAMES,
    PROV_WRONG_PATH,
    PROV_WRONG_THREAD,
    hist_lines,
)
from repro.obs.events import CAT_ATTRIB, CAT_MEM, CAT_WEC
from repro.obs.export import write_chrome_trace
from repro.obs.tracer import RingBufferTracer

BENCH = "181.mcf"
CONFIG = "wth-wp-wec"


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 2e-4
    params = SimParams(seed=2003, scale=scale)

    # Record only the memory, sidecar and attribution categories: that
    # keeps the ring small while capturing every wrong fill, every WEC
    # hit and every settled attribution (first use / pollution charge).
    tracer = RingBufferTracer(
        capacity=1 << 20, categories=(CAT_MEM, CAT_WEC, CAT_ATTRIB)
    )
    attrib = AttributionCollector(tracer=tracer)
    result = run_simulation(BENCH, named_config(CONFIG), params,
                            tracer=tracer, attrib=attrib)
    events = tracer.events()

    # The collector already paired each wrong-execution fill with the
    # first correct-path use of the same block (the WEC hit that cleared
    # the WRONG flag) and classified the leftovers.
    per_source = result.attribution["per_source"]
    wrong = result.attribution["wrong"]
    n_fills = wrong["fills"]

    print(f"{BENCH} on {CONFIG}: {result.total_cycles:.0f} cycles, "
          f"{len(events)} events traced")
    print(f"wrong-execution fills : {n_fills}")
    if not wrong["useful"]:
        print("no wrong-execution fill was used by the correct path "
              "(try a larger scale)")
        return 1
    used_pct = 100.0 * wrong["useful"] / n_fills if n_fills else 0.0
    absorbed = sum(
        per_source[PROV_NAMES[p]]["unused"] + per_source[PROV_NAMES[p]]["open"]
        for p in (PROV_WRONG_PATH, PROV_WRONG_THREAD)
    )
    print(f"used by correct path  : {wrong['useful']} ({used_pct:.0f}%); "
          f"{absorbed} never referenced (pollution the WEC absorbed)")
    print(f"pollution charged     : {wrong['pollution_misses']} demand "
          f"misses ({wrong['polluting_mpki']:.2f} MPKI)")
    print("(replay events are stamped with their iteration's start cycle, "
          "so a gap of 0 means fill and use in the same iteration)")

    print("\ngap distribution (cycles until the correct path arrived):")
    for p in (PROV_WRONG_PATH, PROV_WRONG_THREAD):
        for line in hist_lines(PROV_NAMES[p],
                               per_source[PROV_NAMES[p]]["gap_hist"]):
            print(line)

    out = write_chrome_trace(events, "wrong_execution_trace.json",
                             label=f"{BENCH} on {CONFIG}",
                             attrib_series=attrib.series())
    print(f"\nfull trace written to {out} (open in https://ui.perfetto.dev)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
