#!/usr/bin/env python
"""Anatomy of wrong execution: where does the WEC's speedup come from?

Walks one benchmark through the whole §4.3 configuration ladder and
decomposes the memory-system behaviour at each step:

  orig → vc → wp → wth → wth-wp → wth-wp-vc → wth-wp-wec → nlp

This is the Figure 11 experiment for a single program, with the
internal counters exposed — useful for understanding *why* wrong
execution without a WEC gains almost nothing while the WEC configuration
wins big.

Run:  python examples/wrong_execution_anatomy.py [benchmark]
      (default benchmark: 183.equake)
"""

import sys

from repro import CONFIG_NAMES, SimParams, build_benchmark, named_config, run_program
from repro.analysis.plots import bar_chart
from repro.sim.tables import TextTable

bench = sys.argv[1] if len(sys.argv) > 1 else "183.equake"
params = SimParams(seed=2003, scale=2e-4)
program = build_benchmark(bench, params.scale)

results = {}
for name in CONFIG_NAMES:
    results[name] = run_program(program, named_config(name), params)
base = results["orig"]

table = TextTable(
    f"{bench}: configuration ladder (8 TUs, 8KB direct-mapped L1, "
    "8-entry sidecar)",
    ["config", "speedup", "eff. misses", "wrong loads", "sidecar hits",
     "useful wrong", "useful pf", "L2 accesses"],
)
for name in CONFIG_NAMES:
    r = results[name]
    table.add_row([
        name,
        "baseline" if name == "orig" else f"{r.relative_speedup_pct_vs(base):+.1f}%",
        r.effective_misses,
        r.wrong_loads,
        r.sidecar_hits,
        r.useful_wrong_hits,
        r.useful_prefetch_hits,
        r.l2_accesses,
    ])
print(table)
print()
print(
    bar_chart(
        "speedup vs orig (%)",
        {
            n: results[n].relative_speedup_pct_vs(base)
            for n in CONFIG_NAMES
            if n != "orig"
        },
    )
)
print()
print("Reading guide:")
print(" * wp/wth/wth-wp execute the same wrong loads as wth-wp-wec, but the")
print("   fills go into the L1 — pollution plus fill-port contention eat the")
print("   prefetching benefit (compare their 'useful wrong' to their speedup).")
print(" * wth-wp-wec redirects those fills into the parallel WEC: same wrong")
print("   loads, no pollution, plus next-line chains on wrong-fetched hits.")
print(" * nlp prefetches blindly on misses: strong on streams, useless on")
print("   pointer chases (try this script with 181.mcf).")
