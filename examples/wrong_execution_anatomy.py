#!/usr/bin/env python
"""Anatomy of wrong execution: where does the WEC's speedup come from?

Walks one benchmark through the whole §4.3 configuration ladder and
decomposes the memory-system behaviour at each step:

  orig → vc → wp → wth → wth-wp → wth-wp-vc → wth-wp-wec → nlp

This is the Figure 11 experiment for a single program, with the
internal counters exposed — useful for understanding *why* wrong
execution without a WEC gains almost nothing while the WEC configuration
wins big.  Each run carries a provenance-attribution collector
(:mod:`repro.obs.attrib`), so the table can show not just *how many*
wrong loads each config issued but what they bought: the fraction of
demand misses they covered, their accuracy, and the pollution they
charged — the numbers ``repro explain`` drills into.

Run:  python examples/wrong_execution_anatomy.py [benchmark]
      (default benchmark: 183.equake)
"""

import sys

from repro import CONFIG_NAMES, SimParams, build_benchmark, named_config, run_program
from repro.analysis.plots import bar_chart
from repro.obs.attrib import AttributionCollector
from repro.sim.tables import TextTable

bench = sys.argv[1] if len(sys.argv) > 1 else "183.equake"
params = SimParams(seed=2003, scale=2e-4)
program = build_benchmark(bench, params.scale)

results = {}
for name in CONFIG_NAMES:
    # Attribution is opt-in and bit-identical, so attaching it here
    # changes nothing about the speedups — it only explains them.
    attrib = AttributionCollector()
    results[name] = run_program(program, named_config(name), params,
                                attrib=attrib)
base = results["orig"]

table = TextTable(
    f"{bench}: configuration ladder (8 TUs, 8KB direct-mapped L1, "
    "8-entry sidecar)",
    ["config", "speedup", "eff. misses", "wrong loads", "sidecar hits",
     "wrong cov.", "wrong acc.", "pollution MPKI"],
)
for name in CONFIG_NAMES:
    r = results[name]
    m = r.attribution["metrics"]
    table.add_row([
        name,
        "baseline" if name == "orig" else f"{r.relative_speedup_pct_vs(base):+.1f}%",
        r.effective_misses,
        r.wrong_loads,
        r.sidecar_hits,
        f"{m['wrong_coverage']:.1%}" if r.wrong_loads else "-",
        f"{m['wrong_accuracy']:.1%}" if r.wrong_loads else "-",
        f"{m['polluting_mpki']:.2f}",
    ])
print(table)
print()
print(
    bar_chart(
        "speedup vs orig (%)",
        {
            n: results[n].relative_speedup_pct_vs(base)
            for n in CONFIG_NAMES
            if n != "orig"
        },
    )
)
print()
print("Reading guide:")
print(" * wp/wth/wth-wp execute the same wrong loads as wth-wp-wec, but the")
print("   fills go into the L1 — compare their pollution MPKI to wth-wp-wec's")
print("   and note the coverage they still manage despite it.")
print(" * wth-wp-wec redirects those fills into the parallel WEC: same wrong")
print("   loads, no L1 displacement, plus next-line chains on wrong hits.")
print(" * nlp prefetches blindly on misses: strong on streams, useless on")
print("   pointer chases (try this script with 181.mcf).")
print(" * drill further with `python -m repro explain", bench, "wth-wp-wec")
print("   --vs wth-wp` (per-region and per-branch-PC attribution tables).")
