#!/usr/bin/env python
"""Design-space sweep: WEC entries × L1 size, as a hardware-budget study.

Section 5.3.2 of the paper argues that a small WEC is a better use of
chip area than more L1 capacity.  This script quantifies that trade-off
on the full suite: for each (L1 size, WEC entries) point it reports the
suite-average speedup over the 4K-L1 baseline, so you can read off, for
example, whether 4K L1 + 16-entry WEC beats 8K L1 with none.

Run:  python examples/design_space_sweep.py        (takes a few minutes)
      python examples/design_space_sweep.py 5e-5   (quicker, noisier)
"""

import sys

from repro import (
    BENCHMARK_NAMES,
    CacheConfig,
    SimParams,
    build_benchmark,
    named_config,
    run_program,
)
from repro.common.stats import weighted_mean_speedup
from repro.sim.tables import TextTable

scale = float(sys.argv[1]) if len(sys.argv) > 1 else 2e-4
params = SimParams(seed=2003, scale=scale)

L1_SIZES = (4, 8, 16)
WEC_ENTRIES = (0, 8, 16)  # 0 = plain orig machine

programs = {name: build_benchmark(name, scale) for name in BENCHMARK_NAMES}

# Baseline: 4K L1, no WEC.
def config_for(l1_kb: int, entries: int):
    l1 = CacheConfig(size=l1_kb * 1024, assoc=1, block_size=64, name="l1d")
    if entries == 0:
        return named_config("orig", l1d=l1)
    return named_config("wth-wp-wec", l1d=l1, sidecar_entries=entries)


base_times = {}
for name, prog in programs.items():
    base_times[name] = run_program(prog, config_for(4, 0), params).total_cycles

table = TextTable(
    "suite-average speedup vs (4K L1, no WEC) baseline",
    ["L1 size"] + [("no WEC" if e == 0 else f"WEC {e}") for e in WEC_ENTRIES],
)
results = {}
for l1_kb in L1_SIZES:
    row = [f"{l1_kb}K"]
    for entries in WEC_ENTRIES:
        times = []
        for name, prog in programs.items():
            r = run_program(prog, config_for(l1_kb, entries), params)
            times.append(r.total_cycles)
        speedup = weighted_mean_speedup(
            [base_times[n] for n in programs], times
        )
        results[(l1_kb, entries)] = speedup
        row.append(f"{(speedup - 1) * 100:+.1f}%")
    table.add_row(row)
print(table)
print()

# The paper's area argument, §5.3.2: read off the two comparisons.
wec_small = results[(4, 8)]
double_l1 = results[(8, 0)]
print(f"4K L1 + 8-entry WEC : {(wec_small - 1) * 100:+.1f}%")
print(f"8K L1, no WEC       : {(double_l1 - 1) * 100:+.1f}%")
verdict = "beats" if wec_small > double_l1 else "does not beat"
print(f"-> an 8-entry WEC (512 B of storage) {verdict} doubling the L1 (4 KB).")
