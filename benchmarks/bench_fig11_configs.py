"""Figure 11 — relative speedups of all eight configurations (8 TUs).

The paper's headline figure: with eight 8-issue thread units,
``wth-wp-wec`` achieves up to 18.5% (181.mcf) and 9.7% on average over
``orig``; conventional next-line prefetching (``nlp``) averages 5.5%;
wrong execution *without* the WEC (``wp``, ``wth``, ``wth-wp``) gives
almost nothing (pollution offsets prefetching — 177.mesa even slows
down slightly); the victim-cache variants sit in between.
"""

from __future__ import annotations

from repro import CONFIG_NAMES, named_config
from repro.analysis.plots import grouped_bar_chart
from repro.analysis.speedup import suite_average_speedup_pct
from repro.sim.tables import TextTable

from _common import (
    BENCH_ORDER,
    ShapeChecks,
    claim_band,
    grid as run_grid_cached,
    run_once,
)

NON_BASE = [c for c in CONFIG_NAMES if c != "orig"]


def _sweep():
    # One executor call for the whole grid: disk-cached, and fanned out
    # over $REPRO_JOBS worker processes on cold caches.
    return run_grid_cached(
        BENCH_ORDER, {name: named_config(name) for name in CONFIG_NAMES}
    )


def test_fig11_configuration_speedups(benchmark):
    grid = run_once(benchmark, _sweep)

    pct = {
        (b, c): grid[(b, c)].relative_speedup_pct_vs(grid[(b, "orig")])
        for b in BENCH_ORDER
        for c in NON_BASE
    }
    avg = {c: suite_average_speedup_pct(grid, "orig", c) for c in NON_BASE}

    table = TextTable(
        "Figure 11 — relative speedup vs orig, 8 TUs (%)",
        ["benchmark"] + NON_BASE,
    )
    for b in BENCH_ORDER:
        table.add_row([b] + [f"{pct[(b, c)]:+.1f}" for c in NON_BASE])
    table.add_row(["average"] + [f"{avg[c]:+.1f}" for c in NON_BASE])
    print()
    print(table)
    print()
    print(
        grouped_bar_chart(
            "Figure 11 (bars: % speedup vs orig)",
            list(BENCH_ORDER) + ["average"],
            {
                c: {**{b: pct[(b, c)] for b in BENCH_ORDER}, "average": avg[c]}
                for c in ("wth-wp", "wth-wp-vc", "wth-wp-wec", "nlp")
            },
        )
    )

    checks = ShapeChecks("Figure 11")
    checks.check(
        "wth-wp-wec gives the greatest average speedup of all configs",
        avg["wth-wp-wec"] == max(avg.values()),
        f"wec {avg['wth-wp-wec']:+.1f}%",
    )
    # Numeric thresholds come from benchmarks/claims.json — the same
    # bands the fidelity observatory scores (see _common.claim_band).
    wec_lo, wec_hi = claim_band("fig11.wec_avg_speedup")
    checks.check(
        "average wec speedup near the paper's 9.7%",
        wec_lo <= avg["wth-wp-wec"] <= wec_hi,
        f"{avg['wth-wp-wec']:+.1f}% (paper +9.7%)",
    )
    checks.check(
        "mcf shows the largest wec gain (paper 18.5%)",
        max(BENCH_ORDER, key=lambda b: pct[(b, "wth-wp-wec")]) == "181.mcf",
        f"mcf {pct[('181.mcf', 'wth-wp-wec')]:+.1f}%",
    )
    mcf_lo, mcf_hi = claim_band("fig11.mcf_wec_speedup")
    checks.check(
        "mcf wec gain near the paper's 18.5%",
        mcf_lo <= pct[("181.mcf", "wth-wp-wec")] <= mcf_hi,
    )
    nlp_lo, nlp_hi = claim_band("fig11.nlp_avg_speedup")
    checks.check(
        "nlp averages roughly half of wec (paper 5.5% vs 9.7%)",
        avg["nlp"] < avg["wth-wp-wec"]
        and nlp_lo <= avg["nlp"] <= nlp_hi,
        f"nlp {avg['nlp']:+.1f}%",
    )
    spec_hi = claim_band("fig11.speculation_alone_small")[1]
    checks.check(
        "wrong execution alone (wp / wth / wth-wp) gives little benefit",
        all(abs(avg[c]) < spec_hi for c in ("wp", "wth", "wth-wp")),
        str({c: round(avg[c], 1) for c in ("wp", "wth", "wth-wp")}),
    )
    checks.check(
        "wth-wp-wec beats wth-wp-vc everywhere (WEC > victim cache)",
        all(pct[(b, "wth-wp-wec")] > pct[(b, "wth-wp-vc")] for b in BENCH_ORDER),
    )
    vc_lo, vc_hi = claim_band("fig11.vc_avg_speedup")
    checks.check(
        "plain victim cache is a small effect",
        vc_lo <= avg["vc"] <= vc_hi,
        f"vc {avg['vc']:+.1f}%",
    )
    checks.check(
        "nlp is weakest on the pointer-chasing benchmark (mcf)",
        pct[("181.mcf", "nlp")] == min(pct[(b, "nlp")] for b in BENCH_ORDER),
        f"mcf nlp {pct[('181.mcf', 'nlp')]:+.1f}%",
    )
    checks.assert_all(tolerate=1)
