"""Figure 14 — sensitivity to the shared L2 cache size (128K–512K).

Both ``orig`` and ``wth-wp-wec`` improve with a larger L2, but the
WEC's *relative* advantage shrinks: a WEC hit hides more latency when
the block would otherwise come from memory than when it would come from
the L2, and a larger L2 converts memory misses into L2 hits.
"""

from __future__ import annotations

from repro import CacheConfig, named_config
from repro.common.stats import arithmetic_mean
from repro.sim.tables import TextTable

from _common import BENCH_ORDER, ShapeChecks, claim_band, run, run_once

L2_SIZES = (128, 256, 512)


def _sweep():
    grid = {}
    for kb in L2_SIZES:
        l2 = CacheConfig(size=kb * 1024, assoc=4, block_size=128,
                         hit_latency=12, name="l2")
        for bench in BENCH_ORDER:
            grid[(bench, f"orig/{kb}k")] = run(bench, named_config("orig", l2=l2))
            grid[(bench, f"wec/{kb}k")] = run(
                bench, named_config("wth-wp-wec", l2=l2)
            )
    return grid


def test_fig14_l2_size(benchmark):
    grid = run_once(benchmark, _sweep)

    table = TextTable(
        "Figure 14 — execution time normalized to orig/128k",
        ["benchmark"]
        + [f"orig {kb}k" for kb in L2_SIZES]
        + [f"wec {kb}k" for kb in L2_SIZES],
    )
    norm = {}
    for b in BENCH_ORDER:
        base = grid[(b, "orig/128k")]
        row = [b]
        for prefix in ("orig", "wec"):
            for kb in L2_SIZES:
                v = grid[(b, f"{prefix}/{kb}k")].normalized_time_vs(base)
                norm[(b, prefix, kb)] = v
                row.append(f"{v:.3f}")
        table.add_row(row)
    avg = {
        (p, kb): arithmetic_mean([norm[(b, p, kb)] for b in BENCH_ORDER])
        for p in ("orig", "wec")
        for kb in L2_SIZES
    }
    table.add_row(
        ["average"]
        + [f"{avg[(p, kb)]:.3f}" for p in ("orig", "wec") for kb in L2_SIZES]
    )
    print()
    print(table)

    checks = ShapeChecks("Figure 14")
    checks.check(
        "larger L2 helps orig on average",
        avg[("orig", 128)] >= avg[("orig", 256)] >= avg[("orig", 512)],
    )
    checks.check(
        "larger L2 helps wec on average",
        avg[("wec", 128)] >= avg[("wec", 256)] >= avg[("wec", 512)],
    )
    gain = {
        kb: (avg[("orig", kb)] - avg[("wec", kb)]) / avg[("orig", kb)] * 100
        for kb in L2_SIZES
    }
    # The trend band lives in benchmarks/claims.json
    # (fig14.wec_advantage_trend) — a strict gain[128] > gain[512] does
    # not hold at the calibration scale; see EXPERIMENTS.md.
    trend_lo, trend_hi = claim_band("fig14.wec_advantage_trend")
    checks.check(
        "the WEC's advantage trend across L2 sizes is within band",
        trend_lo <= gain[128] - gain[512] <= trend_hi,
        f"128k {gain[128]:.1f}% vs 512k {gain[512]:.1f}%",
    )
    all_lo = claim_band("fig14.wec_gain_all_l2")[0]
    checks.check(
        "wec beats orig clearly at every L2 size",
        min(gain.values()) >= all_lo,
        f"min gain {min(gain.values()):.1f}%",
    )
    checks.assert_all(tolerate=1)
