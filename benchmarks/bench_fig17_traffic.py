"""Figure 17 — L1 traffic increase and miss-count reduction.

For ``wth-wp-wec`` vs ``orig`` (8 TUs): executing wrong-path and
wrong-thread loads increases processor↔L1 data traffic (paper: up to
~30% for 175.vpr, ~14% average) but substantially reduces the number of
correct-path misses that must be serviced beyond the L1+WEC (paper:
42–73%, largest for 177.mesa, least significant for 181.mcf).
"""

from __future__ import annotations

from repro import named_config
from repro.analysis.plots import bar_chart
from repro.common.stats import arithmetic_mean
from repro.sim.tables import TextTable

from _common import (
    BENCH_ORDER,
    ShapeChecks,
    claim_band,
    grid as run_grid_cached,
    run_once,
)


def _sweep():
    g = run_grid_cached(
        BENCH_ORDER,
        {"orig": named_config("orig"), "wth-wp-wec": named_config("wth-wp-wec")},
    )
    out = {}
    for bench in BENCH_ORDER:
        base = g[(bench, "orig")]
        wec = g[(bench, "wth-wp-wec")]
        out[bench] = (
            wec.traffic_increase_pct_vs(base),
            wec.miss_reduction_pct_vs(base),
        )
    return out


def test_fig17_traffic_and_misses(benchmark):
    data = run_once(benchmark, _sweep)

    table = TextTable(
        "Figure 17 — wth-wp-wec vs orig: L1 traffic increase and "
        "miss-count reduction (%)",
        ["benchmark", "traffic increase", "miss reduction"],
    )
    for b in BENCH_ORDER:
        tr, mr = data[b]
        table.add_row([b, f"+{tr:.1f}", f"-{mr:.1f}"])
    avg_tr = arithmetic_mean([data[b][0] for b in BENCH_ORDER])
    avg_mr = arithmetic_mean([data[b][1] for b in BENCH_ORDER])
    table.add_row(["average", f"+{avg_tr:.1f}", f"-{avg_mr:.1f}"])
    print()
    print(table)
    print()
    print(bar_chart("traffic increase (%)", {b: data[b][0] for b in BENCH_ORDER}))
    print()
    print(bar_chart("miss reduction (%)", {b: data[b][1] for b in BENCH_ORDER}))

    checks = ShapeChecks("Figure 17")
    checks.check(
        "every benchmark pays extra L1 traffic for wrong execution",
        all(tr > 0 for tr, _ in data.values()),
    )
    # Thresholds come from benchmarks/claims.json (see _common.claim_band).
    missred_lo = claim_band("fig17.missred_positive_all")[0]
    checks.check(
        "every benchmark sees a significant miss reduction",
        all(mr > missred_lo for _, mr in data.values()),
        str({b: round(m, 1) for b, (_, m) in data.items()}),
    )
    checks.check(
        "vpr has the largest traffic increase (paper: ~30%)",
        max(BENCH_ORDER, key=lambda b: data[b][0]) in ("175.vpr", "181.mcf"),
        f"max = {max(BENCH_ORDER, key=lambda b: data[b][0])}",
    )
    checks.check(
        "mesa shows the largest miss reduction (paper: ~73%)",
        max(BENCH_ORDER, key=lambda b: data[b][1]) == "177.mesa",
    )
    checks.check(
        "mcf's miss reduction is the least significant (paper's note)",
        min(BENCH_ORDER, key=lambda b: data[b][1]) == "181.mcf",
    )
    traffic_hi = claim_band("fig17.traffic_avg")[1]
    checks.check(
        "the average traffic increase is moderate (paper: ~14%)",
        avg_tr < traffic_hi,
        f"+{avg_tr:.1f}%",
    )
    checks.assert_all(tolerate=1)
