"""Figure 15 — WEC size (4/8/16 entries) vs victim caches.

Paper shapes: ``wth-wp-vc`` with only 4 entries outperforms ``vc`` with
16 (wrong execution adds value beyond victim caching); replacing the
victim cache with a WEC of the *same* size wins again — a 4-entry WEC
(``wth-wp-wec 4``) beats a 16-entry victim cache with wrong execution
(``wth-wp-vc 16``); bigger WECs help monotonically (roughly).
"""

from __future__ import annotations

from repro import named_config
from repro.analysis.speedup import suite_average_speedup_pct
from repro.sim.tables import TextTable

from _common import BENCH_ORDER, ShapeChecks, run, run_once

ENTRIES = (4, 8, 16)
FAMILIES = ("vc", "wth-wp-vc", "wth-wp-wec")


def _sweep():
    grid = {}
    for bench in BENCH_ORDER:
        grid[(bench, "orig")] = run(bench, named_config("orig"))
        for fam in FAMILIES:
            for n in ENTRIES:
                grid[(bench, f"{fam} {n}")] = run(
                    bench, named_config(fam, sidecar_entries=n)
                )
    return grid


def test_fig15_wec_size_vs_victim_cache(benchmark):
    grid = run_once(benchmark, _sweep)

    labels = [f"{fam} {n}" for fam in FAMILIES for n in ENTRIES]
    table = TextTable(
        "Figure 15 — speedup vs orig for sidecar sizes 4/8/16 (%)",
        ["benchmark"] + labels,
    )
    for b in BENCH_ORDER:
        base = grid[(b, "orig")]
        table.add_row(
            [b]
            + [
                f"{grid[(b, lbl)].relative_speedup_pct_vs(base):+.1f}"
                for lbl in labels
            ]
        )
    avg = {lbl: suite_average_speedup_pct(grid, "orig", lbl) for lbl in labels}
    table.add_row(["average"] + [f"{avg[lbl]:+.1f}" for lbl in labels])
    print()
    print(table)

    checks = ShapeChecks("Figure 15")
    checks.check(
        "wrong execution adds value over a same-size victim cache",
        all(avg[f"wth-wp-vc {n}"] > avg[f"vc {n}"] for n in ENTRIES),
        str({n: round(avg[f'wth-wp-vc {n}'] - avg[f'vc {n}'], 2) for n in ENTRIES}),
    )
    checks.check(
        "wth-wp-vc 4 at least approaches plain vc 16 "
        "(paper: outperforms; our contention model nets wrong execution "
        "without a WEC to ~0, see EXPERIMENTS.md)",
        avg["wth-wp-vc 4"] > avg["vc 16"] - 1.0,
        f"{avg['wth-wp-vc 4']:+.1f}% vs {avg['vc 16']:+.1f}%",
    )
    checks.check(
        "a 4-entry WEC beats a 16-entry victim cache with wrong execution",
        avg["wth-wp-wec 4"] > avg["wth-wp-vc 16"],
        f"{avg['wth-wp-wec 4']:+.1f}% vs {avg['wth-wp-vc 16']:+.1f}%",
    )
    checks.check(
        "WEC dominates same-size victim cache at every size",
        all(avg[f"wth-wp-wec {n}"] > avg[f"wth-wp-vc {n}"] for n in ENTRIES),
    )
    checks.check(
        "bigger WEC does not hurt",
        avg["wth-wp-wec 16"] >= avg["wth-wp-wec 4"] - 0.5,
    )
    checks.assert_all()
