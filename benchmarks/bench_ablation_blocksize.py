"""Ablation (paper §7 future work) — L1 block size vs WEC benefit.

Larger L1 blocks capture more spatial locality per fill (fewer stream
misses for both schemes to cover) but make each WEC entry larger and
each next-line prefetch farther-reaching.  The paper defers block size
to future work; this bench reports the trade-off at 32/64/128 bytes
(the L2 block stays at 128B, the paper's value).
"""

from __future__ import annotations

from repro import CacheConfig, named_config
from repro.analysis.speedup import suite_average_speedup_pct
from repro.sim.tables import TextTable

from _common import BENCH_ORDER, ShapeChecks, run, run_once

BLOCKS = (32, 64, 128)


def _sweep():
    grid = {}
    for bs in BLOCKS:
        l1 = CacheConfig(size=8 * 1024, assoc=1, block_size=bs, name="l1d")
        for bench in BENCH_ORDER:
            grid[(bench, f"orig/{bs}")] = run(bench, named_config("orig", l1d=l1))
            grid[(bench, f"wec/{bs}")] = run(
                bench, named_config("wth-wp-wec", l1d=l1)
            )
            grid[(bench, f"nlp/{bs}")] = run(bench, named_config("nlp", l1d=l1))
    return grid


def test_ablation_block_size(benchmark):
    grid = run_once(benchmark, _sweep)

    table = TextTable(
        "Ablation — speedup vs same-block-size orig (%)",
        ["benchmark"]
        + [f"wec/{bs}B" for bs in BLOCKS]
        + [f"nlp/{bs}B" for bs in BLOCKS],
    )
    for b in BENCH_ORDER:
        row = [b]
        for fam in ("wec", "nlp"):
            for bs in BLOCKS:
                base = grid[(b, f"orig/{bs}")]
                row.append(
                    f"{grid[(b, f'{fam}/{bs}')].relative_speedup_pct_vs(base):+.1f}"
                )
        table.add_row(row)
    avg = {}
    for fam in ("wec", "nlp"):
        for bs in BLOCKS:
            sub = {
                (b, l): r
                for (b, l), r in grid.items()
                if l in (f"orig/{bs}", f"{fam}/{bs}")
            }
            avg[(fam, bs)] = suite_average_speedup_pct(sub, f"orig/{bs}", f"{fam}/{bs}")
    table.add_row(
        ["average"]
        + [f"{avg[(f, bs)]:+.1f}" for f in ("wec", "nlp") for bs in BLOCKS]
    )
    print()
    print(table)

    checks = ShapeChecks("Ablation: block size")
    checks.check(
        "WEC helps at every block size",
        all(avg[("wec", bs)] > 2.0 for bs in BLOCKS),
        str({bs: round(avg[("wec", bs)], 1) for bs in BLOCKS}),
    )
    checks.check(
        "WEC beats nlp at every block size",
        all(avg[("wec", bs)] > avg[("nlp", bs)] for bs in BLOCKS),
    )
    checks.check(
        "baseline benefits from larger blocks (spatial locality)",
        all(
            grid[(b, "orig/128")].total_cycles <= grid[(b, "orig/32")].total_cycles
            for b in BENCH_ORDER
        ),
    )
    checks.assert_all(tolerate=1)
