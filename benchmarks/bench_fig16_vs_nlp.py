"""Figure 16 — WEC vs next-line tagged prefetching at matched sizes.

Buffer sizes 8/16/32 for both schemes.  Paper shape: an 8-entry WEC
(``wth-wp-wec 8``) performs substantially better than next-line
prefetching with a 32-entry buffer (``nlp 32``) — wrong execution is the
more efficient prefetching mechanism per entry of hardware.
"""

from __future__ import annotations

from repro import named_config
from repro.analysis.speedup import suite_average_speedup_pct
from repro.sim.tables import TextTable

from _common import BENCH_ORDER, ShapeChecks, grid as run_grid_cached, run_once

ENTRIES = (8, 16, 32)


def _sweep():
    configs = {"orig": named_config("orig")}
    for fam in ("nlp", "wth-wp-wec"):
        for n in ENTRIES:
            configs[f"{fam} {n}"] = named_config(fam, sidecar_entries=n)
    return run_grid_cached(BENCH_ORDER, configs)


def test_fig16_wec_vs_nlp(benchmark):
    grid = run_once(benchmark, _sweep)

    labels = [f"nlp {n}" for n in ENTRIES] + [f"wth-wp-wec {n}" for n in ENTRIES]
    table = TextTable(
        "Figure 16 — speedup vs orig: nlp vs wec at 8/16/32 entries (%)",
        ["benchmark"] + labels,
    )
    for b in BENCH_ORDER:
        base = grid[(b, "orig")]
        table.add_row(
            [b]
            + [
                f"{grid[(b, lbl)].relative_speedup_pct_vs(base):+.1f}"
                for lbl in labels
            ]
        )
    avg = {lbl: suite_average_speedup_pct(grid, "orig", lbl) for lbl in labels}
    table.add_row(["average"] + [f"{avg[lbl]:+.1f}" for lbl in labels])
    print()
    print(table)

    checks = ShapeChecks("Figure 16")
    checks.check(
        "an 8-entry WEC beats 32-entry next-line prefetching on average",
        avg["wth-wp-wec 8"] > avg["nlp 32"],
        f"{avg['wth-wp-wec 8']:+.1f}% vs {avg['nlp 32']:+.1f}%",
    )
    checks.check(
        "wec beats same-size nlp at every size",
        all(avg[f"wth-wp-wec {n}"] > avg[f"nlp {n}"] for n in ENTRIES),
    )
    checks.check(
        "growing the nlp buffer yields little (paper: flat 8->32)",
        avg["nlp 32"] - avg["nlp 8"] < 3.0,
        f"{avg['nlp 8']:+.1f}% -> {avg['nlp 32']:+.1f}%",
    )
    checks.check(
        "wec is weakest-vs-nlp gap still positive on pointer chasing",
        grid[("181.mcf", "wth-wp-wec 8")].relative_speedup_pct_vs(
            grid[("181.mcf", "orig")]
        )
        > grid[("181.mcf", "nlp 32")].relative_speedup_pct_vs(
            grid[("181.mcf", "orig")]
        ),
    )
    checks.assert_all()
