"""Figure 12 — sensitivity to L1 data-cache associativity.

Direct-mapped vs 4-way L1, each compared against the matching ``orig``:
increasing associativity removes the conflict misses a victim cache
fixes, so the ``vc`` speedup largely disappears, while ``wth-wp-wec``
still provides significant speedup (its prefetching effect does not
depend on conflicts) and keeps beating ``wth-wp-vc``.
"""

from __future__ import annotations

from repro import CacheConfig, named_config
from repro.analysis.speedup import suite_average_speedup_pct
from repro.sim.tables import TextTable

from _common import BENCH_ORDER, ShapeChecks, run, run_once

CONFIGS = ("vc", "wth-wp-vc", "wth-wp-wec")


def _sweep():
    grid = {}
    for assoc in (1, 4):
        l1 = CacheConfig(size=8 * 1024, assoc=assoc, block_size=64, name="l1d")
        for bench in BENCH_ORDER:
            grid[(bench, f"orig/{assoc}w")] = run(
                bench, named_config("orig", l1d=l1)
            )
            for cfg in CONFIGS:
                grid[(bench, f"{cfg}/{assoc}w")] = run(
                    bench, named_config(cfg, l1d=l1)
                )
    return grid


def test_fig12_l1_associativity(benchmark):
    grid = run_once(benchmark, _sweep)

    cols = [f"{c}/{a}w" for a in (1, 4) for c in CONFIGS]
    table = TextTable(
        "Figure 12 — speedup vs same-associativity orig (%)",
        ["benchmark"] + cols,
    )
    pct = {}
    for b in BENCH_ORDER:
        row = [b]
        for a in (1, 4):
            base = grid[(b, f"orig/{a}w")]
            for c in CONFIGS:
                v = grid[(b, f"{c}/{a}w")].relative_speedup_pct_vs(base)
                pct[(b, c, a)] = v
                row.append(f"{v:+.1f}")
        # reorder row to match cols (1-way triple then 4-way triple)
        table.add_row(row)
    avg = {
        (c, a): suite_average_speedup_pct(
            {
                (b, lbl): r
                for (b, lbl), r in grid.items()
                if lbl in (f"orig/{a}w", f"{c}/{a}w")
            },
            f"orig/{a}w",
            f"{c}/{a}w",
        )
        for c in CONFIGS
        for a in (1, 4)
    }
    table.add_row(
        ["average"] + [f"{avg[(c, a)]:+.1f}" for a in (1, 4) for c in CONFIGS]
    )
    print()
    print(table)

    checks = ShapeChecks("Figure 12")
    checks.check(
        "victim-cache speedup shrinks at 4-way (paper: disappears)",
        avg[("vc", 4)] < avg[("vc", 1)],
        f"{avg[('vc', 1)]:+.1f}% -> {avg[('vc', 4)]:+.1f}%",
    )
    checks.check(
        "vc speedup at 4-way is negligible",
        avg[("vc", 4)] < 1.5,
    )
    checks.check(
        "wth-wp-wec still significant at 4-way",
        avg[("wth-wp-wec", 4)] > 4.0,
        f"{avg[('wth-wp-wec', 4)]:+.1f}%",
    )
    checks.check(
        "wth-wp-wec substantially outperforms wth-wp-vc at both assocs",
        all(
            avg[("wth-wp-wec", a)] > avg[("wth-wp-vc", a)] + 2.0
            for a in (1, 4)
        ),
    )
    checks.assert_all()
