"""Figure 13 — sensitivity to L1 data-cache size (4K–32K).

Normalized execution time of ``orig`` and ``wth-wp-wec`` as the L1 size
doubles (WEC fixed at 8 entries).  Paper shapes: the WEC's relative
benefit shrinks as the L1 grows; an 8-entry WEC with an 8K L1 beats the
baseline with a doubled (16K) L1; on average the WEC with a 4K L1 beats
the baseline with a 32K L1 — chip area spent on a WEC beats area spent
on L1 capacity.
"""

from __future__ import annotations

from repro import CacheConfig, named_config
from repro.common.stats import arithmetic_mean
from repro.sim.tables import TextTable

from _common import BENCH_ORDER, ShapeChecks, run, run_once

SIZES = (4, 8, 16, 32)


def _sweep():
    grid = {}
    for kb in SIZES:
        l1 = CacheConfig(size=kb * 1024, assoc=1, block_size=64, name="l1d")
        for bench in BENCH_ORDER:
            grid[(bench, f"orig/{kb}k")] = run(bench, named_config("orig", l1d=l1))
            grid[(bench, f"wec/{kb}k")] = run(
                bench, named_config("wth-wp-wec", l1d=l1)
            )
    return grid


def test_fig13_l1_size(benchmark):
    grid = run_once(benchmark, _sweep)

    cols = [f"orig {kb}k" for kb in SIZES] + [f"wec {kb}k" for kb in SIZES]
    table = TextTable(
        "Figure 13 — execution time normalized to orig/4k",
        ["benchmark"] + cols,
    )
    norm = {}
    for b in BENCH_ORDER:
        base = grid[(b, "orig/4k")]
        row = [b]
        for prefix in ("orig", "wec"):
            for kb in SIZES:
                v = grid[(b, f"{prefix}/{kb}k")].normalized_time_vs(base)
                norm[(b, prefix, kb)] = v
                row.append(f"{v:.3f}")
        table.add_row(row)
    avg = {
        (p, kb): arithmetic_mean([norm[(b, p, kb)] for b in BENCH_ORDER])
        for p in ("orig", "wec")
        for kb in SIZES
    }
    table.add_row(
        ["average"]
        + [f"{avg[(p, kb)]:.3f}" for p in ("orig", "wec") for kb in SIZES]
    )
    print()
    print(table)

    checks = ShapeChecks("Figure 13")
    gain = {
        kb: (avg[("orig", kb)] - avg[("wec", kb)]) / avg[("orig", kb)] * 100
        for kb in SIZES
    }
    checks.check(
        "WEC's relative benefit shrinks as the L1 grows",
        gain[4] > gain[32],
        f"4k {gain[4]:.1f}% vs 32k {gain[32]:.1f}%",
    )
    beats_double = sum(
        norm[(b, "wec", 8)] < norm[(b, "orig", 16)] for b in BENCH_ORDER
    )
    checks.check(
        "wec+8k L1 beats orig with a doubled (16k) L1 for all benchmarks",
        beats_double == len(BENCH_ORDER),
        f"{beats_double}/6",
    )
    checks.check(
        "on average wec+4k beats orig+32k (WEC is better use of area)",
        avg[("wec", 4)] < avg[("orig", 32)],
        f"{avg[('wec', 4)]:.3f} vs {avg[('orig', 32)]:.3f}",
    )
    checks.check(
        "bigger L1 monotonically helps orig on average",
        avg[("orig", 4)] > avg[("orig", 8)] > avg[("orig", 16)] > avg[("orig", 32)],
    )
    checks.assert_all(tolerate=1)
