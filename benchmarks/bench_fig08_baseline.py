"""Figure 8 — baseline STA performance on the parallelized portions.

Table 3 design points (total parallelism fixed at 16 = #TUs × issue):
speedup of the parallelized loop regions relative to a single-thread,
single-issue processor.  Paper shapes: 164.gzip shows near-linear
thread-level speedup (~14x at 16 TUs, under 4x for the 1-TU 16-issue
core); 175.vpr is ILP-rich and TLP-poor (speedup *decreases* as TUs
increase); on average thread-level parallelization beats pure
instruction-level parallelization.
"""

from __future__ import annotations

from repro import table3_config
from repro.analysis.plots import grouped_bar_chart
from repro.common.stats import arithmetic_mean
from repro.sim.tables import TextTable

from _common import BENCH_ORDER, ShapeChecks, run, run_once

TU_POINTS = (1, 2, 4, 8, 16)


def _sweep():
    base_cfg = table3_config(1, single_issue_baseline=True)
    speedups = {}
    for bench in BENCH_ORDER:
        base = run(bench, base_cfg)
        speedups[bench] = {
            n: run(bench, table3_config(n)).parallel_speedup_vs(base)
            for n in TU_POINTS
        }
    return speedups


def test_fig08_baseline_parallelism(benchmark):
    speedups = run_once(benchmark, _sweep)

    table = TextTable(
        "Figure 8 — parallel-portion speedup vs 1TU x 1-issue "
        "(total parallelism = 16)",
        ["benchmark"] + [f"{n}TU x {16 // n}w" for n in TU_POINTS],
    )
    for bench in BENCH_ORDER:
        table.add_row([bench] + [f"{speedups[bench][n]:.2f}" for n in TU_POINTS])
    avg = {
        n: arithmetic_mean([speedups[b][n] for b in BENCH_ORDER])
        for n in TU_POINTS
    }
    table.add_row(["average"] + [f"{avg[n]:.2f}" for n in TU_POINTS])
    print()
    print(table)
    print()
    print(
        grouped_bar_chart(
            "Figure 8 (bars: speedup x)",
            list(BENCH_ORDER),
            {f"{n}TU": {b: speedups[b][n] for b in BENCH_ORDER} for n in TU_POINTS},
            unit="x",
        )
    )

    checks = ShapeChecks("Figure 8")
    gz = speedups["164.gzip"]
    checks.check(
        "gzip: 16 TUs give high thread-level speedup (paper ~14x)",
        gz[16] > 8.0,
        f"measured {gz[16]:.1f}x",
    )
    checks.check(
        "gzip: 16TUx1w far exceeds 1TUx16w (paper: 14x vs <4x)",
        gz[16] > 1.5 * gz[1],
        f"{gz[16]:.1f}x vs {gz[1]:.1f}x",
    )
    vpr = speedups["175.vpr"]
    checks.check(
        "vpr: ILP-dominated — speedup falls as TUs rise past 2",
        vpr[2] > vpr[4] > vpr[8] > vpr[16],
        f"{[round(vpr[n], 1) for n in TU_POINTS]}",
    )
    checks.check(
        "vpr: the wide core beats the 16-TU machine",
        vpr[1] > vpr[16],
    )
    checks.check(
        "average: thread-level parallelization beats pure ILP",
        avg[16] > avg[1],
        f"{avg[16]:.1f}x vs {avg[1]:.1f}x",
    )
    checks.check(
        "all speedups exceed the single-issue baseline",
        all(s > 1.0 for per in speedups.values() for s in per.values()),
    )
    checks.assert_all()
