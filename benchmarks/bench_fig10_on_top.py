"""Figure 10 — wth-wp-wec speedup on top of same-width parallel execution.

For each TU count, the ``wth-wp-wec`` machine is compared against the
``orig`` machine with the *same* number of TUs, isolating the WEC's
contribution from thread-level parallelism.  Paper shapes: the benefit
*grows* with the number of threads (more wrong threads → more wrong
loads → more indirect prefetching; e.g. 181.mcf: 6.2% at 1 TU rising to
20.2% at 16 TUs), then levels off once WEC+L1 capacity covers the
footprint.
"""

from __future__ import annotations

from repro import named_config
from repro.analysis.plots import grouped_bar_chart
from repro.sim.tables import TextTable

from _common import BENCH_ORDER, ShapeChecks, run, run_once

TU_POINTS = (1, 2, 4, 8, 16)


def _sweep():
    out = {}
    for bench in BENCH_ORDER:
        out[bench] = {}
        for n in TU_POINTS:
            base = run(bench, named_config("orig", n_tus=n))
            wec = run(bench, named_config("wth-wp-wec", n_tus=n))
            out[bench][n] = wec.relative_speedup_pct_vs(base)
    return out


def test_fig10_wec_on_top_of_parallel(benchmark):
    data = run_once(benchmark, _sweep)

    table = TextTable(
        "Figure 10 — wth-wp-wec speedup vs same-TU-count orig (%)",
        ["benchmark"] + [f"{n}TU" for n in TU_POINTS],
    )
    for bench in BENCH_ORDER:
        table.add_row([bench] + [f"{data[bench][n]:+.1f}" for n in TU_POINTS])
    print()
    print(table)
    print()
    print(
        grouped_bar_chart(
            "Figure 10 (bars: % over same-width orig)",
            list(BENCH_ORDER),
            {f"{n}TU": {b: data[b][n] for b in BENCH_ORDER} for n in TU_POINTS},
        )
    )

    checks = ShapeChecks("Figure 10")
    checks.check(
        "WEC helps at every TU count for every benchmark",
        all(v > 0 for per in data.values() for v in per.values()),
    )
    grows = sum(data[b][16] > data[b][1] for b in BENCH_ORDER)
    checks.check(
        "benefit grows from 1 TU to 16 TUs for most benchmarks "
        "(wrong threads add prefetching)",
        grows >= 4,
        f"{grows}/6 grow",
    )
    mcf = data["181.mcf"]
    checks.check(
        "mcf: multi-TU benefit exceeds the single-TU benefit "
        "(paper: 6.2% -> 20.2%)",
        mcf[16] > mcf[1],
        f"{mcf[1]:.1f}% -> {mcf[16]:.1f}%",
    )
    checks.assert_all(tolerate=1)
