"""Ablation (paper §7 future work) — memory latency vs WEC benefit.

The paper's conclusion explicitly defers "the effects of memory
latency" to future work.  Mechanistically, the WEC's value comes from
converting correct-path misses into (cheap) WEC hits, so its benefit
should *grow* with the round-trip memory latency — there is more
latency to hide — while the baseline slows down.
"""

from __future__ import annotations

import dataclasses

from repro import named_config
from repro.analysis.speedup import suite_average_speedup_pct
from repro.common.config import MemorySystemConfig
from repro.sim.tables import TextTable

from _common import BENCH_ORDER, ShapeChecks, run, run_once

LATENCIES = (100, 200, 400)


def _with_latency(cfg, latency):
    return dataclasses.replace(
        cfg, mem=MemorySystemConfig(l2=cfg.mem.l2, memory_latency=latency)
    )


def _sweep():
    grid = {}
    for lat in LATENCIES:
        for bench in BENCH_ORDER:
            grid[(bench, f"orig/{lat}")] = run(
                bench, _with_latency(named_config("orig"), lat)
            )
            grid[(bench, f"wec/{lat}")] = run(
                bench, _with_latency(named_config("wth-wp-wec"), lat)
            )
    return grid


def test_ablation_memory_latency(benchmark):
    grid = run_once(benchmark, _sweep)

    table = TextTable(
        "Ablation — WEC speedup vs memory round-trip latency (%)",
        ["benchmark"] + [f"{lat} cycles" for lat in LATENCIES],
    )
    for b in BENCH_ORDER:
        table.add_row(
            [b]
            + [
                f"{grid[(b, f'wec/{lat}')].relative_speedup_pct_vs(grid[(b, f'orig/{lat}')]):+.1f}"
                for lat in LATENCIES
            ]
        )
    avg = {
        lat: suite_average_speedup_pct(
            {
                (b, l): r
                for (b, l), r in grid.items()
                if l in (f"orig/{lat}", f"wec/{lat}")
            },
            f"orig/{lat}",
            f"wec/{lat}",
        )
        for lat in LATENCIES
    }
    table.add_row(["average"] + [f"{avg[lat]:+.1f}" for lat in LATENCIES])
    print()
    print(table)

    checks = ShapeChecks("Ablation: memory latency")
    checks.check(
        "WEC benefit grows with memory latency",
        avg[400] > avg[100],
        f"100cy {avg[100]:+.1f}% vs 400cy {avg[400]:+.1f}%",
    )
    checks.check(
        "longer latency slows the baseline",
        all(
            grid[(b, "orig/400")].total_cycles > grid[(b, "orig/100")].total_cycles
            for b in BENCH_ORDER
        ),
    )
    mcf_gains = [
        grid[("181.mcf", f"wec/{lat}")].relative_speedup_pct_vs(
            grid[("181.mcf", f"orig/{lat}")]
        )
        for lat in LATENCIES
    ]
    checks.check(
        "mcf's WEC gain grows monotonically with latency",
        mcf_gains[0] < mcf_gains[1] < mcf_gains[2],
        str([round(g, 1) for g in mcf_gains]),
    )
    checks.assert_all()
