"""Figure 9 — whole-program wth-wp-wec speedup vs a 1-TU baseline.

Speedup of the full benchmark (not just the parallel loops) for the
``wth-wp-wec`` configuration with 1–16 thread units, relative to the
1-TU ``orig`` superthreaded processor.  Paper shapes: up to ~39%
(183.equake); a 2-TU wth-wp-wec typically beats a 16-TU ``orig``; even
the single-TU wth-wp-wec improves on the baseline (wrong-path-only
prefetching, up to ~10% for equake); 175.vpr gains little from more TUs.
"""

from __future__ import annotations

from repro import named_config
from repro.sim.tables import TextTable

from _common import BENCH_ORDER, ShapeChecks, claim_band, run, run_once

TU_POINTS = (1, 2, 4, 8, 16)


def _sweep():
    out = {}
    for bench in BENCH_ORDER:
        base = run(bench, named_config("orig", n_tus=1))
        out[bench] = {
            "orig": {
                n: run(bench, named_config("orig", n_tus=n)).relative_speedup_pct_vs(base)
                for n in TU_POINTS
            },
            "wec": {
                n: run(bench, named_config("wth-wp-wec", n_tus=n)).relative_speedup_pct_vs(base)
                for n in TU_POINTS
            },
        }
    return out


def test_fig09_whole_program_scaling(benchmark):
    data = run_once(benchmark, _sweep)

    table = TextTable(
        "Figure 9 — whole-program speedup vs 1-TU orig (%)",
        ["benchmark"]
        + [f"orig {n}TU" for n in TU_POINTS]
        + [f"wec {n}TU" for n in TU_POINTS],
    )
    for bench in BENCH_ORDER:
        table.add_row(
            [bench]
            + [f"{data[bench]['orig'][n]:+.1f}" for n in TU_POINTS]
            + [f"{data[bench]['wec'][n]:+.1f}" for n in TU_POINTS]
        )
    print()
    print(table)

    checks = ShapeChecks("Figure 9")
    checks.check(
        "single-TU wth-wp-wec already improves on orig (wrong-path only)",
        all(data[b]["wec"][1] > 0.0 for b in BENCH_ORDER),
        str({b: round(data[b]["wec"][1], 1) for b in BENCH_ORDER}),
    )
    # Thresholds come from benchmarks/claims.json (see _common.claim_band):
    # the fig09 loose-shape claims and this bench share one band.
    beats = sum(
        data[b]["wec"][2] > data[b]["orig"][16] for b in BENCH_ORDER
    )
    beats_lo = claim_band("fig09.two_tu_wec_vs_16tu_orig")[0]
    checks.check(
        "2-TU wth-wp-wec beats 16-TU orig for some benchmarks",
        beats >= beats_lo,
        f"{beats}/6 benchmarks",
    )
    hurt_lo = claim_band("fig09.wec_never_hurts")[0]
    checks.check(
        "wec never materially below orig at any TU count",
        all(
            data[b]["wec"][n] - data[b]["orig"][n] >= hurt_lo
            for b in BENCH_ORDER
            for n in TU_POINTS
        ),
    )
    best = max(data[b]["wec"][n] for b in BENCH_ORDER for n in TU_POINTS)
    peak_lo = claim_band("fig09.peak_speedup_vs_1tu")[0]
    checks.check(
        "peak whole-program gain is large (paper: 39.2% for equake)",
        best > peak_lo,
        f"best {best:.1f}%",
    )
    vpr_gain = data["175.vpr"]["orig"][8]
    checks.check(
        "vpr gains little from parallel execution (paper: slows down)",
        vpr_gain < 8.0,
        f"vpr orig 8TU vs 1TU: {vpr_gain:+.1f}%",
    )
    checks.assert_all(tolerate=1)
