"""Ablation (beyond the paper) — decomposing the WEC's benefit channels.

The full ``wth-wp-wec`` configuration mixes three mechanisms:

1. wrong-**path** prefetching (loads past resolved mispredictions),
2. wrong-**thread** prefetching (aborted threads running on),
3. plain **victim caching** (L1 evictions parked beside the cache).

This bench runs each channel in isolation (``wp-wec``, ``wth-wec``,
``wec-victim-only``) and the full combination, answering which channel
carries which benchmark — e.g. mcf should be wrong-path-dominated
(valid chase-ahead), while victim caching alone should behave like the
paper's ``vc`` configuration.
"""

from __future__ import annotations

from repro import named_config
from repro.analysis.speedup import suite_average_speedup_pct
from repro.sim.tables import TextTable

from _common import BENCH_ORDER, ShapeChecks, run, run_once

CHANNELS = ("wec-victim-only", "wth-wec", "wp-wec", "wth-wp-wec")


def _sweep():
    grid = {}
    for bench in BENCH_ORDER:
        grid[(bench, "orig")] = run(bench, named_config("orig"))
        for name in CHANNELS:
            grid[(bench, name)] = run(bench, named_config(name))
    return grid


def test_ablation_wec_channels(benchmark):
    grid = run_once(benchmark, _sweep)

    table = TextTable(
        "Ablation — WEC channel decomposition (speedup vs orig, %)",
        ["benchmark"] + list(CHANNELS),
    )
    pct = {}
    for b in BENCH_ORDER:
        base = grid[(b, "orig")]
        row = [b]
        for name in CHANNELS:
            v = grid[(b, name)].relative_speedup_pct_vs(base)
            pct[(b, name)] = v
            row.append(f"{v:+.1f}")
        table.add_row(row)
    avg = {name: suite_average_speedup_pct(grid, "orig", name) for name in CHANNELS}
    table.add_row(["average"] + [f"{avg[name]:+.1f}" for name in CHANNELS])
    print()
    print(table)

    checks = ShapeChecks("Ablation: WEC channels")
    checks.check(
        "the full combination beats every single channel on average",
        all(avg["wth-wp-wec"] >= avg[c] for c in CHANNELS),
        str({c: round(avg[c], 1) for c in CHANNELS}),
    )
    checks.check(
        "victim caching alone is the weakest channel",
        avg["wec-victim-only"] == min(avg.values()),
    )
    checks.check(
        "wrong-path is the dominant channel for mcf (valid chase-ahead)",
        pct[("181.mcf", "wp-wec")] > pct[("181.mcf", "wth-wec")],
        f"wp {pct[('181.mcf', 'wp-wec')]:+.1f}% vs "
        f"wth {pct[('181.mcf', 'wth-wec')]:+.1f}%",
    )
    checks.check(
        "every channel is non-negative on average",
        all(avg[c] > -0.5 for c in CHANNELS),
    )
    checks.check(
        "channels overlap (sum of parts exceeds the whole)",
        avg["wp-wec"] + avg["wth-wec"] + avg["wec-victim-only"]
        > avg["wth-wp-wec"] * 0.8,
    )
    checks.assert_all(tolerate=1)
