"""Ablation (beyond the paper) — a stronger conventional prefetcher.

The paper compares the WEC against tagged next-line prefetching.  Does a
stream-detecting prefetcher — the stronger conventional design that
confirms two consecutive block misses and then runs ahead of the demand
stream — close the gap?  This bench runs nlp, stream-pf and wth-wp-wec
against the same baseline.
"""

from __future__ import annotations

from repro import named_config
from repro.analysis.speedup import suite_average_speedup_pct
from repro.sim.tables import TextTable

from _common import BENCH_ORDER, ShapeChecks, run, run_once

SCHEMES = ("nlp", "stream-pf", "wth-wp-wec")


def _sweep():
    grid = {}
    for bench in BENCH_ORDER:
        grid[(bench, "orig")] = run(bench, named_config("orig"))
        for name in SCHEMES:
            grid[(bench, name)] = run(bench, named_config(name))
    return grid


def test_ablation_stream_prefetcher(benchmark):
    grid = run_once(benchmark, _sweep)

    table = TextTable(
        "Ablation — conventional prefetchers vs the WEC (speedup vs orig, %)",
        ["benchmark"] + list(SCHEMES),
    )
    pct = {}
    for b in BENCH_ORDER:
        base = grid[(b, "orig")]
        row = [b]
        for name in SCHEMES:
            v = grid[(b, name)].relative_speedup_pct_vs(base)
            pct[(b, name)] = v
            row.append(f"{v:+.1f}")
        table.add_row(row)
    avg = {name: suite_average_speedup_pct(grid, "orig", name) for name in SCHEMES}
    table.add_row(["average"] + [f"{avg[name]:+.1f}" for name in SCHEMES])
    print()
    print(table)

    checks = ShapeChecks("Ablation: stream prefetcher")
    checks.check(
        "the WEC still beats the stronger conventional prefetcher",
        avg["wth-wp-wec"] > avg["stream-pf"],
        f"wec {avg['wth-wp-wec']:+.1f}% vs stream-pf {avg['stream-pf']:+.1f}%",
    )
    checks.check(
        "stream detection cannot chase pointers either (mcf ~ 0)",
        abs(pct[("181.mcf", "stream-pf")]) < 4.0,
        f"mcf {pct[('181.mcf', 'stream-pf')]:+.1f}%",
    )
    checks.check(
        "stream-pf is competitive with nlp on the FP codes",
        pct[("177.mesa", "stream-pf")] > 0.5 * pct[("177.mesa", "nlp")],
    )
    checks.assert_all(tolerate=1)
