"""Shared machinery for the figure-reproduction bench targets.

Each ``bench_*`` file regenerates one table or figure from the paper's
evaluation section: it runs the required (benchmark × configuration)
grid, prints the same rows/series the paper reports, and asserts the
*shape* expectations listed in DESIGN.md §5 (who wins, roughly by how
much, where crossovers fall).  Absolute cycle counts are not expected to
match the authors' testbed.

Simulation results are resolved through :mod:`repro.sim.executor`: a
per-process memo (so figures sharing runs — e.g. Figures 9 and 10 — do
not repeat them) backed by the persistent on-disk result cache under
``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``), keyed by the full
config/params dataclasses plus a code-version token.  Re-running a
bench file on unchanged code is therefore near-instant; set
``REPRO_NO_CACHE=1`` to force fresh simulations.  Bench files that run
whole grids go through :func:`grid`, which fans cache misses out over
``$REPRO_JOBS`` worker processes (default: serial).

Set the environment variable ``REPRO_BENCH_SCALE`` to change the
instruction scale (default: the calibrated ``2e-4``).

With ``$REPRO_PERF_DIR`` set, every cell a bench run actually executes
(cache hits excluded) is appended to the performance ledger with
context ``"bench"`` — see ``docs/OBSERVABILITY.md`` and
``repro perf report``; ``make bench-smoke`` uses this to emit
``BENCH_smoke.json``.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro import MachineConfig, SimParams
from repro.obs.fidelity import claim_band as _registry_claim_band
from repro.sim.executor import (
    SweepCell,
    config_fingerprint,
    default_jobs,
    run_cells,
)
from repro.sim.results import SimResult
from repro.workloads.benchmarks import build_benchmark
from repro.workloads.program import Program

BENCH_ORDER = (
    "175.vpr",
    "164.gzip",
    "181.mcf",
    "197.parser",
    "183.equake",
    "177.mesa",
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "2e-4"))
SEED = 2003

_params = SimParams(seed=SEED, scale=SCALE)
_programs: Dict[str, Program] = {}
_results: Dict[Tuple[str, str], SimResult] = {}


_bands: Dict[str, Tuple[Optional[float], Optional[float]]] = {}


def params() -> SimParams:
    """The SimParams all bench targets share."""
    return _params


def claim_band(claim_id: str) -> Tuple[Optional[float], Optional[float]]:
    """Memoized ``[lo, hi]`` tolerance band from ``benchmarks/claims.json``.

    Bench files read their numeric thresholds from the claim registry —
    the same bands ``repro fidelity run`` scores and ``repro fidelity
    check`` gates on — so a band can never drift between the bench
    suite and the fidelity observatory.  ``None`` means unbounded on
    that side.
    """
    if claim_id not in _bands:
        _bands[claim_id] = _registry_claim_band(claim_id)
    return _bands[claim_id]


def program(bench: str) -> Program:
    """Memoized benchmark model build."""
    if bench not in _programs:
        _programs[bench] = build_benchmark(bench, SCALE)
    return _programs[bench]


def config_key(cfg: MachineConfig) -> str:
    """A stable identity for memoization across bench files.

    Derived from the *full* frozen configuration dataclass (the same
    canonical hashing the persistent result cache uses), so two configs
    differing in any knob — L2 latency, block sizes, memory ports,
    stream-prefetcher parameters — can never alias to one memo entry.
    """
    return config_fingerprint(cfg)


def run(bench: str, cfg: MachineConfig) -> SimResult:
    """Memoized, disk-cached simulation of one (benchmark, config) pair."""
    key = (bench, config_key(cfg))
    if key not in _results:
        outcome = run_cells(
            [SweepCell(bench, cfg.name, cfg, _params)], perf_context="bench"
        )
        _results[key] = outcome.results[(bench, cfg.name)]
    return _results[key]


def grid(
    benchmarks: Iterable[str], configs: Mapping[str, MachineConfig]
) -> Dict[Tuple[str, str], SimResult]:
    """Resolve a whole benchmark × configuration grid in one call.

    Cache misses fan out over ``$REPRO_JOBS`` worker processes; every
    cell also lands in the per-process memo so later :func:`run` calls
    for the same pairs are free.  Returns a ``(benchmark, label)``-keyed
    grid exactly like :func:`repro.sim.sweep.run_grid`.
    """
    cells = [
        SweepCell(bench, label, cfg, _params)
        for bench in benchmarks
        for label, cfg in configs.items()
    ]
    outcome = run_cells(cells, jobs=default_jobs(), perf_context="bench")
    for cell in cells:
        _results[(cell.benchmark, config_key(cell.config))] = outcome.results[
            cell.grid_key
        ]
    return outcome.results


class ShapeChecks:
    """Collects shape assertions and reports them uniformly."""

    def __init__(self, figure: str) -> None:
        self.figure = figure
        self.failures = []
        self.lines = []

    def check(self, description: str, ok: bool, detail: str = "") -> None:
        mark = "PASS" if ok else "FAIL"
        line = f"  [{mark}] {description}" + (f"  ({detail})" if detail else "")
        self.lines.append(line)
        if not ok:
            self.failures.append(description)

    def report(self) -> None:
        print(f"\nShape checks — {self.figure}:")
        for line in self.lines:
            print(line)

    def assert_all(self, tolerate: int = 0) -> None:
        """Fail the bench if more than ``tolerate`` checks failed.

        With ``REPRO_BENCH_SMOKE=1`` the checks are reported but never
        asserted: smoke runs exercise the sweep machinery at scales far
        below the calibration point, where the figure shapes need not
        (and do not) hold.
        """
        self.report()
        if os.environ.get("REPRO_BENCH_SMOKE", "") in ("1", "true", "yes"):
            print(f"  (smoke mode: {len(self.failures)} failure(s) not asserted)")
            return
        assert len(self.failures) <= tolerate, (
            f"{self.figure}: {len(self.failures)} shape check(s) failed: "
            f"{self.failures}"
        )


def run_once(benchmark_fixture, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark_fixture.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
