"""Shared machinery for the figure-reproduction bench targets.

Each ``bench_*`` file regenerates one table or figure from the paper's
evaluation section: it runs the required (benchmark × configuration)
grid, prints the same rows/series the paper reports, and asserts the
*shape* expectations listed in DESIGN.md §5 (who wins, roughly by how
much, where crossovers fall).  Absolute cycle counts are not expected to
match the authors' testbed.

Simulation results are memoized per process so that figures sharing
runs (e.g. Figures 9 and 10) do not repeat them.  Set the environment
variable ``REPRO_BENCH_SCALE`` to change the instruction scale
(default: the calibrated ``2e-4``).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro import MachineConfig, SimParams, build_benchmark, run_program
from repro.sim.results import SimResult
from repro.workloads.program import Program

BENCH_ORDER = (
    "175.vpr",
    "164.gzip",
    "181.mcf",
    "197.parser",
    "183.equake",
    "177.mesa",
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "2e-4"))
SEED = 2003

_params = SimParams(seed=SEED, scale=SCALE)
_programs: Dict[str, Program] = {}
_results: Dict[Tuple[str, str], SimResult] = {}


def params() -> SimParams:
    """The SimParams all bench targets share."""
    return _params


def program(bench: str) -> Program:
    """Memoized benchmark model build."""
    if bench not in _programs:
        _programs[bench] = build_benchmark(bench, SCALE)
    return _programs[bench]


def config_key(cfg: MachineConfig) -> str:
    """A stable identity for memoization across bench files."""
    tu = cfg.tu
    return (
        f"{cfg.name}|tus={cfg.n_thread_units}|iw={tu.issue_width}"
        f"|rob={tu.rob_size}"
        f"|l1={tu.l1d.size}/{tu.l1d.assoc}/{tu.l1d.block_size}"
        f"|side={tu.sidecar.kind.value}:{tu.sidecar.entries}"
        f"|bp={tu.branch.kind}:{tu.branch.table_bits}"
        f"|l2={cfg.mem.l2.size}/{cfg.mem.l2.assoc}"
        f"|mem={cfg.mem.memory_latency}"
    )


def run(bench: str, cfg: MachineConfig) -> SimResult:
    """Memoized simulation of one (benchmark, configuration) pair."""
    key = (bench, config_key(cfg))
    if key not in _results:
        _results[key] = run_program(program(bench), cfg, _params)
    return _results[key]


class ShapeChecks:
    """Collects shape assertions and reports them uniformly."""

    def __init__(self, figure: str) -> None:
        self.figure = figure
        self.failures = []
        self.lines = []

    def check(self, description: str, ok: bool, detail: str = "") -> None:
        mark = "PASS" if ok else "FAIL"
        line = f"  [{mark}] {description}" + (f"  ({detail})" if detail else "")
        self.lines.append(line)
        if not ok:
            self.failures.append(description)

    def report(self) -> None:
        print(f"\nShape checks — {self.figure}:")
        for line in self.lines:
            print(line)

    def assert_all(self, tolerate: int = 0) -> None:
        """Fail the bench if more than ``tolerate`` checks failed."""
        self.report()
        assert len(self.failures) <= tolerate, (
            f"{self.figure}: {len(self.failures)} shape check(s) failed: "
            f"{self.failures}"
        )


def run_once(benchmark_fixture, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark_fixture.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
