"""Tables 1–3: workload metadata and machine design points.

These tables parameterize the study rather than report results; the
bench regenerates them from the library's own data structures so any
drift between code and paper is caught.
"""

from __future__ import annotations

from repro import benchmark_infos, table3_config
from repro.sim.tables import TextTable
from repro.sta.configs import TABLE3_ROWS

from _common import ShapeChecks, run_once


def test_table1_transformations(benchmark):
    def build():
        t = TextTable(
            "Table 1 — transformations used in the manual parallelization",
            ["benchmark", "transformations"],
        )
        for info in benchmark_infos():
            t.add_row([info.name, ", ".join(info.transformations)])
        return t

    table = run_once(benchmark, build)
    print()
    print(table)
    checks = ShapeChecks("Table 1")
    infos = benchmark_infos()
    checks.check(
        "every benchmark lists at least one transformation",
        all(info.transformations for info in infos),
    )
    checks.check(
        "transformations drawn from the paper's three",
        all(
            t in (
                "loop coalescing",
                "loop unrolling",
                "statement reordering to increase overlap",
            )
            for info in infos
            for t in info.transformations
        ),
    )
    checks.assert_all()


def test_table2_benchmarks(benchmark):
    def build():
        t = TextTable(
            "Table 2 — dynamic instruction counts and parallel fractions",
            ["benchmark", "suite", "input set", "whole (M)", "targeted (M)",
             "fraction"],
        )
        for info in benchmark_infos():
            t.add_row([
                info.name, info.suite, info.input_set,
                f"{info.whole_minstr:.1f}", f"{info.targeted_minstr:.1f}",
                f"{info.fraction_parallelized * 100:.1f}%",
            ])
        return t

    table = run_once(benchmark, build)
    print()
    print(table)
    checks = ShapeChecks("Table 2")
    by_name = {i.name: i for i in benchmark_infos()}
    checks.check(
        "181.mcf has the largest parallel fraction (36.1%)",
        max(by_name, key=lambda n: by_name[n].fraction_parallelized) == "181.mcf",
        f"mcf = {by_name['181.mcf'].fraction_parallelized:.1%}",
    )
    checks.check(
        "175.vpr has the smallest parallel fraction (8.6%)",
        min(by_name, key=lambda n: by_name[n].fraction_parallelized) == "175.vpr",
    )
    checks.check(
        "paper's exact Table 2 values carried",
        abs(by_name["164.gzip"].whole_minstr - 1550.7) < 1e-6
        and abs(by_name["183.equake"].targeted_minstr - 152.6) < 1e-6,
    )
    checks.assert_all()


def test_table3_design_points(benchmark):
    def build():
        t = TextTable(
            "Table 3 — per-TU parameters (total parallelism fixed at 16)",
            ["#TUs", "issue", "ROB", "INT ALU", "INT MULT", "FP ALU",
             "FP MULT", "L1D"],
        )
        for row in TABLE3_ROWS:
            tus, issue, rob, ia, im, fa, fm, l1 = row
            t.add_row([tus, issue, rob, ia, im, fa, fm, f"{l1}K"])
        return t

    table = run_once(benchmark, build)
    print()
    print(table)
    checks = ShapeChecks("Table 3")
    checks.check(
        "issue × TUs = 16 for every non-baseline row",
        all(tus * issue == 16 for tus, issue, *_ in TABLE3_ROWS[1:]),
    )
    checks.check(
        "total L1 capacity constant at 32K",
        all(
            table3_config(n).n_thread_units * table3_config(n).tu.l1d.size
            == 32 * 1024
            for n in (1, 2, 4, 8, 16)
        ),
    )
    checks.check(
        "configs instantiate and validate",
        all(table3_config(n).tu.issue_width > 0 for n in (1, 2, 4, 8, 16)),
    )
    checks.assert_all()
