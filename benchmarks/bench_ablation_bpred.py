"""Ablation (paper §7 future work) — branch prediction accuracy vs WEC.

Wrong-path prefetching is *fed by mispredictions*: a better predictor
means fewer wrong-path episodes and therefore less indirect
prefetching, but also fewer pipeline refills.  The paper defers "the
relationship of the branch prediction accuracy to the performance of
the WEC" to future work; this bench sweeps the predictor kind and
reports both the misprediction rate and the WEC's benefit.
"""

from __future__ import annotations

import dataclasses

from repro import named_config
from repro.analysis.speedup import suite_average_speedup_pct
from repro.common.config import BranchPredictorConfig
from repro.sim.tables import TextTable

from _common import BENCH_ORDER, ShapeChecks, run, run_once

KINDS = ("bimodal", "gshare", "twolevel", "combining")


def _with_predictor(cfg, kind):
    tu = dataclasses.replace(cfg.tu, branch=BranchPredictorConfig(kind=kind))
    return dataclasses.replace(cfg, tu=tu)


def _sweep():
    grid = {}
    for kind in KINDS:
        for bench in BENCH_ORDER:
            grid[(bench, f"orig/{kind}")] = run(
                bench, _with_predictor(named_config("orig"), kind)
            )
            grid[(bench, f"wec/{kind}")] = run(
                bench, _with_predictor(named_config("wth-wp-wec"), kind)
            )
    return grid


def test_ablation_branch_predictor(benchmark):
    grid = run_once(benchmark, _sweep)

    table = TextTable(
        "Ablation — predictor kind: mispredict rate (orig) and WEC speedup",
        ["predictor", "mispredict rate", "wrong loads (wec)", "wec speedup"],
    )
    avg = {}
    mr = {}
    wl = {}
    for kind in KINDS:
        sub = {
            (b, l): r
            for (b, l), r in grid.items()
            if l in (f"orig/{kind}", f"wec/{kind}")
        }
        avg[kind] = suite_average_speedup_pct(sub, f"orig/{kind}", f"wec/{kind}")
        mr[kind] = sum(
            grid[(b, f"orig/{kind}")].mispredicts for b in BENCH_ORDER
        ) / sum(grid[(b, f"orig/{kind}")].branches for b in BENCH_ORDER)
        wl[kind] = sum(grid[(b, f"wec/{kind}")].wrong_loads for b in BENCH_ORDER)
        table.add_row(
            [kind, f"{mr[kind]:.1%}", wl[kind], f"{avg[kind]:+.1f}%"]
        )
    print()
    print(table)

    checks = ShapeChecks("Ablation: branch predictor")
    checks.check(
        "the WEC helps under every predictor",
        all(avg[k] > 2.0 for k in KINDS),
        str({k: round(avg[k], 1) for k in KINDS}),
    )
    checks.check(
        "more mispredictions produce more wrong-path loads",
        wl[max(KINDS, key=lambda k: mr[k])] >= wl[min(KINDS, key=lambda k: mr[k])],
        str({k: (round(mr[k] * 100, 1), wl[k]) for k in KINDS}),
    )
    spread = max(avg.values()) - min(avg.values())
    checks.check(
        "the WEC benefit is robust to the predictor choice (within a "
        "few points)",
        spread < 6.0,
        f"spread {spread:.1f} points",
    )
    checks.assert_all()
