#!/usr/bin/env python
"""Profile one simulation run (hpc-parallel guide: measure first).

Prints the cProfile hot spots of a single (benchmark, configuration)
simulation, so regressions in the replay loop are visible before they
cost minutes across a figure sweep.

Usage::

    python tools/profile_run.py [benchmark] [config] [scale]
        [--seed N] [--top N] [--dump FILE] [--trace]

``--trace`` attaches a full RingBufferTracer, so the profile shows what
tracing itself costs relative to the untraced hot loop.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import time

from repro import SimParams, build_benchmark, named_config, run_program
from repro.obs.tracer import IntervalMetrics, RingBufferTracer


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("benchmark", nargs="?", default="181.mcf")
    p.add_argument("config", nargs="?", default="wth-wp-wec")
    p.add_argument("scale", nargs="?", type=float, default=2e-4)
    p.add_argument("--seed", type=int, default=2003)
    p.add_argument("--top", type=int, default=18,
                   help="rows in the cumulative-time table (default 18)")
    p.add_argument("--dump", metavar="FILE", default=None,
                   help="write raw pstats data to FILE (snakeviz-able)")
    p.add_argument("--trace", action="store_true",
                   help="attach a RingBufferTracer to measure trace overhead")
    return p


def main() -> int:
    args = build_parser().parse_args()

    params = SimParams(seed=args.seed, scale=args.scale)
    program = build_benchmark(args.benchmark, args.scale)
    cfg = named_config(args.config)
    tracer = (
        RingBufferTracer(metrics=IntervalMetrics()) if args.trace else None
    )

    t0 = time.perf_counter()
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_program(program, cfg, params, tracer=tracer)
    profiler.disable()
    wall = time.perf_counter() - t0

    traced = " (traced)" if args.trace else ""
    print(f"{args.benchmark} on {args.config}{traced}: "
          f"{result.total_cycles:.0f} simulated cycles, "
          f"{result.instructions} instructions, {wall:.2f}s wall")
    print(f"simulation rate: {result.instructions / wall / 1e3:.0f} "
          f"kinstr/s (timed instructions only)\n")
    stats = pstats.Stats(profiler)
    if args.dump:
        stats.dump_stats(args.dump)
        print(f"raw profile written to {args.dump}\n")
    stats.sort_stats("cumulative").print_stats(args.top)
    print("--- by self time ---")
    stats.sort_stats("tottime").print_stats(max(args.top // 2, 6))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
