#!/usr/bin/env python
"""Profile one simulation run (hpc-parallel guide: measure first).

Prints the cProfile hot spots of a single (benchmark, configuration)
simulation, so regressions in the replay loop are visible before they
cost minutes across a figure sweep.

Usage: python tools/profile_run.py [benchmark] [config] [scale]
"""

from __future__ import annotations

import cProfile
import pstats
import sys
import time

from repro import SimParams, build_benchmark, named_config, run_program


def main() -> int:
    bench = sys.argv[1] if len(sys.argv) > 1 else "181.mcf"
    config = sys.argv[2] if len(sys.argv) > 2 else "wth-wp-wec"
    scale = float(sys.argv[3]) if len(sys.argv) > 3 else 2e-4

    params = SimParams(seed=2003, scale=scale)
    program = build_benchmark(bench, scale)
    cfg = named_config(config)

    t0 = time.perf_counter()
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_program(program, cfg, params)
    profiler.disable()
    wall = time.perf_counter() - t0

    print(f"{bench} on {config}: {result.total_cycles:.0f} simulated cycles, "
          f"{result.instructions} instructions, {wall:.2f}s wall")
    print(f"simulation rate: {result.instructions / wall / 1e3:.0f} "
          f"kinstr/s (timed instructions only)\n")
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(18)
    print("--- by self time ---")
    stats.sort_stats("tottime").print_stats(12)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
