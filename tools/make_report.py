#!/usr/bin/env python
"""Generate a machine-written reproduction report.

Runs the core experiment grid (Figure 11 + Figure 17 + the WEC channel
ablation) and writes ``reproduction_report.md`` using the
:mod:`repro.analysis.report` machinery — a regenerable companion to the
hand-annotated EXPERIMENTS.md.

Usage: python tools/make_report.py [scale] [output.md]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro import CONFIG_NAMES, SimParams, named_config, run_simulation
from repro.analysis.report import (
    ExperimentRecord,
    claims_to_record,
    render_report,
)
from repro.analysis.speedup import suite_average_speedup_pct
from repro.common.stats import arithmetic_mean
from repro.obs.attrib import AttributionCollector
from repro.obs.fidelity import evaluate_claims, load_claims
from repro.obs.tracer import IntervalMetrics
from repro.sim.executor import default_jobs
from repro.sim.sweep import run_grid

BENCHES = ("175.vpr", "164.gzip", "181.mcf", "197.parser",
           "183.equake", "177.mesa")

REPO_ROOT = Path(__file__).resolve().parents[1]


def fidelity_section() -> str:
    """The committed campaign summary — one canonical report entry point.

    Embeds the severity × verdict counts from the committed
    ``benchmarks/FIDELITY_baseline.json`` and links the full per-claim
    tables in ``docs/FIDELITY.md`` rather than re-running the campaign
    here (that is `repro fidelity run`'s job).
    """
    from repro.obs.fidelity import STATUSES, load_fidelity_export

    lines = ["## Fidelity observatory", ""]
    path = REPO_ROOT / "benchmarks" / "FIDELITY_baseline.json"
    if not path.is_file():
        lines.append(
            "No committed campaign baseline yet — generate one with "
            "`repro fidelity run --out benchmarks/FIDELITY_baseline.json "
            "--md docs/FIDELITY.md`.")
        return "\n".join(lines) + "\n"
    doc = load_fidelity_export(path)
    params = doc.get("params", {})
    summary = doc.get("summary", {})
    lines.append(
        f"Committed campaign baseline: `{path.name}` — scale "
        f"`{params.get('scale')}`, seed `{params.get('seed')}`, "
        f"{doc.get('n_cells', 0)} grid cells, "
        f"{len(doc.get('claims', []))} claims scored.")
    lines.append("")
    lines.append("| severity | pass | fail | skipped |")
    lines.append("|---|--:|--:|--:|")
    for severity in ("gate", "track"):
        counts = summary.get(severity, {})
        lines.append(
            f"| {severity} | " + " | ".join(
                str(counts.get(status, 0)) for status in STATUSES) + " |")
    lines.append("")
    lines.append(
        "Per-claim measured-vs-paper tables: `docs/FIDELITY.md`; drift "
        "gate: `repro fidelity check benchmarks/FIDELITY_baseline.json`.")
    return "\n".join(lines) + "\n"


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 2e-4
    out_path = sys.argv[2] if len(sys.argv) > 2 else "reproduction_report.md"
    params = SimParams(seed=2003, scale=scale)

    t0 = time.perf_counter()
    configs = {name: named_config(name) for name in CONFIG_NAMES}
    configs.update({
        "wp-wec": named_config("wp-wec"),
        "wth-wec": named_config("wth-wec"),
        "wec-victim-only": named_config("wec-victim-only"),
    })
    grid = run_grid(configs, benchmarks=BENCHES, params=params,
                    jobs=default_jobs())
    records = []

    # -- Figure 11 (scored from the claim registry) --------------------
    # The bands live in benchmarks/claims.json — the same registry
    # `repro fidelity run` gates on — so this report can never drift
    # from the fidelity observatory's thresholds.
    fig11_claims = [
        item.to_dict()
        for item in evaluate_claims(load_claims(), grid, ["tables", "fig11"])
        if item.claim.id.startswith("fig11.")
    ]
    records.append(claims_to_record(
        fig11_claims,
        exp_id="Figure 11",
        title="Relative speedups of all configurations (8 TUs)",
        workload=f"6 benchmark models, scale={scale:g}, seed={params.seed}",
        bench_target="pytest benchmarks/bench_fig11_configs.py --benchmark-only",
        notes="Scored from `benchmarks/claims.json`; the full campaign "
              "(fig08–fig17 + tables) is `repro fidelity run`, and the "
              "committed measured-vs-paper report is `docs/FIDELITY.md`.",
    ))

    # -- Figure 17 -----------------------------------------------------
    fig17 = ExperimentRecord(
        exp_id="Figure 17",
        title="L1 traffic increase and miss-count reduction",
        workload="wth-wp-wec vs orig, 8 TUs",
        bench_target="pytest benchmarks/bench_fig17_traffic.py --benchmark-only",
    )
    traffic = {
        b: grid[(b, "wth-wp-wec")].traffic_increase_pct_vs(grid[(b, "orig")])
        for b in BENCHES
    }
    missred = {
        b: grid[(b, "wth-wp-wec")].miss_reduction_pct_vs(grid[(b, "orig")])
        for b in BENCHES
    }
    fig17.add_check(
        "every benchmark pays traffic and gains misses back",
        "all positive",
        f"traffic avg +{arithmetic_mean(list(traffic.values())):.1f}%, "
        f"missred avg -{arithmetic_mean(list(missred.values())):.1f}%",
        all(v > 0 for v in traffic.values()) and all(v > 0 for v in missred.values()),
    )
    fig17.add_check(
        "mesa has the largest miss reduction, mcf the smallest",
        "mesa max / mcf min",
        f"max={max(missred, key=missred.get)}, min={min(missred, key=missred.get)}",
        max(missred, key=missred.get) == "177.mesa"
        and min(missred, key=missred.get) == "181.mcf",
    )
    records.append(fig17)

    # -- Channel ablation ------------------------------------------------
    chan = ExperimentRecord(
        exp_id="Ablation",
        title="WEC benefit decomposition by channel",
        workload="wp-wec / wth-wec / wec-victim-only vs orig, 8 TUs",
        bench_target="pytest benchmarks/bench_ablation_wec_channels.py --benchmark-only",
    )
    ch = {c: suite_average_speedup_pct(grid, "orig", c)
          for c in ("wp-wec", "wth-wec", "wec-victim-only", "wth-wp-wec")}
    chan.add_check(
        "wrong-path is the dominant channel",
        "wp > wth > victim-only",
        str({k: round(v, 1) for k, v in ch.items()}),
        ch["wp-wec"] > ch["wth-wec"] > ch["wec-victim-only"],
    )
    records.append(chan)

    # -- Interval metrics (repro.obs) ------------------------------------
    obs = ExperimentRecord(
        exp_id="Intervals",
        title="Per-window metric series from a traced run",
        workload="181.mcf on wth-wp-wec, IntervalMetrics(window=4096)",
        bench_target="repro trace 181.mcf wth-wp-wec --out trace.json",
    )
    traced = run_simulation(
        "181.mcf", named_config("wth-wp-wec"), params,
        tracer=IntervalMetrics(window=4096.0),
    )
    series = traced.interval_series or {}
    n_win = len(series.get("window_start", []))
    obs.add_check(
        "traced run yields a non-empty interval series",
        "> 10 windows", f"{n_win} windows", n_win > 10,
    )
    # Windowed IPC should integrate back to the aggregate IPC.  Windows
    # overlap across TUs and the last one is partial, so the tolerance
    # is loose — this guards unit errors (per-window vs per-cycle), not
    # precision.
    mean_ipc = arithmetic_mean(series["ipc"]) if n_win else 0.0
    obs.add_check(
        "mean windowed IPC tracks aggregate IPC",
        f"≈ {traced.ipc:.2f}", f"{mean_ipc:.2f}",
        n_win > 0 and 0.5 * traced.ipc < mean_ipc < 2.0 * traced.ipc,
    )
    obs.add_check(
        "the WEC absorbs misses in some window",
        "max wec_hit_rate > 0",
        f"{max(series['wec_hit_rate']) if n_win else 0.0:.2f}",
        n_win > 0 and max(series["wec_hit_rate"]) > 0.0,
    )
    records.append(obs)

    # -- Wrong-execution attribution (repro.obs.attrib) -------------------
    attr = ExperimentRecord(
        exp_id="Attribution",
        title="Fill provenance and pollution attribution",
        workload="181.mcf, wth-wp-wec vs wth-wp, AttributionCollector",
        bench_target="repro explain 181.mcf wth-wp-wec --vs wth-wp",
    )
    wec_att = run_simulation(
        "181.mcf", named_config("wth-wp-wec"), params,
        attrib=AttributionCollector(),
    ).attribution
    plain_att = run_simulation(
        "181.mcf", named_config("wth-wp"), params,
        attrib=AttributionCollector(),
    ).attribution
    attr.add_check(
        "wrong-execution fills achieve useful coverage on both sides",
        "> 0 both",
        f"wec {wec_att['metrics']['wrong_coverage']:.1%}, "
        f"plain {plain_att['metrics']['wrong_coverage']:.1%}",
        wec_att["metrics"]["wrong_coverage"] > 0
        and plain_att["metrics"]["wrong_coverage"] > 0,
    )
    attr.add_check(
        "the WEC absorbs wrong-execution pollution (lower polluting MPKI)",
        "wec < plain",
        f"wec {wec_att['metrics']['wrong_polluting_mpki']:.2f}, "
        f"plain {plain_att['metrics']['wrong_polluting_mpki']:.2f}",
        wec_att["metrics"]["wrong_polluting_mpki"]
        < plain_att["metrics"]["wrong_polluting_mpki"],
    )
    # Demand fills are counted but not lifetime-tracked; conservation
    # is a property of the speculative sources.
    balanced = all(
        src["fills"] == src["useful"] + src["late"] + src["unused"]
        + src["polluting"] + src["open"]
        for att in (wec_att, plain_att)
        for name, src in att["per_source"].items()
        if name != "demand"
    )
    attr.add_check(
        "every speculative fill's lifetime is accounted for (conservation)",
        "fills = useful+late+unused+polluting+open",
        "balanced" if balanced else "UNBALANCED",
        balanced,
    )
    records.append(attr)

    header = (
        f"# Reproduction report\n\n"
        f"Generated by `tools/make_report.py` — scale {scale:g}, seed "
        f"{params.seed}, {time.perf_counter() - t0:.0f}s of simulation."
    )
    text = render_report(records, header=header) + "\n" + fidelity_section()
    with open(out_path, "w") as fh:
        fh.write(text + "\n")
    print(text)
    print(f"\nwritten to {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
