"""End-to-end smoke of the sweep service (``make serve-smoke``).

Boots a real ``repro serve`` subprocess (2 workers, fast engine, its own
scratch cache and perf ledger), then drives the service the way CI
drives the differential smoke:

1. submit the full acceptance grid — the 8-config differential ladder ×
   every Table 2 benchmark (48 cells) — and stream it to completion;
2. assert the service's results are **bit-identical** to a local,
   uncached ``run_grid`` of the same spec;
3. resubmit the identical grid and assert at least 90% of cells resolve
   from the content-addressed cache (in practice: all of them);
4. assert the perf ledger carries ``job_id``/``tenant`` provenance for
   every executed cell;
5. scrape ``GET /v1/metrics`` and assert the fleet telemetry agrees:
   per-layer dedup counts summing to both jobs' cells, a >=90% resubmit
   dedup ratio visible in the cache layer, and nonzero latency-histogram
   buckets — then write the snapshot to ``serve-metrics.json``
   (``$SERVE_SMOKE_METRICS`` overrides the path; CI uploads it as an
   artifact).

Exits non-zero with a named failure on any violation.  Wire/endpoint
reference: ``docs/SERVICE.md``.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cli import DIFF_LADDER  # noqa: E402
from repro.common.config import SimParams  # noqa: E402
from repro.obs.telemetry import (  # noqa: E402
    M_CELL_LATENCY,
    M_CELLS_TOTAL,
    snapshot_hist,
    snapshot_value,
)
from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.wire import SweepSpec  # noqa: E402
from repro.sim.sweep import run_grid  # noqa: E402
from repro.sta.configs import named_config  # noqa: E402
from repro.workloads.benchmarks import BENCHMARK_NAMES  # noqa: E402

SCALE = 2e-5
SEED = 2003
TENANT = "serve-smoke"
MIN_RESUBMIT_HIT_RATE = 0.90


def fail(message: str) -> None:
    print(f"serve-smoke: FAIL — {message}", file=sys.stderr)
    raise SystemExit(1)


def start_server(scratch: Path) -> "tuple[subprocess.Popen, int]":
    env = dict(os.environ)
    env.update(
        PYTHONPATH=str(REPO / "src"),
        REPRO_CACHE_DIR=str(scratch / "cache"),
        REPRO_PERF_DIR=str(scratch / "perf"),
    )
    env.pop("REPRO_SANITIZE", None)  # no observer hooks on the fast engine
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve",
         "--port", "0", "--workers", "2", "--engine", "fast",
         "--cache-dir", str(scratch / "cache")],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    deadline = time.time() + 60
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            fail(f"server exited during startup (rc={proc.poll()})")
        match = re.search(r"http://[\d.]+:(\d+)", line)
        if match:
            return proc, int(match.group(1))
    fail("server did not report its port within 60s")
    raise AssertionError  # unreachable


def main() -> int:
    scratch = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    spec = SweepSpec(
        benchmarks=tuple(BENCHMARK_NAMES),
        configs=tuple(
            (name, named_config(name)) for name in DIFF_LADDER.split(",")
        ),
        params=SimParams(seed=SEED, scale=SCALE),
        engine="fast",
        tenant=TENANT,
    )
    n_cells = len(spec.benchmarks) * len(spec.configs)
    print(f"serve-smoke: {n_cells}-cell grid "
          f"({len(spec.configs)} configs x {len(spec.benchmarks)} "
          f"benchmarks), scale {SCALE:g}, scratch {scratch}")

    proc, port = start_server(scratch)
    try:
        client = ServeClient(port=port)

        t0 = time.perf_counter()
        first = client.submit(spec)
        status = client.wait(first["job_id"])
        wall = time.perf_counter() - t0
        if status["state"] != "done":
            fail(f"job {first['job_id']} ended {status['state']!r}")
        if status["executed"] != n_cells or status["cache_hits"] != 0:
            fail(f"cold run expected {n_cells} executed/0 cached, got "
                 f"{status['executed']}/{status['cache_hits']}")
        print(f"serve-smoke: cold job {first['job_id']} done in {wall:.1f}s "
              f"({status['executed']} executed)")

        remote = client.result_grid(first["job_id"])
        local = run_grid(dict(spec.configs), list(spec.benchmarks),
                         spec.params, cache=False, engine="fast")
        if set(remote) != set(local):
            fail("service grid keys differ from local run_grid")
        diverged = [key for key in local
                    if remote[key].to_dict() != local[key].to_dict()]
        if diverged:
            fail(f"{len(diverged)} cell(s) not bit-identical to local "
                 f"run_grid, e.g. {diverged[0]}")
        print(f"serve-smoke: all {n_cells} cells bit-identical to local "
              f"run_grid")

        second = client.submit(spec)
        resubmit = client.wait(second["job_id"])
        hit_rate = resubmit["cache_hits"] / resubmit["n_cells"]
        if hit_rate < MIN_RESUBMIT_HIT_RATE:
            fail(f"resubmit hit rate {hit_rate:.0%} < "
                 f"{MIN_RESUBMIT_HIT_RATE:.0%} "
                 f"({resubmit['cache_hits']}/{resubmit['n_cells']})")
        print(f"serve-smoke: resubmit {second['job_id']} served "
              f"{hit_rate:.0%} from cache")

        ledger_path = scratch / "perf" / "ledger.jsonl"
        records = [json.loads(line)
                   for line in ledger_path.read_text().splitlines()]
        if len(records) != n_cells:
            fail(f"perf ledger has {len(records)} records, expected "
                 f"{n_cells} (one per executed cell)")
        bad = [r for r in records
               if r.get("provenance", {}).get("job_id") != first["job_id"]
               or r.get("provenance", {}).get("tenant") != TENANT]
        if bad:
            fail(f"{len(bad)} ledger record(s) missing job/tenant "
                 f"provenance")
        print(f"serve-smoke: ledger has {len(records)} records, every one "
              f"stamped job_id={first['job_id']} tenant={TENANT}")

        snap = client.metrics()
        by_layer = {
            layer: snapshot_value(snap, M_CELLS_TOTAL, {"source": layer})
            for layer in ("cache", "dedup", "run", "failed")
        }
        if sum(by_layer.values()) != 2 * n_cells:
            fail(f"/v1/metrics per-layer cell counts {by_layer} do not sum "
                 f"to both jobs' {2 * n_cells} cells")
        metrics_hit_rate = (by_layer["cache"] + by_layer["dedup"]) / n_cells
        if metrics_hit_rate < MIN_RESUBMIT_HIT_RATE:
            fail(f"/v1/metrics dedup ratio {metrics_hit_rate:.0%} < "
                 f"{MIN_RESUBMIT_HIT_RATE:.0%} (layers: {by_layer})")
        lat_count, lat_sum = snapshot_hist(snap, M_CELL_LATENCY)
        if lat_count != n_cells or lat_sum <= 0.0:
            fail(f"latency histogram recorded {lat_count} cells "
                 f"(sum {lat_sum:.3f}s), expected {n_cells} with "
                 f"nonzero buckets")
        prom = client.metrics_text()
        if f'{M_CELLS_TOTAL}{{source="run"}} {n_cells:d}' not in prom:
            fail("Prometheus text exposition missing the run-layer count")
        metrics_out = Path(os.environ.get("SERVE_SMOKE_METRICS",
                                          REPO / "serve-metrics.json"))
        metrics_out.write_text(json.dumps(snap, indent=2, sort_keys=True))
        print(f"serve-smoke: /v1/metrics layers {by_layer} "
              f"({metrics_hit_rate:.0%} resubmit dedup), latency histogram "
              f"{lat_count} cells / {lat_sum:.2f}s — snapshot {metrics_out}")

        client.shutdown()
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        shutil.rmtree(scratch, ignore_errors=True)
    print("serve-smoke: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
