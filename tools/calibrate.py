#!/usr/bin/env python
"""Calibration dashboard: Figure 11 + Figure 17 + core diagnostics.

Run while tuning the benchmark models.  Prints, per benchmark:

* the Figure 11 configuration speedups (8 TUs, vs ``orig``),
* Figure 17's traffic increase / miss reduction,
* diagnostics: IPC, mispredict rate, L1 miss rate, L2 miss rate.

Paper targets are printed alongside for eyeballing.

Usage: python tools/calibrate.py [scale] [--jobs N] [--no-cache]
                                 [--manifest PATH]

The grid resolves through the persistent result cache
($REPRO_CACHE_DIR, default ~/.cache/repro), so re-running after a
model tweak only re-simulates what the tweak invalidated; --jobs fans
cache misses out over worker processes.
"""

from __future__ import annotations

import argparse
import time

from repro import CONFIG_NAMES, SimParams, named_config
from repro.analysis.speedup import suite_average_speedup_pct
from repro.sim.executor import SweepCell, default_jobs, run_cells

PAPER_FIG11 = {
    # benchmark: (wec, nlp) approximate read-offs from Figure 11
    "175.vpr": (5.0, 3.0),
    "164.gzip": (8.0, 4.5),
    "181.mcf": (18.5, 3.5),
    "197.parser": (7.0, 4.0),
    "183.equake": (13.0, 8.0),
    "177.mesa": (9.0, 7.5),
    "average": (9.7, 5.5),
}

PAPER_FIG17 = {
    # benchmark: (traffic increase %, miss reduction %)
    "175.vpr": (30.0, 55.0),
    "164.gzip": (12.0, 60.0),
    "181.mcf": (15.0, 42.0),
    "197.parser": (12.0, 50.0),
    "183.equake": (10.0, 55.0),
    "177.mesa": (8.0, 73.0),
    "average": (14.0, 57.0),
}

BENCH_ORDER = ["175.vpr", "164.gzip", "181.mcf", "197.parser", "183.equake", "177.mesa"]


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("scale", nargs="?", type=float, default=1e-4)
    ap.add_argument("--jobs", type=int, default=default_jobs())
    ap.add_argument("--no-cache", action="store_true")
    ap.add_argument("--manifest", metavar="PATH", default=None)
    args = ap.parse_args()
    params = SimParams(seed=2003, scale=args.scale)
    t0 = time.perf_counter()
    configs = {name: named_config(name) for name in CONFIG_NAMES}
    cells = [
        SweepCell(bench, label, cfg, params)
        for bench in BENCH_ORDER
        for label, cfg in configs.items()
    ]
    outcome = run_cells(
        cells,
        jobs=args.jobs,
        cache=False if args.no_cache else None,
        manifest_path=args.manifest,
    )
    grid = outcome.results

    hdr = f"{'bench':12s}" + "".join(f"{c:>11s}" for c in CONFIG_NAMES if c != "orig")
    print(hdr + f"{'[wec/nlp paper]':>18s}")
    for b in BENCH_ORDER:
        base = grid[(b, "orig")]
        row = f"{b:12s}"
        for c in CONFIG_NAMES:
            if c == "orig":
                continue
            row += f"{grid[(b, c)].relative_speedup_pct_vs(base):+10.1f}%"
        pw, pn = PAPER_FIG11[b]
        print(row + f"   [{pw:+.1f}/{pn:+.1f}]")
    row = f"{'average':12s}"
    for c in CONFIG_NAMES:
        if c == "orig":
            continue
        row += f"{suite_average_speedup_pct(grid, 'orig', c):+10.1f}%"
    pw, pn = PAPER_FIG11["average"]
    print(row + f"   [{pw:+.1f}/{pn:+.1f}]")

    print()
    print(f"{'bench':12s}{'traffic':>9s}{'missred':>9s}{'ipc':>7s}{'mr%':>7s}"
          f"{'l1mr%':>8s}{'l2mr%':>8s}{'wloads':>8s}{'instr':>9s}   [paper tr/mred]")
    for b in BENCH_ORDER:
        base = grid[(b, "orig")]
        wec = grid[(b, "wth-wp-wec")]
        tr = wec.traffic_increase_pct_vs(base)
        mred = wec.miss_reduction_pct_vs(base)
        correct = base.l1_traffic  # orig has no wrong loads
        l1mr = base.l1_misses / max(1, correct) * 100
        l2mr = base.l2_misses / max(1, base.l2_accesses) * 100
        pt, pm = PAPER_FIG17[b]
        print(f"{b:12s}{tr:+8.1f}%{mred:+8.1f}%{base.ipc:7.2f}"
              f"{base.mispredict_rate*100:6.1f}%{l1mr:7.2f}%{l2mr:7.1f}%"
              f"{wec.wrong_loads:8d}{base.instructions:9d}"
              f"   [{pt:+.0f}/{pm:+.0f}]")
    print(f"\n{time.perf_counter()-t0:.1f}s, scale={params.scale} "
          f"[{outcome.stats.summary()}]")


if __name__ == "__main__":
    main()
