"""The sweep service: submit grids to a long-running, deduplicating server.

``repro serve`` runs :class:`~repro.serve.server.ServeServer` — an
asyncio HTTP/JSON job queue that resolves sweep cells through the
executor's content-addressed result cache, dedups identical in-flight
cells across jobs, and shards cache misses over persistent worker
subprocesses running the fast (or oracle) engine.  ``repro submit`` /
``repro jobs`` drive it through :class:`~repro.serve.client.ServeClient`.

Everything is stdlib: the wire layer (:mod:`repro.serve.wire`) encodes
the same frozen config dataclasses the executor fingerprints, so a grid
run through the service is bit-identical to a local ``run_grid`` and
hits the same cache entries.  Protocol reference: ``docs/SERVICE.md``.
"""

from .client import ServeClient
from .queue import Job, JobQueue
from .server import ServeServer, ServerThread
from .wire import SERVE_SCHEMA_VERSION, SweepSpec

__all__ = [
    "SERVE_SCHEMA_VERSION",
    "Job",
    "JobQueue",
    "ServeClient",
    "ServeServer",
    "ServerThread",
    "SweepSpec",
]
