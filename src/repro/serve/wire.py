"""Wire schema of the sweep service: specs, cell requests, events.

Everything that crosses a process or network boundary in
:mod:`repro.serve` is a JSON document described here (full field tables
in ``docs/SERVICE.md``):

* **Sweep specs** (``POST /v1/jobs`` bodies) carry the *same frozen
  config/params dataclasses the executor fingerprints* — encoded with
  the executor's canonical form (class name + every declared field,
  enums by value) and decoded back into real ``MachineConfig`` /
  ``SimParams`` instances here.  Because the wire form *is* the
  canonical form, a decoded spec fingerprints identically to the
  client's original objects, which is what makes server-side
  deduplication through the content-addressed result cache sound.

* **Cell requests/responses** are the worker protocol: the server ships
  one request per grid cell to a ``repro.serve.worker`` subprocess over
  stdin/stdout JSONL; :func:`repro.sim.executor.run_cell_request` is
  the runner behind it.

Every malformed payload raises :class:`~repro.common.errors.WireError`
naming the offending field; the server maps these to structured 4xx
responses rather than dying or answering 500.
"""

from __future__ import annotations

import dataclasses
import enum
import typing
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..common.config import (
    BranchPredictorConfig,
    CacheConfig,
    FuncUnitMix,
    MachineConfig,
    MemorySystemConfig,
    SidecarConfig,
    SimParams,
    ThreadUnitConfig,
    WrongExecutionConfig,
)
from ..common.errors import ConfigError, WireError
from ..sim.driver import ENGINES
from ..sim.executor import (
    CELL_WIRE_SCHEMA_VERSION,
    SweepCell,
    _canonical,
    cell_key,
)
from ..sim.sweep import grid_cells
from ..workloads.benchmarks import BENCHMARK_NAMES

__all__ = [
    "SERVE_SCHEMA_VERSION",
    "CellRequest",
    "SweepSpec",
    "decode_cell_request",
    "decode_config",
    "decode_params",
    "encode_dataclass",
]

#: Version of the HTTP-facing documents (submit specs, job status,
#: event records).  Bumped on incompatible change; both sides reject
#: unknown versions with a structured error.
SERVE_SCHEMA_VERSION = 1

#: The config dataclasses allowed on the wire, by canonical class name.
#: Decoding is a closed world: any other ``__class__`` is rejected —
#: the wire layer must never be a generic unpickler.
_WIRE_CLASSES: Dict[str, type] = {
    cls.__name__: cls
    for cls in (
        BranchPredictorConfig,
        CacheConfig,
        FuncUnitMix,
        MachineConfig,
        MemorySystemConfig,
        SidecarConfig,
        SimParams,
        ThreadUnitConfig,
        WrongExecutionConfig,
    )
}

_hints_cache: Dict[type, Dict[str, object]] = {}


def encode_dataclass(obj: object) -> Dict:
    """Encode a config dataclass in the executor's canonical wire form."""
    encoded = _canonical(obj)
    if not isinstance(encoded, dict) or "__class__" not in encoded:
        raise WireError(f"not an encodable dataclass: {type(obj).__name__}")
    return encoded


def _decode_dataclass(data: object, path: str) -> object:
    if not isinstance(data, dict):
        raise WireError(f"{path}: expected an object, got {type(data).__name__}")
    cls_name = data.get("__class__")
    cls = _WIRE_CLASSES.get(cls_name)  # type: ignore[arg-type]
    if cls is None:
        raise WireError(f"{path}: unknown dataclass {cls_name!r}")
    hints = _hints_cache.get(cls)
    if hints is None:
        hints = typing.get_type_hints(cls)
        _hints_cache[cls] = hints
    declared = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - declared - {"__class__"})
    if unknown:
        raise WireError(
            f"{path}: unknown field(s) for {cls_name}: {', '.join(unknown)}"
        )
    kwargs = {}
    for name in declared:
        if name not in data:
            continue  # dataclass default applies
        value = data[name]
        hint = hints.get(name)
        child = f"{path}.{name}"
        if isinstance(value, dict) and "__class__" in value:
            kwargs[name] = _decode_dataclass(value, child)
        elif isinstance(hint, type) and issubclass(hint, enum.Enum):
            try:
                kwargs[name] = hint(value)
            except ValueError:
                raise WireError(
                    f"{child}: {value!r} is not a valid {hint.__name__}"
                ) from None
        else:
            kwargs[name] = value
    try:
        return cls(**kwargs)
    except (ConfigError, TypeError, ValueError) as exc:
        raise WireError(f"{path}: {cls_name} rejected: {exc}") from None


def decode_config(data: object, path: str = "config") -> MachineConfig:
    """Decode a canonical-form machine configuration."""
    obj = _decode_dataclass(data, path)
    if not isinstance(obj, MachineConfig):
        raise WireError(f"{path}: expected MachineConfig, got {type(obj).__name__}")
    return obj


def decode_params(data: object, path: str = "params") -> SimParams:
    """Decode canonical-form simulation parameters."""
    obj = _decode_dataclass(data, path)
    if not isinstance(obj, SimParams):
        raise WireError(f"{path}: expected SimParams, got {type(obj).__name__}")
    return obj


def _require(data: Dict, field: str, kind: type, path: str):
    if field not in data:
        raise WireError(f"{path}: missing required field {field!r}")
    value = data[field]
    if kind is float and isinstance(value, int):
        value = float(value)
    if not isinstance(value, kind) or (kind is not bool and isinstance(value, bool)):
        raise WireError(
            f"{path}.{field}: expected {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


# ---------------------------------------------------------------------------
# Sweep specs (submit payloads)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepSpec:
    """One submitted sweep: a (benchmark × config) grid plus knobs.

    ``configs`` preserves submission order — the grid resolves in the
    exact cell order :func:`repro.sim.sweep.grid_cells` would produce
    locally, which keeps service results and ``run_grid`` output
    comparable cell by cell.
    """

    benchmarks: Tuple[str, ...]
    configs: Tuple[Tuple[str, MachineConfig], ...]
    params: SimParams
    #: Engine for executed cells; ``None`` = the server's default.
    engine: Optional[str] = None
    #: Provenance tenant stamped on every ledger record of this job.
    tenant: str = "default"

    def cells(self) -> List[SweepCell]:
        """The grid cells, in canonical local order."""
        return grid_cells(dict(self.configs), list(self.benchmarks),
                          self.params)

    def to_wire(self) -> Dict:
        return {
            "kind": "sweep-spec",
            "schema": SERVE_SCHEMA_VERSION,
            "benchmarks": list(self.benchmarks),
            "configs": [
                {"label": label, "config": encode_dataclass(cfg)}
                for label, cfg in self.configs
            ],
            "params": encode_dataclass(self.params),
            "engine": self.engine,
            "tenant": self.tenant,
        }

    @classmethod
    def from_wire(cls, data: object) -> "SweepSpec":
        """Decode and validate a submit payload (raises WireError)."""
        if not isinstance(data, dict):
            raise WireError("submit payload must be a JSON object")
        path = "spec"
        schema = data.get("schema")
        if schema != SERVE_SCHEMA_VERSION:
            raise WireError(
                f"{path}.schema: unsupported version {schema!r} "
                f"(this server speaks {SERVE_SCHEMA_VERSION})"
            )
        benchmarks = _require(data, "benchmarks", list, path)
        if not benchmarks:
            raise WireError(f"{path}.benchmarks: empty benchmark list")
        for i, name in enumerate(benchmarks):
            if not isinstance(name, str):
                raise WireError(f"{path}.benchmarks[{i}]: expected a name")
            if name not in BENCHMARK_NAMES:
                raise WireError(
                    f"{path}.benchmarks[{i}]: unknown benchmark {name!r} "
                    f"(known: {', '.join(BENCHMARK_NAMES)})"
                )
        raw_configs = _require(data, "configs", list, path)
        if not raw_configs:
            raise WireError(f"{path}.configs: empty configuration axis")
        configs: List[Tuple[str, MachineConfig]] = []
        seen_labels = set()
        for i, entry in enumerate(raw_configs):
            epath = f"{path}.configs[{i}]"
            if not isinstance(entry, dict):
                raise WireError(f"{epath}: expected an object")
            label = _require(entry, "label", str, epath)
            if label in seen_labels:
                raise WireError(f"{epath}: duplicate label {label!r}")
            seen_labels.add(label)
            configs.append(
                (label, decode_config(entry.get("config"), f"{epath}.config"))
            )
        params = decode_params(data.get("params"), f"{path}.params")
        engine = data.get("engine")
        if engine is not None and engine not in ENGINES:
            raise WireError(
                f"{path}.engine: unknown engine {engine!r} "
                f"(expected one of: {', '.join(ENGINES)})"
            )
        tenant = data.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise WireError(f"{path}.tenant: expected a non-empty string")
        return cls(
            benchmarks=tuple(benchmarks),
            configs=tuple(configs),
            params=params,
            engine=engine,
            tenant=tenant,
        )


# ---------------------------------------------------------------------------
# Worker protocol (cell requests/responses)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CellRequest:
    """One decoded cell-request: the unit of work a worker resolves."""

    id: str
    cell: SweepCell
    engine: str
    job_id: str
    tenant: str
    cache: bool = True
    cache_dir: Optional[str] = None

    @property
    def key(self) -> str:
        return cell_key(self.cell.benchmark, self.cell.config,
                        self.cell.params)


def encode_cell_request(
    request_id: str,
    cell: SweepCell,
    engine: str,
    job_id: str,
    tenant: str,
    cache: bool = True,
    cache_dir: Optional[str] = None,
) -> Dict:
    """Encode one cell for the worker pipe."""
    return {
        "kind": "cell-request",
        "schema": CELL_WIRE_SCHEMA_VERSION,
        "id": request_id,
        "benchmark": cell.benchmark,
        "label": cell.label,
        "config": encode_dataclass(cell.config),
        "params": encode_dataclass(cell.params),
        "engine": engine,
        "job_id": job_id,
        "tenant": tenant,
        "cache": cache,
        "cache_dir": cache_dir,
    }


def decode_cell_request(data: object) -> CellRequest:
    """Decode and validate one worker cell request (raises WireError)."""
    if not isinstance(data, dict):
        raise WireError("cell request must be a JSON object")
    path = "cell-request"
    if data.get("kind") != "cell-request":
        raise WireError(f"{path}.kind: expected 'cell-request', "
                        f"got {data.get('kind')!r}")
    schema = data.get("schema")
    if schema != CELL_WIRE_SCHEMA_VERSION:
        raise WireError(
            f"{path}.schema: unsupported version {schema!r} "
            f"(this worker speaks {CELL_WIRE_SCHEMA_VERSION})"
        )
    request_id = _require(data, "id", str, path)
    benchmark = _require(data, "benchmark", str, path)
    label = _require(data, "label", str, path)
    engine = _require(data, "engine", str, path)
    if engine not in ENGINES:
        raise WireError(
            f"{path}.engine: unknown engine {engine!r} "
            f"(expected one of: {', '.join(ENGINES)})"
        )
    config = decode_config(data.get("config"), f"{path}.config")
    params = decode_params(data.get("params"), f"{path}.params")
    cache = data.get("cache", True)
    if not isinstance(cache, bool):
        raise WireError(f"{path}.cache: expected a boolean")
    cache_dir = data.get("cache_dir")
    if cache_dir is not None and not isinstance(cache_dir, str):
        raise WireError(f"{path}.cache_dir: expected a string or null")
    return CellRequest(
        id=request_id,
        cell=SweepCell(benchmark, label, config, params),
        engine=engine,
        job_id=str(data.get("job_id", "")),
        tenant=str(data.get("tenant", "default")),
        cache=cache,
        cache_dir=cache_dir,
    )
