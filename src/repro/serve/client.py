"""Blocking HTTP client for the sweep service.

``repro submit`` / ``repro jobs`` are thin wrappers over
:class:`ServeClient` — a deliberately boring stdlib ``http.client``
client (one connection per request; the event stream holds its
connection open and reads chunked JSON lines).

:meth:`ServeClient.wait` is the reliability surface: it follows a job's
event stream to completion and, when the connection drops mid-job
(server restart of the HTTP layer is not survivable, but network blips
and timeouts are), reconnects with ``?since=<last seq>`` so progress
resumes exactly where it stopped — no event is ever re-delivered or
lost.

:meth:`ServeClient.result_grid` converts a finished job into the same
``{(benchmark, label): SimResult}`` mapping a local
:func:`repro.sim.sweep.run_grid` returns, which is what the bit-identity
checks in ``make serve-smoke`` compare.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Callable, Dict, Iterator, List, Optional

from ..common.errors import ServeError, WireError
from ..sim.results import SimResult
from ..sim.sweep import ResultGrid
from .wire import SweepSpec

__all__ = ["ServeClient"]

#: Errors that mean "the connection went away", not "the request was bad".
_TRANSPORT_ERRORS = (
    ConnectionError,
    http.client.HTTPException,
    socket.timeout,
    TimeoutError,
    OSError,
)


class ServeClient:
    """Talk to one ``repro serve`` instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8753,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body, sort_keys=True)
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                doc = json.loads(raw)
            except ValueError:
                raise ServeError(
                    f"{method} {path}: non-JSON response "
                    f"(HTTP {response.status}): {raw[:200]!r}"
                ) from None
            if response.status >= 400:
                error = doc.get("error", {})
                raise ServeError(
                    f"{method} {path}: HTTP {response.status} "
                    f"[{error.get('kind', 'error')}] "
                    f"{error.get('message', raw[:200])}"
                )
            return doc
        finally:
            conn.close()

    def _request_text(self, method: str, path: str) -> str:
        """One round-trip for a plain-text endpoint (Prometheus scrape)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request(method, path)
            response = conn.getresponse()
            raw = response.read()
            if response.status >= 400:
                raise ServeError(
                    f"{method} {path}: HTTP {response.status}: {raw[:200]!r}"
                )
            return raw.decode("utf-8")
        finally:
            conn.close()

    # -- endpoints -------------------------------------------------------

    def health(self) -> Dict:
        return self._request("GET", "/v1/health")

    def metrics(self) -> Dict:
        """The fleet metrics snapshot (``GET /v1/metrics?format=json``)."""
        return self._request("GET", "/v1/metrics?format=json")

    def metrics_text(self) -> str:
        """The Prometheus text exposition (``GET /v1/metrics``)."""
        return self._request_text("GET", "/v1/metrics")

    def timeline(self) -> Dict:
        """Job→cell→worker spans (``GET /v1/timeline``)."""
        return self._request("GET", "/v1/timeline")

    def submit(self, spec: SweepSpec) -> Dict:
        """Submit a sweep; returns the job summary (``job_id`` et al)."""
        return self._request("POST", "/v1/jobs", body=spec.to_wire())

    def jobs(self) -> List[Dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> Dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def results(self, job_id: str) -> Dict:
        return self._request("GET", f"/v1/jobs/{job_id}/results")

    def shutdown(self) -> Dict:
        return self._request("POST", "/v1/shutdown")

    def events(self, job_id: str, since: int = 0) -> Iterator[Dict]:
        """Stream one connection's worth of job events (may disconnect).

        Yields event dicts in sequence order starting after ``since``.
        Transport errors propagate — :meth:`wait` is the reconnecting
        wrapper around this.
        """
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events?since={since}")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    error = json.loads(raw).get("error", {})
                except ValueError:
                    error = {}
                raise ServeError(
                    f"events({job_id}): HTTP {response.status} "
                    f"[{error.get('kind', 'error')}] "
                    f"{error.get('message', raw[:200])}"
                )
            # http.client undoes the chunked framing; each line is one
            # JSON event document.
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError as exc:
                    raise WireError(
                        f"events({job_id}): bad event line: {exc}"
                    ) from None
        finally:
            conn.close()

    def wait(
        self,
        job_id: str,
        on_event: Optional[Callable[[Dict], None]] = None,
        max_reconnects: int = 20,
        reconnect_delay_s: float = 0.2,
    ) -> Dict:
        """Follow a job to completion; returns its final status document.

        Each event is handed to ``on_event`` exactly once, in sequence
        order, across any number of reconnects: after a transport error
        the stream is reopened with ``since=<last seq seen>`` and the
        server replays only the missed suffix.
        """
        last_seq = 0
        reconnects = 0
        while True:
            try:
                for event in self.events(job_id, since=last_seq):
                    seq = int(event.get("seq", last_seq + 1))
                    if seq <= last_seq:
                        continue  # duplicate after a racy reconnect
                    last_seq = seq
                    if on_event is not None:
                        on_event(event)
                    if event.get("kind") == "job-done":
                        return self.job(job_id)
                # Clean end-of-stream: the job finished; confirm state.
                status = self.job(job_id)
                if status["state"] in ("done", "failed"):
                    return status
            except ServeError:
                raise
            except _TRANSPORT_ERRORS as exc:
                reconnects += 1
                if reconnects > max_reconnects:
                    raise ServeError(
                        f"wait({job_id}): gave up after {max_reconnects} "
                        f"reconnects (last error: {exc})"
                    ) from None
                time.sleep(reconnect_delay_s)

    def result_grid(self, job_id: str) -> ResultGrid:
        """A finished job's results as a local-run-shaped ResultGrid.

        Raises :class:`ServeError` naming every failed cell if the job
        did not fully succeed — partial grids are never returned.
        """
        doc = self.results(job_id)
        failed = [
            f"({c['benchmark']}, {c['label']}): {c.get('error')}"
            for c in doc["cells"] if c.get("result") is None
        ]
        if failed:
            raise ServeError(
                f"job {job_id} has {len(failed)} failed cell(s): "
                + "; ".join(failed)
            )
        grid: ResultGrid = {}
        for cell in doc["cells"]:
            grid[(cell["benchmark"], cell["label"])] = (
                SimResult.from_dict(cell["result"])
            )
        return grid
