"""Job queue of the sweep service: dedup, cell states, progress events.

A submitted :class:`~repro.serve.wire.SweepSpec` becomes a :class:`Job`:
one :class:`CellEntry` per grid cell, resolved through three dedup
layers before any worker runs anything —

1. **Disk cache** — the executor's content-addressed result cache is
   probed at submit time; warm cells resolve instantly (source
   ``"cache"``).  A job resubmitted unchanged is served almost entirely
   from here.
2. **In-flight dedup** — a cell whose key another job is *currently*
   computing subscribes to that computation instead of enqueueing a
   duplicate (source ``"dedup"``).
3. **Worker execution** — everything else is enqueued as a
   :class:`CellTask` and shipped to a worker subprocess (source
   ``"run"``; a worker that finds the key freshly cached reports
   ``"cache"``).

Every state change appends a sequence-numbered event to the job's event
log — the server streams these over chunked JSON, and a client that
reconnects with ``?since=<seq>`` replays exactly the suffix it missed.

All mutation happens on the server's event loop; the only cross-thread
surface is the HTTP layer above.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..common.errors import ServeError
from ..obs.telemetry import (
    EV_CELL_FAILED,
    EV_CELL_RESOLVED,
    EV_CELL_RETRIED,
    EV_JOB_DONE,
    EV_JOB_SUBMITTED,
    M_CELL_LATENCY,
    M_CELL_RETRIES,
    M_CELLS_TOTAL,
    M_JOBS_TOTAL,
    M_QUEUE_DEPTH,
    MetricsRegistry,
    NullLog,
    StructuredLog,
    standard_registry,
)
from ..sim.executor import DiskCache, SweepCell
from .wire import SERVE_SCHEMA_VERSION, SweepSpec

__all__ = ["CellEntry", "CellTask", "Job", "JobQueue"]

#: Terminal per-cell sources/states.
_TERMINAL = ("cache", "run", "dedup", "failed")


@dataclass
class CellEntry:
    """Lifecycle of one grid cell within a job."""

    index: int
    benchmark: str
    label: str
    key: str
    status: str = "pending"  # pending | running | cache | run | dedup | failed
    attempts: int = 0
    wall_s: float = 0.0
    error: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.status in _TERMINAL

    def to_wire(self) -> Dict:
        return {
            "index": self.index,
            "benchmark": self.benchmark,
            "label": self.label,
            "key": self.key,
            "status": self.status,
            "attempts": self.attempts,
            "wall_s": self.wall_s,
            "error": self.error,
        }


@dataclass
class CellTask:
    """One unit of worker work: the primary computation for a cache key."""

    job: "Job"
    index: int
    cell: SweepCell
    key: str
    attempts: int = 0
    #: (job, index) pairs deduplicated onto this computation.
    followers: List[Tuple["Job", int]] = field(default_factory=list)


class Job:
    """One submitted sweep and everything known about its progress."""

    def __init__(self, job_id: str, spec: SweepSpec, engine: str,
                 cells: List[SweepCell], keys: List[str],
                 registry: "MetricsRegistry | None" = None,
                 log: "StructuredLog | NullLog | None" = None) -> None:
        self.id = job_id
        self.spec = spec
        self.engine = engine
        self.tenant = spec.tenant
        self.registry = registry
        self.log = log if log is not None else NullLog()
        #: Workers that died while running (or retrying) this job's cells.
        self.respawns = 0
        self.cells = cells
        self.entries = [
            CellEntry(i, c.benchmark, c.label, k)
            for i, (c, k) in enumerate(zip(cells, keys))
        ]
        #: index -> SimResult wire dict (never SimResult objects: results
        #: cross the HTTP boundary verbatim, so store the wire form).
        self.results: Dict[int, Dict] = {}
        self.events: List[Dict] = []
        self.state = "queued"  # queued | running | done | failed
        self.created_ts = time.time()
        self.finished_ts: Optional[float] = None
        self.changed = asyncio.Condition()

    # -- accounting ------------------------------------------------------

    def _count(self, status: str) -> int:
        return sum(1 for e in self.entries if e.status == status)

    @property
    def n_cells(self) -> int:
        return len(self.entries)

    @property
    def cache_hits(self) -> int:
        return self._count("cache")

    @property
    def executed(self) -> int:
        return self._count("run")

    @property
    def deduped(self) -> int:
        return self._count("dedup")

    @property
    def failed(self) -> int:
        return self._count("failed")

    @property
    def resolved(self) -> int:
        return sum(1 for e in self.entries if e.terminal)

    @property
    def done(self) -> bool:
        return self.state in ("done", "failed")

    @property
    def retries(self) -> int:
        return sum(e.attempts for e in self.entries)

    def stats(self) -> Dict:
        return {
            "n_cells": self.n_cells,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "deduped": self.deduped,
            "failed": self.failed,
            "resolved": self.resolved,
            "retries": self.retries,
            "respawns": self.respawns,
        }

    def summary(self) -> Dict:
        return {
            "schema": SERVE_SCHEMA_VERSION,
            "job_id": self.id,
            "tenant": self.tenant,
            "engine": self.engine,
            "state": self.state,
            "created_ts": self.created_ts,
            "finished_ts": self.finished_ts,
            **self.stats(),
        }

    def status_wire(self) -> Dict:
        doc = self.summary()
        doc["cells"] = [e.to_wire() for e in self.entries]
        return doc

    def results_wire(self) -> Dict:
        if not self.done:
            raise ServeError(f"job {self.id} is not finished ({self.state})")
        return {
            "schema": SERVE_SCHEMA_VERSION,
            "job_id": self.id,
            "state": self.state,
            "stats": self.stats(),
            "cells": [
                {
                    "benchmark": e.benchmark,
                    "label": e.label,
                    "source": e.status,
                    "error": e.error,
                    "result": self.results.get(e.index),
                }
                for e in self.entries
            ],
        }

    # -- events ----------------------------------------------------------

    async def post(self, kind: str, **fields) -> None:
        """Append one progress event and wake every streaming reader.

        (Named ``post``, not ``emit``: the job event log is service
        progress, not the typed tracer schema of ``obs/events.py``.)
        """
        event = {"seq": len(self.events) + 1, "job_id": self.id,
                 "kind": kind, **fields}
        async with self.changed:
            self.events.append(event)
            self.changed.notify_all()

    async def _maybe_finish(self) -> None:
        if self.state in ("done", "failed"):
            return
        if all(e.terminal for e in self.entries):
            self.state = "failed" if self.failed else "done"
            self.finished_ts = time.time()
            if self.registry is not None:
                self.registry.inc(M_JOBS_TOTAL, state=self.state)
            self.log.event(EV_JOB_DONE, job_id=self.id, tenant=self.tenant,
                           state=self.state, **self.stats())
            await self.post("job-done", state=self.state, stats=self.stats())

    # -- cell transitions (called by the queue only) ---------------------

    async def _resolve(self, index: int, status: str, result: Optional[Dict],
                       wall_s: float = 0.0,
                       error: Optional[str] = None) -> None:
        entry = self.entries[index]
        entry.status = status
        entry.wall_s = wall_s
        entry.error = error
        if result is not None:
            self.results[index] = result
        kind = "cell-failed" if status == "failed" else "cell-done"
        await self.post(kind, benchmark=entry.benchmark, label=entry.label,
                        index=index, source=status, wall_s=wall_s,
                        error=error)
        await self._maybe_finish()


class JobQueue:
    """Deduplicating work queue feeding the server's worker pool."""

    def __init__(self, cache: Optional[DiskCache],
                 registry: Optional[MetricsRegistry] = None,
                 log: "StructuredLog | NullLog | None" = None) -> None:
        self.cache = cache
        self.registry = registry if registry is not None else standard_registry()
        self.log = log if log is not None else NullLog()
        self.jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._next_id = 1
        self.tasks: "asyncio.Queue[CellTask]" = asyncio.Queue()
        #: Cache key -> the task currently computing it (in-flight dedup).
        self._inflight: Dict[str, CellTask] = {}

    def note_depth(self) -> None:
        """Refresh the queue-depth gauge (call after any put/get)."""
        self.registry.set_gauge(M_QUEUE_DEPTH, self.tasks.qsize())

    def job(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise ServeError(f"no such job: {job_id!r}")
        return job

    def job_list(self) -> List[Job]:
        return [self.jobs[jid] for jid in self._order]

    async def submit(self, spec: SweepSpec, engine: str) -> Job:
        """Register a job and resolve/enqueue every cell."""
        cells = spec.cells()
        keys = [c.key() for c in cells]
        job_id = f"j{self._next_id:04d}"
        self._next_id += 1
        job = Job(job_id, spec, engine, cells, keys,
                  registry=self.registry, log=self.log)
        self.jobs[job_id] = job
        self._order.append(job_id)
        job.state = "running"
        self.registry.inc(M_JOBS_TOTAL, state="submitted")
        for index, (cell, key) in enumerate(zip(cells, keys)):
            # DiskCache.get reads from disk; keep it off the event loop.
            # The await may interleave another submit for the same key:
            # whichever coroutine misses first registers in _inflight
            # below and the later one becomes a follower, so dedup holds.
            hit = None
            if self.cache is not None:
                hit = await asyncio.to_thread(self.cache.get, key)
            if hit is not None:
                self.registry.inc(M_CELLS_TOTAL, source="cache")
                self.log.event(EV_CELL_RESOLVED, job_id=job_id,
                               tenant=job.tenant, source="cache",
                               cell=f"{cell.benchmark}/{cell.label}")
                await job._resolve(index, "cache", hit.to_dict())
                continue
            primary = self._inflight.get(key)
            if primary is not None:
                primary.followers.append((job, index))
                job.entries[index].status = "running"
                continue
            task = CellTask(job, index, cell, key)
            self._inflight[key] = task
            job.entries[index].status = "running"
            await self.tasks.put(task)
        self.log.event(EV_JOB_SUBMITTED, job_id=job_id, tenant=job.tenant,
                       engine=engine, n_cells=job.n_cells,
                       cache_hits=job.cache_hits)
        self.note_depth()
        await job._maybe_finish()
        return job

    async def requeue(self, task: CellTask) -> None:
        """Put a task back after a worker death (retry path)."""
        task.attempts += 1
        entry = task.job.entries[task.index]
        entry.attempts = task.attempts
        self.registry.inc(M_CELL_RETRIES)
        self.log.event(EV_CELL_RETRIED, job_id=task.job.id,
                       tenant=task.job.tenant,
                       cell=f"{entry.benchmark}/{entry.label}",
                       attempts=task.attempts)
        await task.job.post("cell-retried", benchmark=entry.benchmark,
                            label=entry.label, index=task.index,
                            attempts=task.attempts)
        await self.tasks.put(task)
        self.note_depth()

    async def task_done(self, task: CellTask, source: str, result: Dict,
                        wall_s: float) -> None:
        """Resolve a completed task onto its job and every follower."""
        self._inflight.pop(task.key, None)
        entry = task.job.entries[task.index]
        self.registry.inc(M_CELLS_TOTAL, source=source)
        if source == "run":
            self.registry.observe(M_CELL_LATENCY, wall_s,
                                  benchmark=entry.benchmark,
                                  engine=task.job.engine)
        await task.job._resolve(task.index, source, result, wall_s)
        for job, index in task.followers:
            fentry = job.entries[index]
            self.registry.inc(M_CELLS_TOTAL, source="dedup")
            self.log.event(EV_CELL_RESOLVED, job_id=job.id,
                           tenant=job.tenant, source="dedup",
                           cell=f"{fentry.benchmark}/{fentry.label}")
            await job._resolve(index, "dedup", result, 0.0)

    async def task_failed(self, task: CellTask, error: str) -> None:
        """Mark a task (and its followers) failed."""
        self._inflight.pop(task.key, None)
        entry = task.job.entries[task.index]
        self.registry.inc(M_CELLS_TOTAL, source="failed")
        self.log.event(EV_CELL_FAILED, job_id=task.job.id,
                       tenant=task.job.tenant,
                       cell=f"{entry.benchmark}/{entry.label}", error=error)
        await task.job._resolve(task.index, "failed", None, error=error)
        for job, index in task.followers:
            fentry = job.entries[index]
            self.registry.inc(M_CELLS_TOTAL, source="failed")
            self.log.event(EV_CELL_FAILED, job_id=job.id, tenant=job.tenant,
                           cell=f"{fentry.benchmark}/{fentry.label}",
                           error=error)
            await job._resolve(index, "failed", None, error=error)
