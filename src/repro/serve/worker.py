"""Worker-subprocess entry point of the sweep service.

``python -m repro.serve.worker`` is what ``repro serve`` spawns N times:
a loop reading one JSON request per stdin line and writing one JSON
response per stdout line.  Two request kinds exist —

* ``{"kind": "ping"}`` → ``{"kind": "pong", "pid": ...}``; the server
  sends one at spawn so a broken worker (import error, wrong
  ``PYTHONPATH``) fails the handshake instead of dying on its first
  real cell.
* ``{"kind": "cell-request", ...}`` → handed to
  :func:`repro.sim.executor.run_cell_request`, which owns cache probe,
  simulation, cache publish and perf-ledger provenance.

The loop itself never raises across the pipe: undecodable input lines
come back as ``status: "err"`` responses, and EOF on stdin is the
shutdown signal.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict

from ..obs.telemetry import NullLog, StructuredLog
from ..sim.executor import CELL_WIRE_SCHEMA_VERSION, run_cell_request

__all__ = ["handle_line", "main"]


def _worker_log():
    """The server-shared structured log, when ``$REPRO_SERVE_LOG`` is set.

    The file is opened in append mode and every event is one write, so
    any number of workers and the server can interleave lines safely.
    """
    path = os.environ.get("REPRO_SERVE_LOG")
    if not path:
        return NullLog()
    return StructuredLog(path=path, fields={"worker_pid": os.getpid()})


def handle_line(line: str) -> Dict:
    """Resolve one request line into one response document."""
    try:
        request = json.loads(line)
    except ValueError as exc:
        return {
            "kind": "cell-response",
            "schema": CELL_WIRE_SCHEMA_VERSION,
            "id": None,
            "status": "err",
            "error": f"request line is not valid JSON: {exc}",
            "traceback": None,
        }
    if isinstance(request, dict) and request.get("kind") == "ping":
        return {"kind": "pong", "pid": os.getpid()}
    return run_cell_request(request)


def main() -> int:
    log = _worker_log()
    log.event("worker.online", pid=os.getpid())
    for line in sys.stdin:
        if not line.strip():
            continue
        response = handle_line(line)
        if response.get("kind") == "cell-response":
            log.event("worker.cell", request_id=response.get("id"),
                      cell=f"{response.get('benchmark')}"
                           f"/{response.get('label')}",
                      status=response.get("status"),
                      source=response.get("source"))
        sys.stdout.write(json.dumps(response, sort_keys=True) + "\n")
        sys.stdout.flush()
    log.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
