"""Worker-subprocess entry point of the sweep service.

``python -m repro.serve.worker`` is what ``repro serve`` spawns N times:
a loop reading one JSON request per stdin line and writing one JSON
response per stdout line.  Two request kinds exist —

* ``{"kind": "ping"}`` → ``{"kind": "pong", "pid": ...}``; the server
  sends one at spawn so a broken worker (import error, wrong
  ``PYTHONPATH``) fails the handshake instead of dying on its first
  real cell.
* ``{"kind": "cell-request", ...}`` → handed to
  :func:`repro.sim.executor.run_cell_request`, which owns cache probe,
  simulation, cache publish and perf-ledger provenance.

The loop itself never raises across the pipe: undecodable input lines
come back as ``status: "err"`` responses, and EOF on stdin is the
shutdown signal.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict

from ..sim.executor import CELL_WIRE_SCHEMA_VERSION, run_cell_request

__all__ = ["handle_line", "main"]


def handle_line(line: str) -> Dict:
    """Resolve one request line into one response document."""
    try:
        request = json.loads(line)
    except ValueError as exc:
        return {
            "kind": "cell-response",
            "schema": CELL_WIRE_SCHEMA_VERSION,
            "id": None,
            "status": "err",
            "error": f"request line is not valid JSON: {exc}",
            "traceback": None,
        }
    if isinstance(request, dict) and request.get("kind") == "ping":
        return {"kind": "pong", "pid": os.getpid()}
    return run_cell_request(request)


def main() -> int:
    for line in sys.stdin:
        if not line.strip():
            continue
        response = handle_line(line)
        sys.stdout.write(json.dumps(response, sort_keys=True) + "\n")
        sys.stdout.flush()
    return 0


if __name__ == "__main__":
    sys.exit(main())
