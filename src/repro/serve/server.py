"""The sweep service: an asyncio HTTP/JSON job-queue server.

``repro serve`` promotes the single-host sweep executor to a
long-running service (stdlib only — ``asyncio`` streams plus a minimal
HTTP/1.1 layer, no web framework):

* **Submit** — ``POST /v1/jobs`` takes a :class:`~repro.serve.wire.SweepSpec`
  (full frozen config/params dataclasses, same fingerprints as local
  runs) and answers with a job id.  Malformed payloads get a structured
  4xx and the server keeps serving.
* **Dedup** — cells resolve through the executor's content-addressed
  :class:`~repro.sim.executor.DiskCache` and against in-flight
  computations of other jobs (see :mod:`repro.serve.queue`); a
  resubmitted identical grid is served almost entirely from cache.
* **Shard** — cache-miss cells are distributed over N persistent worker
  subprocesses (``python -m repro.serve.worker``), each a JSONL pipe
  speaking the cell wire schema into
  :func:`repro.sim.executor.run_cell_request`.  A worker that dies
  mid-cell is replaced and the cell retried on a surviving worker.
* **Stream** — ``GET /v1/jobs/<id>/events?since=N`` is a chunked-JSON
  progress stream (one event per chunk); reconnecting clients resume
  from the last sequence number they saw.  Results
  (``GET /v1/jobs/<id>/results``) are bit-identical to a local
  ``run_grid`` of the same spec — enforced by ``make serve-smoke``.

Wire schema and endpoint tables: ``docs/SERVICE.md``.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..common.errors import ServeError, WireError
from ..obs.telemetry import (
    EV_CELL_RESOLVED,
    EV_WORKER_RESPAWNED,
    EV_WORKER_SPAWNED,
    M_WORKER_RESPAWNS,
    M_WORKERS_ALIVE,
    M_WORKERS_BUSY,
    NullLog,
    SpanLog,
    StructuredLog,
    TELEMETRY_SCHEMA_VERSION,
    standard_registry,
)
from ..sim.executor import DiskCache, default_engine
from .queue import CellTask, Job, JobQueue
from .wire import SERVE_SCHEMA_VERSION, SweepSpec, encode_cell_request

__all__ = ["ServeServer", "ServerThread", "WorkerDied", "WorkerHandle"]

#: Largest accepted request body (a 48-cell grid spec is ~50KB; this is
#: head-room, not a scaling limit — big grids are many cells, not big
#: documents).
MAX_BODY_BYTES = 16 * 1024 * 1024

_JSON_HEADERS = "Content-Type: application/json\r\nConnection: close\r\n"


class WorkerDied(ServeError):
    """A worker subprocess exited while (or before) resolving a cell."""


class WorkerHandle:
    """One persistent worker subprocess behind a JSONL request pipe."""

    _next_id = 1

    def __init__(self, env: Optional[Dict[str, str]] = None) -> None:
        self.id = f"w{WorkerHandle._next_id}"
        WorkerHandle._next_id += 1
        self.env = env
        self.proc: Optional[asyncio.subprocess.Process] = None
        self.busy = False
        self.cells_run = 0

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.returncode is None

    async def start(self) -> None:
        env = dict(os.environ)
        # The worker must import the same repro tree the server runs,
        # wherever the server was launched from.
        pkg_root = str(Path(__file__).resolve().parent.parent.parent)
        existing = env.get("PYTHONPATH", "")
        if pkg_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                pkg_root + (os.pathsep + existing if existing else "")
            )
        if self.env:
            env.update(self.env)
        self.proc = await asyncio.create_subprocess_exec(
            sys.executable, "-u", "-m", "repro.serve.worker",
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            stderr=None,  # worker stderr shares the server's (tracebacks)
            env=env,
        )
        # Fail fast on a broken worker (import error, bad PYTHONPATH):
        # one ping round-trip before the worker joins the pool.
        pong = await self.request({"kind": "ping"})
        if pong.get("kind") != "pong":
            raise WorkerDied(f"worker {self.id}: bad handshake: {pong!r}")

    async def request(self, payload: Dict) -> Dict:
        """One request/response round-trip; raises WorkerDied on EOF."""
        if not self.alive:
            raise WorkerDied(f"worker {self.id} is not running")
        assert self.proc is not None
        line = json.dumps(payload, sort_keys=True) + "\n"
        try:
            self.proc.stdin.write(line.encode("utf-8"))
            await self.proc.stdin.drain()
            raw = await self.proc.stdout.readline()
        except (BrokenPipeError, ConnectionResetError) as exc:
            raise WorkerDied(f"worker {self.id} pipe broke: {exc}") from None
        if not raw:
            raise WorkerDied(
                f"worker {self.id} (pid {self.pid}) exited mid-request"
            )
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise WorkerDied(
                f"worker {self.id} wrote a non-JSON line: {exc}"
            ) from None

    async def stop(self) -> None:
        if self.proc is None:
            return
        if self.alive:
            try:
                self.proc.stdin.close()
            except (OSError, RuntimeError):
                pass
            try:
                await asyncio.wait_for(self.proc.wait(), timeout=2.0)
            except asyncio.TimeoutError:
                self.proc.kill()
                await self.proc.wait()


class ServeServer:
    """The long-running sweep service (one instance per event loop)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        engine: Optional[str] = None,
        cache_dir: Optional[str] = None,
        max_attempts: int = 2,
        log_path: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ServeError("need at least one worker")
        self.host = host
        self.port = port
        self.n_workers = workers
        self.engine = engine if engine is not None else default_engine()
        self.cache_dir = cache_dir
        self.max_attempts = max_attempts
        self.telemetry = standard_registry()
        self.log = (
            StructuredLog(path=log_path) if log_path is not None else NullLog()
        )
        self.spans = SpanLog()
        self.started_ts = time.time()
        self.queue = JobQueue(
            DiskCache(cache_dir, registry=self.telemetry, log=self.log),
            registry=self.telemetry, log=self.log,
        )
        self.workers: List[WorkerHandle] = []
        self._free: "asyncio.Queue[WorkerHandle]" = asyncio.Queue()
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatch_task: Optional[asyncio.Task] = None
        self._stopping = asyncio.Event()
        self._worker_env: Dict[str, str] = {}
        if cache_dir is not None:
            self._worker_env["REPRO_CACHE_DIR"] = str(cache_dir)
        if log_path is not None:
            # Workers append to the same JSONL stream (O_APPEND, one
            # write per line — safe across processes).
            self._worker_env["REPRO_SERVE_LOG"] = str(Path(log_path).resolve())
        self._next_request = 1

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Spawn workers, bind the socket, start dispatching."""
        for _ in range(self.n_workers):
            await self._spawn_worker()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatch_task = asyncio.create_task(self._dispatch_loop())

    async def serve_forever(self) -> None:
        await self.start()
        await self._stopping.wait()
        await self._shutdown()

    async def stop(self) -> None:
        self._stopping.set()

    async def _shutdown(self) -> None:
        if self._dispatch_task is not None:
            self._dispatch_task.cancel()
            try:
                await self._dispatch_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for worker in self.workers:
            await worker.stop()

    async def _spawn_worker(self) -> WorkerHandle:
        worker = WorkerHandle(env=self._worker_env)
        await worker.start()
        self.workers.append(worker)
        self.log.event(EV_WORKER_SPAWNED, worker=worker.id, pid=worker.pid)
        self._note_workers()
        await self._free.put(worker)
        return worker

    def _note_workers(self) -> None:
        """Refresh the worker-fleet gauges."""
        self.telemetry.set_gauge(
            M_WORKERS_ALIVE, sum(1 for w in self.workers if w.alive))
        self.telemetry.set_gauge(
            M_WORKERS_BUSY, sum(1 for w in self.workers if w.busy))

    # -- work dispatch ---------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            task = await self.queue.tasks.get()
            self.queue.note_depth()
            worker = await self._free.get()
            while not worker.alive:
                # A worker that died idle (e.g. killed externally) is
                # replaced before it can be handed work.
                self.workers.remove(worker)
                self.telemetry.inc(M_WORKER_RESPAWNS)
                self.log.event(EV_WORKER_RESPAWNED, worker=worker.id,
                               reason="died-idle")
                await self._spawn_worker()
                worker = await self._free.get()
            asyncio.create_task(self._run_task(worker, task))

    async def _run_task(self, worker: WorkerHandle, task: CellTask) -> None:
        request = encode_cell_request(
            request_id=f"r{self._next_request}",
            cell=task.cell,
            engine=self.engine,
            job_id=task.job.id,
            tenant=task.job.tenant,
            cache_dir=self.cache_dir,
        )
        self._next_request += 1
        worker.busy = True
        self._note_workers()
        t0 = time.time()
        entry = task.job.entries[task.index]
        try:
            response = await worker.request(request)
        except WorkerDied as exc:
            # The cell did not complete; replace the worker and retry on
            # a surviving one unless the retry budget is spent.
            if worker in self.workers:
                self.workers.remove(worker)
            await worker.stop()
            task.job.respawns += 1
            self.telemetry.inc(M_WORKER_RESPAWNS)
            self.log.event(EV_WORKER_RESPAWNED, worker=worker.id,
                           job_id=task.job.id, tenant=task.job.tenant,
                           cell=f"{entry.benchmark}/{entry.label}",
                           reason="died-running")
            try:
                await self._spawn_worker()
            except WorkerDied:
                pass  # replacement failed; remaining workers carry on
            self._note_workers()
            if task.attempts + 1 < self.max_attempts:
                await self.queue.requeue(task)
            else:
                await self.queue.task_failed(
                    task, f"worker died ({exc}) after "
                          f"{task.attempts + 1} attempt(s)"
                )
            return
        finally:
            worker.busy = False
        worker.cells_run += 1
        self._note_workers()
        await self._free.put(worker)
        if response.get("status") == "ok":
            host = response.get("host") or {}
            source = str(response.get("source", "run"))
            wall_s = float(host.get("wall_s", 0.0))
            self.spans.add(
                job_id=task.job.id, index=task.index,
                benchmark=entry.benchmark, label=entry.label,
                worker=worker.id, source=source,
                start_s=t0, end_s=time.time(), attempts=task.attempts,
            )
            self.log.event(EV_CELL_RESOLVED, job_id=task.job.id,
                           tenant=task.job.tenant,
                           cell=f"{entry.benchmark}/{entry.label}",
                           source=source, worker=worker.id, wall_s=wall_s)
            await self.queue.task_done(
                task, source=source, result=response["result"],
                wall_s=wall_s,
            )
        else:
            # A deterministic simulation error: retrying would fail the
            # same way, so the cell fails with the worker's report.
            await self.queue.task_failed(
                task, str(response.get("error", "unknown worker error"))
            )

    # -- HTTP layer ------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        # lint: allow(EXC001 connection isolation: one bad request/connection must never take the server down)
        except Exception as exc:
            try:
                await self._respond(writer, 500, {
                    "error": {"kind": type(exc).__name__, "message": str(exc)}
                })
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        request_line = await reader.readline()
        if not request_line:
            return
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            await self._respond(writer, 400,
                                _err("bad-request", "malformed request line"))
            return
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        if method == "POST":
            try:
                length = int(headers.get("content-length", "0"))
            except ValueError:
                length = -1
            if length < 0 or length > MAX_BODY_BYTES:
                await self._respond(writer, 400, _err(
                    "bad-request",
                    f"invalid or oversized Content-Length "
                    f"(max {MAX_BODY_BYTES} bytes)"))
                return
            if length:
                body = await reader.readexactly(length)
        url = urlsplit(target)
        await self._route(writer, method, url.path,
                          parse_qs(url.query), body)

    async def _route(self, writer, method: str, path: str,
                     query: Dict[str, List[str]], body: bytes) -> None:
        if path == "/v1/health" and method == "GET":
            await self._respond(writer, 200, self._health())
            return
        if path == "/v1/metrics" and method == "GET":
            await self._metrics(writer, query)
            return
        if path == "/v1/timeline" and method == "GET":
            await self._respond(writer, 200, {
                "schema": TELEMETRY_SCHEMA_VERSION,
                "started_ts": self.started_ts,
                **self.spans.to_wire(),
            })
            return
        if path == "/v1/jobs" and method == "POST":
            await self._submit(writer, body)
            return
        if path == "/v1/jobs" and method == "GET":
            await self._respond(writer, 200, {
                "schema": SERVE_SCHEMA_VERSION,
                "jobs": [j.summary() for j in self.queue.job_list()],
            })
            return
        if path == "/v1/shutdown" and method == "POST":
            await self._respond(writer, 200, {"ok": True, "stopping": True})
            await self.stop()
            return
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            job_id, _, tail = rest.partition("/")
            try:
                job = self.queue.job(job_id)
            except ServeError as exc:
                await self._respond(writer, 404, _err("not-found", str(exc)))
                return
            if tail == "" and method == "GET":
                await self._respond(writer, 200, job.status_wire())
                return
            if tail == "events" and method == "GET":
                since = _int_param(query, "since", 0)
                await self._stream_events(writer, job, since)
                return
            if tail == "results" and method == "GET":
                try:
                    await self._respond(writer, 200, job.results_wire())
                except ServeError as exc:
                    await self._respond(writer, 409,
                                        _err("not-finished", str(exc)))
                return
        await self._respond(writer, 404,
                            _err("not-found", f"no route for {method} {path}"))

    def _health(self) -> Dict:
        return {
            "ok": True,
            "schema": SERVE_SCHEMA_VERSION,
            "engine": self.engine,
            "cache_root": str(self.queue.cache.root)
            if self.queue.cache is not None else None,
            "jobs": len(self.queue.jobs),
            "pending_cells": self.queue.tasks.qsize(),
            "respawns": int(self.telemetry.value(M_WORKER_RESPAWNS)),
            "workers": [
                {"id": w.id, "pid": w.pid, "alive": w.alive,
                 "busy": w.busy, "cells_run": w.cells_run}
                for w in self.workers
            ],
        }

    async def _submit(self, writer, body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            await self._respond(writer, 400, _err(
                "bad-json", f"submit body is not valid JSON: {exc}"))
            return
        try:
            spec = SweepSpec.from_wire(payload)
        except WireError as exc:
            await self._respond(writer, 400, _err("bad-spec", str(exc)))
            return
        engine = spec.engine if spec.engine is not None else self.engine
        job = await self.queue.submit(spec, engine)
        await self._respond(writer, 201, job.summary())

    async def _stream_events(self, writer, job: Job, since: int) -> None:
        """Chunked JSON event stream: replay after ``since``, then live."""
        head = (
            "HTTP/1.1 200 OK\r\n" + _JSON_HEADERS +
            "Transfer-Encoding: chunked\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        sent = max(0, since)
        while True:
            async with job.changed:
                while len(job.events) <= sent and not job.done:
                    await job.changed.wait()
                events = job.events[sent:]
            for event in events:
                data = (json.dumps(event, sort_keys=True) + "\n").encode()
                writer.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")
            await writer.drain()
            sent += len(events)
            if job.done and sent >= len(job.events):
                break
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    async def _metrics(self, writer, query: Dict[str, List[str]]) -> None:
        """``GET /v1/metrics``: Prometheus text, or JSON snapshot.

        Worker subprocesses prune the shared cache in their own
        processes; reconcile their eviction totals from the sidecar
        before every scrape so the counters are fleet-wide.
        """
        if self.queue.cache is not None:
            # Reads the sidecar totals file from disk; registry ops are
            # lock-guarded, so reconciling off-loop is safe.
            await asyncio.to_thread(self.queue.cache.sync_telemetry)
        fmt = (query.get("format") or ["prometheus"])[0]
        if fmt == "json":
            await self._respond(writer, 200, self.telemetry.snapshot())
            return
        await self._respond_text(writer, self.telemetry.render_prometheus())

    async def _respond_text(self, writer, text: str) -> None:
        body = text.encode("utf-8")
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
            "Connection: close\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _respond(self, writer, status: int, doc: Dict) -> None:
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        reason = {200: "OK", 201: "Created", 400: "Bad Request",
                  404: "Not Found", 409: "Conflict",
                  500: "Internal Server Error"}.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n" + _JSON_HEADERS +
            f"Content-Length: {len(body)}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


def _err(kind: str, message: str) -> Dict:
    """Structured error body: every 4xx/5xx answers with this shape."""
    return {"error": {"kind": kind, "message": message},
            "schema": SERVE_SCHEMA_VERSION}


def _int_param(query: Dict[str, List[str]], name: str, default: int) -> int:
    values = query.get(name)
    if not values:
        return default
    try:
        return int(values[0])
    except ValueError:
        return default


class ServerThread:
    """A ServeServer on a background thread (tests, smoke tooling).

    The CLI runs the server on the main thread via ``asyncio.run``; this
    helper exists so synchronous test code can stand a real server up,
    talk to it over real sockets with the blocking client, and tear it
    down deterministically.
    """

    def __init__(self, **kwargs) -> None:
        self._kwargs = kwargs
        self.server: Optional[ServeServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def __enter__(self) -> "ServeServer":
        self.start()
        assert self.server is not None
        return self.server

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self, timeout: float = 30.0) -> "ServeServer":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout):
            raise ServeError("server thread did not start in time")
        if self._startup_error is not None:
            raise ServeError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        assert self.server is not None
        return self.server

    def _run(self) -> None:
        async def main() -> None:
            # lint: allow(ASY001 one-time construction before the loop serves traffic; the log file must be open before start() can accept a connection)
            self.server = ServeServer(**self._kwargs)
            self._loop = asyncio.get_running_loop()
            try:
                await self.server.start()
            except BaseException as exc:  # lint: allow(EXC001 startup failures must unblock the waiting foreground thread)
                self._startup_error = exc
                self._started.set()
                return
            self._started.set()
            await self.server._stopping.wait()
            await self.server._shutdown()

        asyncio.run(main())

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(self.server._stopping.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout)
