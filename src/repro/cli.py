"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show available benchmarks (Table 2 metadata) and configurations.
``run``
    Simulate one benchmark on one configuration and print the result.
``compare``
    Run one benchmark across several configurations against ``orig``
    and print a Figure-11-style table.
``suite``
    Run every benchmark on one configuration (plus ``orig``) and print
    per-benchmark speedups with the suite average.
``trace``
    Simulate one benchmark/config pair with event tracing on and write
    a Perfetto-loadable Chrome trace (see ``docs/OBSERVABILITY.md``).

Examples
--------
::

    python -m repro list
    python -m repro run --benchmark mcf --config wth-wp-wec
    python -m repro compare --benchmark equake --configs vc,wth-wp,wth-wp-wec,nlp
    python -m repro suite --config wth-wp-wec --scale 1e-4 --jobs 4
    python -m repro trace 181.mcf wth-wp-wec --out trace.json

Sweeps resolve through the persistent result cache (``$REPRO_CACHE_DIR``,
default ``~/.cache/repro``; bypass with ``--no-cache``) and fan cache
misses out over ``--jobs`` worker processes; ``--manifest PATH`` writes a
JSON run manifest with per-cell timing and cache hit/miss counts.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.speedup import suite_average_speedup_pct
from .common.config import SimParams
from .common.errors import ConfigError
from .obs.events import CATEGORIES
from .obs.export import write_chrome_trace, write_jsonl
from .obs.tracer import IntervalMetrics, RingBufferTracer
from .sim.driver import run_simulation
from .sim.executor import default_jobs
from .sim.sweep import run_grid
from .sim.tables import TextTable
from .sta.configs import CONFIG_NAMES, named_config
from .workloads.benchmarks import BENCHMARK_NAMES, benchmark_infos

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Wrong Execution Cache reproduction — simulate SPEC2000-like "
            "workloads on a superthreaded architecture."
        ),
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and configurations")

    def add_common(sp):
        sp.add_argument("--scale", type=float, default=2e-4,
                        help="instruction scale vs Table 2 (default 2e-4)")
        sp.add_argument("--seed", type=int, default=2003)
        sp.add_argument("--tus", type=int, default=8,
                        help="number of thread units (default 8)")
        sp.add_argument("--jobs", type=int, default=default_jobs(),
                        help="worker processes for the sweep "
                             "(default $REPRO_JOBS or 1 = serial)")
        sp.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache "
                             "($REPRO_CACHE_DIR, default ~/.cache/repro)")
        sp.add_argument("--manifest", metavar="PATH", default=None,
                        help="write a JSON run manifest (per-cell timing, "
                             "cache hits/misses) to PATH")

    run_p = sub.add_parser("run", help="simulate one benchmark/config pair")
    run_p.add_argument("--benchmark", required=True)
    run_p.add_argument("--config", default="wth-wp-wec", choices=CONFIG_NAMES)
    add_common(run_p)

    cmp_p = sub.add_parser("compare", help="one benchmark, several configs")
    cmp_p.add_argument("--benchmark", required=True)
    cmp_p.add_argument(
        "--configs",
        default="vc,wth-wp,wth-wp-wec,nlp",
        help="comma-separated configuration names (orig is always run)",
    )
    add_common(cmp_p)

    suite_p = sub.add_parser("suite", help="all benchmarks, one config vs orig")
    suite_p.add_argument("--config", default="wth-wp-wec", choices=CONFIG_NAMES)
    add_common(suite_p)

    trace_p = sub.add_parser(
        "trace",
        help="simulate one pair with tracing on; write a Perfetto trace",
    )
    trace_p.add_argument("benchmark", help="benchmark name (see `repro list`)")
    trace_p.add_argument("config", choices=CONFIG_NAMES)
    trace_p.add_argument("--out", default="trace.json", metavar="PATH",
                         help="Chrome trace-event JSON output "
                              "(default trace.json; open in ui.perfetto.dev)")
    trace_p.add_argument("--jsonl", default=None, metavar="PATH",
                         help="also dump raw events as JSON Lines to PATH")
    trace_p.add_argument("--events", default=None, metavar="CATS",
                         help="comma-separated categories to record "
                              f"(default all: {','.join(CATEGORIES)})")
    trace_p.add_argument("--window", type=float, default=4096.0, metavar="N",
                         help="interval-metrics window in cycles "
                              "(default 4096; 0 disables counter tracks)")
    trace_p.add_argument("--sample", type=int, default=1, metavar="N",
                         help="keep every N-th event per category (default 1)")
    trace_p.add_argument("--capacity", type=int, default=1 << 20, metavar="N",
                         help="ring-buffer capacity; oldest events are "
                              "overwritten beyond it (default 1Mi)")
    trace_p.add_argument("--scale", type=float, default=2e-4,
                         help="instruction scale vs Table 2 (default 2e-4)")
    trace_p.add_argument("--seed", type=int, default=2003)
    trace_p.add_argument("--tus", type=int, default=8,
                         help="number of thread units (default 8)")

    return p


def _cmd_list() -> int:
    t = TextTable(
        "benchmarks (Table 2)",
        ["name", "suite", "input set", "whole (M)", "parallel"],
    )
    for info in benchmark_infos():
        t.add_row([
            info.name, info.suite, info.input_set,
            f"{info.whole_minstr:.1f}",
            f"{info.fraction_parallelized * 100:.1f}%",
        ])
    print(t)
    print()
    print("configurations:", ", ".join(CONFIG_NAMES))
    return 0


def _cmd_run(args) -> int:
    params = SimParams(seed=args.seed, scale=args.scale)
    cfg = named_config(args.config, n_tus=args.tus)
    grid = run_grid(
        {args.config: cfg},
        benchmarks=[args.benchmark],
        params=params,
        cache=not args.no_cache,
        manifest_path=args.manifest,
    )
    result = grid[(args.benchmark, args.config)]
    print(f"machine : {cfg.describe()}")
    print(f"result  : {result.total_cycles:.0f} cycles, ipc={result.ipc:.2f}")
    print(f"memory  : {result.effective_misses} effective misses, "
          f"{result.l1_traffic} L1 accesses, "
          f"{result.mispredict_rate:.1%} branch mispredicts")
    if result.wrong_loads:
        print(f"wrong   : {result.wrong_loads} wrong loads "
              f"({result.wrong_thread_loads} from wrong threads), "
              f"{result.useful_wrong_hits} useful hits, "
              f"{result.prefetches} chained prefetches")
    return 0


def _cmd_compare(args) -> int:
    params = SimParams(seed=args.seed, scale=args.scale)
    wanted = [c.strip() for c in args.configs.split(",") if c.strip()]
    unknown = [c for c in wanted if c not in CONFIG_NAMES]
    if unknown:
        print(f"unknown configuration(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    configs = {"orig": named_config("orig", n_tus=args.tus)}
    for name in wanted:
        configs[name] = named_config(name, n_tus=args.tus)
    grid = run_grid(
        configs,
        benchmarks=[args.benchmark],
        params=params,
        jobs=args.jobs,
        cache=not args.no_cache,
        manifest_path=args.manifest,
    )
    base = grid[(args.benchmark, "orig")]
    t = TextTable(
        f"{args.benchmark} on {args.tus} TUs (vs orig)",
        ["config", "speedup", "misses", "miss red.", "traffic"],
    )
    t.add_row(["orig", "baseline", base.effective_misses, "-", "-"])
    for name in wanted:
        r = grid[(args.benchmark, name)]
        t.add_row([
            name,
            f"{r.relative_speedup_pct_vs(base):+.1f}%",
            r.effective_misses,
            f"{r.miss_reduction_pct_vs(base):+.1f}%",
            f"{r.traffic_increase_pct_vs(base):+.1f}%",
        ])
    print(t)
    return 0


def _cmd_suite(args) -> int:
    params = SimParams(seed=args.seed, scale=args.scale)
    grid = run_grid(
        {
            "orig": named_config("orig", n_tus=args.tus),
            args.config: named_config(args.config, n_tus=args.tus),
        },
        benchmarks=BENCHMARK_NAMES,
        params=params,
        jobs=args.jobs,
        cache=not args.no_cache,
        manifest_path=args.manifest,
    )
    t = TextTable(
        f"suite: {args.config} vs orig ({args.tus} TUs, scale {args.scale:g})",
        ["benchmark", "orig cycles", f"{args.config} cycles", "speedup"],
    )
    for bench in BENCHMARK_NAMES:
        base = grid[(bench, "orig")]
        new = grid[(bench, args.config)]
        t.add_row([
            bench,
            f"{base.total_cycles:.0f}",
            f"{new.total_cycles:.0f}",
            f"{new.relative_speedup_pct_vs(base):+.1f}%",
        ])
    avg = suite_average_speedup_pct(grid, "orig", args.config)
    t.add_row(["average", "-", "-", f"{avg:+.1f}%"])
    print(t)
    return 0


def _cmd_trace(args) -> int:
    try:
        categories = None
        if args.events:
            categories = [c.strip() for c in args.events.split(",") if c.strip()]
        metrics = IntervalMetrics(window=args.window) if args.window > 0 else None
        tracer = RingBufferTracer(
            capacity=args.capacity,
            categories=categories,
            sample=args.sample,
            metrics=metrics,
        )
    except ConfigError as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 2
    params = SimParams(seed=args.seed, scale=args.scale)
    cfg = named_config(args.config, n_tus=args.tus)
    # Traced runs bypass the result cache: the cached artifact is the
    # SimResult, not the event stream, and tracing does not change it.
    result = run_simulation(args.benchmark, cfg, params, tracer=tracer)
    events = tracer.events()
    out = write_chrome_trace(
        events,
        args.out,
        interval_series=result.interval_series,
        label=f"{args.benchmark} on {args.config} ({args.tus} TUs, "
              f"scale {args.scale:g}, seed {args.seed})",
    )
    print(f"result : {result.total_cycles:.0f} cycles, ipc={result.ipc:.2f}")
    print(f"trace  : {len(events)} events -> {out} "
          f"(open in https://ui.perfetto.dev)")
    if tracer.n_dropped:
        print(f"warning: ring full, {tracer.n_dropped} oldest events "
              f"overwritten (raise --capacity or use --sample/--events)")
    if args.jsonl:
        path = write_jsonl(events, args.jsonl)
        print(f"jsonl  : {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "suite":
            return _cmd_suite(args)
        if args.command == "trace":
            return _cmd_trace(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
