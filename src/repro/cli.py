"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show available benchmarks (Table 2 metadata) and configurations.
``run``
    Simulate one benchmark on one configuration and print the result.
``compare``
    Run one benchmark across several configurations against ``orig``
    and print a Figure-11-style table.
``suite``
    Run every benchmark on one configuration (plus ``orig``) and print
    per-benchmark speedups with the suite average.
``trace``
    Simulate one benchmark/config pair with event tracing on and write
    a Perfetto-loadable Chrome trace (see ``docs/OBSERVABILITY.md``).
``explain``
    Simulate one benchmark/config pair with the provenance-attribution
    collector attached and render where every speculative fill came
    from and what it bought (coverage, accuracy, timeliness,
    pollution); ``--vs CONFIG`` diffs two configs A/B-style.
``perf record | compare | report``
    The performance observatory: append profiled runs to the persistent
    ledger (``$REPRO_PERF_DIR``, default ``.perf``), compare two record
    sets benchstat-style, and render the recorded trajectory.
``fidelity run | check | report``
    The fidelity observatory (``docs/OBSERVABILITY.md``): run the
    fig08–fig17 + tables campaign grid and score every paper claim in
    ``benchmarks/claims.json``, diff a fresh campaign against the
    committed baseline (exit 1 on a regressed *gate* claim), and render
    the campaign trajectory.
``lint``
    Static determinism/invariant analysis over Python sources (rule
    catalog in ``docs/STATIC_ANALYSIS.md``); exit 1 on findings.
``serve`` / ``submit`` / ``jobs``
    The sweep service (``docs/SERVICE.md``): ``serve`` runs the
    long-lived deduplicating job-queue server, ``submit`` sends a sweep
    spec and streams per-cell progress to completion, ``jobs`` lists or
    inspects the server's jobs.
``cache stats | prune``
    Inspect the persistent result cache and evict least-recently-used
    entries down to a size budget (``$REPRO_CACHE_MAX_MB`` or
    ``--max-mb``).

Examples
--------
::

    python -m repro list
    python -m repro run --benchmark mcf --config wth-wp-wec
    python -m repro compare --benchmark equake --configs vc,wth-wp,wth-wp-wec,nlp
    python -m repro suite --config wth-wp-wec --scale 1e-4 --jobs 4
    python -m repro trace 181.mcf wth-wp-wec --out trace.json
    python -m repro explain 181.mcf wth-wp-wec --vs wth-wp --top 5
    python -m repro perf record 181.mcf wth-wp-wec --repeat 4 --label before
    python -m repro perf compare before after --threshold 10%
    python -m repro perf report --json BENCH_smoke.json
    python -m repro fidelity run --scale 2e-4 --jobs 4 --engine fast
    python -m repro fidelity check benchmarks/FIDELITY_baseline.json
    python -m repro fidelity report
    python -m repro lint src --baseline lint-baseline.json
    python -m repro serve --port 8753 --workers 4 --engine fast
    python -m repro submit --benchmarks mcf,equake --configs orig,wth-wp-wec
    python -m repro jobs j0001 --port 8753
    python -m repro cache stats
    python -m repro cache prune --max-mb 256

Sweeps resolve through the persistent result cache (``$REPRO_CACHE_DIR``,
default ``~/.cache/repro``; bypass with ``--no-cache``) and fan cache
misses out over ``--jobs`` worker processes; ``--manifest PATH`` writes a
JSON run manifest with per-cell timing and cache hit/miss counts.

Simulation commands accept ``--sanitize`` (equivalent to setting
``REPRO_SANITIZE=1``): runs execute under the runtime invariant checker
of :mod:`repro.lint.sanitize`, which raises a structured
``SanitizerError`` on any architectural-invariant violation while
leaving results bit-identical.  Combine with ``--no-cache`` for sweep
commands — cache hits skip simulation and therefore skip the checks.

Exit codes follow one convention (shared by ``trace``/``perf``/``lint``
via one helper): 0 = success, 1 = a failed run, a significant perf
regression, or lint findings, 2 = a usage error (unknown name,
unparseable flag, missing or malformed input).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from .analysis.speedup import suite_average_speedup_pct
from .common.config import SimParams
from .common.errors import (
    AnalysisError,
    ConfigError,
    LintError,
    ReproError,
    WorkloadError,
)
from .lint.engine import lint_paths, write_baseline
from .lint.rules import RULES
from .lint.sanitize import ENV_VAR as SANITIZE_ENV_VAR
from .obs.attrib import (
    AttributionCollector,
    explain_report,
    explain_vs_report,
)
from .obs.compare import compare_records, parse_threshold
from .obs.events import CATEGORIES
from .obs.fidelity import (
    PERTURBATIONS,
    append_trend,
    diff_exports,
    load_fidelity_export,
    load_trend,
    render_markdown,
    render_trend,
    run_campaign,
)
from .obs.export import write_chrome_trace, write_jsonl, write_service_trace
from .obs.hostprof import HostProfiler, peak_rss_kb
from .obs.ledger import (
    Ledger,
    PerfRecord,
    default_perf_dir,
    load_records,
    write_export,
)
from .obs.telemetry import (
    M_CACHE_EVICTIONS,
    M_CACHE_PRUNE_PASSES,
    M_CELL_LATENCY,
    M_CELL_RETRIES,
    M_CELLS_TOTAL,
    M_JOBS_TOTAL,
    M_QUEUE_DEPTH,
    M_WORKER_RESPAWNS,
    snapshot_hist,
    snapshot_total,
    snapshot_value,
    standard_registry,
)
from .obs.tracer import IntervalMetrics, RingBufferTracer
from .sim.driver import ENGINES, run_program, run_simulation
from .sim.executor import (
    DiskCache,
    code_version_token,
    config_fingerprint,
    default_engine,
    default_jobs,
)
from .sim.sweep import run_grid
from .sim.tables import TextTable
from .sta.configs import ABLATION_CONFIG_NAMES, CONFIG_NAMES, named_config
from .workloads.benchmarks import BENCHMARK_NAMES, benchmark_infos, build_benchmark

__all__ = ["main", "build_parser"]

#: Default ``repro diff`` ladder: every wrong-execution mode and sidecar
#: policy combination the differential tests pin down.
DIFF_LADDER = "orig,wp,wth,wth-wp,wth-wp-wec,vc,nlp,stream-pf"


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Wrong Execution Cache reproduction — simulate SPEC2000-like "
            "workloads on a superthreaded architecture."
        ),
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and configurations")

    def add_common(sp):
        sp.add_argument("--scale", type=float, default=2e-4,
                        help="instruction scale vs Table 2 (default 2e-4)")
        sp.add_argument("--seed", type=int, default=2003)
        sp.add_argument("--tus", type=int, default=8,
                        help="number of thread units (default 8)")
        sp.add_argument("--jobs", type=int, default=default_jobs(),
                        help="worker processes for the sweep "
                             "(default $REPRO_JOBS or 1 = serial)")
        sp.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache "
                             "($REPRO_CACHE_DIR, default ~/.cache/repro)")
        sp.add_argument("--manifest", metavar="PATH", default=None,
                        help="write a JSON run manifest (per-cell timing, "
                             "cache hits/misses) to PATH")
        add_engine(sp)
        add_sanitize(sp)

    def add_engine(sp):
        sp.add_argument("--engine", default=None, choices=ENGINES,
                        help="simulation engine (default $REPRO_ENGINE or "
                             "oracle); 'fast' is bit-identical on results "
                             "but has no event-level observer hooks")

    def add_sanitize(sp):
        sp.add_argument("--sanitize", action="store_true",
                        help="run under the runtime invariant checker "
                             "(same as REPRO_SANITIZE=1; see "
                             "docs/STATIC_ANALYSIS.md)")

    run_p = sub.add_parser("run", help="simulate one benchmark/config pair")
    run_p.add_argument("--benchmark", required=True)
    run_p.add_argument("--config", default="wth-wp-wec", choices=CONFIG_NAMES)
    add_common(run_p)

    cmp_p = sub.add_parser("compare", help="one benchmark, several configs")
    cmp_p.add_argument("--benchmark", required=True)
    cmp_p.add_argument(
        "--configs",
        default="vc,wth-wp,wth-wp-wec,nlp",
        help="comma-separated configuration names (orig is always run)",
    )
    add_common(cmp_p)

    suite_p = sub.add_parser("suite", help="all benchmarks, one config vs orig")
    suite_p.add_argument("--config", default="wth-wp-wec", choices=CONFIG_NAMES)
    add_common(suite_p)

    diff_p = sub.add_parser(
        "diff",
        help="differential engine check: run the oracle and fast engines "
             "on the same grid and compare full results field by field; "
             "exit 1 on any divergence",
    )
    diff_p.add_argument("--benchmarks", default=None, metavar="NAMES",
                        help="comma-separated benchmark names "
                             "(default: the whole Table 2 suite)")
    diff_p.add_argument("--configs", default=DIFF_LADDER, metavar="NAMES",
                        help="comma-separated configuration names "
                             f"(default: {DIFF_LADDER})")
    diff_p.add_argument("--scale", type=float, default=2e-5,
                        help="instruction scale vs Table 2 "
                             "(default 2e-5: smoke size)")
    diff_p.add_argument("--seed", type=int, default=2003)
    diff_p.add_argument("--seeds", default=None, metavar="LIST",
                        help="comma-separated seeds (overrides --seed; "
                             "every cell is checked under each)")
    diff_p.add_argument("--tus", type=int, default=8,
                        help="number of thread units (default 8)")

    trace_p = sub.add_parser(
        "trace",
        help="simulate one pair with tracing on; write a Perfetto trace",
    )
    trace_p.add_argument("benchmark", help="benchmark name (see `repro list`)")
    trace_p.add_argument("config", choices=CONFIG_NAMES)
    trace_p.add_argument("--out", default="trace.json", metavar="PATH",
                         help="Chrome trace-event JSON output "
                              "(default trace.json; open in ui.perfetto.dev)")
    trace_p.add_argument("--jsonl", default=None, metavar="PATH",
                         help="also dump raw events as JSON Lines to PATH")
    trace_p.add_argument("--events", default=None, metavar="CATS",
                         help="comma-separated categories to record "
                              f"(default all: {','.join(CATEGORIES)})")
    trace_p.add_argument("--window", type=float, default=4096.0, metavar="N",
                         help="interval-metrics window in cycles "
                              "(default 4096; 0 disables counter tracks)")
    trace_p.add_argument("--sample", type=int, default=1, metavar="N",
                         help="keep every N-th event per category (default 1)")
    trace_p.add_argument("--capacity", type=int, default=1 << 20, metavar="N",
                         help="ring-buffer capacity; oldest events are "
                              "overwritten beyond it (default 1Mi)")
    trace_p.add_argument("--scale", type=float, default=2e-4,
                         help="instruction scale vs Table 2 (default 2e-4)")
    trace_p.add_argument("--seed", type=int, default=2003)
    trace_p.add_argument("--tus", type=int, default=8,
                         help="number of thread units (default 8)")
    trace_p.add_argument("--attrib", action="store_true",
                         help="attach the provenance-attribution collector "
                              "too: adds attrib_use/attrib_pollute events "
                              "and the attribution counter tracks to the "
                              "Perfetto trace")
    add_sanitize(trace_p)

    exp_p = sub.add_parser(
        "explain",
        help="attribute speculative fills by provenance (coverage, "
             "accuracy, timeliness, pollution); --vs diffs two configs",
    )
    exp_p.add_argument("benchmark", help="benchmark name (see `repro list`)")
    exp_p.add_argument("config", choices=CONFIG_NAMES)
    exp_p.add_argument("--vs", default=None, metavar="CONFIG",
                       choices=CONFIG_NAMES, dest="vs",
                       help="also run CONFIG on the same workload and "
                            "render an A/B attribution delta")
    exp_p.add_argument("--top", type=int, default=5, metavar="N",
                       help="rows in the per-region / per-PC top tables "
                            "(default 5)")
    exp_p.add_argument("--format", choices=["text", "json"], default="text",
                       help="output format (default text); json dumps the "
                            "raw attribution summaries")
    exp_p.add_argument("--scale", type=float, default=2e-4,
                       help="instruction scale vs Table 2 (default 2e-4)")
    exp_p.add_argument("--seed", type=int, default=2003)
    exp_p.add_argument("--tus", type=int, default=8,
                       help="number of thread units (default 8)")
    exp_p.add_argument("--window", type=float, default=4096.0, metavar="N",
                       help="attribution series window in cycles "
                            "(default 4096)")
    add_sanitize(exp_p)

    lint_p = sub.add_parser(
        "lint",
        help="static determinism/invariant analysis (AST-based); "
             "exit 1 on findings, 2 on usage errors",
    )
    lint_p.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    lint_p.add_argument("--rule", action="append", default=None,
                        metavar="ID",
                        help="restrict to these rule ids (repeatable or "
                             "comma-separated); default: all rules")
    lint_p.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline JSON ratchet file; matching findings "
                             "are suppressed (every entry needs a reason), "
                             "stale entries are reported")
    lint_p.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text",
                        help="output format (default text); sarif emits a "
                             "SARIF 2.1.0 document for PR annotation")
    lint_p.add_argument("--flow", action="store_true",
                        help="also run the whole-program flow pass "
                             "(call graph + effect summaries): engine "
                             "parity ENG001/ENG002, async-safety "
                             "ASY001-ASY003, interprocedural DET001/"
                             "DET004 (docs/STATIC_ANALYSIS.md, \"Flow "
                             "analysis\"); make lint runs with this on")
    lint_p.add_argument("--write-baseline", default=None, metavar="FILE",
                        help="write current findings to FILE as a new "
                             "baseline (reasons stamped as TODO; the "
                             "loader rejects them until justified) and "
                             "exit 0")
    lint_p.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")

    serve_p = sub.add_parser(
        "serve",
        help="run the sweep service: a long-lived deduplicating job "
             "queue sharding grid cells over worker processes "
             "(docs/SERVICE.md)",
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8753,
                         help="TCP port (default 8753; 0 = ephemeral)")
    serve_p.add_argument("--workers", type=int, default=2,
                         help="worker subprocesses (default 2)")
    serve_p.add_argument("--cache-dir", default=None, metavar="PATH",
                         help="result-cache root for server and workers "
                              "(default $REPRO_CACHE_DIR or ~/.cache/repro)")
    serve_p.add_argument("--log", default=None, metavar="PATH",
                         help="structured JSONL event log, shared by the "
                              "server and its workers (default: off)")
    add_engine(serve_p)
    serve_sub = serve_p.add_subparsers(dest="serve_command", required=False)
    top_p = serve_sub.add_parser(
        "top",
        help="live fleet view of a running server (workers, queue, "
             "dedup layers, latency) from GET /v1/metrics",
    )
    top_p.add_argument("--host", default="127.0.0.1",
                       help="server address (default 127.0.0.1)")
    top_p.add_argument("--port", type=int, default=8753,
                       help="server port (default 8753)")
    top_p.add_argument("--timeout", type=float, default=10.0,
                       help="per-poll timeout in seconds (default 10)")
    top_p.add_argument("--interval", type=float, default=2.0,
                       help="refresh period in seconds (default 2)")
    top_p.add_argument("--once", action="store_true",
                       help="print a single frame and exit (no screen "
                            "clearing; scripts and tests)")

    def add_client(sp):
        sp.add_argument("--host", default="127.0.0.1",
                        help="server address (default 127.0.0.1)")
        sp.add_argument("--port", type=int, default=8753,
                        help="server port (default 8753)")
        sp.add_argument("--timeout", type=float, default=60.0,
                        help="per-request timeout in seconds (default 60)")

    submit_p = sub.add_parser(
        "submit",
        help="submit a sweep grid to a running `repro serve` and stream "
             "per-cell progress to completion",
    )
    submit_p.add_argument("--benchmarks", default=None, metavar="NAMES",
                          help="comma-separated benchmark names "
                               "(default: the whole Table 2 suite)")
    submit_p.add_argument("--configs", default=DIFF_LADDER, metavar="NAMES",
                          help="comma-separated configuration names "
                               f"(default: {DIFF_LADDER})")
    submit_p.add_argument("--scale", type=float, default=2e-4,
                          help="instruction scale vs Table 2 (default 2e-4)")
    submit_p.add_argument("--seed", type=int, default=2003)
    submit_p.add_argument("--tus", type=int, default=8,
                          help="number of thread units (default 8)")
    submit_p.add_argument("--tenant", default="default",
                          help="provenance tenant stamped on every perf-"
                               "ledger record of this job (default 'default')")
    submit_p.add_argument("--no-wait", action="store_true",
                          help="print the job id and return without "
                               "streaming progress")
    submit_p.add_argument("--out", default=None, metavar="PATH",
                          help="write the finished job's results document "
                               "as JSON to PATH")
    add_engine(submit_p)
    add_client(submit_p)

    jobs_p = sub.add_parser(
        "jobs",
        help="list a server's jobs, or show one job's per-cell status",
    )
    jobs_p.add_argument("job_id", nargs="?", default=None,
                        help="job id (omit to list all jobs)")
    jobs_p.add_argument("--watch", action="store_true",
                        help="refresh the listing until interrupted")
    jobs_p.add_argument("--interval", type=float, default=2.0,
                        help="refresh period for --watch in seconds "
                             "(default 2)")
    jobs_p.add_argument("--timeline", default=None, metavar="PATH",
                        help="also fetch /v1/timeline and write the "
                             "job→cell→worker spans as a Perfetto trace "
                             "to PATH")
    add_client(jobs_p)

    cache_p = sub.add_parser(
        "cache",
        help="persistent result cache: stats, LRU prune",
    )
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    cstats_p = cache_sub.add_parser(
        "stats", help="entry count, size, and quota of the result cache")
    cstats_p.add_argument("--dir", default=None, metavar="PATH",
                          help="cache root (default $REPRO_CACHE_DIR or "
                               "~/.cache/repro)")
    cprune_p = cache_sub.add_parser(
        "prune",
        help="evict least-recently-used entries until the cache fits "
             "the budget",
    )
    cprune_p.add_argument("--dir", default=None, metavar="PATH",
                          help="cache root (default $REPRO_CACHE_DIR or "
                               "~/.cache/repro)")
    cprune_p.add_argument("--max-mb", type=float, default=None, metavar="MB",
                          help="size budget in MiB (default "
                               "$REPRO_CACHE_MAX_MB; required if unset)")

    perf_p = sub.add_parser(
        "perf",
        help="performance observatory: record, compare, report",
    )
    perf_sub = perf_p.add_subparsers(dest="perf_command", required=True)

    rec_p = perf_sub.add_parser(
        "record",
        help="run one benchmark/config pair (profiled) and append the "
             "measurements to the perf ledger",
    )
    rec_p.add_argument("benchmark", help="benchmark name (see `repro list`)")
    rec_p.add_argument("config", choices=CONFIG_NAMES)
    rec_p.add_argument("--repeat", type=int, default=1, metavar="N",
                       help="record N repeated runs (host metrics need >=2 "
                            "per side to test significance; default 1)")
    rec_p.add_argument("--label", default="",
                       help="free-form label for later A/B selection "
                            "(`perf compare <label> <label>`)")
    rec_p.add_argument("--dir", default=None, metavar="PATH",
                       help="ledger directory (default $REPRO_PERF_DIR "
                            "or .perf)")
    rec_p.add_argument("--scale", type=float, default=2e-4,
                       help="instruction scale vs Table 2 (default 2e-4)")
    rec_p.add_argument("--seed", type=int, default=2003)
    rec_p.add_argument("--tus", type=int, default=8,
                       help="number of thread units (default 8)")
    rec_p.add_argument("--trace", action="store_true",
                       help="attach a full event tracer during the run "
                            "(adds host-side overhead; simulated metrics "
                            "are unchanged — useful to exercise the "
                            "regression detector)")
    rec_p.add_argument("--no-baseline", action="store_true",
                       help="skip the orig baseline run (records no "
                            "speedup_pct)")
    rec_p.add_argument("--engine", default=None, choices=ENGINES,
                       help="simulation engine (default $REPRO_ENGINE or "
                            "oracle); recorded in each ledger entry's "
                            "provenance — incompatible with --trace, "
                            "which needs the oracle's event hooks")
    add_sanitize(rec_p)

    cmpp = perf_sub.add_parser(
        "compare",
        help="benchstat-style A/B of two record sets; exit 1 on a "
             "significant regression beyond --threshold",
    )
    cmpp.add_argument("ref", help="baseline side: a ledger dir, a .jsonl "
                                  "file, a JSON export, or a --label value "
                                  "in the default ledger")
    cmpp.add_argument("new", help="candidate side (same forms as ref)")
    cmpp.add_argument("--threshold", default="5%", metavar="PCT",
                      help="regression threshold: '10%%', '10' (percent) "
                           "or '0.1' (fraction); default 5%%")
    cmpp.add_argument("--metrics", default=None, metavar="NAMES",
                      help="comma-separated metric names to compare "
                           "(default: all known metrics present on both "
                           "sides)")
    cmpp.add_argument("--dir", default=None, metavar="PATH",
                      help="ledger directory used to resolve label "
                           "arguments (default $REPRO_PERF_DIR or .perf)")

    rep_p = perf_sub.add_parser(
        "report",
        help="render the recorded performance trajectory as markdown",
    )
    rep_p.add_argument("--dir", default=None, metavar="PATH",
                       help="ledger directory (default $REPRO_PERF_DIR "
                            "or .perf)")
    rep_p.add_argument("--label", default=None,
                       help="only records with this label")
    rep_p.add_argument("--json", default=None, metavar="PATH",
                       help="also write the records as a validated JSON "
                            "export document (e.g. BENCH_smoke.json)")

    fid_p = sub.add_parser(
        "fidelity",
        help="fidelity observatory: score the paper's claims against a "
             "campaign run and gate on drift (docs/OBSERVABILITY.md)",
    )
    fid_sub = fid_p.add_subparsers(dest="fidelity_command", required=True)

    def add_fidelity_run_knobs(sp):
        sp.add_argument("--jobs", type=int, default=default_jobs(),
                        help="worker processes for the campaign grid "
                             "(default $REPRO_JOBS or 1 = serial)")
        sp.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache")
        sp.add_argument("--claims", default=None, metavar="PATH",
                        help="claim registry (default "
                             "benchmarks/claims.json)")
        sp.add_argument("--perturb", default=None, choices=PERTURBATIONS,
                        help="apply a seeded out-of-band config change "
                             "(gate-proving: 'no-wec' strips the WEC and "
                             "must trip `fidelity check`)")
        sp.add_argument("--dir", default=None, metavar="PATH",
                        help="perf/trajectory directory (default "
                             "$REPRO_PERF_DIR or .perf); campaign cells "
                             "land in its ledger with context=fidelity")
        add_engine(sp)
        add_sanitize(sp)

    frun_p = fid_sub.add_parser(
        "run",
        help="run the fig08–fig17 + tables campaign grid, score every "
             "claim in the registry, write the export/report artifacts",
    )
    frun_p.add_argument("--scale", type=float, default=2e-4,
                        help="instruction scale vs Table 2 (default 2e-4)")
    frun_p.add_argument("--seed", type=int, default=2003)
    frun_p.add_argument("--sections", default=None, metavar="NAMES",
                        help="comma-separated grid sections to run "
                             "(default: all); claims needing an unrun "
                             "section score 'skipped'")
    frun_p.add_argument("--via", default="local",
                        choices=("local", "serve"),
                        help="resolve the grid locally or through a "
                             "running `repro serve`")
    add_client(frun_p)
    frun_p.add_argument("--out", default=None, metavar="PATH",
                        help="write the scored campaign as a JSON export "
                             "(e.g. benchmarks/FIDELITY_baseline.json)")
    frun_p.add_argument("--md", default=None, metavar="PATH",
                        help="render the measured-vs-paper markdown "
                             "report (e.g. docs/FIDELITY.md)")
    add_fidelity_run_knobs(frun_p)

    fchk_p = fid_sub.add_parser(
        "check",
        help="diff a fresh campaign (or --new export) against a "
             "committed baseline; exit 1 on any regressed gate claim",
    )
    fchk_p.add_argument("baseline",
                        help="baseline campaign export (e.g. "
                             "benchmarks/FIDELITY_baseline.json)")
    fchk_p.add_argument("--new", default=None, metavar="PATH",
                        help="pre-recorded campaign export to compare; "
                             "default: run a fresh campaign at the "
                             "baseline's recorded scale/seed/sections")
    fchk_p.add_argument("--threshold", default="10%", metavar="PCT",
                        help="polarity-aware drift threshold: '10%%', "
                             "'10' (percent) or '0.1' (fraction); "
                             "default 10%%")
    add_fidelity_run_knobs(fchk_p)

    frep_p = fid_sub.add_parser(
        "report",
        help="render the recorded campaign trajectory",
    )
    frep_p.add_argument("--dir", default=None, metavar="PATH",
                        help="trajectory directory (default "
                             "$REPRO_PERF_DIR or .perf)")

    return p


def _cmd_list() -> int:
    t = TextTable(
        "benchmarks (Table 2)",
        ["name", "suite", "input set", "whole (M)", "parallel"],
    )
    for info in benchmark_infos():
        t.add_row([
            info.name, info.suite, info.input_set,
            f"{info.whole_minstr:.1f}",
            f"{info.fraction_parallelized * 100:.1f}%",
        ])
    print(t)
    print()
    print("configurations:", ", ".join(CONFIG_NAMES))
    return 0


def _cmd_run(args) -> int:
    params = SimParams(seed=args.seed, scale=args.scale)
    cfg = named_config(args.config, n_tus=args.tus)
    grid = run_grid(
        {args.config: cfg},
        benchmarks=[args.benchmark],
        params=params,
        cache=not args.no_cache,
        manifest_path=args.manifest,
        engine=args.engine,
    )
    result = grid[(args.benchmark, args.config)]
    print(f"machine : {cfg.describe()}")
    print(f"result  : {result.total_cycles:.0f} cycles, ipc={result.ipc:.2f}")
    print(f"memory  : {result.effective_misses} effective misses, "
          f"{result.l1_traffic} L1 accesses, "
          f"{result.mispredict_rate:.1%} branch mispredicts")
    if result.wrong_loads:
        print(f"wrong   : {result.wrong_loads} wrong loads "
              f"({result.wrong_thread_loads} from wrong threads), "
              f"{result.useful_wrong_hits} useful hits, "
              f"{result.prefetches} chained prefetches")
    return 0


def _cmd_compare(args) -> int:
    params = SimParams(seed=args.seed, scale=args.scale)
    wanted = [c.strip() for c in args.configs.split(",") if c.strip()]
    unknown = [c for c in wanted if c not in CONFIG_NAMES]
    if unknown:
        print(f"unknown configuration(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    configs = {"orig": named_config("orig", n_tus=args.tus)}
    for name in wanted:
        configs[name] = named_config(name, n_tus=args.tus)
    grid = run_grid(
        configs,
        benchmarks=[args.benchmark],
        params=params,
        jobs=args.jobs,
        cache=not args.no_cache,
        manifest_path=args.manifest,
        engine=args.engine,
    )
    base = grid[(args.benchmark, "orig")]
    t = TextTable(
        f"{args.benchmark} on {args.tus} TUs (vs orig)",
        ["config", "speedup", "misses", "miss red.", "traffic"],
    )
    t.add_row(["orig", "baseline", base.effective_misses, "-", "-"])
    for name in wanted:
        r = grid[(args.benchmark, name)]
        t.add_row([
            name,
            f"{r.relative_speedup_pct_vs(base):+.1f}%",
            r.effective_misses,
            f"{r.miss_reduction_pct_vs(base):+.1f}%",
            f"{r.traffic_increase_pct_vs(base):+.1f}%",
        ])
    print(t)
    return 0


def _cmd_suite(args) -> int:
    params = SimParams(seed=args.seed, scale=args.scale)
    grid = run_grid(
        {
            "orig": named_config("orig", n_tus=args.tus),
            args.config: named_config(args.config, n_tus=args.tus),
        },
        benchmarks=BENCHMARK_NAMES,
        params=params,
        jobs=args.jobs,
        cache=not args.no_cache,
        manifest_path=args.manifest,
        engine=args.engine,
    )
    t = TextTable(
        f"suite: {args.config} vs orig ({args.tus} TUs, scale {args.scale:g})",
        ["benchmark", "orig cycles", f"{args.config} cycles", "speedup"],
    )
    for bench in BENCHMARK_NAMES:
        base = grid[(bench, "orig")]
        new = grid[(bench, args.config)]
        t.add_row([
            bench,
            f"{base.total_cycles:.0f}",
            f"{new.total_cycles:.0f}",
            f"{new.relative_speedup_pct_vs(base):+.1f}%",
        ])
    avg = suite_average_speedup_pct(grid, "orig", args.config)
    t.add_row(["average", "-", "-", f"{avg:+.1f}%"])
    print(t)
    return 0


#: One exit-code convention for ``trace``/``perf``/``lint`` (satellite of
#: the lint PR: previously three ad-hoc try/except blocks).  Errors that
#: mean the *invocation* was unusable — bad names, unparseable knobs,
#: malformed baseline/export files — exit 2; an accepted invocation that
#: fails while running exits 1.
_USAGE_ERRORS = (ConfigError, WorkloadError, AnalysisError, LintError)


def _checked(label: str, body: Callable[[], int]) -> int:
    """Run a command body under the shared 0/1/2 exit convention."""
    try:
        return body()
    except _USAGE_ERRORS as exc:
        print(f"{label}: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"{label}: {exc}", file=sys.stderr)
        return 1


def _cmd_trace(args) -> int:
    categories = None
    if args.events:
        categories = [c.strip() for c in args.events.split(",") if c.strip()]
    metrics = IntervalMetrics(window=args.window) if args.window > 0 else None
    tracer = RingBufferTracer(
        capacity=args.capacity,
        categories=categories,
        sample=args.sample,
        metrics=metrics,
    )
    params = SimParams(seed=args.seed, scale=args.scale)
    cfg = named_config(args.config, n_tus=args.tus)
    attrib = None
    if args.attrib:
        attrib = AttributionCollector(window=args.window, tracer=tracer)
    # Traced runs bypass the result cache: the cached artifact is the
    # SimResult, not the event stream, and tracing does not change it.
    result = run_simulation(args.benchmark, cfg, params, tracer=tracer,
                            attrib=attrib)
    events = tracer.events()
    out = write_chrome_trace(
        events,
        args.out,
        interval_series=result.interval_series,
        label=f"{args.benchmark} on {args.config} ({args.tus} TUs, "
              f"scale {args.scale:g}, seed {args.seed})",
        attrib_series=attrib.series() if attrib is not None else None,
    )
    print(f"result : {result.total_cycles:.0f} cycles, ipc={result.ipc:.2f}")
    print(f"trace  : {len(events)} events -> {out} "
          f"(open in https://ui.perfetto.dev)")
    if tracer.n_dropped:
        print(f"warning: ring full, {tracer.n_dropped} oldest events "
              f"overwritten (raise --capacity or use --sample/--events)")
    if args.jsonl:
        path = write_jsonl(events, args.jsonl)
        print(f"jsonl  : {path}")
    return 0


def _cmd_explain(args) -> int:
    params = SimParams(seed=args.seed, scale=args.scale)
    # One prebuilt program reused across both runs (and the same seed /
    # scale), so the A/B delta is attributable to the config alone.
    program = build_benchmark(args.benchmark, scale=args.scale)

    def attributed_run(config_name: str):
        # Attributed runs bypass the result cache for the same reason
        # traced runs do: the artifact of interest is the attribution
        # summary, which the cache does not store — and attribution
        # never changes the SimResult itself (test-enforced).
        attrib = AttributionCollector(window=args.window)
        cfg = named_config(config_name, n_tus=args.tus)
        return run_program(program, cfg, params, attrib=attrib)

    result = attributed_run(args.config)
    other = attributed_run(args.vs) if args.vs else None
    if args.format == "json":
        doc = {
            "benchmark": args.benchmark,
            "config": args.config,
            "n_tus": args.tus,
            "seed": args.seed,
            "scale": args.scale,
            "attribution": result.attribution,
        }
        if other is not None:
            doc["vs"] = {"config": args.vs,
                         "attribution": other.attribution}
        print(json.dumps(doc, indent=2))
        return 0
    if other is not None:
        print(explain_vs_report(result, other, top=args.top))
    else:
        print(explain_report(result, top=args.top))
    return 0


def _dict_diff_paths(ref, new, prefix: str = "") -> List[str]:
    """Dotted paths (with both values) where two nested dicts differ."""
    if isinstance(ref, dict) and isinstance(new, dict):
        out: List[str] = []
        for key in sorted(set(ref) | set(new)):
            child = f"{prefix}.{key}" if prefix else str(key)
            out.extend(_dict_diff_paths(ref.get(key), new.get(key), child))
        return out
    if ref != new:
        return [f"{prefix}: oracle={ref!r} fast={new!r}"]
    return []


def _cmd_diff(args) -> int:
    bench_names = (
        [b.strip() for b in args.benchmarks.split(",") if b.strip()]
        if args.benchmarks else list(BENCHMARK_NAMES)
    )
    config_names = [c.strip() for c in args.configs.split(",") if c.strip()]
    known = set(CONFIG_NAMES) | set(ABLATION_CONFIG_NAMES)
    unknown = [c for c in config_names if c not in known]
    if unknown:
        raise ConfigError(f"unknown configuration(s): {', '.join(unknown)}")
    seeds = (
        [int(s) for s in args.seeds.split(",") if s.strip()]
        if args.seeds else [args.seed]
    )
    configs = [named_config(name, n_tus=args.tus) for name in config_names]
    n_cells = 0
    mismatches = []
    t0 = time.perf_counter()
    # Straight run_program calls on both engines: the disk cache is
    # deliberately bypassed (a cached result would compare an engine
    # against itself), and one prebuilt program per benchmark keeps the
    # two sides on the exact same workload object.
    for bench in bench_names:
        program = build_benchmark(bench, scale=args.scale)
        for seed in seeds:
            params = SimParams(seed=seed, scale=args.scale)
            for cfg in configs:
                oracle = run_program(program, cfg, params, engine="oracle")
                fast = run_program(program, cfg, params, engine="fast")
                n_cells += 1
                diffs = _dict_diff_paths(oracle.to_dict(), fast.to_dict())
                if diffs:
                    mismatches.append((bench, cfg.name, seed, diffs))
        print(f"{bench}: {len(seeds) * len(configs)} cell(s) checked")
    wall = time.perf_counter() - t0
    if mismatches:
        print(f"\n{len(mismatches)} of {n_cells} cell(s) diverge between "
              f"engines:", file=sys.stderr)
        for bench, cfg_name, seed, diffs in mismatches:
            print(f"  {bench}/{cfg_name} seed={seed}:", file=sys.stderr)
            for line in diffs[:8]:
                print(f"    {line}", file=sys.stderr)
            if len(diffs) > 8:
                print(f"    ... {len(diffs) - 8} more field(s)",
                      file=sys.stderr)
        return 1
    print(f"\ndiff: {n_cells} cell(s) bit-identical across engines "
          f"({wall:.1f}s)")
    return 0


def _cmd_serve(args) -> int:
    # Lazy import: the service pulls in asyncio machinery most CLI
    # invocations never need.
    import asyncio

    from .serve.server import ServeServer

    server = ServeServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        engine=args.engine,
        cache_dir=args.cache_dir,
        log_path=args.log,
    )

    async def _run() -> None:
        await server.start()
        print(
            f"repro serve: http://{server.host}:{server.port} "
            f"({server.n_workers} worker(s), engine {server.engine}, "
            f"cache {server.queue.cache.root})",
            flush=True,
        )
        await server._stopping.wait()
        await server._shutdown()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down", file=sys.stderr)
    return 0


def _fleet_frame(health, snap, jobs) -> str:
    """One `repro serve top` frame from health + metrics + job list."""
    lat_count, lat_sum = snapshot_hist(snap, M_CELL_LATENCY)
    mean_ms = (lat_sum / lat_count * 1e3) if lat_count else 0.0
    workers = health.get("workers", [])
    alive = sum(1 for w in workers if w.get("alive"))
    busy = sum(1 for w in workers if w.get("busy"))
    lines = [
        f"repro serve top — engine {health.get('engine')}, "
        f"{len(health.get('workers', []))} worker slot(s)",
        "",
        f"workers : {alive} alive, {busy} busy, "
        f"{snapshot_value(snap, M_WORKER_RESPAWNS):.0f} respawn(s)",
        f"queue   : {snapshot_value(snap, M_QUEUE_DEPTH):.0f} pending, "
        f"{snapshot_value(snap, M_CELL_RETRIES):.0f} retrie(s)",
        f"jobs    : "
        f"{snapshot_value(snap, M_JOBS_TOTAL, {'state': 'submitted'}):.0f} "
        f"submitted, "
        f"{snapshot_value(snap, M_JOBS_TOTAL, {'state': 'done'}):.0f} done, "
        f"{snapshot_value(snap, M_JOBS_TOTAL, {'state': 'failed'}):.0f} "
        f"failed",
        f"cells   : "
        f"{snapshot_value(snap, M_CELLS_TOTAL, {'source': 'cache'}):.0f} "
        f"cache / "
        f"{snapshot_value(snap, M_CELLS_TOTAL, {'source': 'dedup'}):.0f} "
        f"dedup / "
        f"{snapshot_value(snap, M_CELLS_TOTAL, {'source': 'run'}):.0f} "
        f"run / "
        f"{snapshot_value(snap, M_CELLS_TOTAL, {'source': 'failed'}):.0f} "
        f"failed",
        f"latency : {lat_count} executed cell(s), "
        f"mean {mean_ms:.1f} ms",
        f"cache   : "
        f"{snapshot_value(snap, M_CACHE_PRUNE_PASSES):.0f} prune pass(es), "
        f"{snapshot_value(snap, M_CACHE_EVICTIONS):.0f} eviction(s)",
    ]
    active = [j for j in jobs if j["state"] in ("queued", "running")]
    shown = active if active else jobs[-5:]
    if shown:
        lines.append("")
        t = TextTable(
            "active jobs" if active else "recent jobs",
            ["job", "tenant", "state", "cells", "resolved", "retries",
             "respawns"],
        )
        for j in shown:
            t.add_row([
                j["job_id"], j["tenant"], j["state"], j["n_cells"],
                j.get("resolved", 0), j.get("retries", 0),
                j.get("respawns", 0),
            ])
        lines.append(str(t))
    return "\n".join(lines)


def _cmd_serve_top(args) -> int:
    from .serve.client import ServeClient

    client = ServeClient(args.host, args.port, timeout=args.timeout)
    if args.once:
        print(_fleet_frame(client.health(), client.metrics(), client.jobs()))
        return 0
    try:
        while True:
            frame = _fleet_frame(client.health(), client.metrics(),
                                 client.jobs())
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_submit(args) -> int:
    from .serve.client import ServeClient
    from .serve.wire import SweepSpec

    bench_names = (
        [b.strip() for b in args.benchmarks.split(",") if b.strip()]
        if args.benchmarks else list(BENCHMARK_NAMES)
    )
    config_names = [c.strip() for c in args.configs.split(",") if c.strip()]
    known = set(CONFIG_NAMES) | set(ABLATION_CONFIG_NAMES)
    unknown = [c for c in config_names if c not in known]
    if unknown:
        raise ConfigError(f"unknown configuration(s): {', '.join(unknown)}")
    spec = SweepSpec(
        benchmarks=tuple(bench_names),
        configs=tuple(
            (name, named_config(name, n_tus=args.tus))
            for name in config_names
        ),
        params=SimParams(seed=args.seed, scale=args.scale),
        engine=args.engine,
        tenant=args.tenant,
    )
    client = ServeClient(args.host, args.port, timeout=args.timeout)
    summary = client.submit(spec)
    job_id = summary["job_id"]
    print(f"job {job_id}: {summary['n_cells']} cell(s) "
          f"({summary['cache_hits']} already cached), "
          f"engine {summary['engine']}, tenant {summary['tenant']}")
    if args.no_wait:
        return 0

    def on_event(event) -> None:
        kind = event.get("kind")
        if kind == "cell-done":
            print(f"  {event['benchmark']}/{event['label']}: "
                  f"{event['source']} ({event.get('wall_s', 0.0):.2f}s)")
        elif kind == "cell-failed":
            print(f"  {event['benchmark']}/{event['label']}: FAILED — "
                  f"{event.get('error')}", file=sys.stderr)
        elif kind == "cell-retried":
            print(f"  {event['benchmark']}/{event['label']}: retrying "
                  f"(attempt {event.get('attempts')})", file=sys.stderr)

    status = client.wait(job_id, on_event=on_event)
    print(f"job {job_id}: {status['state']} — "
          f"{status['cache_hits']} cached, {status['executed']} executed, "
          f"{status['deduped']} deduped, {status['failed']} failed")
    if args.out:
        doc = client.results(job_id)
        Path(args.out).write_text(json.dumps(doc, indent=2, sort_keys=True))
        print(f"results: {args.out}")
    return 0 if status["state"] == "done" else 1


def _cmd_jobs(args) -> int:
    from .serve.client import ServeClient

    client = ServeClient(args.host, args.port, timeout=args.timeout)
    if args.timeline:
        doc = client.timeline()
        path = write_service_trace(doc.get("spans", []), args.timeline,
                                   label=f"{args.host}:{args.port}")
        print(f"timeline: {path} ({len(doc.get('spans', []))} span(s), "
              f"{doc.get('n_dropped', 0)} dropped)")
    if args.job_id is None:
        def listing() -> str:
            jobs = client.jobs()
            if not jobs:
                return "no jobs"
            t = TextTable(
                f"jobs on {args.host}:{args.port}",
                ["job", "tenant", "state", "cells", "cached", "run",
                 "dedup", "failed", "retries", "respawns"],
            )
            for j in jobs:
                t.add_row([
                    j["job_id"], j["tenant"], j["state"], j["n_cells"],
                    j["cache_hits"], j["executed"], j["deduped"],
                    j["failed"], j.get("retries", 0), j.get("respawns", 0),
                ])
            return str(t)

        if args.watch:
            try:
                while True:
                    sys.stdout.write("\x1b[2J\x1b[H" + listing() + "\n")
                    sys.stdout.flush()
                    time.sleep(args.interval)
            except KeyboardInterrupt:
                return 0
        print(listing())
        return 0
    doc = client.job(args.job_id)
    print(f"job {doc['job_id']}: {doc['state']} "
          f"(tenant {doc['tenant']}, engine {doc['engine']})")
    for cell in doc["cells"]:
        line = (f"  {cell['benchmark']}/{cell['label']}: {cell['status']}"
                + (f" ({cell['wall_s']:.2f}s)" if cell["wall_s"] else ""))
        if cell.get("error"):
            line += f" — {cell['error']}"
        print(line)
    return 0


def _cmd_cache_stats(args) -> int:
    stats = DiskCache(args.dir).stats()
    print(f"root    : {stats.root}")
    print(f"entries : {stats.entries}")
    print(f"size    : {stats.total_mb:.1f} MiB ({stats.total_bytes} bytes)")
    if stats.quota_mb is not None:
        print(f"quota   : {stats.quota_mb:g} MiB ($REPRO_CACHE_MAX_MB)")
    else:
        print("quota   : none ($REPRO_CACHE_MAX_MB unset)")
    mib = 1024 * 1024
    print(f"evicted : {stats.evicted_entries} entr(y/ies), "
          f"{stats.evicted_bytes / mib:.1f} MiB over "
          f"{stats.prune_passes} prune pass(es), lifetime")
    return 0


def _cmd_cache_prune(args) -> int:
    cache = DiskCache(args.dir, max_mb=args.max_mb)
    pruned = cache.prune(args.max_mb)
    mib = 1024 * 1024
    print(f"removed : {pruned.removed} entr(y/ies), "
          f"{pruned.freed_bytes / mib:.1f} MiB freed")
    print(f"kept    : {pruned.kept} entr(y/ies), "
          f"{pruned.kept_bytes / mib:.1f} MiB")
    return 0


def _perf_ledger_dir(arg: Optional[str]) -> Path:
    if arg:
        return Path(arg)
    return default_perf_dir() or Path(".perf")


def _cmd_perf_record(args) -> int:
    if args.repeat < 1:
        print("perf record: --repeat must be >= 1", file=sys.stderr)
        return 2
    params = SimParams(seed=args.seed, scale=args.scale)
    cfg = named_config(args.config, n_tus=args.tus)
    engine = args.engine if args.engine is not None else default_engine()
    program = build_benchmark(args.benchmark, scale=args.scale)
    ledger = Ledger(_perf_ledger_dir(args.dir))
    config_fp = config_fingerprint(cfg)
    params_fp = config_fingerprint(params)
    code_token = code_version_token()

    # The orig baseline only feeds the deterministic speedup_pct metric,
    # so one unprofiled in-process run is enough for every repeat.
    baseline = None
    if not args.no_baseline and args.config != "orig":
        baseline = run_program(
            program, named_config("orig", n_tus=args.tus), params
        )

    for i in range(args.repeat):
        profiler = HostProfiler()
        tracer = None
        if args.trace:
            tracer = RingBufferTracer(metrics=IntervalMetrics())
        t0 = time.perf_counter()
        result = run_program(program, cfg, params,
                             tracer=tracer, profiler=profiler,
                             engine=engine)
        wall_s = time.perf_counter() - t0
        speedup_pct = (
            result.relative_speedup_pct_vs(baseline)
            if baseline is not None else None
        )
        record = PerfRecord.from_result(
            result,
            wall_s=wall_s,
            speedup_pct=speedup_pct,
            profile=profiler.snapshot(wall_s),
            peak_rss_kb=peak_rss_kb(),
            context="cli.perf.record",
            label=args.label,
            config_fp=config_fp,
            params_fp=params_fp,
            code_token=code_token,
            engine=engine,
        )
        ledger.append(record)
        eps = record.host.get("events_per_sec", 0.0)
        print(f"run {i + 1}/{args.repeat}: {result.total_cycles:.0f} cycles "
              f"in {wall_s:.3f}s ({eps:,.0f} instr/s"
              + (f", speedup {speedup_pct:+.1f}%" if speedup_pct is not None
                 else "") + ")")
    print(f"ledger : {ledger.path} ({len(ledger)} records)")
    return 0


def _perf_side(spec: str, perf_dir: Path):
    """Resolve one compare operand: a path, else a label in the ledger."""
    path = Path(spec)
    if path.exists():
        return load_records(path)
    records = Ledger(perf_dir).records(label=spec)
    if not records:
        raise AnalysisError(
            f"{spec!r} is neither a readable path nor a label with "
            f"records in {Ledger(perf_dir).path}"
        )
    return records


def _cmd_perf_compare(args) -> int:
    perf_dir = _perf_ledger_dir(args.dir)
    threshold = parse_threshold(args.threshold)
    metrics = None
    if args.metrics:
        metrics = [m.strip() for m in args.metrics.split(",") if m.strip()]
    ref = _perf_side(args.ref, perf_dir)
    new = _perf_side(args.new, perf_dir)
    report = compare_records(ref, new, metrics=metrics)
    print(report.render(threshold))
    regressions = report.regressions(threshold)
    if regressions:
        print(f"\n{len(regressions)} significant regression(s) beyond "
              f"{threshold:g}%:", file=sys.stderr)
        for group, mc in regressions:
            print(f"  {group.benchmark}/{group.config}: {mc.describe()}",
                  file=sys.stderr)
        return 1
    print(f"\nno significant regressions beyond {threshold:g}%")
    return 0


def _cmd_perf_report(args) -> int:
    perf_dir = _perf_ledger_dir(args.dir)
    records = load_records(perf_dir)
    if args.label is not None:
        records = [r for r in records if r.label == args.label]
        if not records:
            print(f"perf report: no records labelled {args.label!r} in "
                  f"{perf_dir}", file=sys.stderr)
            return 2

    groups = {}
    for r in records:
        groups.setdefault((r.benchmark, r.config), []).append(r)

    print("# Performance trajectory")
    print()
    print(f"_{len(records)} record(s) from `{perf_dir}`_")
    for (bench, config), rs in sorted(groups.items()):
        print()
        print(f"## {bench} / {config}")
        print()
        print("| recorded (UTC) | code | label | cycles | ipc | "
              "wall (s) | instr/s | speedup |")
        print("|---|---|---|--:|--:|--:|--:|--:|")
        for r in rs:
            when = time.strftime("%Y-%m-%d %H:%M", time.gmtime(r.ts))
            code = (r.provenance.get("code_token") or
                    r.provenance.get("git_sha") or "")[:8]
            speedup = r.sim.get("speedup_pct")
            print("| {} | {} | {} | {:.0f} | {:.3f} | {:.3f} | {:,.0f} | {} |"
                  .format(
                      when, code or "-", r.label or "-",
                      r.sim.get("total_cycles", 0.0),
                      r.sim.get("ipc", 0.0),
                      r.host.get("wall_s", 0.0),
                      r.host.get("events_per_sec", 0.0),
                      f"{speedup:+.1f}%" if speedup is not None else "-",
                  ))
        latest = rs[-1]
        if latest.profile:
            print()
            print("Latest host profile (sections nest; % of total wall):")
            print()
            by_pct = sorted(latest.profile.items(),
                            key=lambda kv: -kv[1].get("pct", 0.0))
            for name, entry in by_pct:
                pct = entry.get("pct")
                pct_s = f"{pct:5.1f}%" if pct is not None else "     -"
                print(f"- `{name}`: {pct_s}  "
                      f"({entry['s']:.3f}s / {entry['calls']} calls)")

    if args.json:
        path = write_export(records, args.json)
        print()
        print(f"export : {path} ({len(records)} records)")
    return 0


def _fidelity_campaign(args, scale: float, seed: int,
                       sections: Optional[List[str]]) -> Dict:
    """Shared campaign invocation for ``fidelity run`` and ``check``."""
    client = None
    if getattr(args, "via", "local") == "serve":
        from .serve.client import ServeClient
        client = ServeClient(args.host, args.port, timeout=args.timeout)
    if args.dir:
        # Env-var propagation (like --sanitize): forked grid workers
        # read $REPRO_PERF_DIR, so the ledger lands under --dir.
        os.environ["REPRO_PERF_DIR"] = str(args.dir)
    done = {"n": 0}

    def progress(bench: str, label: str) -> None:
        done["n"] += 1
        if done["n"] % 50 == 0:
            print(f"  ... {done['n']} cells resolved", file=sys.stderr)

    return run_campaign(
        claims_path=args.claims,
        scale=scale,
        seed=seed,
        jobs=args.jobs,
        engine=args.engine,
        cache=False if args.no_cache else None,
        sections=sections,
        perturb=args.perturb,
        telemetry=standard_registry(),
        progress=progress if client is None else None,
        client=client,
    )


def _print_fidelity_summary(doc: Dict) -> None:
    summary = doc.get("summary", {})
    gate, track = summary.get("gate", {}), summary.get("track", {})
    print(f"fidelity campaign: {doc.get('n_cells', 0)} cells, "
          f"sections {', '.join(doc.get('sections', []))}")
    print(f"  gate  claims: {gate.get('pass', 0)} pass, "
          f"{gate.get('fail', 0)} fail, {gate.get('skipped', 0)} skipped")
    print(f"  track claims: {track.get('pass', 0)} pass, "
          f"{track.get('fail', 0)} fail, {track.get('skipped', 0)} skipped")
    for claim in doc.get("claims", []):
        if claim["status"] == "fail":
            band = claim.get("band")
            band_s = f" band {band}" if band else ""
            print(f"  [fail] {claim['id']}: measured "
                  f"{claim.get('measured')}{band_s} (paper: "
                  f"{claim.get('paper') or '-'})")
        elif claim["status"] == "skipped":
            print(f"  [skip] {claim['id']}: {claim.get('reason')}")


def _cmd_fidelity_run(args) -> int:
    sections = None
    if args.sections:
        sections = [s.strip() for s in args.sections.split(",") if s.strip()]
    doc = _fidelity_campaign(args, args.scale, args.seed, sections)
    _print_fidelity_summary(doc)
    trend_path = append_trend(doc, _perf_ledger_dir(args.dir))
    print(f"trajectory: {trend_path}")
    if args.out:
        out = Path(args.out)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
        print(f"export : {out}")
    if args.md:
        md = Path(args.md)
        if md.parent != Path(""):
            md.parent.mkdir(parents=True, exist_ok=True)
        md.write_text(render_markdown(doc), encoding="utf-8")
        print(f"report : {md}")
    return 0


def _cmd_fidelity_check(args) -> int:
    base = load_fidelity_export(args.baseline)
    threshold = parse_threshold(args.threshold)
    if args.new:
        new = load_fidelity_export(args.new)
    else:
        params = base.get("params", {})
        sections = [s for s in base.get("sections", []) if s != "tables"]
        new = _fidelity_campaign(
            args,
            float(params.get("scale", 2e-4)),
            int(params.get("seed", 2003)),
            sections or None,
        )
    diff = diff_exports(base, new, threshold)
    print(diff.render())
    return 1 if diff.gate_regressions else 0


def _cmd_fidelity_report(args) -> int:
    print(render_trend(load_trend(_perf_ledger_dir(args.dir))))
    return 0


def _cmd_lint(args) -> int:
    if args.list_rules:
        for rule in RULES:
            scopes = ", ".join(rule.scopes) if rule.scopes else "everywhere"
            print(f"{rule.id}  {rule.title}")
            print(f"        scope: {scopes}")
            print(f"        {rule.rationale}")
        return 0
    rules = None
    if args.rule:
        rules = [r.strip() for spec in args.rule for r in spec.split(",")
                 if r.strip()]
    baseline = Path(args.baseline) if args.baseline else None
    if args.write_baseline:
        # Regenerate against the *unbaselined* findings so the new file
        # is complete, not a delta on top of the old one.
        report = lint_paths(args.paths, rules=rules, flow=args.flow)
        write_baseline(report.findings, Path(args.write_baseline), Path.cwd())
        print(f"wrote {len(report.findings)} entr(y/ies) to "
              f"{args.write_baseline} — fill in every reason before use")
        return 0
    report = lint_paths(args.paths, rules=rules, baseline=baseline,
                        flow=args.flow)
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    elif args.format == "sarif":
        from .lint.sarif import render_sarif

        print(json.dumps(render_sarif(report), indent=2))
    else:
        print(report.render_text())
    return report.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "sanitize", False):
        # Env-var (not kwarg) propagation so forked sweep workers and
        # every nested run_simulation pick the sanitizer up too.
        os.environ[SANITIZE_ENV_VAR] = "1"
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "suite":
            return _cmd_suite(args)
        if args.command == "diff":
            return _checked("diff", lambda: _cmd_diff(args))
        if args.command == "trace":
            return _checked("trace", lambda: _cmd_trace(args))
        if args.command == "explain":
            return _checked("explain", lambda: _cmd_explain(args))
        if args.command == "lint":
            return _checked("lint", lambda: _cmd_lint(args))
        if args.command == "serve":
            if getattr(args, "serve_command", None) == "top":
                return _checked("serve top", lambda: _cmd_serve_top(args))
            return _checked("serve", lambda: _cmd_serve(args))
        if args.command == "submit":
            return _checked("submit", lambda: _cmd_submit(args))
        if args.command == "jobs":
            return _checked("jobs", lambda: _cmd_jobs(args))
        if args.command == "cache":
            if args.cache_command == "stats":
                return _checked("cache stats", lambda: _cmd_cache_stats(args))
            if args.cache_command == "prune":
                return _checked("cache prune", lambda: _cmd_cache_prune(args))
        if args.command == "perf":
            if args.perf_command == "record":
                return _checked("perf record", lambda: _cmd_perf_record(args))
            if args.perf_command == "compare":
                return _checked("perf compare", lambda: _cmd_perf_compare(args))
            if args.perf_command == "report":
                return _checked("perf report", lambda: _cmd_perf_report(args))
        if args.command == "fidelity":
            if args.fidelity_command == "run":
                return _checked("fidelity run",
                                lambda: _cmd_fidelity_run(args))
            if args.fidelity_command == "check":
                return _checked("fidelity check",
                                lambda: _cmd_fidelity_check(args))
            if args.fidelity_command == "report":
                return _checked("fidelity report",
                                lambda: _cmd_fidelity_report(args))
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0
    except ReproError as exc:
        # A run that started but could not finish: exit 1, never a
        # traceback (usage errors return 2 from the command handlers).
        print(f"repro: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
