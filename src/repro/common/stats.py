"""Counters and summary statistics used throughout the simulator.

The paper reports *relative speedups* and *normalized execution times*
against a baseline configuration, with benchmark averages computed as an
"execution time weighted average ... [that] gives equal importance to
each benchmark program independent of its total execution time"
(Lilja, *Measuring Computer Performance*, 2000).  Normalising every
benchmark to equal weight and then averaging total time is exactly the
harmonic mean of the per-benchmark speedups; both that and the plain
(arithmetic/geometric) means are provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from .errors import AnalysisError

__all__ = [
    "Counter",
    "CounterGroup",
    "speedup",
    "relative_speedup_pct",
    "normalized_time",
    "weighted_mean_speedup",
    "geometric_mean",
    "arithmetic_mean",
    "Histogram",
]


class Counter:
    """A single named event counter.

    A thin wrapper over an int that supports ``+=`` style accumulation
    while remaining cheap in hot loops (callers typically keep a local
    alias and call :meth:`add`).
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = int(value)

    def add(self, n: int = 1) -> None:
        """Increment by ``n`` (default 1)."""
        self.value += n

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class CounterGroup:
    """A named collection of :class:`Counter` objects.

    Components register the counters they maintain; the simulation driver
    collects all groups into a flat result mapping at the end of a run.
    """

    __slots__ = ("prefix", "_counters")

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self._counters: Dict[str, Counter] = {}

    def counter(self, name: str) -> Counter:
        """Get (or lazily create) the counter called ``name``."""
        c = self._counters.get(name)
        if c is None:
            c = Counter(name)
            self._counters[name] = c
        return c

    def __getitem__(self, name: str) -> int:
        return self._counters[name].value if name in self._counters else 0

    def __iter__(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def reset(self) -> None:
        """Zero every counter in the group."""
        for c in self._counters.values():
            c.reset()

    def as_dict(self, qualified: bool = True) -> Dict[str, int]:
        """Export counter values, optionally qualified by the group prefix."""
        if qualified:
            return {f"{self.prefix}.{c.name}": c.value for c in self._counters.values()}
        return {c.name: c.value for c in self._counters.values()}

    def merge_from(self, other: "CounterGroup") -> None:
        """Accumulate the values of ``other`` into this group (by name)."""
        for c in other:
            self.counter(c.name).add(c.value)

    def __repr__(self) -> str:
        return f"CounterGroup({self.prefix!r}, {self.as_dict(qualified=False)})"


def speedup(base_time: float, new_time: float) -> float:
    """Classic speedup: baseline execution time over new execution time."""
    if new_time <= 0:
        raise AnalysisError(f"non-positive execution time: {new_time}")
    return base_time / new_time


def relative_speedup_pct(base_time: float, new_time: float) -> float:
    """Relative speedup in percent, as plotted in Figures 9–12, 15, 16.

    ``+10.0`` means the new configuration is 10% faster (takes
    ``base/1.10`` of the time); negative values are slowdowns.
    """
    return (speedup(base_time, new_time) - 1.0) * 100.0


def normalized_time(base_time: float, new_time: float) -> float:
    """Execution time normalized to the baseline (Figures 13 and 14)."""
    if base_time <= 0:
        raise AnalysisError(f"non-positive baseline time: {base_time}")
    return new_time / base_time


def weighted_mean_speedup(
    base_times: Sequence[float], new_times: Sequence[float]
) -> float:
    """Execution-time-weighted mean speedup over a benchmark suite.

    Each benchmark is first normalized to unit baseline time (equal
    importance regardless of its absolute run length, per the paper's
    methodology), then total normalized baseline time is divided by total
    normalized new time.  Algebraically this is the harmonic mean of the
    per-benchmark speedups.
    """
    if len(base_times) != len(new_times):
        raise AnalysisError("mismatched benchmark lists")
    if not base_times:
        raise AnalysisError("empty benchmark list")
    total = 0.0
    for b, n in zip(base_times, new_times):
        total += n / b if b > 0 else _raise_nonpositive(b)
    return len(base_times) / total


def _raise_nonpositive(value: float) -> float:
    raise AnalysisError(f"non-positive execution time: {value}")


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (for ratios)."""
    vals = list(values)
    if not vals:
        raise AnalysisError("geometric mean of empty sequence")
    prod = 1.0
    for v in vals:
        if v <= 0:
            raise AnalysisError(f"geometric mean requires positive values, got {v}")
        prod *= v
    return prod ** (1.0 / len(vals))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain arithmetic mean."""
    vals = list(values)
    if not vals:
        raise AnalysisError("arithmetic mean of empty sequence")
    return sum(vals) / len(vals)


@dataclass
class Histogram:
    """A tiny fixed-bucket histogram for latency/run-length distributions."""

    edges: List[float] = field(default_factory=lambda: [1, 2, 4, 8, 16, 32, 64, 128, 256])
    counts: List[int] = field(default_factory=list)
    overflow: int = 0
    total: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * len(self.edges)
        if len(self.counts) != len(self.edges):
            raise AnalysisError("histogram counts/edges length mismatch")

    def record(self, value: float) -> None:
        """Record one observation."""
        self.total += 1
        for i, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[i] += 1
                return
        self.overflow += 1

    def fractions(self) -> List[float]:
        """Per-bucket fraction of the in-range observations.

        Overflow observations are excluded from the denominator as well
        as the buckets, so the fractions sum to 1 whenever any in-range
        observation exists.
        """
        in_range = self.total - self.overflow
        if in_range <= 0:
            return [0.0] * len(self.edges)
        return [c / in_range for c in self.counts]

    def merge_from(self, other: "Histogram") -> None:
        """Accumulate another histogram with identical edges."""
        if other.edges != self.edges:
            raise AnalysisError("cannot merge histograms with different edges")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.overflow += other.overflow
        self.total += other.total
