"""Exception hierarchy for the WEC reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigError(ReproError):
    """A configuration object is internally inconsistent.

    Raised by the ``validate()`` methods on the configuration dataclasses
    in :mod:`repro.common.config` — e.g. a cache whose size is not a
    multiple of ``block_size * assoc``, or a machine whose total issue
    bandwidth does not match the experiment's constraint.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent state at run time."""


class WorkloadError(ReproError):
    """A workload/benchmark model was mis-specified or is unknown."""


class SweepError(SimulationError):
    """One or more cells of a sweep grid failed to execute.

    Raised by :func:`repro.sim.executor.run_cells` (and therefore by
    :func:`repro.sim.sweep.run_grid`) after the whole grid has been
    attempted.  The message names every failing ``(benchmark, label)``
    cell; ``failures`` holds the structured
    :class:`~repro.sim.executor.CellFailure` records and ``outcome`` the
    partial :class:`~repro.sim.executor.SweepOutcome` with every cell
    that *did* complete.
    """

    def __init__(self, message: str, failures=None, outcome=None) -> None:
        super().__init__(message)
        self.failures = list(failures) if failures is not None else []
        self.outcome = outcome


class AnalysisError(ReproError):
    """Result post-processing failed (mismatched runs, empty input, ...)."""


class ServeError(ReproError):
    """The sweep service could not honour a request.

    Raised by :mod:`repro.serve` for client-side problems — an
    unreachable server, a submit the server rejected, a job id that does
    not exist — and by the wire layer (as :class:`WireError`) for
    payloads that do not decode.  Server-internal cell failures are
    never exceptions on the service boundary: they are reported as
    structured per-cell failure records in the job status.
    """


class WireError(ServeError):
    """A wire payload (submit spec, cell request/response) is malformed.

    The message names the offending field; the server maps this to a
    structured 4xx response, never a 500 or a dead connection.
    """


class LintError(ReproError):
    """A ``repro lint`` invocation was unusable (usage error, exit 2).

    Raised by :mod:`repro.lint` for problems with the *invocation* rather
    than the linted code: an unknown rule id, a missing path, a source
    file that does not parse, or a malformed baseline file (including a
    baselined entry without a justification reason).  Findings in the
    linted code are never exceptions — they are returned as data and
    reported with exit code 1.
    """
