"""Exception hierarchy for the WEC reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigError(ReproError):
    """A configuration object is internally inconsistent.

    Raised by the ``validate()`` methods on the configuration dataclasses
    in :mod:`repro.common.config` — e.g. a cache whose size is not a
    multiple of ``block_size * assoc``, or a machine whose total issue
    bandwidth does not match the experiment's constraint.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent state at run time."""


class WorkloadError(ReproError):
    """A workload/benchmark model was mis-specified or is unknown."""


class AnalysisError(ReproError):
    """Result post-processing failed (mismatched runs, empty input, ...)."""
