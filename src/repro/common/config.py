"""Configuration dataclasses for every simulated component.

The defaults reproduce the paper's §4.1/§5.2 setup:

* per-TU 4-way 1024-entry BTB, gshare-class predictor;
* 128-entry fully-associative speculative memory buffer;
* 32KB 2-way L1 I-cache per TU;
* default L1 D-cache: 8KB direct-mapped, 64-byte blocks;
* default WEC: 8 entries, fully associative, L1 block size;
* shared unified L2: 512KB 4-way, 128-byte blocks;
* 200-cycle round-trip memory latency;
* fork delay 4 cycles + 2 cycles per forwarded value;
* default machine for the WEC experiments: 8 TUs, each 8-issue
  out-of-order with 64-entry ROB and LSQ, 8 INT ALUs, 4 INT mult,
  8 FP adders, 4 FP mult.

All dataclasses are frozen; use :func:`dataclasses.replace` to derive
variants (the sweep helpers in :mod:`repro.sim.sweep` do exactly that).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple, Union

from .errors import ConfigError
from .units import is_pow2, parse_size

__all__ = [
    "SidecarKind",
    "CacheConfig",
    "SidecarConfig",
    "BranchPredictorConfig",
    "FuncUnitMix",
    "ThreadUnitConfig",
    "MemorySystemConfig",
    "WrongExecutionConfig",
    "MachineConfig",
    "SimParams",
    "DEFAULT_L1D",
    "DEFAULT_L1I",
    "DEFAULT_L2",
]


class SidecarKind(enum.Enum):
    """What (if anything) sits beside each TU's L1 data cache."""

    NONE = "none"
    #: Jouppi-style victim cache (configurations ``vc`` and ``wth-wp-vc``).
    VICTIM = "vc"
    #: The paper's Wrong Execution Cache (configuration ``wth-wp-wec``).
    WEC = "wec"
    #: Tagged next-line prefetch buffer (configuration ``nlp``).
    PREFETCH = "nlp"
    #: Stream-detecting prefetcher (extension configuration
    #: ``stream-pf``; not in the paper).
    STREAM = "streampf"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one set-associative cache.

    Parameters
    ----------
    size:
        Total capacity in bytes (accepts ``"8K"`` style strings).
    assoc:
        Set associativity (1 = direct mapped).
    block_size:
        Line size in bytes; must be a power of two.
    hit_latency:
        Cycles for a hit (load-to-use).
    name:
        Label used in statistics output.
    """

    size: int = 8 * 1024
    assoc: int = 1
    block_size: int = 64
    hit_latency: int = 1
    name: str = "cache"

    def __post_init__(self) -> None:
        object.__setattr__(self, "size", parse_size(self.size))
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent geometry."""
        if self.assoc < 1:
            raise ConfigError(f"{self.name}: associativity must be >= 1")
        if not is_pow2(self.block_size):
            raise ConfigError(f"{self.name}: block size {self.block_size} not a power of two")
        if self.size <= 0:
            raise ConfigError(f"{self.name}: size must be positive")
        if self.size % (self.block_size * self.assoc) != 0:
            raise ConfigError(
                f"{self.name}: size {self.size} is not a multiple of "
                f"block_size*assoc = {self.block_size * self.assoc}"
            )
        if not is_pow2(self.n_sets):
            raise ConfigError(f"{self.name}: set count {self.n_sets} not a power of two")
        if self.hit_latency < 0:
            raise ConfigError(f"{self.name}: negative hit latency")

    @property
    def n_blocks(self) -> int:
        """Total number of block frames."""
        return self.size // self.block_size

    @property
    def n_sets(self) -> int:
        """Number of sets (frames / associativity)."""
        return self.n_blocks // self.assoc

    def scaled(self, factor: float) -> "CacheConfig":
        """Return a copy with capacity scaled by ``factor`` (kept legal)."""
        new_size = int(self.size * factor)
        granule = self.block_size * self.assoc
        new_size = max(granule, (new_size // granule) * granule)
        return replace(self, size=new_size)


@dataclass(frozen=True)
class SidecarConfig:
    """A small fully-associative structure beside the L1D (WEC / VC / PB).

    ``entries`` is the number of blocks; the block size always matches the
    L1 data cache it is attached to (the paper keeps them equal).
    """

    kind: SidecarKind = SidecarKind.NONE
    entries: int = 8

    def __post_init__(self) -> None:
        if self.kind is not SidecarKind.NONE and self.entries < 1:
            raise ConfigError("sidecar must have at least one entry")


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Per-TU branch prediction resources (§4.1)."""

    #: ``"gshare"``, ``"bimodal"``, ``"twolevel"`` or ``"combining"``.
    #: Bimodal is the default: with per-TU private predictors and short
    #: MinneSPEC-scale regions, per-PC counters train in a handful of
    #: visits, whereas global-history tables never warm up.
    kind: str = "bimodal"
    #: log2 of the pattern-history / counter table size.
    table_bits: int = 12
    btb_entries: int = 1024
    btb_assoc: int = 4
    ras_entries: int = 8
    #: Pipeline refill penalty charged per mispredicted branch.
    mispredict_penalty: int = 7

    def __post_init__(self) -> None:
        if self.kind not in ("gshare", "bimodal", "twolevel", "combining"):
            raise ConfigError(f"unknown predictor kind {self.kind!r}")
        if not 4 <= self.table_bits <= 24:
            raise ConfigError("predictor table_bits out of range [4, 24]")
        if self.btb_entries % self.btb_assoc != 0:
            raise ConfigError("BTB entries must be a multiple of associativity")
        if self.mispredict_penalty < 0:
            raise ConfigError("negative mispredict penalty")


@dataclass(frozen=True)
class FuncUnitMix:
    """Functional-unit counts for one thread unit (Table 3 / §5.2)."""

    int_alu: int = 8
    int_mult: int = 4
    fp_alu: int = 8
    fp_mult: int = 4

    def __post_init__(self) -> None:
        for name in ("int_alu", "int_mult", "fp_alu", "fp_mult"):
            if getattr(self, name) < 1:
                raise ConfigError(f"functional unit count {name} must be >= 1")


@dataclass(frozen=True)
class ThreadUnitConfig:
    """One thread processing unit: an out-of-order superscalar core."""

    issue_width: int = 8
    rob_size: int = 64
    lsq_size: int = 64
    func_units: FuncUnitMix = field(default_factory=FuncUnitMix)
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(size=8 * 1024, assoc=1, block_size=64, name="l1d")
    )
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(size=32 * 1024, assoc=2, block_size=64, name="l1i")
    )
    sidecar: SidecarConfig = field(default_factory=SidecarConfig)
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    #: Fully-associative speculative memory buffer entries (§4.1).
    mem_buffer_entries: int = 128
    #: Load/store ports into the L1D.
    mem_ports: int = 2

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ConfigError("issue width must be >= 1")
        if self.rob_size < self.issue_width:
            raise ConfigError("ROB must hold at least one issue group")
        if self.lsq_size < 1:
            raise ConfigError("LSQ must have at least one entry")
        if self.mem_buffer_entries < 1:
            raise ConfigError("memory buffer must have at least one entry")
        if self.mem_ports < 1:
            raise ConfigError("need at least one memory port")


@dataclass(frozen=True)
class MemorySystemConfig:
    """Shared L2 and main memory (§4.1)."""

    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size=512 * 1024, assoc=4, block_size=128, hit_latency=12, name="l2"
        )
    )
    #: Round-trip latency of a main-memory access, in cycles.
    memory_latency: int = 200

    def __post_init__(self) -> None:
        if self.memory_latency <= self.l2.hit_latency:
            raise ConfigError("memory latency must exceed L2 hit latency")


@dataclass(frozen=True)
class WrongExecutionConfig:
    """Which kinds of wrong execution the machine performs (§3.1).

    ``wrong_path``
        Continue issuing ready loads down a mispredicted branch path even
        after the branch resolves (configuration family ``wp``).
    ``wrong_thread``
        Aborted speculative threads keep executing (no fork, no
        write-back) until they kill themselves (family ``wth``).
    """

    wrong_path: bool = False
    wrong_thread: bool = False

    @property
    def any(self) -> bool:
        """True when either form of wrong execution is enabled."""
        return self.wrong_path or self.wrong_thread


@dataclass(frozen=True)
class MachineConfig:
    """A complete superthreaded machine."""

    name: str = "orig"
    n_thread_units: int = 8
    tu: ThreadUnitConfig = field(default_factory=ThreadUnitConfig)
    mem: MemorySystemConfig = field(default_factory=MemorySystemConfig)
    wrong_exec: WrongExecutionConfig = field(default_factory=WrongExecutionConfig)
    #: Cycles to initiate a new thread (register copy + PC forward), §4.1.
    fork_delay: int = 4
    #: Extra cycles per value forwarded to a newly forked thread.
    comm_cycles_per_value: int = 2

    def __post_init__(self) -> None:
        if self.n_thread_units < 1:
            raise ConfigError("need at least one thread unit")
        if self.fork_delay < 0 or self.comm_cycles_per_value < 0:
            raise ConfigError("negative fork/communication delay")
        if self.tu.l1d.block_size > self.mem.l2.block_size:
            raise ConfigError("L1 block size must not exceed L2 block size")

    @property
    def total_issue_width(self) -> int:
        """Aggregate issue bandwidth across all TUs."""
        return self.n_thread_units * self.tu.issue_width

    def with_thread_units(self, n: int) -> "MachineConfig":
        """Copy of this machine with a different TU count."""
        return replace(self, n_thread_units=n)

    def describe(self) -> str:
        """One-line human-readable summary."""
        side = self.tu.sidecar
        side_txt = (
            "no sidecar"
            if side.kind is SidecarKind.NONE
            else f"{side.kind.value}({side.entries} entries)"
        )
        we = self.wrong_exec
        we_txt = (
            "+".join(
                t
                for t, on in (("wp", we.wrong_path), ("wth", we.wrong_thread))
                if on
            )
            or "no wrong exec"
        )
        return (
            f"{self.name}: {self.n_thread_units}TU x {self.tu.issue_width}-issue, "
            f"L1D {self.tu.l1d.size // 1024}K/{self.tu.l1d.assoc}-way/"
            f"{self.tu.l1d.block_size}B, L2 {self.mem.l2.size // 1024}K, "
            f"{side_txt}, {we_txt}"
        )


@dataclass(frozen=True)
class SimParams:
    """Global simulation parameters.

    ``scale`` shrinks each benchmark's dynamic instruction count relative
    to Table 2 of the paper (which lists 0.5–1.8 *billion* instructions).
    The default ``scale=2e-4`` (the calibration point of the shipped
    benchmark models) yields runs of roughly 80k–370k instructions —
    large enough for the cache behaviour to emerge, small enough for a
    full figure sweep to complete in seconds in pure Python (the
    MinneSPEC philosophy applied one more time).
    """

    seed: int = 2003
    scale: float = 2e-4
    #: Overlap model: how many outstanding misses a TU can sustain per
    #: 16 ROB entries (memory-level parallelism heuristic).
    mlp_per_16_rob: float = 1.0
    #: Cap on modelled memory-level parallelism.
    mlp_cap: float = 4.0
    #: Record per-region timing detail in results.
    record_regions: bool = False
    #: Leading invocations executed untimed to warm caches, predictors
    #: and the L2 before measurement begins (statistics are reset when
    #: the warm-up completes).  Standard simulator practice; the paper
    #: runs its benchmarks to completion so cold-start effects vanish
    #: into the billion-instruction runs.
    warmup_invocations: int = 1
    #: Cycles charged on the first demand use of a block brought in by a
    #: *next-line prefetch* (nlp buffer or WEC chain): the prefetch
    #: launches only one use-gap before the demand reference, so part of
    #: its fill latency is still outstanding when the consumer arrives.
    #: Wrong-execution fills launch much earlier (at branch resolution /
    #: during the following sequential region) and pay nothing.
    prefetch_late_cycles: float = 6.0
    #: Lateness charge when the next-line prefetch was serviced by main
    #: memory: on a fast-moving stream the ~200-cycle fill is still
    #: mostly outstanding at the demand reference.  Wrong-execution
    #: fills, launched at branch resolution or while the following
    #: sequential code runs, have far more lead time and pay nothing.
    prefetch_late_far_cycles: float = 150.0
    #: Fraction of each wrong-execution fill's latency charged as L1
    #: port/MSHR occupancy when the fill installs into the L1.  A fill
    #: holds an MSHR and the fill port for its whole latency (a memory
    #: fill ~17x longer than an L2 fill), delaying demand misses; the
    #: WEC services wrong loads on its own parallel datapath (Figure 5),
    #: so WEC configurations never pay this charge.
    wrong_fill_mshr_fraction: float = 0.75

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.scale > 1:
            raise ConfigError("scale must be in (0, 1]")
        if self.mlp_per_16_rob <= 0 or self.mlp_cap < 1:
            raise ConfigError("invalid MLP model parameters")
        if not 0.0 <= self.wrong_fill_mshr_fraction <= 1.0:
            raise ConfigError("wrong-fill MSHR fraction outside [0, 1]")
        if self.warmup_invocations < 0:
            raise ConfigError("negative warm-up invocation count")
        if self.prefetch_late_cycles < 0 or self.prefetch_late_far_cycles < 0:
            raise ConfigError("negative prefetch lateness charge")


#: Paper-default L1 data cache (§5.2): 8KB direct-mapped, 64B blocks.
DEFAULT_L1D = CacheConfig(size=8 * 1024, assoc=1, block_size=64, name="l1d")
#: Paper-default L1 instruction cache (§4.1): 32KB 2-way.
DEFAULT_L1I = CacheConfig(size=32 * 1024, assoc=2, block_size=64, name="l1i")
#: Paper-default unified L2 (§4.1): 512KB 4-way, 128B blocks.
DEFAULT_L2 = CacheConfig(size=512 * 1024, assoc=4, block_size=128, hit_latency=12, name="l2")
