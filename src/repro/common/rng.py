"""Deterministic random-number stream management.

Every stochastic component of the simulator (workload address patterns,
branch-outcome streams, wrong-path convergence draws, ...) pulls from a
named child stream derived from a single experiment seed, so that:

* two runs with the same seed are bit-identical regardless of which
  configurations are simulated (streams do not interleave), and
* changing one component's draw count does not perturb the others.

This is the standard "seed-sequence spawning" discipline recommended for
reproducible parallel Monte-Carlo work.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["StreamFactory", "stable_hash32"]


def stable_hash32(text: str) -> int:
    """A process-stable 32-bit hash of ``text`` (CRC32).

    Python's built-in ``hash`` is salted per process, so it must never be
    used to derive seeds.  CRC32 is stable, fast and good enough for
    stream separation when combined with ``SeedSequence``.
    """
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


class StreamFactory:
    """Factory producing named, independent ``numpy`` generators.

    Parameters
    ----------
    seed:
        The experiment master seed.

    Examples
    --------
    >>> f = StreamFactory(42)
    >>> g1 = f.stream("mcf/loads")
    >>> g2 = f.stream("mcf/branches")
    >>> g1 is not g2
    True
    >>> # Same name -> same stream state at creation, from a fresh factory.
    >>> f2 = StreamFactory(42)
    >>> bool(np.all(f2.stream("mcf/loads").integers(0, 2**30, 8)
    ...             == StreamFactory(42).stream("mcf/loads").integers(0, 2**30, 8)))
    True
    """

    __slots__ = ("_seed", "_cache")

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._cache: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this factory was constructed with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object (its state advances as it is consumed).
        """
        gen = self._cache.get(name)
        if gen is None:
            ss = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(stable_hash32(name),)
            )
            gen = np.random.Generator(np.random.PCG64(ss))
            self._cache[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name`` with pristine state.

        Unlike :meth:`stream`, the result is not cached; callers that
        need replayable sub-streams (e.g. regenerating the same iteration
        trace twice) should use this.
        """
        ss = np.random.SeedSequence(
            entropy=self._seed, spawn_key=(stable_hash32(name),)
        )
        return np.random.Generator(np.random.PCG64(ss))

    def child(self, name: str) -> "StreamFactory":
        """Derive a child factory namespaced by ``name``.

        Children with distinct names never collide with each other or
        with the parent's direct streams.
        """
        return StreamFactory((self._seed * 0x9E3779B1 + stable_hash32(name)) & 0x7FFFFFFF)
