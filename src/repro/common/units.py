"""Size/quantity parsing and formatting helpers.

The paper specifies cache sizes as "8K", "512KB", block sizes in bytes,
and latencies in cycles.  These helpers normalise human-readable strings
to integers and back, and validate power-of-two constraints that the
cache geometry code relies on.
"""

from __future__ import annotations

import re
from typing import Union

from .errors import ConfigError

__all__ = [
    "parse_size",
    "format_size",
    "is_pow2",
    "log2_exact",
    "ceil_div",
    "align_down",
    "align_up",
]

_SIZE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([KMGkmg]?)(?:[iI]?[bB])?\s*$")

_MULT = {"": 1, "k": 1024, "m": 1024**2, "g": 1024**3}


def parse_size(value: Union[int, str]) -> int:
    """Parse a size such as ``"8K"``, ``"512KB"``, ``"64"`` or ``8192``.

    Integers pass through unchanged.  Suffixes are binary (K = 1024).

    >>> parse_size("8K")
    8192
    >>> parse_size("512KB")
    524288
    >>> parse_size(64)
    64
    """
    if isinstance(value, bool):  # bool is an int subclass; reject it.
        raise ConfigError(f"not a size: {value!r}")
    if isinstance(value, int):
        if value < 0:
            raise ConfigError(f"negative size: {value}")
        return value
    m = _SIZE_RE.match(str(value))
    if not m:
        raise ConfigError(f"cannot parse size: {value!r}")
    number, suffix = m.groups()
    result = float(number) * _MULT[suffix.lower()]
    if result != int(result):
        raise ConfigError(f"size is not an integral number of bytes: {value!r}")
    return int(result)


def format_size(nbytes: int) -> str:
    """Format a byte count the way the paper writes it (``8K``, ``512K``).

    >>> format_size(8192)
    '8K'
    >>> format_size(524288)
    '512K'
    >>> format_size(64)
    '64B'
    """
    if nbytes < 0:
        raise ConfigError(f"negative size: {nbytes}")
    for suffix, mult in (("G", 1024**3), ("M", 1024**2), ("K", 1024)):
        if nbytes >= mult and nbytes % mult == 0:
            return f"{nbytes // mult}{suffix}"
    return f"{nbytes}B"


def is_pow2(n: int) -> bool:
    """Return True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2_exact(n: int) -> int:
    """Return ``log2(n)`` for an exact power of two, else raise.

    >>> log2_exact(64)
    6
    """
    if not is_pow2(n):
        raise ConfigError(f"{n} is not a power of two")
    return n.bit_length() - 1


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division (``b`` must be positive)."""
    if b <= 0:
        raise ConfigError(f"ceil_div divisor must be positive, got {b}")
    return -(-a // b)


def align_down(addr: int, granule: int) -> int:
    """Round ``addr`` down to a multiple of the power-of-two ``granule``."""
    if not is_pow2(granule):
        raise ConfigError(f"alignment granule {granule} is not a power of two")
    return addr & ~(granule - 1)


def align_up(addr: int, granule: int) -> int:
    """Round ``addr`` up to a multiple of the power-of-two ``granule``."""
    if not is_pow2(granule):
        raise ConfigError(f"alignment granule {granule} is not a power of two")
    return (addr + granule - 1) & ~(granule - 1)
