"""Main-memory model: flat latency plus traffic accounting.

The paper models a 200-cycle round-trip latency (§4.1).  Contention is
not modelled (SimpleScalar's default memory is likewise unlimited-
bandwidth); what matters to the experiments is the L1/L2/memory latency
ratio, which determines how much a WEC hit is worth.
"""

from __future__ import annotations

from ..common.errors import ConfigError
from ..common.stats import CounterGroup

__all__ = ["MainMemory"]


class MainMemory:
    """Backing store with a fixed round-trip latency."""

    __slots__ = ("latency", "stats")

    def __init__(self, latency: int = 200) -> None:
        if latency <= 0:
            raise ConfigError("memory latency must be positive")
        self.latency = latency
        self.stats = CounterGroup("mem")

    def read(self) -> int:
        """A demand/prefetch block read; returns the round-trip latency."""
        self.stats.counter("reads").add()
        return self.latency

    def write(self) -> None:
        """A write-back of a dirty block (posted; no latency charged)."""
        self.stats.counter("writes").add()

    def reset(self) -> None:
        self.stats.reset()
