"""Set-associative cache with true-LRU replacement and block metadata.

Blocks are tracked at block-address granularity (``addr >> log2(block)``).
Each resident block carries a small flag bitmask:

* ``DIRTY`` — modified, must be written back on eviction;
* ``WRONG`` — the block was brought in by a *wrong-execution* load
  (§3.2.1: a correct-path hit on such a block triggers a next-line
  prefetch and clears the flag);
* ``PREFETCHED`` — the block was brought in by a prefetch and has not
  yet been referenced (the "tag bit" of tagged next-line prefetching).

Sets are insertion-ordered dicts; re-inserting on hit implements LRU at
O(1) per access with no per-block objects (hot-loop friendly).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..common.config import CacheConfig
from ..common.errors import ConfigError
from ..common.units import log2_exact
from ..obs.events import CAT_MEM, L1_EVICT

__all__ = ["DIRTY", "WRONG", "PREFETCHED", "PF_FAR", "SetAssocCache", "EvictedBlock"]

DIRTY = 1
WRONG = 2
PREFETCHED = 4
#: The prefetch that brought this block was serviced by main memory
#: (not the L2) — its fill is long and likely still in flight when the
#: demand reference arrives.
PF_FAR = 8

#: (block_address, flags) of a block pushed out of the cache.
EvictedBlock = Tuple[int, int]


class SetAssocCache:
    """A write-back, write-allocate, true-LRU set-associative cache.

    The cache operates on *block addresses*; use :meth:`block_of` to
    convert byte addresses.  It deliberately has no notion of latency or
    of what happens on a miss — the hierarchy layer composes that.
    """

    __slots__ = ("cfg", "_n_sets", "_assoc", "_block_bits", "_sets", "_obs", "_obs_tu")

    def __init__(self, cfg: CacheConfig) -> None:
        cfg.validate()
        self.cfg = cfg
        self._n_sets = cfg.n_sets
        self._assoc = cfg.assoc
        self._block_bits = log2_exact(cfg.block_size)
        self._sets: List[Dict[int, int]] = [dict() for _ in range(self._n_sets)]
        self._obs = None
        self._obs_tu = 0

    def attach_tracer(self, tracer, tu_id: int) -> None:
        """Emit eviction events to ``tracer`` (only the L1D uses this)."""
        self._obs = tracer if tracer is not None and tracer.enabled and tracer.wants(CAT_MEM) else None
        self._obs_tu = tu_id

    # -- geometry ---------------------------------------------------------

    @property
    def n_sets(self) -> int:
        return self._n_sets

    @property
    def assoc(self) -> int:
        return self._assoc

    @property
    def block_bits(self) -> int:
        """log2 of the block size."""
        return self._block_bits

    def block_of(self, byte_addr: int) -> int:
        """Convert a byte address to this cache's block address."""
        return byte_addr >> self._block_bits

    def set_index(self, block: int) -> int:
        """The set a block address maps to."""
        return block & (self._n_sets - 1)

    # -- access -----------------------------------------------------------

    def lookup(self, block: int) -> Optional[int]:
        """Return the block's flags and refresh its LRU position.

        None means miss.  Flags are returned *before* any caller-side
        modification; use :meth:`set_flags` / :meth:`or_flags` to change.
        """
        s = self._sets[block & (self._n_sets - 1)]
        flags = s.get(block)
        if flags is None:
            return None
        # Move to MRU position.
        del s[block]
        s[block] = flags
        return flags

    def probe(self, block: int) -> Optional[int]:
        """Like :meth:`lookup` but without touching LRU state."""
        return self._sets[block & (self._n_sets - 1)].get(block)

    def insert(self, block: int, flags: int = 0) -> Optional[EvictedBlock]:
        """Install a block as MRU; return the evicted (block, flags) if any.

        Inserting a block that is already resident simply refreshes its
        LRU position and *replaces* its flags.
        """
        s = self._sets[block & (self._n_sets - 1)]
        if block in s:
            del s[block]
            s[block] = flags
            return None
        evicted: Optional[EvictedBlock] = None
        if len(s) >= self._assoc:
            victim = next(iter(s))
            evicted = (victim, s[victim])
            del s[victim]
            if self._obs is not None:
                self._obs.emit(L1_EVICT, self._obs_tu, evicted[0], evicted[1])
        s[block] = flags
        return evicted

    def invalidate(self, block: int) -> Optional[int]:
        """Remove a block; return its flags, or None if absent."""
        s = self._sets[block & (self._n_sets - 1)]
        return s.pop(block, None)

    def set_flags(self, block: int, flags: int) -> None:
        """Overwrite a resident block's flags (no LRU change)."""
        s = self._sets[block & (self._n_sets - 1)]
        if block not in s:
            raise ConfigError(f"set_flags on non-resident block {block:#x}")
        s[block] = flags

    def or_flags(self, block: int, flags: int) -> None:
        """OR flags into a resident block (no LRU change)."""
        s = self._sets[block & (self._n_sets - 1)]
        if block not in s:
            raise ConfigError(f"or_flags on non-resident block {block:#x}")
        s[block] |= flags

    def clear_flags(self, block: int, flags: int) -> None:
        """Clear the given flag bits on a resident block."""
        s = self._sets[block & (self._n_sets - 1)]
        if block not in s:
            raise ConfigError(f"clear_flags on non-resident block {block:#x}")
        s[block] &= ~flags

    # -- inspection --------------------------------------------------------

    def occupancy(self) -> int:
        """Number of resident blocks."""
        return sum(len(s) for s in self._sets)

    def resident_blocks(self) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(block, flags)`` pairs (LRU→MRU within a set)."""
        for s in self._sets:
            yield from s.items()

    def flush(self) -> List[EvictedBlock]:
        """Empty the cache, returning all blocks that were resident."""
        out: List[EvictedBlock] = []
        for s in self._sets:
            out.extend(s.items())
            s.clear()
        return out

    def __contains__(self, block: int) -> bool:
        return block in self._sets[block & (self._n_sets - 1)]

    def __repr__(self) -> str:
        return (
            f"SetAssocCache({self.cfg.name}: {self.cfg.size}B, "
            f"{self._assoc}-way, {self.cfg.block_size}B blocks, "
            f"{self.occupancy()}/{self.cfg.n_blocks} resident)"
        )
