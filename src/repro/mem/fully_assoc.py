"""Small fully-associative LRU buffer.

This single structure backs all three sidecars the paper compares:

* the **victim cache** (Jouppi 1990) in configurations ``vc`` and
  ``wth-wp-vc``;
* the **Wrong Execution Cache** storage in ``wth-wp-wec``;
* the **prefetch buffer** of tagged next-line prefetching in ``nlp``.

What differs between those is the *policy* layered on top (see
:mod:`repro.mem.hierarchy`); the storage semantics — fully associative,
true LRU, a handful of entries — are identical.  When attribution is
enabled (:mod:`repro.obs.attrib`), the hierarchy tags every insert
with its provenance; this buffer stays provenance-agnostic.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..common.errors import ConfigError
from ..obs.events import CAT_WEC, WEC_INSERT

__all__ = ["FullyAssocBuffer"]


class FullyAssocBuffer:
    """Fully-associative block store with true-LRU replacement."""

    __slots__ = ("_capacity", "_blocks", "name", "_obs", "_obs_tu")

    def __init__(self, capacity: int, name: str = "buffer") -> None:
        if capacity < 1:
            raise ConfigError("buffer capacity must be >= 1")
        self._capacity = capacity
        self._blocks: Dict[int, int] = {}
        self.name = name
        self._obs = None
        self._obs_tu = 0

    def attach_tracer(self, tracer, tu_id: int) -> None:
        """Emit sidecar-insert events to ``tracer`` (WEC/VC/PB only)."""
        self._obs = tracer if tracer is not None and tracer.enabled and tracer.wants(CAT_WEC) else None
        self._obs_tu = tu_id

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block: int) -> bool:
        return block in self._blocks

    def lookup(self, block: int) -> Optional[int]:
        """Flags for ``block`` with LRU refresh; None on miss."""
        flags = self._blocks.get(block)
        if flags is None:
            return None
        del self._blocks[block]
        self._blocks[block] = flags
        return flags

    def probe(self, block: int) -> Optional[int]:
        """Flags for ``block`` without LRU refresh; None on miss."""
        return self._blocks.get(block)

    def insert(self, block: int, flags: int = 0) -> Optional[Tuple[int, int]]:
        """Install ``block`` as MRU; return the evicted (block, flags) if any."""
        if self._obs is not None:
            self._obs.emit(WEC_INSERT, self._obs_tu, block, flags)
        if block in self._blocks:
            del self._blocks[block]
            self._blocks[block] = flags
            return None
        evicted: Optional[Tuple[int, int]] = None
        if len(self._blocks) >= self._capacity:
            victim = next(iter(self._blocks))
            evicted = (victim, self._blocks[victim])
            del self._blocks[victim]
        self._blocks[block] = flags
        return evicted

    def remove(self, block: int) -> Optional[int]:
        """Remove ``block``; return its flags, or None if absent."""
        return self._blocks.pop(block, None)

    def set_flags(self, block: int, flags: int) -> None:
        """Overwrite a resident block's flags."""
        if block not in self._blocks:
            raise ConfigError(f"{self.name}: set_flags on non-resident block {block:#x}")
        self._blocks[block] = flags

    def items(self) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(block, flags)``, LRU first."""
        return iter(self._blocks.items())

    def flush(self) -> List[Tuple[int, int]]:
        """Empty the buffer, returning everything that was resident."""
        out = list(self._blocks.items())
        self._blocks.clear()
        return out

    def __repr__(self) -> str:
        return f"FullyAssocBuffer({self.name!r}, {len(self)}/{self._capacity})"
