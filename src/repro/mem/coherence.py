"""Update-protocol coherence for sequential execution (§3.2.2).

During a *parallel* region, coherence is enforced by the thread-
pipelining model itself: potentially shared data live in each TU's
speculative memory buffer until the in-order write-back stage, and
updates flow downstream over the unidirectional communication ring — so
the caches need no snooping.

During *sequential* execution only one thread runs; when it stores to a
block that idle TUs (or still-running wrong threads) hold in their L1 or
WEC, a shared bus pushes the new data to those copies.  The paper notes
this traffic targets otherwise-idle caches and adds no delay; we model
it the same way — pure accounting, zero latency.
"""

from __future__ import annotations

from typing import List, Sequence

from ..common.stats import CounterGroup
from .hierarchy import TUMemSystem

__all__ = ["UpdateBus"]


class UpdateBus:
    """Shared update bus connecting every TU's private caches."""

    __slots__ = ("_systems", "stats")

    def __init__(self, systems: Sequence[TUMemSystem]) -> None:
        self._systems = list(systems)
        self.stats = CounterGroup("bus")

    @property
    def n_taps(self) -> int:
        """Number of cache systems on the bus."""
        return len(self._systems)

    def sequential_store(self, writer_tu: int, addr: int) -> int:
        """Propagate a sequential-region store to all other TUs.

        Returns the number of remote copies updated.  The writer's own
        cache is handled by its normal store path and is skipped here.
        """
        self.stats.counter("store_broadcasts").add()
        updated = 0
        for sys in self._systems:
            if sys.tu_id == writer_tu:
                continue
            if sys.bus_update(addr):
                updated += 1
        if updated:
            self.stats.counter("updates_delivered").add(updated)
        return updated

    def reset(self) -> None:
        self.stats.reset()
