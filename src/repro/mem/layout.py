"""Cache array-geometry accessors shared by the oracle and fast engines.

The oracle's :class:`~repro.mem.cache.SetAssocCache` derives its set
count, index mask and block shift from a :class:`CacheConfig` at
construction time; the fast engine (:mod:`repro.sim.fast.engine`) lays
the same caches out as flat ``sets``/``mask``/``assoc`` state and must
derive *identical* geometry or block-to-set mapping diverges silently.
This module is the single place that derivation lives: both engines get
their ``(n_sets, assoc, block_bits, set_mask)`` tuples from
:func:`geometry_of`, so a future geometry change (sectoring, hashing)
cannot update one engine and not the other.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.config import CacheConfig
from ..common.units import log2_exact

__all__ = ["CacheGeometry", "geometry_of"]


@dataclass(frozen=True)
class CacheGeometry:
    """Derived layout constants of one set-associative array."""

    n_sets: int
    assoc: int
    block_bits: int
    set_mask: int

    def set_index(self, block: int) -> int:
        """Set holding ``block`` (a block address, not a byte address)."""
        return block & self.set_mask

    def block_of(self, byte_addr: int) -> int:
        """Block address of ``byte_addr``."""
        return byte_addr >> self.block_bits


def geometry_of(cfg: CacheConfig) -> CacheGeometry:
    """Geometry of the array ``cfg`` describes.

    Mirrors ``SetAssocCache.__init__``: ``n_sets`` comes from the config
    property (``n_blocks // assoc``), the block shift from the exact log2
    of the block size, and set selection is the low bits of the block
    address (``n_sets`` is validated to a power of two by
    ``cfg.validate()``).
    """
    cfg.validate()
    return CacheGeometry(
        n_sets=cfg.n_sets,
        assoc=cfg.assoc,
        block_bits=log2_exact(cfg.block_size),
        set_mask=cfg.n_sets - 1,
    )
