"""Stream-detecting prefetcher (extension beyond the paper).

The paper's conventional comparator is tagged *next-line* prefetching
(Smith/Hsu).  A natural question the paper leaves open is whether a
stronger conventional prefetcher closes the gap to the WEC.  This
module implements the classic stream detector used by hardware stream
prefetchers (IBM POWER-style): confirm a stream when two consecutive
block misses arrive in either direction, then run ``depth`` blocks
ahead of the demand stream.

It is purely address-based — no PC needed — so it drops into the same
sidecar slot as the paper's prefetch buffer (``SidecarKind.STREAM``,
ablation configuration ``"stream-pf"``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common.errors import ConfigError

__all__ = ["StreamDetector"]


class StreamDetector:
    """Detects ascending/descending block-address streams from misses.

    The detector keeps a small table of *candidate* streams keyed by the
    block each stream expects next.  A demand miss either confirms an
    existing candidate (returning the blocks to prefetch) or allocates a
    new candidate in both directions.
    """

    __slots__ = ("_table", "_capacity", "depth", "allocations", "confirmations")

    def __init__(self, capacity: int = 16, depth: int = 2) -> None:
        if capacity < 1:
            raise ConfigError("stream detector needs at least one entry")
        if depth < 1:
            raise ConfigError("stream depth must be >= 1")
        # expected-next-block -> direction (+1 / -1); insertion-ordered
        # dict as LRU, like the cache sets.
        self._table: Dict[int, int] = {}
        self._capacity = capacity
        self.depth = depth
        self.allocations = 0
        self.confirmations = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._table)

    def _insert(self, expected: int, direction: int) -> None:
        if expected in self._table:
            del self._table[expected]
        elif len(self._table) >= self._capacity:
            del self._table[next(iter(self._table))]
        self._table[expected] = direction

    def on_demand_miss(self, block: int) -> List[int]:
        """Feed one demand-miss block address; returns blocks to prefetch.

        An empty list means no confirmed stream covers this miss (the
        miss allocates new ascending/descending candidates instead).
        """
        direction = self._table.pop(block, None)
        if direction is not None:
            # Confirmed: run `depth` blocks ahead and re-arm.
            self.confirmations += 1
            targets = [block + direction * (i + 1) for i in range(self.depth)]
            self._insert(block + direction, direction)
            return [t for t in targets if t >= 0]
        self.allocations += 1
        self._insert(block + 1, +1)
        self._insert(block - 1, -1)
        return []

    def on_prefetch_hit(self, block: int, ascending_hint: bool = True) -> List[int]:
        """A demand hit on a prefetched block: extend the stream.

        Tagged semantics, like the paper's next-line scheme, but the
        extension keeps the stream ``depth`` blocks ahead.
        """
        direction = self._table.pop(block, None)
        if direction is None:
            direction = 1 if ascending_hint else -1
        self.confirmations += 1
        targets = [block + direction * (i + 1) for i in range(self.depth)]
        self._insert(block + direction, direction)
        return [t for t in targets if t >= 0]

    def reset(self) -> None:
        self._table.clear()
        self.allocations = 0
        self.confirmations = 0

    def __repr__(self) -> str:
        return (
            f"StreamDetector({len(self._table)}/{self._capacity} candidates, "
            f"depth={self.depth}, confirmed={self.confirmations})"
        )
