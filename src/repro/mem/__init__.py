"""Memory hierarchy: caches, WEC/victim/prefetch sidecars, L2, coherence."""

from .cache import DIRTY, PREFETCHED, WRONG, EvictedBlock, SetAssocCache
from .coherence import UpdateBus
from .fully_assoc import FullyAssocBuffer
from .hierarchy import HIT_LATENCY, TUMemSystem
from .l2 import SharedL2
from .mainmem import MainMemory
from .streampf import StreamDetector

__all__ = [
    "DIRTY",
    "PREFETCHED",
    "WRONG",
    "EvictedBlock",
    "SetAssocCache",
    "UpdateBus",
    "FullyAssocBuffer",
    "HIT_LATENCY",
    "TUMemSystem",
    "SharedL2",
    "MainMemory",
    "StreamDetector",
]
