"""The unified second-level cache shared by all thread units (§2.1).

One :class:`SharedL2` instance is shared by every TU's private memory
system.  It is inclusive of nothing in particular (SimpleScalar-style
non-inclusive), write-back, write-allocate.  Accesses are tagged with
the originating TU and with whether they came from wrong execution, so
the evaluation can report the extra L1↔L2 traffic wrong execution
creates (Figure 17's companion metric).
"""

from __future__ import annotations

from ..common.config import MemorySystemConfig
from ..common.stats import CounterGroup
from ..obs.events import CAT_MEM, L2_FILL, L2_MISS
from .cache import DIRTY, SetAssocCache
from .mainmem import MainMemory

__all__ = ["SharedL2"]


class SharedL2:
    """Shared unified L2 in front of main memory."""

    __slots__ = ("cfg", "cache", "memory", "stats", "_obs")

    def __init__(self, cfg: MemorySystemConfig, tracer=None) -> None:
        self.cfg = cfg
        self.cache = SetAssocCache(cfg.l2)
        self.memory = MainMemory(cfg.memory_latency)
        self.stats = CounterGroup("l2")
        self._obs = (
            tracer
            if tracer is not None and tracer.enabled and tracer.wants(CAT_MEM)
            else None
        )

    def read(self, byte_addr: int, tu_id: int, wrong: bool = False, prefetch: bool = False) -> int:
        """Fetch the block containing ``byte_addr`` for an L1 fill.

        Returns the latency seen by the requester: the L2 hit latency on
        a hit, else the main-memory round trip.  ``wrong`` and
        ``prefetch`` only affect accounting.
        """
        stats = self.stats
        stats.counter("accesses").add()
        if wrong:
            stats.counter("wrong_accesses").add()
        if prefetch:
            stats.counter("prefetch_accesses").add()
        block = self.cache.block_of(byte_addr)
        flags = self.cache.lookup(block)
        if flags is not None:
            stats.counter("hits").add()
            return self.cfg.l2.hit_latency
        stats.counter("misses").add()
        latency = self.memory.read()
        if self._obs is not None:
            self._obs.emit(L2_MISS, tu_id, block)
            self._obs.emit(L2_FILL, tu_id, block, latency)
        evicted = self.cache.insert(block, 0)
        if evicted is not None and evicted[1] & DIRTY:
            self.memory.write()
            stats.counter("writebacks_to_memory").add()
        return latency

    def writeback(self, byte_addr: int, tu_id: int) -> None:
        """Accept a dirty block written back from an L1/sidecar.

        Write-allocate: if the block is not resident it is installed
        (displacing an LRU victim).  No latency is charged — write-backs
        are posted through buffers in the modelled machine.
        """
        self.stats.counter("writebacks_in").add()
        block = self.cache.block_of(byte_addr)
        flags = self.cache.lookup(block)
        if flags is not None:
            self.cache.set_flags(block, flags | DIRTY)
            return
        evicted = self.cache.insert(block, DIRTY)
        if evicted is not None and evicted[1] & DIRTY:
            self.memory.write()
            self.stats.counter("writebacks_to_memory").add()

    def miss_rate(self) -> float:
        """L2 local miss rate over all accesses so far."""
        total = self.stats["accesses"]
        return self.stats["misses"] / total if total else 0.0

    def reset(self) -> None:
        """Drop all cached state and statistics."""
        self.cache.flush()
        self.memory.reset()
        self.stats.reset()
