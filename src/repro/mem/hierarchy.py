"""Per-thread-unit memory system: L1D + sidecar (WEC / VC / PB) + L1I.

This module implements the access protocols of Figures 5 and 6 of the
paper.  Each :class:`TUMemSystem` owns a private L1 data cache, a
private L1 instruction cache, and at most one *sidecar* — a small
fully-associative structure beside the L1D whose policy depends on the
machine configuration:

``SidecarKind.WEC`` (configuration ``wth-wp-wec``)
    * correct load, L1 miss, WEC hit → block is transferred to the L1
      **and** the L1 victim is swapped into the WEC; if the block was
      brought by wrong execution or by a prefetch, a next-line prefetch
      into the WEC fires (tag cleared);
    * correct load, both miss → fill the L1 from L2/memory, victim into
      the WEC (victim caching);
    * wrong-execution load, both miss → fill the **WEC only** (marked
      ``WRONG``), never the L1 — this is the pollution elimination;
    * wrong-execution load, WEC hit → LRU refresh only.

``SidecarKind.VICTIM`` (``vc``, ``wth-wp-vc``)
    Jouppi victim cache: swap on VC hit, victims on fills.  Wrong
    loads (when enabled) fill the *L1* — the pollution the WEC removes.

``SidecarKind.PREFETCH`` (``nlp``)
    Tagged next-line prefetching: prefetch on miss and on first hit to
    a prefetched block; prefetched blocks wait in the buffer and are
    promoted to the L1 on their first demand hit.

``SidecarKind.NONE`` (``orig``, ``wp``, ``wth``, ``wth-wp``)
    Plain L1; wrong loads (when enabled) allocate straight into it.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..common.config import CacheConfig, SidecarConfig, SidecarKind
from ..common.errors import ConfigError
from ..common.stats import CounterGroup
from ..obs.attrib import PROV_NLP, PROV_STREAM
from ..obs.events import (
    CAT_MEM,
    CAT_WEC,
    L1_FILL,
    L1_MISS,
    WEC_HIT,
    WEC_NLP,
    WRONG_FILL,
)
from .cache import DIRTY, PF_FAR, PREFETCHED, WRONG, SetAssocCache
from .fully_assoc import FullyAssocBuffer
from .l2 import SharedL2
from .streampf import StreamDetector

__all__ = ["TUMemSystem"]

#: Latency of an access satisfied by the L1 or by a parallel sidecar hit.
HIT_LATENCY = 1


class TUMemSystem:
    """One thread unit's private view of the memory hierarchy."""

    __slots__ = (
        "tu_id",
        "l1d",
        "l1i",
        "sidecar_kind",
        "sidecar",
        "l2",
        "stats",
        "load_correct",
        "store_correct",
        "load_wrong",
        "prefetch_late_cycles",
        "prefetch_late_far_cycles",
        "stream_detector",
        "_obs",
        "_obs_wec",
        "_attrib",
    )

    def __init__(
        self,
        tu_id: int,
        l1d_cfg: CacheConfig,
        l1i_cfg: CacheConfig,
        sidecar_cfg: SidecarConfig,
        l2: SharedL2,
        prefetch_late_cycles: float = 6.0,
        prefetch_late_far_cycles: float = 150.0,
        tracer=None,
        sanitizer=None,
        attrib=None,
    ) -> None:
        self.tu_id = tu_id
        self.prefetch_late_cycles = prefetch_late_cycles
        self.prefetch_late_far_cycles = prefetch_late_far_cycles
        self.l1d = SetAssocCache(l1d_cfg)
        self.l1i = SetAssocCache(l1i_cfg)
        self.sidecar_kind = sidecar_cfg.kind
        self.stream_detector = (
            StreamDetector() if sidecar_cfg.kind is SidecarKind.STREAM else None
        )
        self.l2 = l2
        self.stats = CounterGroup(f"tu{tu_id}.mem")
        live = tracer is not None and tracer.enabled
        self._obs = tracer if live and tracer.wants(CAT_MEM) else None
        self._obs_wec = tracer if live and tracer.wants(CAT_WEC) else None
        self._attrib = attrib if attrib is not None and attrib.enabled else None
        self.l1d.attach_tracer(tracer, tu_id)
        if sidecar_cfg.kind is SidecarKind.NONE:
            self.sidecar: Optional[FullyAssocBuffer] = None
        else:
            self.sidecar = FullyAssocBuffer(
                sidecar_cfg.entries, name=f"tu{tu_id}.{sidecar_cfg.kind.value}"
            )
            self.sidecar.attach_tracer(tracer, tu_id)
        # Bind the policy methods once (avoids per-access dispatch).
        kind = sidecar_cfg.kind
        self.load_correct: Callable[[int], int]
        self.store_correct: Callable[[int], int]
        self.load_wrong: Callable[[int], int]
        if kind is SidecarKind.WEC:
            self.load_correct = self._load_correct_wec
            self.store_correct = self._store_correct_wec
            self.load_wrong = self._load_wrong_wec
        elif kind is SidecarKind.VICTIM:
            self.load_correct = self._load_correct_vc
            self.store_correct = self._store_correct_vc
            self.load_wrong = self._load_wrong_vc
        elif kind is SidecarKind.PREFETCH:
            self.load_correct = self._load_correct_nlp
            self.store_correct = self._store_correct_nlp
            self.load_wrong = self._load_wrong_nlp
        elif kind is SidecarKind.STREAM:
            self.load_correct = self._load_correct_stream
            self.store_correct = self._store_correct_nlp  # stores: as nlp
            self.load_wrong = self._load_wrong_nlp
        else:
            self.load_correct = self._load_correct_plain
            self.store_correct = self._store_correct_plain
            self.load_wrong = self._load_wrong_plain
        if sanitizer is not None:
            # Re-bind the policy slots with invariant-checking wrappers;
            # they observe only through non-mutating probe/__contains__,
            # so sanitized runs stay bit-identical (repro.lint.sanitize).
            sanitizer.attach_memory_checks(self)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _byte(self, block: int) -> int:
        """Back-convert an L1 block address to a byte address for the L2."""
        return block << self.l1d.block_bits

    def _writeback(self, block: int) -> None:
        self.stats.counter("writebacks").add()
        self.l2.writeback(self._byte(block), self.tu_id)

    def _evict_to_sidecar(self, evicted: Optional[tuple]) -> None:
        """Place an L1 victim into the sidecar (victim-caching path)."""
        if evicted is None:
            return
        block, flags = evicted
        self.stats.counter("victims_to_sidecar").add()
        assert self.sidecar is not None
        att = self._attrib
        if att is not None:
            att.on_demote(self.tu_id, block)
        bumped = self.sidecar.insert(block, flags)
        if bumped is not None:
            if att is not None:
                att.on_evict(self.tu_id, bumped[0], from_sidecar=True)
            if bumped[1] & DIRTY:
                self._writeback(bumped[0])

    def _evict_to_l2(self, evicted: Optional[tuple]) -> None:
        """Drop an L1 victim, writing it back if dirty."""
        if evicted is None:
            return
        if self._attrib is not None:
            self._attrib.on_evict(self.tu_id, evicted[0])
        if evicted[1] & DIRTY:
            self._writeback(evicted[0])

    def _fill_from_l2(self, block: int, wrong: bool = False, prefetch: bool = False) -> int:
        """Fetch a block from the next level; returns the fill latency."""
        latency = self.l2.read(self._byte(block), self.tu_id, wrong=wrong, prefetch=prefetch)
        if self._obs is not None and not prefetch:
            self._obs.emit(WRONG_FILL if wrong else L1_FILL, self.tu_id, block, latency)
        return latency

    def _prefetch_next_into_sidecar(self, block: int) -> None:
        """Next-line prefetch into the WEC / prefetch buffer (§3.2.1)."""
        target = block + 1
        assert self.sidecar is not None
        if target in self.l1d or target in self.sidecar:
            return
        self.stats.counter("prefetches").add()
        latency = self._fill_from_l2(target, prefetch=True)
        if self._obs_wec is not None:
            self._obs_wec.emit(WEC_NLP, self.tu_id, target, latency)
        att = self._attrib
        if att is not None:
            att.on_prefetch_fill(self.tu_id, target, latency, PROV_NLP)
        flags = PREFETCHED
        if latency > self.l2.cfg.l2.hit_latency:
            flags |= PF_FAR
        bumped = self.sidecar.insert(target, flags)
        if bumped is not None:
            if att is not None:
                att.on_evict(self.tu_id, bumped[0], from_sidecar=True)
            if bumped[1] & DIRTY:
                self._writeback(bumped[0])

    def _count_usefulness(self, block: int, flags: int) -> None:
        """Attribute a correct-path sidecar hit to wrong execution / prefetching."""
        if self._obs_wec is not None:
            self._obs_wec.emit(WEC_HIT, self.tu_id, block, flags)
        if flags & WRONG:
            self.stats.counter("useful_wrong_hits").add()
        if flags & PREFETCHED:
            self.stats.counter("useful_prefetch_hits").add()

    def _late_charge(self, flags: int) -> float:
        """Outstanding-fill penalty on first use of a prefetched block.

        The charge can never exceed what is physically outstanding:
        three quarters of the actual fill latency.
        """
        if flags & PF_FAR:
            return min(
                self.prefetch_late_far_cycles,
                0.75 * self.l2.memory.latency,
            )
        return self.prefetch_late_cycles

    # ------------------------------------------------------------------
    # WEC policy (Figure 6)
    # ------------------------------------------------------------------

    def _load_correct_wec(self, addr: int) -> int:
        stats = self.stats
        att = self._attrib
        stats.counter("loads").add()
        block = addr >> self.l1d.block_bits
        flags = self.l1d.lookup(block)
        if flags is not None:
            stats.counter("l1_hits").add()
            if att is not None:
                att.on_use(self.tu_id, block)
            return HIT_LATENCY
        stats.counter("l1_misses").add()
        if self._obs is not None:
            self._obs.emit(L1_MISS, self.tu_id, block)
        assert self.sidecar is not None
        sflags = self.sidecar.probe(block)
        if sflags is not None:
            # L1 miss, WEC hit: promote to L1, swap the L1 victim into the
            # WEC slot, and prefetch the next line when the block owes its
            # presence to wrong execution or to a previous prefetch.
            stats.counter("sidecar_hits").add()
            stats.counter("wec_promotions").add()
            self._count_usefulness(block, sflags)
            if att is not None:
                att.on_use(self.tu_id, block)
            self.sidecar.remove(block)
            evicted = self.l1d.insert(block, sflags & DIRTY)
            self._evict_to_sidecar(evicted)
            latency = HIT_LATENCY
            if sflags & (WRONG | PREFETCHED):
                self._prefetch_next_into_sidecar(block)
                if sflags & PREFETCHED and not sflags & WRONG:
                    # Next-line chain fill may still be in flight.
                    latency += self._late_charge(sflags)
            return latency
        # Miss in both: demand fill into the L1; the L1 victim goes to
        # the WEC (victim caching).
        stats.counter("demand_fills").add()
        latency = self._fill_from_l2(block)
        if att is not None:
            att.on_demand_fill(self.tu_id, block)
        evicted = self.l1d.insert(block, 0)
        self._evict_to_sidecar(evicted)
        return HIT_LATENCY + latency

    def _store_correct_wec(self, addr: int) -> int:
        stats = self.stats
        att = self._attrib
        stats.counter("stores").add()
        block = addr >> self.l1d.block_bits
        flags = self.l1d.lookup(block)
        if flags is not None:
            stats.counter("l1_hits").add()
            if att is not None:
                att.on_use(self.tu_id, block)
            if not flags & DIRTY:
                self.l1d.or_flags(block, DIRTY)
            return HIT_LATENCY
        stats.counter("l1_misses").add()
        if self._obs is not None:
            self._obs.emit(L1_MISS, self.tu_id, block, 1)
        assert self.sidecar is not None
        sflags = self.sidecar.probe(block)
        if sflags is not None:
            stats.counter("sidecar_hits").add()
            self._count_usefulness(block, sflags)
            if att is not None:
                att.on_use(self.tu_id, block)
            self.sidecar.remove(block)
            evicted = self.l1d.insert(block, DIRTY)
            self._evict_to_sidecar(evicted)
            return HIT_LATENCY
        stats.counter("demand_fills").add()
        latency = self._fill_from_l2(block)
        if att is not None:
            att.on_demand_fill(self.tu_id, block)
        evicted = self.l1d.insert(block, DIRTY)
        self._evict_to_sidecar(evicted)
        return HIT_LATENCY + latency

    def _load_wrong_wec(self, addr: int) -> int:
        stats = self.stats
        stats.counter("wrong_loads").add()
        block = addr >> self.l1d.block_bits
        if self.l1d.lookup(block) is not None:
            stats.counter("wrong_l1_hits").add()
            return HIT_LATENCY
        assert self.sidecar is not None
        if self.sidecar.lookup(block) is not None:
            stats.counter("wrong_sidecar_hits").add()
            return HIT_LATENCY
        # Fill the WEC only — never the L1 (pollution elimination).
        stats.counter("wrong_fills").add()
        latency = self._fill_from_l2(block, wrong=True)
        att = self._attrib
        if att is not None:
            att.on_wrong_fill(self.tu_id, block, latency)
        bumped = self.sidecar.insert(block, WRONG)
        if bumped is not None:
            if att is not None:
                att.on_evict(self.tu_id, bumped[0], from_sidecar=True)
            if bumped[1] & DIRTY:
                self._writeback(bumped[0])
        return HIT_LATENCY + latency

    # ------------------------------------------------------------------
    # Victim-cache policy (Jouppi)
    # ------------------------------------------------------------------

    def _load_correct_vc(self, addr: int) -> int:
        stats = self.stats
        att = self._attrib
        stats.counter("loads").add()
        block = addr >> self.l1d.block_bits
        flags = self.l1d.lookup(block)
        if flags is not None:
            stats.counter("l1_hits").add()
            if flags & WRONG:
                # Wrong loads fill the L1 under vc: first correct touch
                # settles their usefulness (mirrors the plain path).
                stats.counter("useful_wrong_hits").add()
                self.l1d.clear_flags(block, WRONG)
            if att is not None:
                att.on_use(self.tu_id, block)
            return HIT_LATENCY
        stats.counter("l1_misses").add()
        if self._obs is not None:
            self._obs.emit(L1_MISS, self.tu_id, block)
        assert self.sidecar is not None
        sflags = self.sidecar.probe(block)
        if sflags is not None:
            stats.counter("sidecar_hits").add()
            self._count_usefulness(block, sflags)
            if att is not None:
                att.on_use(self.tu_id, block)
            self.sidecar.remove(block)
            evicted = self.l1d.insert(block, sflags & DIRTY)
            self._evict_to_sidecar(evicted)
            return HIT_LATENCY
        stats.counter("demand_fills").add()
        latency = self._fill_from_l2(block)
        if att is not None:
            att.on_demand_fill(self.tu_id, block)
        evicted = self.l1d.insert(block, 0)
        self._evict_to_sidecar(evicted)
        return HIT_LATENCY + latency

    def _store_correct_vc(self, addr: int) -> int:
        stats = self.stats
        att = self._attrib
        stats.counter("stores").add()
        block = addr >> self.l1d.block_bits
        flags = self.l1d.lookup(block)
        if flags is not None:
            stats.counter("l1_hits").add()
            if att is not None:
                att.on_use(self.tu_id, block)
            if not flags & DIRTY:
                self.l1d.or_flags(block, DIRTY)
            return HIT_LATENCY
        stats.counter("l1_misses").add()
        if self._obs is not None:
            self._obs.emit(L1_MISS, self.tu_id, block, 1)
        assert self.sidecar is not None
        sflags = self.sidecar.probe(block)
        if sflags is not None:
            stats.counter("sidecar_hits").add()
            self._count_usefulness(block, sflags)
            if att is not None:
                att.on_use(self.tu_id, block)
            self.sidecar.remove(block)
            evicted = self.l1d.insert(block, DIRTY)
            self._evict_to_sidecar(evicted)
            return HIT_LATENCY
        stats.counter("demand_fills").add()
        latency = self._fill_from_l2(block)
        if att is not None:
            att.on_demand_fill(self.tu_id, block)
        evicted = self.l1d.insert(block, DIRTY)
        self._evict_to_sidecar(evicted)
        return HIT_LATENCY + latency

    def _load_wrong_vc(self, addr: int) -> int:
        """Wrong-execution load with only a victim cache (``wth-wp-vc``).

        The load behaves like a demand load for the caches — filling the
        L1 and potentially polluting it — which is exactly the behaviour
        the WEC is designed to eliminate.
        """
        stats = self.stats
        stats.counter("wrong_loads").add()
        block = addr >> self.l1d.block_bits
        if self.l1d.lookup(block) is not None:
            stats.counter("wrong_l1_hits").add()
            return HIT_LATENCY
        assert self.sidecar is not None
        att = self._attrib
        sflags = self.sidecar.probe(block)
        if sflags is not None:
            stats.counter("wrong_sidecar_hits").add()
            if att is not None:
                att.on_wrong_promote(self.tu_id, block)
            self.sidecar.remove(block)
            # Mark the promotion WRONG (as the nlp path does): the block
            # owes its L1 residency to wrong execution, so its first
            # correct touch settles the usefulness question.
            evicted = self.l1d.insert(block, (sflags & DIRTY) | WRONG)
            self._evict_to_sidecar(evicted)
            return HIT_LATENCY
        stats.counter("wrong_fills").add()
        latency = self._fill_from_l2(block, wrong=True)
        if att is not None:
            att.on_wrong_fill(self.tu_id, block, latency)
        evicted = self.l1d.insert(block, WRONG)
        self._evict_to_sidecar(evicted)
        return HIT_LATENCY + latency

    # ------------------------------------------------------------------
    # Tagged next-line prefetching (nlp)
    # ------------------------------------------------------------------

    def _load_correct_nlp(self, addr: int) -> int:
        stats = self.stats
        att = self._attrib
        stats.counter("loads").add()
        block = addr >> self.l1d.block_bits
        flags = self.l1d.lookup(block)
        if flags is not None:
            stats.counter("l1_hits").add()
            if flags & WRONG:
                # Wrong loads fill (or promote into) the L1 under nlp:
                # settle their usefulness on first correct touch.
                stats.counter("useful_wrong_hits").add()
                self.l1d.clear_flags(block, WRONG)
            if att is not None:
                att.on_use(self.tu_id, block)
            if flags & PREFETCHED:
                # First demand touch of a prefetched block: re-arm.
                late = self._late_charge(flags)
                self.l1d.clear_flags(block, PREFETCHED | PF_FAR)
                stats.counter("useful_prefetch_hits").add()
                self._prefetch_next_into_sidecar(block)
                return HIT_LATENCY + late
            return HIT_LATENCY
        stats.counter("l1_misses").add()
        if self._obs is not None:
            self._obs.emit(L1_MISS, self.tu_id, block)
        assert self.sidecar is not None
        sflags = self.sidecar.probe(block)
        if sflags is not None:
            # First hit to a prefetched block waiting in the buffer:
            # promote it and prefetch the next line (tagged prefetching).
            stats.counter("sidecar_hits").add()
            self._count_usefulness(block, sflags)
            if att is not None:
                att.on_use(self.tu_id, block)
            self.sidecar.remove(block)
            evicted = self.l1d.insert(block, sflags & DIRTY)
            self._evict_to_l2(evicted)
            self._prefetch_next_into_sidecar(block)
            return HIT_LATENCY + (
                self._late_charge(sflags) if sflags & PREFETCHED else 0.0
            )
        stats.counter("demand_fills").add()
        latency = self._fill_from_l2(block)
        if att is not None:
            att.on_demand_fill(self.tu_id, block)
        evicted = self.l1d.insert(block, 0)
        self._evict_to_l2(evicted)
        # Prefetch on miss (Smith/Hsu tagged prefetching).
        self._prefetch_next_into_sidecar(block)
        return HIT_LATENCY + latency

    def _store_correct_nlp(self, addr: int) -> int:
        stats = self.stats
        att = self._attrib
        stats.counter("stores").add()
        block = addr >> self.l1d.block_bits
        flags = self.l1d.lookup(block)
        if flags is not None:
            stats.counter("l1_hits").add()
            if att is not None:
                att.on_use(self.tu_id, block)
            if not flags & DIRTY:
                self.l1d.or_flags(block, DIRTY)
            return HIT_LATENCY
        stats.counter("l1_misses").add()
        if self._obs is not None:
            self._obs.emit(L1_MISS, self.tu_id, block, 1)
        assert self.sidecar is not None
        sflags = self.sidecar.probe(block)
        if sflags is not None:
            stats.counter("sidecar_hits").add()
            self._count_usefulness(block, sflags)
            if att is not None:
                att.on_use(self.tu_id, block)
            self.sidecar.remove(block)
            evicted = self.l1d.insert(block, DIRTY)
            self._evict_to_l2(evicted)
            return HIT_LATENCY
        stats.counter("demand_fills").add()
        latency = self._fill_from_l2(block)
        if att is not None:
            att.on_demand_fill(self.tu_id, block)
        evicted = self.l1d.insert(block, DIRTY)
        self._evict_to_l2(evicted)
        return HIT_LATENCY + latency

    # ------------------------------------------------------------------
    # Stream-detecting prefetcher (extension; not in the paper)
    # ------------------------------------------------------------------

    def _prefetch_block_into_sidecar(self, target: int) -> None:
        """Fetch one specific block into the prefetch buffer."""
        assert self.sidecar is not None
        if target in self.l1d or target in self.sidecar:
            return
        self.stats.counter("prefetches").add()
        latency = self._fill_from_l2(target, prefetch=True)
        if self._obs_wec is not None:
            self._obs_wec.emit(WEC_NLP, self.tu_id, target, latency)
        att = self._attrib
        if att is not None:
            att.on_prefetch_fill(self.tu_id, target, latency, PROV_STREAM)
        flags = PREFETCHED
        if latency > self.l2.cfg.l2.hit_latency:
            flags |= PF_FAR
        bumped = self.sidecar.insert(target, flags)
        if bumped is not None:
            if att is not None:
                att.on_evict(self.tu_id, bumped[0], from_sidecar=True)
            if bumped[1] & DIRTY:
                self._writeback(bumped[0])

    def _load_correct_stream(self, addr: int) -> int:
        stats = self.stats
        att = self._attrib
        stats.counter("loads").add()
        block = addr >> self.l1d.block_bits
        detector = self.stream_detector
        assert detector is not None and self.sidecar is not None
        flags = self.l1d.lookup(block)
        if flags is not None:
            stats.counter("l1_hits").add()
            if flags & WRONG:
                # Wrong loads fill the L1 under stream (shared nlp wrong
                # path): settle usefulness on first correct touch.
                stats.counter("useful_wrong_hits").add()
                self.l1d.clear_flags(block, WRONG)
            if att is not None:
                att.on_use(self.tu_id, block)
            if flags & PREFETCHED:
                late = self._late_charge(flags)
                self.l1d.clear_flags(block, PREFETCHED | PF_FAR)
                stats.counter("useful_prefetch_hits").add()
                for target in detector.on_prefetch_hit(block):
                    self._prefetch_block_into_sidecar(target)
                return HIT_LATENCY + late
            return HIT_LATENCY
        stats.counter("l1_misses").add()
        if self._obs is not None:
            self._obs.emit(L1_MISS, self.tu_id, block)
        sflags = self.sidecar.probe(block)
        if sflags is not None:
            stats.counter("sidecar_hits").add()
            self._count_usefulness(block, sflags)
            if att is not None:
                att.on_use(self.tu_id, block)
            self.sidecar.remove(block)
            evicted = self.l1d.insert(block, sflags & DIRTY)
            self._evict_to_l2(evicted)
            for target in detector.on_prefetch_hit(block):
                self._prefetch_block_into_sidecar(target)
            return HIT_LATENCY + (
                self._late_charge(sflags) if sflags & PREFETCHED else 0.0
            )
        stats.counter("demand_fills").add()
        latency = self._fill_from_l2(block)
        if att is not None:
            att.on_demand_fill(self.tu_id, block)
        evicted = self.l1d.insert(block, 0)
        self._evict_to_l2(evicted)
        for target in detector.on_demand_miss(block):
            self._prefetch_block_into_sidecar(target)
        return HIT_LATENCY + latency

    # ------------------------------------------------------------------
    # Plain policy (orig / wp / wth / wth-wp): no sidecar
    # ------------------------------------------------------------------

    def _load_correct_plain(self, addr: int) -> int:
        stats = self.stats
        att = self._attrib
        stats.counter("loads").add()
        block = addr >> self.l1d.block_bits
        flags = self.l1d.lookup(block)
        if flags is not None:
            stats.counter("l1_hits").add()
            if flags & WRONG:
                stats.counter("useful_wrong_hits").add()
                self.l1d.clear_flags(block, WRONG)
            if att is not None:
                att.on_use(self.tu_id, block)
            return HIT_LATENCY
        stats.counter("l1_misses").add()
        if self._obs is not None:
            self._obs.emit(L1_MISS, self.tu_id, block)
        stats.counter("demand_fills").add()
        latency = self._fill_from_l2(block)
        if att is not None:
            att.on_demand_fill(self.tu_id, block)
        evicted = self.l1d.insert(block, 0)
        self._evict_to_l2(evicted)
        return HIT_LATENCY + latency

    def _store_correct_plain(self, addr: int) -> int:
        stats = self.stats
        att = self._attrib
        stats.counter("stores").add()
        block = addr >> self.l1d.block_bits
        flags = self.l1d.lookup(block)
        if flags is not None:
            stats.counter("l1_hits").add()
            if att is not None:
                att.on_use(self.tu_id, block)
            if not flags & DIRTY:
                self.l1d.or_flags(block, DIRTY)
            return HIT_LATENCY
        stats.counter("l1_misses").add()
        if self._obs is not None:
            self._obs.emit(L1_MISS, self.tu_id, block, 1)
        stats.counter("demand_fills").add()
        latency = self._fill_from_l2(block)
        if att is not None:
            att.on_demand_fill(self.tu_id, block)
        evicted = self.l1d.insert(block, DIRTY)
        self._evict_to_l2(evicted)
        return HIT_LATENCY + latency

    def _load_wrong_nlp(self, addr: int) -> int:
        """Wrong-execution load under nlp.

        The paper's ``nlp`` configuration never wrong-executes, but the
        policy stays coherent if a caller enables it anyway: a block
        waiting in the prefetch buffer is promoted rather than
        double-allocated, preserving L1/sidecar exclusivity.
        """
        stats = self.stats
        att = self._attrib
        stats.counter("wrong_loads").add()
        block = addr >> self.l1d.block_bits
        if self.l1d.lookup(block) is not None:
            stats.counter("wrong_l1_hits").add()
            return HIT_LATENCY
        assert self.sidecar is not None
        sflags = self.sidecar.probe(block)
        if sflags is not None:
            stats.counter("wrong_sidecar_hits").add()
            if att is not None:
                att.on_wrong_promote(self.tu_id, block)
            self.sidecar.remove(block)
            evicted = self.l1d.insert(block, (sflags & DIRTY) | WRONG)
            self._evict_to_l2(evicted)
            return HIT_LATENCY
        stats.counter("wrong_fills").add()
        latency = self._fill_from_l2(block, wrong=True)
        if att is not None:
            att.on_wrong_fill(self.tu_id, block, latency)
        evicted = self.l1d.insert(block, WRONG)
        self._evict_to_l2(evicted)
        return HIT_LATENCY + latency

    def _load_wrong_plain(self, addr: int) -> int:
        """Wrong-execution load with no sidecar: fills (and pollutes) the L1."""
        stats = self.stats
        att = self._attrib
        stats.counter("wrong_loads").add()
        block = addr >> self.l1d.block_bits
        if self.l1d.lookup(block) is not None:
            stats.counter("wrong_l1_hits").add()
            return HIT_LATENCY
        stats.counter("wrong_fills").add()
        latency = self._fill_from_l2(block, wrong=True)
        if att is not None:
            att.on_wrong_fill(self.tu_id, block, latency)
        evicted = self.l1d.insert(block, WRONG)
        self._evict_to_l2(evicted)
        return HIT_LATENCY + latency

    # ------------------------------------------------------------------
    # Instruction fetch
    # ------------------------------------------------------------------

    def ifetch(self, addr: int) -> int:
        """Fetch an instruction block through the private L1 I-cache."""
        stats = self.stats
        stats.counter("ifetches").add()
        block = addr >> self.l1i.block_bits
        if self.l1i.lookup(block) is not None:
            return HIT_LATENCY
        stats.counter("l1i_misses").add()
        latency = self.l2.read(block << self.l1i.block_bits, self.tu_id)
        self.l1i.insert(block, 0)
        return HIT_LATENCY + latency

    # ------------------------------------------------------------------
    # Coherence hook (update protocol during sequential execution, §3.2.2)
    # ------------------------------------------------------------------

    def bus_update(self, addr: int) -> bool:
        """Apply a remote store's update if this TU caches the block.

        Returns True when an update was applied.  The update protocol
        keeps remote copies valid (no invalidation), so no state change
        beyond accounting is required in a value-free simulation.
        """
        block = addr >> self.l1d.block_bits
        present = (self.l1d.probe(block) is not None) or (
            self.sidecar is not None and self.sidecar.probe(block) is not None
        )
        if present:
            self.stats.counter("bus_updates").add()
        return present

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    @property
    def l1_traffic(self) -> int:
        """Processor↔L1 data traffic: all loads, stores and wrong loads."""
        s = self.stats
        return s["loads"] + s["stores"] + s["wrong_loads"]

    @property
    def effective_misses(self) -> int:
        """Correct-path misses that had to be serviced beyond L1+sidecar."""
        return self.stats["demand_fills"]

    def l1_miss_rate(self) -> float:
        """Correct-path L1 miss rate."""
        s = self.stats
        total = s["loads"] + s["stores"]
        return s["l1_misses"] / total if total else 0.0

    def reset(self) -> None:
        """Drop cached state and statistics (the shared L2 is untouched)."""
        self.l1d.flush()
        self.l1i.flush()
        if self.sidecar is not None:
            self.sidecar.flush()
        if self.stream_detector is not None:
            self.stream_detector.reset()
        self.stats.reset()
