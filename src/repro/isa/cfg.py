"""Control-flow-graph model of one loop iteration's body.

Benchmark models (:mod:`repro.workloads.benchmarks`) describe each
parallelized loop's body as a small CFG of :class:`BlockSpec` basic
blocks.  The trace generator *walks* this CFG once per dynamic iteration:
every block contributes its instruction mix, its memory slots emit
addresses drawn from named access patterns, and every conditional branch
emits a (PC, outcome) pair that the simulated branch predictor must
predict.  This gives the predictor a realistic per-PC workload (biased
branches, data-dependent branches, loop back-edges) instead of a flat
misprediction-rate parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..common.errors import WorkloadError
from .instructions import InstrClass, InstructionMix

__all__ = ["MemSlot", "BranchSpec", "BlockSpec", "IterationCFG", "WalkResult"]

#: Hard cap on blocks executed in one CFG walk (guards against
#: mis-specified graphs that would otherwise loop forever).
MAX_BLOCKS_PER_WALK = 10_000


@dataclass(frozen=True)
class MemSlot:
    """One static memory instruction inside a basic block.

    ``pattern`` names an address pattern registered with the walker;
    ``is_store`` distinguishes stores, and ``is_target_store`` marks the
    superthreaded *target stores* whose addresses are computed in the
    TSAG stage and forwarded downstream (§2.2).
    """

    pattern: str
    is_store: bool = False
    is_target_store: bool = False

    def __post_init__(self) -> None:
        if self.is_target_store and not self.is_store:
            raise WorkloadError("a target store must be a store")


@dataclass(frozen=True)
class BranchSpec:
    """The conditional branch terminating a basic block.

    ``taken_prob`` is the probability the branch is taken on a given
    execution; ``taken_target`` / ``fallthrough`` name successor blocks
    (``None`` ends the iteration).  ``noise`` in [0, 1] mixes in
    per-execution randomness that even a perfect predictor cannot learn
    (data-dependent branches); 0 means the outcome stream is exactly
    Bernoulli(taken_prob) which a counter predictor learns to the bias.
    """

    taken_prob: float
    taken_target: Optional[str]
    fallthrough: Optional[str]
    noise: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.taken_prob <= 1.0:
            raise WorkloadError(f"taken_prob {self.taken_prob} outside [0,1]")
        if not 0.0 <= self.noise <= 1.0:
            raise WorkloadError(f"noise {self.noise} outside [0,1]")


@dataclass(frozen=True)
class BlockSpec:
    """A basic block: instruction mix, memory slots, optional branch."""

    name: str
    n_instr: int
    mix_weights: Dict[InstrClass, float] = field(
        default_factory=lambda: {InstrClass.IALU: 1.0}
    )
    mem_slots: Tuple[MemSlot, ...] = ()
    branch: Optional[BranchSpec] = None
    #: Unconditional successor when there is no branch (None ends walk).
    next_block: Optional[str] = None

    def __post_init__(self) -> None:
        if self.n_instr < 0:
            raise WorkloadError(f"block {self.name}: negative instruction count")
        if self.branch is not None and self.next_block is not None:
            raise WorkloadError(
                f"block {self.name}: cannot have both a branch and a fallthrough successor"
            )


@dataclass
class WalkResult:
    """The dynamic record of one CFG walk (one loop iteration).

    Memory operations and branches carry a *position* — their index in
    the dynamic instruction stream — so the replay engine can interleave
    them and relate wrong-path injection points to upcoming loads.
    """

    n_instr: int
    mix: InstructionMix
    #: (position, pattern, is_store, is_target_store) per memory op,
    #: in dynamic order; addresses are bound later by the trace generator.
    mem_ops: List[Tuple[int, str, bool, bool]]
    #: (position, pc, taken) per conditional branch, in dynamic order.
    branches: List[Tuple[int, int, bool]]
    blocks_executed: int


class IterationCFG:
    """A validated CFG plus the walker that produces dynamic traces."""

    def __init__(self, entry: str, blocks: Sequence[BlockSpec], pc_base: int = 0x400000) -> None:
        self.entry = entry
        self.blocks: Dict[str, BlockSpec] = {}
        for b in blocks:
            if b.name in self.blocks:
                raise WorkloadError(f"duplicate block name {b.name!r}")
            self.blocks[b.name] = b
        self._validate()
        # Stable per-block branch PCs so predictors see consistent indices.
        self._branch_pc: Dict[str, int] = {}
        for i, name in enumerate(sorted(self.blocks)):
            self._branch_pc[name] = pc_base + 16 * i

    def _validate(self) -> None:
        if self.entry not in self.blocks:
            raise WorkloadError(f"entry block {self.entry!r} not defined")
        for b in self.blocks.values():
            targets = []
            if b.branch is not None:
                targets.extend([b.branch.taken_target, b.branch.fallthrough])
            elif b.next_block is not None:
                targets.append(b.next_block)
            for t in targets:
                if t is not None and t not in self.blocks:
                    raise WorkloadError(f"block {b.name!r} targets unknown block {t!r}")

    def branch_pc(self, block_name: str) -> int:
        """The stable PC assigned to ``block_name``'s terminating branch."""
        return self._branch_pc[block_name]

    def walk(self, rng: np.random.Generator) -> WalkResult:
        """Execute the CFG once, producing a dynamic iteration record."""
        pos = 0
        mix = InstructionMix()
        mem_ops: List[Tuple[int, str, bool, bool]] = []
        branches: List[Tuple[int, int, bool]] = []
        blocks_executed = 0
        current: Optional[str] = self.entry
        while current is not None:
            blocks_executed += 1
            if blocks_executed > MAX_BLOCKS_PER_WALK:
                raise WorkloadError(
                    f"CFG walk exceeded {MAX_BLOCKS_PER_WALK} blocks; "
                    f"check loop back-edge probabilities"
                )
            block = self.blocks[current]
            body_instr = block.n_instr
            mix.merge_from(InstructionMix.from_weights(body_instr, block.mix_weights))
            # Spread memory slots evenly across the block's instructions.
            n_slots = len(block.mem_slots)
            for i, slot in enumerate(block.mem_slots):
                slot_pos = pos + (body_instr * (i + 1)) // (n_slots + 1)
                mem_ops.append((slot_pos, slot.pattern, slot.is_store, slot.is_target_store))
            pos += body_instr
            if block.branch is not None:
                br = block.branch
                p = br.taken_prob
                if br.noise > 0.0:
                    # Mix the bias with an unlearnable coin flip.
                    p = p * (1.0 - br.noise) + 0.5 * br.noise
                taken = bool(rng.random() < p)
                branches.append((pos, self._branch_pc[current], taken))
                mix.add(InstrClass.BRANCH, 1)
                pos += 1
                current = br.taken_target if taken else br.fallthrough
            else:
                current = block.next_block
        return WalkResult(
            n_instr=pos,
            mix=mix,
            mem_ops=mem_ops,
            branches=branches,
            blocks_executed=blocks_executed,
        )
