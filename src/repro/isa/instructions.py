"""Instruction classes and mixes for the superthreaded ISA model.

The simulator is trace-driven: it does not interpret register semantics,
but it does track dynamic instruction *classes* because the thread-unit
timing model charges different functional units (Table 3) and the
thread-pipelining stages are built from specific instruction kinds
(``FORK``, ``ABORT``, ``BEGIN``, target stores).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

from ..common.errors import ConfigError

__all__ = ["InstrClass", "InstructionMix", "FU_CLASS_MAP"]


class InstrClass(enum.IntEnum):
    """Dynamic instruction classes recognised by the timing model."""

    IALU = 0
    IMULT = 1
    FPALU = 2
    FPMULT = 3
    LOAD = 4
    STORE = 5
    BRANCH = 6
    #: Target store: a store whose address is computed in the TSAG stage
    #: and forwarded to downstream memory buffers (§2.2).
    TSTORE = 7
    #: Thread-management instructions of the superthreaded ISA (§2.2).
    FORK = 8
    ABORT = 9
    BEGIN = 10
    OTHER = 11


#: Which functional-unit pool each class occupies (None = none/pipeline).
FU_CLASS_MAP: Dict[InstrClass, str] = {
    InstrClass.IALU: "int_alu",
    InstrClass.IMULT: "int_mult",
    InstrClass.FPALU: "fp_alu",
    InstrClass.FPMULT: "fp_mult",
    InstrClass.LOAD: "int_alu",   # address generation
    InstrClass.STORE: "int_alu",  # address generation
    InstrClass.TSTORE: "int_alu",
    InstrClass.BRANCH: "int_alu",
}

N_CLASSES = len(InstrClass)


@dataclass
class InstructionMix:
    """Counts of dynamic instructions by class.

    Used both as a *specification* (relative weights inside a basic
    block) and as an *accumulator* (dynamic counts over a trace).
    """

    counts: Dict[InstrClass, int] = field(default_factory=dict)

    @classmethod
    def from_weights(cls, total: int, weights: Mapping[InstrClass, float]) -> "InstructionMix":
        """Apportion ``total`` instructions according to ``weights``.

        Rounds down per class and assigns the remainder to ``IALU`` so the
        total is exact.

        >>> mix = InstructionMix.from_weights(10, {InstrClass.LOAD: 0.3, InstrClass.IALU: 0.7})
        >>> mix.total
        10
        >>> mix.counts[InstrClass.LOAD]
        3
        """
        if total < 0:
            raise ConfigError("instruction total must be non-negative")
        wsum = sum(weights.values())
        if wsum <= 0:
            raise ConfigError("instruction mix weights must sum to a positive value")
        counts: Dict[InstrClass, int] = {}
        assigned = 0
        for klass, w in weights.items():
            n = int(total * (w / wsum))
            if n:
                counts[klass] = n
                assigned += n
        remainder = total - assigned
        if remainder:
            counts[InstrClass.IALU] = counts.get(InstrClass.IALU, 0) + remainder
        return cls(counts)

    @property
    def total(self) -> int:
        """Total dynamic instruction count."""
        return sum(self.counts.values())

    def count(self, klass: InstrClass) -> int:
        """Dynamic count for one class (0 when absent)."""
        return self.counts.get(klass, 0)

    def add(self, klass: InstrClass, n: int = 1) -> None:
        """Accumulate ``n`` instructions of ``klass``."""
        if n:
            self.counts[klass] = self.counts.get(klass, 0) + n

    def merge_from(self, other: "InstructionMix") -> None:
        """Accumulate another mix into this one."""
        for klass, n in other.counts.items():
            self.add(klass, n)

    def scaled(self, factor: float) -> "InstructionMix":
        """A copy with every count scaled by ``factor`` (rounded, >=0)."""
        return InstructionMix(
            {k: max(0, int(round(n * factor))) for k, n in self.counts.items() if n}
        )

    @property
    def mem_ops(self) -> int:
        """Loads plus all stores (including target stores)."""
        return (
            self.count(InstrClass.LOAD)
            + self.count(InstrClass.STORE)
            + self.count(InstrClass.TSTORE)
        )

    def fu_demand(self) -> Dict[str, int]:
        """Dynamic demand per functional-unit pool."""
        demand: Dict[str, int] = {}
        for klass, n in self.counts.items():
            pool = FU_CLASS_MAP.get(klass)
            if pool is not None:
                demand[pool] = demand.get(pool, 0) + n
        return demand

    def __repr__(self) -> str:
        inner = ", ".join(f"{k.name}={n}" for k, n in sorted(self.counts.items()))
        return f"InstructionMix({inner})"
