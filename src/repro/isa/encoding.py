"""Compact numpy encoding of dynamic iteration traces.

The hot replay loop in :mod:`repro.core` consumes pre-decoded integer
arrays rather than per-instruction objects (see the hpc-parallel
guidance: no per-event allocation in the hot path).  One
:class:`IterationTrace` captures everything the timing model and the
memory hierarchy need for a single loop iteration (or a sequential
chunk): bound load/store addresses with stream positions, the branch
outcome stream, and the thread-pipelining stage split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..common.errors import WorkloadError
from .instructions import InstructionMix

__all__ = ["StageSplit", "IterationTrace", "EV_LOAD", "EV_STORE", "EV_TSTORE", "EV_BRANCH"]

EV_LOAD = 0
EV_STORE = 1
EV_TSTORE = 2
EV_BRANCH = 3


@dataclass(frozen=True)
class StageSplit:
    """Fraction of an iteration's instructions in each pipelining stage.

    §2.2: continuation (recurrence variables, ends in fork), TSAG
    (target-store address generation), computation (bulk of the body),
    write-back (commit of the memory buffer, performed in order).
    """

    continuation: float = 0.05
    tsag: float = 0.05
    computation: float = 0.85
    writeback: float = 0.05

    def __post_init__(self) -> None:
        total = self.continuation + self.tsag + self.computation + self.writeback
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"stage split must sum to 1.0, got {total}")
        for name in ("continuation", "tsag", "computation", "writeback"):
            if getattr(self, name) < 0:
                raise WorkloadError(f"negative stage fraction {name}")

    def cycles(self, total_cycles: float) -> Tuple[float, float, float, float]:
        """Split ``total_cycles`` across the four stages."""
        return (
            total_cycles * self.continuation,
            total_cycles * self.tsag,
            total_cycles * self.computation,
            total_cycles * self.writeback,
        )


@dataclass
class IterationTrace:
    """The fully bound dynamic trace of one iteration.

    All arrays are parallel within their kind and sorted by stream
    position.  ``branch_next_load[i]`` is the index into ``load_addrs``
    of the first load *after* branch ``i`` — the reconvergence anchor the
    wrong-path injector uses to synthesize convergent wrong-path loads.
    """

    n_instr: int
    mix: InstructionMix
    load_addrs: np.ndarray    # int64 byte addresses
    load_pos: np.ndarray      # int64 stream positions
    store_addrs: np.ndarray   # int64
    store_pos: np.ndarray     # int64
    tstore_mask: np.ndarray   # bool, parallel to store_addrs
    branch_pcs: np.ndarray    # int64
    branch_pos: np.ndarray    # int64
    branch_taken: np.ndarray  # bool
    stage_split: StageSplit = field(default_factory=StageSplit)
    #: Values forwarded to the next thread at fork (continuation vars +
    #: target-store addresses); drives the per-fork communication cost.
    n_forward_values: int = 2
    branch_next_load: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if len(self.load_addrs) != len(self.load_pos):
            raise WorkloadError("load address/position arrays disagree")
        if not (len(self.store_addrs) == len(self.store_pos) == len(self.tstore_mask)):
            raise WorkloadError("store arrays disagree")
        if not (len(self.branch_pcs) == len(self.branch_pos) == len(self.branch_taken)):
            raise WorkloadError("branch arrays disagree")
        if self.branch_next_load is None:
            self.branch_next_load = np.searchsorted(
                self.load_pos, self.branch_pos, side="left"
            ).astype(np.int64)

    @property
    def n_loads(self) -> int:
        return len(self.load_addrs)

    @property
    def n_stores(self) -> int:
        return len(self.store_addrs)

    @property
    def n_branches(self) -> int:
        return len(self.branch_pcs)

    @property
    def n_target_stores(self) -> int:
        return int(self.tstore_mask.sum())

    def merged_events(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Merge loads, stores and branches into one position-ordered stream.

        Returns ``(kinds, values, indices)`` where ``kinds`` holds
        ``EV_LOAD``/``EV_STORE``/``EV_TSTORE``/``EV_BRANCH``, ``values``
        holds the address (memory ops) or PC (branches), and ``indices``
        is the op's index within its own kind-specific array.
        """
        n = self.n_loads + self.n_stores + self.n_branches
        pos = np.empty(n, dtype=np.int64)
        kinds = np.empty(n, dtype=np.int8)
        values = np.empty(n, dtype=np.int64)
        indices = np.empty(n, dtype=np.int64)
        a = 0
        b = a + self.n_loads
        pos[a:b] = self.load_pos
        kinds[a:b] = EV_LOAD
        values[a:b] = self.load_addrs
        indices[a:b] = np.arange(self.n_loads)
        a, b = b, b + self.n_stores
        pos[a:b] = self.store_pos
        kinds[a:b] = np.where(self.tstore_mask, EV_TSTORE, EV_STORE)
        values[a:b] = self.store_addrs
        indices[a:b] = np.arange(self.n_stores)
        a, b = b, b + self.n_branches
        pos[a:b] = self.branch_pos
        kinds[a:b] = EV_BRANCH
        values[a:b] = self.branch_pcs
        indices[a:b] = np.arange(self.n_branches)
        order = np.argsort(pos, kind="stable")
        return kinds[order], values[order], indices[order]

    def future_load_addrs(self, from_load_idx: int, window: int) -> np.ndarray:
        """Correct-path load addresses in ``[from_load_idx, +window)``.

        Used by the wrong-path injector: loads just past a mispredicted
        branch's reconvergence point are exactly the ones a convergent
        wrong path would also touch.
        """
        if from_load_idx < 0:
            raise WorkloadError("negative load index")
        return self.load_addrs[from_load_idx : from_load_idx + window]

    @staticmethod
    def empty(n_instr: int = 0) -> "IterationTrace":
        """An all-empty trace (useful for padding and tests)."""
        z64 = np.empty(0, dtype=np.int64)
        zb = np.empty(0, dtype=bool)
        return IterationTrace(
            n_instr=n_instr,
            mix=InstructionMix(),
            load_addrs=z64,
            load_pos=z64.copy(),
            store_addrs=z64.copy(),
            store_pos=z64.copy(),
            tstore_mask=zb,
            branch_pcs=z64.copy(),
            branch_pos=z64.copy(),
            branch_taken=zb.copy(),
        )
