"""Instruction-set and program-representation layer."""

from .cfg import BlockSpec, BranchSpec, IterationCFG, MemSlot, WalkResult
from .encoding import (
    EV_BRANCH,
    EV_LOAD,
    EV_STORE,
    EV_TSTORE,
    IterationTrace,
    StageSplit,
)
from .instructions import FU_CLASS_MAP, InstrClass, InstructionMix

__all__ = [
    "BlockSpec",
    "BranchSpec",
    "IterationCFG",
    "MemSlot",
    "WalkResult",
    "EV_BRANCH",
    "EV_LOAD",
    "EV_STORE",
    "EV_TSTORE",
    "IterationTrace",
    "StageSplit",
    "FU_CLASS_MAP",
    "InstrClass",
    "InstructionMix",
]
