"""Return-address stack.

Completes the front-end model; the synthetic workloads emit call/return
pairs only inside sequential regions' helper routines, so the RAS mostly
matters to the instruction-fetch fidelity tests rather than the headline
experiments.  Behaviour: circular stack that silently wraps (overwriting
the oldest entry) like real hardware.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.errors import ConfigError

__all__ = ["ReturnAddressStack"]


class ReturnAddressStack:
    """Fixed-depth circular return-address predictor stack."""

    __slots__ = ("_depth", "_stack", "_top", "_count", "pushes", "pops", "underflows")

    def __init__(self, depth: int) -> None:
        if depth <= 0:
            raise ConfigError("RAS depth must be positive")
        self._depth = depth
        self._stack: List[int] = [0] * depth
        self._top = 0       # index of the next free slot
        self._count = 0     # valid entries (<= depth)
        self.pushes = 0
        self.pops = 0
        self.underflows = 0

    @property
    def depth(self) -> int:
        return self._depth

    def __len__(self) -> int:
        return self._count

    def push(self, return_pc: int) -> None:
        """Push a return address; wraps (loses oldest) when full."""
        self.pushes += 1
        self._stack[self._top] = return_pc
        self._top = (self._top + 1) % self._depth
        if self._count < self._depth:
            self._count += 1

    def pop(self) -> Optional[int]:
        """Pop the predicted return address; None on underflow."""
        self.pops += 1
        if self._count == 0:
            self.underflows += 1
            return None
        self._top = (self._top - 1) % self._depth
        self._count -= 1
        return self._stack[self._top]

    def peek(self) -> Optional[int]:
        """The address a pop would return, without popping."""
        if self._count == 0:
            return None
        return self._stack[(self._top - 1) % self._depth]

    def reset(self) -> None:
        """Empty the stack and zero statistics."""
        self._top = 0
        self._count = 0
        self.pushes = 0
        self.pops = 0
        self.underflows = 0
