"""Branch target buffer (set-associative, LRU).

The paper's TUs each use a 1024-entry 4-way BTB (§4.1).  In this
reproduction the BTB determines whether a *taken* prediction can
actually redirect fetch: a taken branch that misses in the BTB is
charged like a misprediction (the target is unknown until resolve),
which slightly raises the effective misprediction rate early in a run —
matching the warm-up behaviour of real front ends.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..common.errors import ConfigError

__all__ = ["BranchTargetBuffer"]


class BranchTargetBuffer:
    """A set-associative BTB with true-LRU replacement.

    Entries map a branch PC to its most recent taken target.
    """

    __slots__ = ("_n_sets", "_assoc", "_sets", "hits", "misses", "updates")

    def __init__(self, entries: int, assoc: int) -> None:
        if entries <= 0 or assoc <= 0 or entries % assoc != 0:
            raise ConfigError(f"bad BTB geometry: {entries} entries, {assoc}-way")
        self._n_sets = entries // assoc
        self._assoc = assoc
        # Each set is an LRU-ordered dict: oldest first (Python dicts
        # preserve insertion order; re-insert to refresh).
        self._sets: List[Dict[int, int]] = [dict() for _ in range(self._n_sets)]
        self.hits = 0
        self.misses = 0
        self.updates = 0

    @property
    def entries(self) -> int:
        """Total entry capacity."""
        return self._n_sets * self._assoc

    @property
    def assoc(self) -> int:
        return self._assoc

    def _set_for(self, pc: int) -> Dict[int, int]:
        return self._sets[(pc >> 2) % self._n_sets]

    def lookup(self, pc: int) -> Optional[int]:
        """Return the cached target for ``pc``, refreshing LRU; None on miss."""
        s = self._set_for(pc)
        target = s.get(pc)
        if target is None:
            self.misses += 1
            return None
        self.hits += 1
        # Refresh LRU position.
        del s[pc]
        s[pc] = target
        return target

    def insert(self, pc: int, target: int) -> None:
        """Record the resolved taken target for ``pc``."""
        self.updates += 1
        s = self._set_for(pc)
        if pc in s:
            del s[pc]
        elif len(s) >= self._assoc:
            # Evict the LRU entry (first key in insertion order).
            oldest = next(iter(s))
            del s[oldest]
        s[pc] = target

    def occupancy(self) -> int:
        """Number of valid entries currently held."""
        return sum(len(s) for s in self._sets)

    def reset(self) -> None:
        """Invalidate all entries and zero statistics."""
        for s in self._sets:
            s.clear()
        self.hits = 0
        self.misses = 0
        self.updates = 0
