"""Front-end branch unit: direction predictor + BTB + RAS + statistics.

One :class:`BranchUnit` lives in each thread unit.  The replay engine
feeds it every dynamic conditional branch; it answers whether the branch
*mispredicted* — the trigger for wrong-path load injection (§3.1.1) —
and maintains the counters the evaluation reports.
"""

from __future__ import annotations

from ..common.config import BranchPredictorConfig
from ..common.stats import CounterGroup
from ..obs.events import BRANCH_RESOLVE, CAT_BRANCH
from .btb import BranchTargetBuffer
from .predictors import DirectionPredictor, make_predictor
from .ras import ReturnAddressStack

__all__ = ["BranchUnit"]


class BranchUnit:
    """Complete per-TU branch machinery."""

    __slots__ = (
        "cfg", "predictor", "btb", "ras", "stats", "_mispredict_penalty",
        "_obs", "_obs_tu",
    )

    def __init__(
        self,
        cfg: BranchPredictorConfig,
        name: str = "bpred",
        tracer=None,
        tu_id: int = 0,
    ) -> None:
        self.cfg = cfg
        self.predictor: DirectionPredictor = make_predictor(cfg)
        self.btb = BranchTargetBuffer(cfg.btb_entries, cfg.btb_assoc)
        self.ras = ReturnAddressStack(cfg.ras_entries)
        self.stats = CounterGroup(name)
        self._mispredict_penalty = cfg.mispredict_penalty
        self._obs = (
            tracer
            if tracer is not None and tracer.enabled and tracer.wants(CAT_BRANCH)
            else None
        )
        self._obs_tu = tu_id

    @property
    def mispredict_penalty(self) -> int:
        """Cycles charged per misprediction."""
        return self._mispredict_penalty

    def resolve(self, pc: int, taken: bool, target: int = 0) -> bool:
        """Predict the branch at ``pc``, train, and report misprediction.

        A *direction* mispredict always counts.  A correct taken
        prediction that misses in the BTB also counts (fetch could not be
        redirected), which is how real front ends behave on cold
        branches.

        Returns True when the branch mispredicted.
        """
        stats = self.stats
        stats.counter("branches").add()
        predicted_taken = self.predictor.predict(pc)
        mispredicted = predicted_taken != taken
        if predicted_taken:
            btb_target = self.btb.lookup(pc)
            if btb_target is None and not mispredicted:
                # Correct direction, unknown target: still a redirect.
                mispredicted = True
                stats.counter("btb_target_misses").add()
        self.predictor.update(pc, taken)
        if taken:
            self.btb.insert(pc, target if target else pc + 8)
        if mispredicted:
            stats.counter("mispredicts").add()
        if self._obs is not None:
            self._obs.emit(BRANCH_RESOLVE, self._obs_tu, pc, int(mispredicted))
        return mispredicted

    def mispredict_rate(self) -> float:
        """Fraction of resolved branches that mispredicted."""
        total = self.stats["branches"]
        return self.stats["mispredicts"] / total if total else 0.0

    def reset(self) -> None:
        """Clear predictor state and statistics."""
        self.predictor.reset()
        self.btb.reset()
        self.ras.reset()
        self.stats.reset()
