"""Branch prediction: direction predictors, BTB, RAS, front-end unit."""

from .btb import BranchTargetBuffer
from .frontend import BranchUnit
from .predictors import (
    BimodalPredictor,
    CombiningPredictor,
    DirectionPredictor,
    GsharePredictor,
    TwoLevelPredictor,
    make_predictor,
)
from .ras import ReturnAddressStack

__all__ = [
    "BranchTargetBuffer",
    "BranchUnit",
    "BimodalPredictor",
    "CombiningPredictor",
    "DirectionPredictor",
    "GsharePredictor",
    "TwoLevelPredictor",
    "make_predictor",
    "ReturnAddressStack",
]
