"""Dynamic branch direction predictors.

Four classic predictors are provided: bimodal (per-PC 2-bit counters),
gshare (global history XOR PC), a two-level local-history predictor, and
a combining (tournament) predictor.  The superthreaded TU cores default
to gshare with a 4K-entry table; the predictor drives where wrong-path
execution is triggered, so its per-PC learning behaviour matters to the
experiments (biased branches mispredict rarely, noisy data-dependent
branches mispredict often — and those are exactly the wrong paths that
prefetch).

Implementation note: predictors are called once per dynamic branch in
the replay loop, so state lives in flat Python lists of small ints
(faster than numpy for scalar indexing).
"""

from __future__ import annotations

from typing import List, Protocol

from ..common.config import BranchPredictorConfig
from ..common.errors import ConfigError

__all__ = [
    "DirectionPredictor",
    "BimodalPredictor",
    "GsharePredictor",
    "TwoLevelPredictor",
    "CombiningPredictor",
    "make_predictor",
]

_TAKEN_THRESHOLD = 2  # 2-bit counters: 0,1 -> not taken; 2,3 -> taken
_COUNTER_MAX = 3
_WEAK_TAKEN = 2


class DirectionPredictor(Protocol):
    """Protocol implemented by all direction predictors."""

    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at ``pc``."""
        ...

    def update(self, pc: int, taken: bool) -> None:
        """Train with the resolved outcome."""
        ...

    def reset(self) -> None:
        """Forget all learned state."""
        ...


class BimodalPredictor:
    """Per-PC table of saturating 2-bit counters."""

    __slots__ = ("_mask", "_table")

    def __init__(self, table_bits: int) -> None:
        if not 1 <= table_bits <= 24:
            raise ConfigError("bimodal table_bits out of range")
        size = 1 << table_bits
        self._mask = size - 1
        self._table: List[int] = [_WEAK_TAKEN] * size

    def predict(self, pc: int) -> bool:
        return self._table[(pc >> 2) & self._mask] >= _TAKEN_THRESHOLD

    def update(self, pc: int, taken: bool) -> None:
        idx = (pc >> 2) & self._mask
        c = self._table[idx]
        if taken:
            if c < _COUNTER_MAX:
                self._table[idx] = c + 1
        elif c > 0:
            self._table[idx] = c - 1

    def reset(self) -> None:
        for i in range(len(self._table)):
            self._table[i] = _WEAK_TAKEN


class GsharePredictor:
    """Global-history predictor: counters indexed by ``history XOR pc``."""

    __slots__ = ("_mask", "_table", "_history", "_hist_mask")

    def __init__(self, table_bits: int, history_bits: int = 0) -> None:
        if not 1 <= table_bits <= 24:
            raise ConfigError("gshare table_bits out of range")
        size = 1 << table_bits
        self._mask = size - 1
        self._table: List[int] = [_WEAK_TAKEN] * size
        hist_bits = history_bits or table_bits
        self._hist_mask = (1 << hist_bits) - 1
        self._history = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= _TAKEN_THRESHOLD

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        c = self._table[idx]
        if taken:
            if c < _COUNTER_MAX:
                self._table[idx] = c + 1
        elif c > 0:
            self._table[idx] = c - 1
        self._history = ((self._history << 1) | int(taken)) & self._hist_mask

    def reset(self) -> None:
        for i in range(len(self._table)):
            self._table[i] = _WEAK_TAKEN
        self._history = 0


class TwoLevelPredictor:
    """PAg-style local-history predictor.

    A per-PC history register selects a shared pattern table of 2-bit
    counters.  Captures short periodic behaviour (e.g. loop branches
    with constant trip counts) that bimodal cannot.
    """

    __slots__ = ("_hist_table", "_hist_mask", "_pattern", "_pat_mask", "_pc_mask")

    def __init__(self, table_bits: int, history_bits: int = 8) -> None:
        if not 1 <= table_bits <= 24:
            raise ConfigError("twolevel table_bits out of range")
        if not 1 <= history_bits <= 16:
            raise ConfigError("twolevel history_bits out of range")
        n_hist = 1 << max(1, table_bits - 2)
        self._pc_mask = n_hist - 1
        self._hist_table: List[int] = [0] * n_hist
        self._hist_mask = (1 << history_bits) - 1
        n_pat = 1 << table_bits
        self._pat_mask = n_pat - 1
        self._pattern: List[int] = [_WEAK_TAKEN] * n_pat

    def predict(self, pc: int) -> bool:
        hist = self._hist_table[(pc >> 2) & self._pc_mask]
        return self._pattern[hist & self._pat_mask] >= _TAKEN_THRESHOLD

    def update(self, pc: int, taken: bool) -> None:
        hidx = (pc >> 2) & self._pc_mask
        hist = self._hist_table[hidx]
        pidx = hist & self._pat_mask
        c = self._pattern[pidx]
        if taken:
            if c < _COUNTER_MAX:
                self._pattern[pidx] = c + 1
        elif c > 0:
            self._pattern[pidx] = c - 1
        self._hist_table[hidx] = ((hist << 1) | int(taken)) & self._hist_mask

    def reset(self) -> None:
        for i in range(len(self._hist_table)):
            self._hist_table[i] = 0
        for i in range(len(self._pattern)):
            self._pattern[i] = _WEAK_TAKEN


class CombiningPredictor:
    """Tournament predictor choosing between bimodal and gshare per PC."""

    __slots__ = ("_p0", "_p1", "_chooser", "_mask")

    def __init__(self, table_bits: int) -> None:
        self._p0 = BimodalPredictor(table_bits)
        self._p1 = GsharePredictor(table_bits)
        size = 1 << table_bits
        self._mask = size - 1
        self._chooser: List[int] = [_WEAK_TAKEN] * size

    def predict(self, pc: int) -> bool:
        use_gshare = self._chooser[(pc >> 2) & self._mask] >= _TAKEN_THRESHOLD
        return self._p1.predict(pc) if use_gshare else self._p0.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        pred0 = self._p0.predict(pc)
        pred1 = self._p1.predict(pc)
        idx = (pc >> 2) & self._mask
        c = self._chooser[idx]
        if pred0 != pred1:
            if pred1 == taken:
                if c < _COUNTER_MAX:
                    self._chooser[idx] = c + 1
            elif c > 0:
                self._chooser[idx] = c - 1
        self._p0.update(pc, taken)
        self._p1.update(pc, taken)

    def reset(self) -> None:
        self._p0.reset()
        self._p1.reset()
        for i in range(len(self._chooser)):
            self._chooser[i] = _WEAK_TAKEN


def make_predictor(cfg: BranchPredictorConfig) -> DirectionPredictor:
    """Instantiate the direction predictor described by ``cfg``."""
    if cfg.kind == "bimodal":
        return BimodalPredictor(cfg.table_bits)
    if cfg.kind == "gshare":
        return GsharePredictor(cfg.table_bits)
    if cfg.kind == "twolevel":
        return TwoLevelPredictor(cfg.table_bits)
    if cfg.kind == "combining":
        return CombiningPredictor(cfg.table_bits)
    raise ConfigError(f"unknown predictor kind {cfg.kind!r}")
