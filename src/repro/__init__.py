"""repro — reproduction of *Using Incorrect Speculation to Prefetch Data
in a Concurrent Multithreaded Processor* (Chen, Sendag, Lilja; IPPS 2003).

The library simulates a superthreaded architecture (STA): multiple
out-of-order thread units with private L1 caches, a shared L2, thread
pipelining with fork/abort, speculative memory buffers — plus the
paper's contribution: **wrong-path** and **wrong-thread** load execution
and the **Wrong Execution Cache (WEC)** that captures their indirect
prefetching effect without polluting the L1.

Quickstart::

    from repro import run_simulation, named_config

    mcf_wec = run_simulation("181.mcf", named_config("wth-wp-wec"))
    mcf_base = run_simulation("181.mcf", named_config("orig"))
    print(f"WEC speedup: {mcf_wec.relative_speedup_pct_vs(mcf_base):+.1f}%")

Package layout:

- :mod:`repro.common` — configuration, statistics, RNG streams;
- :mod:`repro.isa` — instruction classes, iteration CFGs, trace encoding;
- :mod:`repro.branch` — direction predictors, BTB, RAS;
- :mod:`repro.mem` — caches, the WEC / victim cache / prefetch buffer,
  shared L2, update-bus coherence;
- :mod:`repro.core` — thread-unit cores: replay engine, timing model,
  speculative memory buffer, wrong execution;
- :mod:`repro.sta` — the superthreaded machine, thread-pipelining
  scheduler, and the eight named configurations of §4.3;
- :mod:`repro.workloads` — the six SPEC2000-like benchmark models;
- :mod:`repro.sim` — the run driver, sweeps, result records;
- :mod:`repro.analysis` — speedups, charts, experiment reports.
"""

from .common.config import (
    BranchPredictorConfig,
    CacheConfig,
    FuncUnitMix,
    MachineConfig,
    MemorySystemConfig,
    SidecarConfig,
    SidecarKind,
    SimParams,
    ThreadUnitConfig,
    WrongExecutionConfig,
)
from .common.errors import (
    AnalysisError,
    ConfigError,
    ReproError,
    SimulationError,
    SweepError,
    WorkloadError,
)
from .sim.cache_only import replay_cache_only
from .sim.driver import run_program, run_simulation
from .sim.executor import SweepCell, run_cell, run_cells
from .sim.results import SimResult
from .sim.sweep import run_config_axis, run_grid
from .sta.configs import CONFIG_NAMES, named_config, table3_config
from .sta.machine import Machine
from .workloads.benchmarks import BENCHMARK_NAMES, benchmark_infos, build_benchmark
from .workloads.microbench import MICROBENCH_NAMES, build_microbenchmark

__version__ = "1.0.0"

__all__ = [
    "BranchPredictorConfig",
    "CacheConfig",
    "FuncUnitMix",
    "MachineConfig",
    "MemorySystemConfig",
    "SidecarConfig",
    "SidecarKind",
    "SimParams",
    "ThreadUnitConfig",
    "WrongExecutionConfig",
    "AnalysisError",
    "ConfigError",
    "ReproError",
    "SimulationError",
    "SweepError",
    "WorkloadError",
    "replay_cache_only",
    "run_program",
    "run_simulation",
    "SweepCell",
    "run_cell",
    "run_cells",
    "SimResult",
    "run_config_axis",
    "run_grid",
    "CONFIG_NAMES",
    "named_config",
    "table3_config",
    "Machine",
    "BENCHMARK_NAMES",
    "benchmark_infos",
    "build_benchmark",
    "MICROBENCH_NAMES",
    "build_microbenchmark",
    "__version__",
]
