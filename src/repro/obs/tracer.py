"""Tracer implementations: null, bounded ring buffer, interval metrics.

The contract between the simulator and a tracer is deliberately thin:

* every component holds either ``None`` (tracing off — the hot paths pay
  exactly one ``is not None`` test) or the tracer object;
* :attr:`Tracer.now` is the current simulated cycle, advanced by the
  scheduler (the only layer that knows absolute time — replay inside a
  thread unit is analytic, so its events are stamped with the enclosing
  iteration's start cycle);
* :meth:`Tracer.emit` records one event, stamping ``now`` unless an
  explicit ``cycle`` is given.

Determinism: nothing here consumes simulator RNG streams or mutates
microarchitectural state, so a run with any tracer attached produces a
:class:`~repro.sim.results.SimResult` bit-identical to an untraced run,
and 1-in-N sampling is a plain modular counter (no randomness) so the
sampled stream itself is reproducible for a fixed seed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..common.errors import ConfigError
from .events import (
    CATEGORIES,
    Event,
    ITER_RETIRE,
    KIND_CATEGORY,
    KIND_NAMES,
    L1_MISS,
    METRICS_CATEGORIES,
    WEC_HIT,
    WRONG_LOAD,
)

__all__ = ["Tracer", "NullTracer", "RingBufferTracer", "IntervalMetrics"]


class Tracer:
    """Base tracer: records nothing and costs (almost) nothing.

    Subclasses override :meth:`emit` and :meth:`wants`.  ``enabled`` is a
    class attribute components test once at construction time: when it is
    False they keep a ``None`` handle and never call into the tracer.
    """

    #: Class-level switch; components bind a handle only when True.
    enabled: bool = False

    __slots__ = ("now",)

    def __init__(self) -> None:
        #: Current simulated cycle, maintained by the scheduler.
        self.now: float = 0.0

    def wants(self, category: str) -> bool:
        """Whether events of ``category`` would be recorded at all."""
        return False

    def emit(
        self,
        kind: int,
        tu: int = 0,
        a: int = 0,
        b: int = 0,
        dur: float = 0.0,
        tag: str = "",
        cycle: Optional[float] = None,
    ) -> None:
        """Record one event (no-op in the base/null tracer)."""

    def events(self) -> List[Event]:
        """The recorded events in chronological (emission) order."""
        return []


class NullTracer(Tracer):
    """The zero-cost default: accepted everywhere, records nothing."""

    __slots__ = ()


class IntervalMetrics(Tracer):
    """Per-window time-series collector (IPC, miss/hit rates).

    Buckets events into fixed ``window``-cycle intervals and derives, per
    window:

    * **ipc** — retired instructions / window cycles;
    * **l1_miss_rate** — correct-path L1D misses / correct-path loads;
    * **wec_hit_rate** — sidecar hits / L1D misses (how often a miss was
      absorbed by the WEC/VC/PB);
    * **wrong_load_fraction** — wrong-execution loads / all loads.

    Usable standalone (as the run's tracer) or carried by a
    :class:`RingBufferTracer`, which forwards it every event before its
    own filtering/sampling so the series stay exact.
    """

    __slots__ = ("window", "_buckets")

    enabled = True

    def __init__(self, window: float = 4096.0) -> None:
        super().__init__()
        if window <= 0:
            raise ConfigError("interval window must be positive")
        self.window = float(window)
        self._buckets: Dict[int, List[int]] = {}

    # bucket layout: [instructions, loads, l1_misses, wec_hits, wrong_loads]

    def wants(self, category: str) -> bool:
        return category in METRICS_CATEGORIES

    def record(self, kind: int, cycle: float, a: int, b: int) -> None:
        """Fold one event into its window bucket."""
        if kind == L1_MISS:
            field = 2
        elif kind == WEC_HIT:
            field = 3
        elif kind == WRONG_LOAD:
            field = 4
        elif kind != ITER_RETIRE:
            return
        idx = int(cycle // self.window)
        bucket = self._buckets.get(idx)
        if bucket is None:
            bucket = [0, 0, 0, 0, 0]
            self._buckets[idx] = bucket
        if kind == ITER_RETIRE:
            bucket[0] += a
            bucket[1] += b
        else:
            bucket[field] += 1

    def emit(
        self,
        kind: int,
        tu: int = 0,
        a: int = 0,
        b: int = 0,
        dur: float = 0.0,
        tag: str = "",
        cycle: Optional[float] = None,
    ) -> None:
        self.record(kind, self.now if cycle is None else cycle, a, b)

    @property
    def n_windows(self) -> int:
        return len(self._buckets)

    def series(self) -> Dict[str, object]:
        """The collected time series as parallel lists (JSON-friendly).

        Windows with no events are omitted; ``window_start`` gives each
        window's first cycle so gaps stay unambiguous.
        """
        starts: List[float] = []
        ipc: List[float] = []
        miss_rate: List[float] = []
        wec_rate: List[float] = []
        wrong_frac: List[float] = []
        for idx in sorted(self._buckets):
            instr, loads, misses, wec_hits, wrong = self._buckets[idx]
            starts.append(idx * self.window)
            ipc.append(instr / self.window)
            miss_rate.append(misses / loads if loads else 0.0)
            wec_rate.append(wec_hits / misses if misses else 0.0)
            total_loads = loads + wrong
            wrong_frac.append(wrong / total_loads if total_loads else 0.0)
        return {
            "window": self.window,
            "window_start": starts,
            "ipc": ipc,
            "l1_miss_rate": miss_rate,
            "wec_hit_rate": wec_rate,
            "wrong_load_fraction": wrong_frac,
        }


class RingBufferTracer(Tracer):
    """Bounded event recorder with category filters and 1-in-N sampling.

    * ``capacity`` bounds memory: once full, the oldest events are
      overwritten (``n_dropped`` counts them) — full benches can run with
      tracing on without unbounded growth.
    * ``categories`` restricts recording to the named categories
      (default: all of :data:`~repro.obs.events.CATEGORIES`).
    * ``sample`` keeps every N-th event *per category* — a deterministic
      modular counter, so two identical runs sample identically.
    * ``metrics`` (an :class:`IntervalMetrics`) is forwarded **every**
      event before filtering and sampling, so interval series are exact
      even under aggressive sampling.
    """

    __slots__ = (
        "capacity",
        "sample",
        "metrics",
        "n_emitted",
        "n_dropped",
        "_cats",
        "_ring",
        "_head",
        "_seen",
    )

    enabled = True

    def __init__(
        self,
        capacity: int = 1 << 16,
        categories: Optional[Iterable[str]] = None,
        sample: int = 1,
        metrics: Optional[IntervalMetrics] = None,
    ) -> None:
        super().__init__()
        if capacity < 1:
            raise ConfigError("tracer capacity must be >= 1")
        if sample < 1:
            raise ConfigError("sampling rate must be >= 1 (1 = keep all)")
        cats = set(CATEGORIES) if categories is None else set(categories)
        unknown = cats - set(CATEGORIES)
        if unknown:
            raise ConfigError(
                f"unknown trace categories: {', '.join(sorted(unknown))} "
                f"(known: {', '.join(CATEGORIES)})"
            )
        self.capacity = capacity
        self.sample = sample
        self.metrics = metrics
        self.n_emitted = 0
        self.n_dropped = 0
        self._cats = cats
        self._ring: List[Event] = []
        self._head = 0  # next overwrite position once the ring is full
        self._seen: Dict[str, int] = {c: 0 for c in CATEGORIES}

    def wants(self, category: str) -> bool:
        if category in self._cats:
            return True
        return self.metrics is not None and category in METRICS_CATEGORIES

    def emit(
        self,
        kind: int,
        tu: int = 0,
        a: int = 0,
        b: int = 0,
        dur: float = 0.0,
        tag: str = "",
        cycle: Optional[float] = None,
    ) -> None:
        ts = self.now if cycle is None else cycle
        if self.metrics is not None:
            self.metrics.record(kind, ts, a, b)
        cat = KIND_CATEGORY[kind]
        if cat not in self._cats:
            return
        seen = self._seen[cat]
        self._seen[cat] = seen + 1
        if seen % self.sample:
            return
        self.n_emitted += 1
        event = Event(ts, kind, tu, a, b, dur, tag)
        ring = self._ring
        if len(ring) < self.capacity:
            ring.append(event)
        else:
            ring[self._head] = event
            self._head = (self._head + 1) % self.capacity
            self.n_dropped += 1

    def events(self) -> List[Event]:
        """Recorded events, oldest first (unwrapping the ring)."""
        if len(self._ring) < self.capacity:
            return list(self._ring)
        return self._ring[self._head:] + self._ring[: self._head]

    def counts_by_kind(self) -> Dict[str, int]:
        """Readable per-kind tally of the currently buffered events."""
        out: Dict[str, int] = {}
        for ev in self._ring:
            name = KIND_NAMES.get(ev.kind, str(ev.kind))
            out[name] = out.get(name, 0) + 1
        return out

    def clear(self) -> None:
        """Drop all buffered events (counters keep running)."""
        self._ring.clear()
        self._head = 0

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return (
            f"RingBufferTracer({len(self._ring)}/{self.capacity} buffered, "
            f"{self.n_dropped} dropped, sample=1/{self.sample}, "
            f"cats={sorted(self._cats)})"
        )
