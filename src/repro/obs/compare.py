"""Benchstat-style A/B comparison over ledger records.

Given two sets of :class:`~repro.obs.ledger.PerfRecord` (a *ref* side
and a *new* side), the engine groups records by workload identity
(benchmark, config, seed, scale) and compares every metric present on
both sides:

* **delta** — percent change of the new mean vs the ref mean, oriented
  by the metric's polarity (IPC and events/sec are better *higher*;
  cycles, miss rates and wall seconds are better *lower*);
* **bootstrap confidence interval** — a percentile CI of the delta from
  deterministic resampling (fixed RNG seed, so two invocations agree);
* **significance** — a two-sided Mann-Whitney U rank test (normal
  approximation with tie correction, no SciPy needed).  *Deterministic*
  sim metrics (cycles, IPC, miss counts — identical for a fixed
  seed/scale/code) are exact measurements, so any non-zero delta on
  them is significant by definition; *stochastic* host metrics (wall
  seconds, events/sec, RSS) need at least two samples per side — at
  ``n=1`` the comparison degrades gracefully: the delta is still
  reported but flagged ``insignificant-by-construction``.

A **regression** is a significant delta in the *worse* direction whose
magnitude exceeds the caller's threshold; ``repro perf compare`` exits
1 when any metric regresses.  Suite-level rollups reuse
:mod:`repro.common.stats`: the geometric mean of per-benchmark ratios
per metric, plus the paper's equal-weight (harmonic-mean) speedup over
``total_cycles`` (Lilja 2000).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..common.errors import AnalysisError
from ..common.stats import geometric_mean, weighted_mean_speedup
from .ledger import PerfRecord

__all__ = [
    "ALPHA",
    "METRICS",
    "MetricDef",
    "MetricComparison",
    "GroupComparison",
    "ComparisonReport",
    "bootstrap_delta_ci",
    "compare_records",
    "compare_samples",
    "mann_whitney_u",
    "parse_threshold",
]

#: Two-sided significance level for the Mann-Whitney U test.
ALPHA = 0.05

#: Note attached when a side has too few samples for a rank test.
NOTE_N1 = "insignificant-by-construction"


@dataclass(frozen=True)
class MetricDef:
    """How one ledger metric is read and compared."""

    name: str
    source: str  # "sim" | "host"
    higher_is_better: bool
    #: Deterministic metrics repeat exactly for a fixed seed/scale/code;
    #: any delta on them is real.  Stochastic ones need repeated samples.
    deterministic: bool
    unit: str = ""


#: Every metric the engine knows, in display order.
METRICS: Tuple[MetricDef, ...] = (
    MetricDef("total_cycles", "sim", higher_is_better=False, deterministic=True),
    MetricDef("ipc", "sim", higher_is_better=True, deterministic=True),
    MetricDef("l1_miss_rate", "sim", higher_is_better=False, deterministic=True),
    MetricDef("wec_hit_rate", "sim", higher_is_better=True, deterministic=True),
    MetricDef("effective_misses", "sim", higher_is_better=False,
              deterministic=True),
    MetricDef("speedup_pct", "sim", higher_is_better=True, deterministic=True,
              unit="%"),
    # Attribution headlines (repro.obs.attrib); present only on runs that
    # carried an AttributionCollector, absent otherwise — compare_records
    # already skips metrics missing from either side.
    MetricDef("wrong_coverage", "sim", higher_is_better=True,
              deterministic=True),
    MetricDef("wrong_accuracy", "sim", higher_is_better=True,
              deterministic=True),
    MetricDef("prefetch_accuracy", "sim", higher_is_better=True,
              deterministic=True),
    MetricDef("polluting_mpki", "sim", higher_is_better=False,
              deterministic=True),
    MetricDef("wall_s", "host", higher_is_better=False, deterministic=False,
              unit="s"),
    MetricDef("events_per_sec", "host", higher_is_better=True,
              deterministic=False, unit="/s"),
    MetricDef("peak_rss_kb", "host", higher_is_better=False,
              deterministic=False, unit="KiB"),
)

METRICS_BY_NAME: Dict[str, MetricDef] = {m.name: m for m in METRICS}


def parse_threshold(text: str) -> float:
    """Parse a regression threshold into percent.

    Accepts ``"10%"``, ``"10"`` (percent) or ``"0.1"`` (a fraction when
    ≤ 1 and no percent sign).  Returns the threshold as a percentage.
    """
    s = text.strip()
    try:
        if s.endswith("%"):
            value = float(s[:-1])
        else:
            value = float(s)
            if value <= 1.0:
                value *= 100.0
    except ValueError:
        raise AnalysisError(f"unparseable threshold: {text!r}") from None
    if value < 0:
        raise AnalysisError(f"threshold must be non-negative: {text!r}")
    return value


# ---------------------------------------------------------------------------
# Statistics primitives
# ---------------------------------------------------------------------------


def _rank(values: Sequence[float]) -> List[float]:
    """Average ranks (1-based) with ties sharing their mean rank."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        mean_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        i = j + 1
    return ranks


def mann_whitney_u(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Two-sided Mann-Whitney U via normal approximation.

    Returns ``(U, p)`` where ``U`` is the smaller of the two U
    statistics.  Uses average ranks with the tie-corrected variance and
    a 0.5 continuity correction; with all values tied (zero variance)
    the test is powerless and ``p = 1`` is returned.
    """
    n1, n2 = len(a), len(b)
    if n1 < 1 or n2 < 1:
        return (float("nan"), 1.0)
    combined = list(a) + list(b)
    ranks = _rank(combined)
    r1 = sum(ranks[:n1])
    u1 = r1 - n1 * (n1 + 1) / 2.0
    u2 = n1 * n2 - u1
    u = min(u1, u2)
    n = n1 + n2
    # Tie correction over the groups of equal values.
    tie_term = 0.0
    seen: Dict[float, int] = {}
    for v in combined:
        seen[v] = seen.get(v, 0) + 1
    for t in seen.values():
        tie_term += t ** 3 - t
    if n > 1:
        var = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    else:
        var = 0.0
    if var <= 0:
        return (u, 1.0)
    z = (u - n1 * n2 / 2.0 + 0.5) / math.sqrt(var)
    p = math.erfc(abs(z) / math.sqrt(2.0))
    return (u, min(1.0, p))


def bootstrap_delta_ci(
    ref: Sequence[float],
    new: Sequence[float],
    n_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile bootstrap CI of the percent delta of means.

    Deterministic (fixed ``seed``) so repeated comparisons agree.  With
    a single sample on both sides the interval collapses to the point
    delta.
    """
    if not ref or not new:
        raise AnalysisError("bootstrap over empty sample set")
    if len(ref) == 1 and len(new) == 1:
        d = _delta_pct(ref[0], new[0])
        return (d, d)
    rng = random.Random(seed)
    deltas: List[float] = []
    for _ in range(n_resamples):
        r = [ref[rng.randrange(len(ref))] for _ in ref]
        n = [new[rng.randrange(len(new))] for _ in new]
        deltas.append(_delta_pct(_mean(r), _mean(n)))
    deltas.sort()
    lo_q = (1.0 - confidence) / 2.0
    lo = deltas[max(0, int(lo_q * n_resamples))]
    hi = deltas[min(n_resamples - 1, int((1.0 - lo_q) * n_resamples))]
    return (lo, hi)


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _delta_pct(ref_mean: float, new_mean: float) -> float:
    if ref_mean == 0:
        return 0.0 if new_mean == 0 else math.copysign(float("inf"), new_mean)
    return (new_mean - ref_mean) / abs(ref_mean) * 100.0


# ---------------------------------------------------------------------------
# Per-metric / per-group comparison
# ---------------------------------------------------------------------------


@dataclass
class MetricComparison:
    """A vs B on one metric inside one (benchmark, config) group."""

    metric: MetricDef
    n_ref: int
    n_new: int
    ref_mean: float
    new_mean: float
    delta_pct: float  # signed percent change of the raw value
    ci: Tuple[float, float]  # bootstrap CI of delta_pct
    p: float
    significant: bool
    note: str = ""

    @property
    def worsened(self) -> bool:
        """Whether the delta points in the metric's bad direction."""
        if self.delta_pct == 0.0:
            return False
        return (self.delta_pct < 0) == self.metric.higher_is_better

    def is_regression(self, threshold_pct: float) -> bool:
        """Significant move in the bad direction beyond the threshold."""
        return (
            self.worsened
            and self.significant
            and abs(self.delta_pct) > threshold_pct
        )

    def describe(self) -> str:
        direction = "~" if self.delta_pct == 0 else (
            "worse" if self.worsened else "better"
        )
        sig = "significant" if self.significant else (self.note or "n.s.")
        return (
            f"{self.metric.name}: {self.ref_mean:.6g} -> {self.new_mean:.6g} "
            f"({self.delta_pct:+.2f}%, {direction}, {sig})"
        )


def compare_samples(
    ref: Sequence[float], new: Sequence[float], metric: MetricDef
) -> MetricComparison:
    """Compare one metric's sample sets (see module docs for semantics)."""
    if not ref or not new:
        raise AnalysisError(f"{metric.name}: empty sample set")
    ref = [float(v) for v in ref]
    new = [float(v) for v in new]
    ref_mean, new_mean = _mean(ref), _mean(new)
    delta = _delta_pct(ref_mean, new_mean)
    ci = bootstrap_delta_ci(ref, new)
    u, p = mann_whitney_u(ref, new)
    note = ""
    if metric.deterministic:
        # Exact measurement: a fixed (seed, scale, code) triple always
        # reproduces the same value, so any change is a real change.
        significant = ref_mean != new_mean
        if not significant:
            note = "identical"
    elif min(len(ref), len(new)) < 2:
        significant = False
        note = f"{NOTE_N1} (n={min(len(ref), len(new))})"
    else:
        significant = p < ALPHA
    return MetricComparison(
        metric=metric,
        n_ref=len(ref),
        n_new=len(new),
        ref_mean=ref_mean,
        new_mean=new_mean,
        delta_pct=delta,
        ci=ci,
        p=p,
        significant=significant,
        note=note,
    )


@dataclass
class GroupComparison:
    """All metric comparisons for one (benchmark, config, seed, scale)."""

    benchmark: str
    config: str
    seed: int
    scale: float
    metrics: Dict[str, MetricComparison] = field(default_factory=dict)
    #: Metrics present on only one side ({name: "ref-only" | "new-only"}).
    missing: Dict[str, str] = field(default_factory=dict)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.benchmark, self.config)


@dataclass
class ComparisonReport:
    """The full A/B comparison: per-group details plus suite rollups."""

    groups: List[GroupComparison]
    #: Groups present on only one side ({(bench, config): side}).
    unmatched: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: Per-metric geometric-mean ratio (new/ref) across groups, as
    #: percent delta; only metrics with all-positive means roll up.
    rollup_delta_pct: Dict[str, float] = field(default_factory=dict)
    #: Equal-weight (harmonic mean) suite speedup of new over ref from
    #: ``total_cycles``, in percent (>0 = new side is faster).
    suite_speedup_pct: Optional[float] = None

    def regressions(
        self, threshold_pct: float
    ) -> List[Tuple[GroupComparison, MetricComparison]]:
        out = []
        for group in self.groups:
            for mc in group.metrics.values():
                if mc.is_regression(threshold_pct):
                    out.append((group, mc))
        return out

    def render(self, threshold_pct: Optional[float] = None) -> str:
        """Human-readable benchstat-style text table."""
        lines: List[str] = []
        header = (
            f"{'benchmark/config':<28s} {'metric':<16s} {'ref':>12s} "
            f"{'new':>12s} {'delta':>9s} {'ci(95%)':>18s} {'p':>7s}  note"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for group in self.groups:
            name = f"{group.benchmark}/{group.config}"
            for metric in METRICS:
                mc = group.metrics.get(metric.name)
                if mc is None:
                    continue
                flag = ""
                if threshold_pct is not None and mc.is_regression(threshold_pct):
                    flag = "REGRESSION"
                elif mc.note:
                    flag = mc.note
                elif mc.significant and mc.worsened:
                    flag = "worse"
                elif mc.significant:
                    flag = "better"
                ci = f"[{mc.ci[0]:+.1f},{mc.ci[1]:+.1f}]"
                lines.append(
                    f"{name:<28s} {metric.name:<16s} {mc.ref_mean:>12.5g} "
                    f"{mc.new_mean:>12.5g} {mc.delta_pct:>+8.2f}% "
                    f"{ci:>18s} {mc.p:>7.3f}  {flag}"
                )
            for mname, side in sorted(group.missing.items()):
                lines.append(f"{name:<28s} {mname:<16s} ({side})")
        for key, side in sorted(self.unmatched.items()):
            lines.append(f"{key[0]}/{key[1]}: only on {side} side, skipped")
        if self.rollup_delta_pct:
            lines.append("")
            lines.append("rollups (geomean across groups):")
            for mname, delta in self.rollup_delta_pct.items():
                lines.append(f"  {mname:<16s} {delta:+.2f}%")
        if self.suite_speedup_pct is not None:
            lines.append(
                f"  equal-weight suite speedup (new vs ref): "
                f"{self.suite_speedup_pct:+.2f}%"
            )
        return "\n".join(lines)


def _index(
    records: Sequence[PerfRecord],
) -> Dict[Tuple[str, str, int, float], List[PerfRecord]]:
    out: Dict[Tuple[str, str, int, float], List[PerfRecord]] = {}
    for r in records:
        out.setdefault(r.group_key, []).append(r)
    return out


def compare_records(
    ref: Sequence[PerfRecord],
    new: Sequence[PerfRecord],
    metrics: Optional[Sequence[str]] = None,
) -> ComparisonReport:
    """Compare two record sets group by group.

    ``metrics`` restricts the comparison to the named metrics (default:
    every known metric present on both sides).  Groups or metrics
    present on only one side are reported as skipped, never raised —
    except when *no* group overlaps at all, which is an
    :class:`~repro.common.errors.AnalysisError` (the comparison would
    be vacuous).
    """
    if metrics is not None:
        unknown = [m for m in metrics if m not in METRICS_BY_NAME]
        if unknown:
            raise AnalysisError(
                f"unknown metric(s): {', '.join(unknown)} "
                f"(known: {', '.join(m.name for m in METRICS)})"
            )
    wanted_names = None if metrics is None else frozenset(metrics)
    wanted = [
        m for m in METRICS if wanted_names is None or m.name in wanted_names
    ]
    ref_idx = _index(ref)
    new_idx = _index(new)
    groups: List[GroupComparison] = []
    unmatched: Dict[Tuple[str, str], str] = {}
    for key in sorted(set(ref_idx) | set(new_idx)):
        bench, config, seed, scale = key
        if key not in ref_idx:
            unmatched[(bench, config)] = "new"
            continue
        if key not in new_idx:
            unmatched[(bench, config)] = "ref"
            continue
        group = GroupComparison(bench, config, seed, scale)
        for metric in wanted:
            ref_vals = [
                v for v in (r.metric(metric.source, metric.name)
                            for r in ref_idx[key])
                if v is not None
            ]
            new_vals = [
                v for v in (r.metric(metric.source, metric.name)
                            for r in new_idx[key])
                if v is not None
            ]
            if not ref_vals and not new_vals:
                continue
            if not ref_vals or not new_vals:
                group.missing[metric.name] = (
                    "new-only" if not ref_vals else "ref-only"
                )
                continue
            group.metrics[metric.name] = compare_samples(
                ref_vals, new_vals, metric
            )
        groups.append(group)
    if not groups:
        raise AnalysisError(
            "no overlapping (benchmark, config, seed, scale) groups "
            "between the two sides"
        )

    report = ComparisonReport(groups=groups, unmatched=unmatched)

    # Rollups: geomean of new/ref ratios per metric across groups.
    for metric in wanted:
        ratios: List[float] = []
        for group in groups:
            mc = group.metrics.get(metric.name)
            if mc is None or mc.ref_mean <= 0 or mc.new_mean <= 0:
                continue
            ratios.append(mc.new_mean / mc.ref_mean)
        if ratios:
            report.rollup_delta_pct[metric.name] = (
                geometric_mean(ratios) - 1.0
            ) * 100.0

    # Equal-weight suite speedup over cycles (the paper's methodology):
    # one entry per benchmark (first config encountered with cycles).
    ref_cycles: List[float] = []
    new_cycles: List[float] = []
    seen_benches = set()
    for group in groups:
        mc = group.metrics.get("total_cycles")
        if mc is None or group.benchmark in seen_benches:
            continue
        if mc.ref_mean > 0 and mc.new_mean > 0:
            seen_benches.add(group.benchmark)
            ref_cycles.append(mc.ref_mean)
            new_cycles.append(mc.new_mean)
    if ref_cycles:
        report.suite_speedup_pct = (
            weighted_mean_speedup(ref_cycles, new_cycles) - 1.0
        ) * 100.0
    return report
