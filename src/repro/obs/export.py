"""Trace export: Chrome trace-event JSON (Perfetto) and JSONL dumps.

:func:`chrome_trace` converts a recorded event stream into the Chrome
trace-event format (the JSON array flavour, wrapped in an object), which
loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``:

* one **track per thread unit** (``pid`` 1, ``tid`` = TU id) carrying
  iteration spans and the instant events that happened on that TU;
* a **regions track** carrying one span per region invocation;
* optional **counter tracks** built from an interval-metrics series
  (IPC, L1 miss rate, WEC hit rate, wrong-load fraction);
* optional **attribution counter tracks** built from an
  :meth:`~repro.obs.attrib.AttributionCollector.series` mapping
  (speculative fills, useful speculative uses, pollution misses per
  window).

Simulated cycles are written 1:1 as trace microseconds (``ts``/``dur``),
so "1 us" in the viewer reads as one cycle.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from .events import (
    Event,
    ITER_SPAN,
    KIND_CATEGORY,
    KIND_NAMES,
    REGION_BEGIN,
    REGION_END,
    event_to_dict,
)

__all__ = [
    "chrome_trace",
    "service_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_service_trace",
]

#: ``pid`` used for every simulator track.
TRACE_PID = 1
#: ``pid`` of the sweep-service timeline (job→cell→worker spans).
SERVICE_PID = 2
#: ``tid`` of the regions track (far above any plausible TU count).
REGIONS_TID = 10_000
#: ``tid`` offset for counter pseudo-tracks (unused by counters, kept
#: distinct for readers that require one).
COUNTERS_TID = 10_001

#: Counter-series keys exported from an interval series, with the
#: human-readable track names they become.
_COUNTER_TRACKS = (
    ("ipc", "IPC"),
    ("l1_miss_rate", "L1 miss rate"),
    ("wec_hit_rate", "WEC hit rate"),
    ("wrong_load_fraction", "wrong-load fraction"),
)

#: Counter-series keys exported from an attribution series
#: (:meth:`AttributionCollector.series`), same scheme.
_ATTRIB_TRACKS = (
    ("spec_fills", "speculative fills"),
    ("useful_spec_uses", "useful spec uses"),
    ("pollution_misses", "pollution misses"),
)


def _metadata(tus: Iterable[int]) -> List[Dict]:
    """Process/thread naming records for the viewer."""
    records: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "args": {"name": "repro superthreaded machine"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": REGIONS_TID,
            "args": {"name": "regions"},
        },
    ]
    for tu in sorted(set(tus)):
        records.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tu,
                "args": {"name": f"TU {tu}"},
            }
        )
        records.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tu,
                "args": {"sort_index": tu},
            }
        )
    return records


def chrome_trace(
    events: Iterable[Event],
    interval_series: Optional[Dict] = None,
    label: str = "",
    attrib_series: Optional[Dict] = None,
) -> Dict:
    """Build a Chrome trace-event document from an event stream.

    ``interval_series`` (a :meth:`IntervalMetrics.series` mapping) adds
    counter tracks; ``attrib_series`` (an
    :meth:`AttributionCollector.series` mapping) adds the
    provenance-attribution counters; ``label`` is stored in
    ``otherData`` for provenance.
    """
    events = list(events)
    trace_events: List[Dict] = _metadata(
        ev.tu for ev in events if ev.kind not in (REGION_BEGIN, REGION_END)
    )
    for ev in events:
        kind = ev.kind
        name = KIND_NAMES.get(kind, str(kind))
        cat = KIND_CATEGORY.get(kind, "?")
        if kind == ITER_SPAN:
            trace_events.append(
                {
                    "name": f"iter {ev.a}",
                    "cat": cat,
                    "ph": "X",
                    "pid": TRACE_PID,
                    "tid": ev.tu,
                    "ts": ev.cycle,
                    "dur": ev.dur,
                    "args": {"iteration": ev.a, "instructions": ev.b},
                }
            )
        elif kind == REGION_END:
            trace_events.append(
                {
                    "name": ev.tag or "region",
                    "cat": cat,
                    "ph": "X",
                    "pid": TRACE_PID,
                    "tid": REGIONS_TID,
                    "ts": ev.cycle - ev.dur,
                    "dur": ev.dur,
                    "args": {"invocation": ev.a, "iterations": ev.b},
                }
            )
        elif kind == REGION_BEGIN:
            continue  # its REGION_END carries the full span
        else:
            record: Dict = {
                "name": name,
                "cat": cat,
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "pid": TRACE_PID,
                "tid": ev.tu,
                "ts": ev.cycle,
                "args": {"a": ev.a, "b": ev.b},
            }
            if ev.tag:
                record["args"]["tag"] = ev.tag
            trace_events.append(record)

    if interval_series:
        starts = interval_series.get("window_start", [])
        for key, track in _COUNTER_TRACKS:
            values = interval_series.get(key, [])
            for ts, value in zip(starts, values):
                trace_events.append(
                    {
                        "name": track,
                        "cat": "metrics",
                        "ph": "C",
                        "pid": TRACE_PID,
                        "ts": ts,
                        "args": {track: round(value, 6)},
                    }
                )

    if attrib_series:
        starts = attrib_series.get("window_start", [])
        for key, track in _ATTRIB_TRACKS:
            values = attrib_series.get(key, [])
            for ts, value in zip(starts, values):
                trace_events.append(
                    {
                        "name": track,
                        "cat": "attrib",
                        "ph": "C",
                        "pid": TRACE_PID,
                        "ts": ts,
                        "args": {track: round(value, 6)},
                    }
                )

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "label": label,
            "clock": "1 trace us = 1 simulated cycle",
            "n_events": len(events),
        },
    }


def write_chrome_trace(
    events: Iterable[Event],
    path: Union[str, Path],
    interval_series: Optional[Dict] = None,
    label: str = "",
    attrib_series: Optional[Dict] = None,
) -> Path:
    """Write :func:`chrome_trace` output to ``path``; returns the path."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            chrome_trace(events, interval_series, label,
                         attrib_series=attrib_series),
            fh,
        )
    return path


def service_trace(spans: Iterable[Dict], label: str = "") -> Dict:
    """A Chrome trace document from sweep-service cell spans.

    ``spans`` is the wire form of :class:`repro.obs.telemetry.SpanLog`
    (``GET /v1/timeline``): one record per executed cell with
    ``job_id``/``benchmark``/``label``/``worker`` and host-epoch
    ``start_s``/``end_s``.  The export is one track per worker under a
    dedicated service process (:data:`SERVICE_PID`), timestamps
    normalized to the earliest span — so the viewer shows exactly how a
    job's cells were sharded over the worker fleet, with ``job_id`` /
    ``source`` / ``attempts`` in each span's args.

    Unlike :func:`chrome_trace` (1 trace us = 1 simulated cycle), the
    service timeline is *host* time: 1 trace us = 1 host microsecond.
    """
    spans = list(spans)
    t0 = min((s["start_s"] for s in spans), default=0.0)
    workers = sorted({str(s.get("worker", "?")) for s in spans})
    tids = {worker: tid for tid, worker in enumerate(workers, start=1)}
    trace_events: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": SERVICE_PID,
            "args": {"name": "repro serve workers"},
        }
    ]
    for worker in workers:
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": SERVICE_PID,
                "tid": tids[worker],
                "args": {"name": f"worker {worker}"},
            }
        )
    for span in spans:
        start = float(span["start_s"])
        end = float(span["end_s"])
        trace_events.append(
            {
                "name": f"{span['benchmark']}/{span['label']}",
                "cat": "serve",
                "ph": "X",
                "pid": SERVICE_PID,
                "tid": tids[str(span.get("worker", "?"))],
                "ts": (start - t0) * 1e6,
                "dur": max(0.0, end - start) * 1e6,
                "args": {
                    "job_id": span.get("job_id"),
                    "index": span.get("index"),
                    "source": span.get("source"),
                    "attempts": span.get("attempts", 0),
                },
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "label": label,
            "clock": "1 trace us = 1 host microsecond",
            "n_spans": len(spans),
        },
    }


def write_service_trace(spans: Iterable[Dict], path: Union[str, Path],
                        label: str = "") -> Path:
    """Write :func:`service_trace` output to ``path``; returns the path."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(service_trace(spans, label), fh)
    return path


def write_jsonl(events: Iterable[Event], path: Union[str, Path]) -> Path:
    """Dump events as JSON Lines (one readable record per line)."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        for ev in events:
            fh.write(json.dumps(event_to_dict(ev)))
            fh.write("\n")
    return path
