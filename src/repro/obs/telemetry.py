"""Service & fleet telemetry: metrics registry + structured JSONL logs.

Run-level observability (tracer, perf ledger, attribution) stops at the
process boundary; this module is the *fleet*-level layer the sweep
service and the local executor share.  Three pieces:

* :class:`MetricsRegistry` — a stdlib-only registry of monotonic
  counters, gauges and fixed-bucket histograms.  Metric names are
  declared once (the ``M_*`` module constants below; lint rule OBS003
  rejects literal names at emit sites), label sets are declared with the
  metric and bounded (:data:`MAX_SERIES_PER_METRIC` series per metric —
  overflow collapses into a reserved ``(other)`` series instead of
  growing without bound).  Snapshots render as Prometheus text
  exposition (``GET /v1/metrics``) or as a JSON document
  (``?format=json``, and embedded in sweep manifests).

* :class:`StructuredLog` — an append-only JSONL event log.  ``bind``
  returns a child logger carrying correlation fields (``job_id``,
  ``cell``, ``tenant``, ``worker``), so one ``grep`` of the log file
  follows a job across the server, the queue and the worker processes.
  :class:`NullLog` is the no-op default — telemetry is opt-in and
  host-side only.

* :class:`SpanLog` — a bounded record of job→cell→worker spans the
  server keeps for ``GET /v1/timeline``;
  :func:`repro.obs.export.service_trace` turns it into a Perfetto
  document.

Telemetry must never perturb simulation: nothing here is importable
from a sim layer (the lint applicability map keeps ``repro.core`` /
``repro.sta`` / ``repro.mem`` / ``repro.branch`` wall-clock-free), and
``tests/test_telemetry.py`` enforces that telemetry-on runs are
bit-identical to telemetry-off runs.  See docs/OBSERVABILITY.md
("Service telemetry") and docs/SERVICE.md for the metric/label table.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path
from typing import Dict, IO, List, Optional, Sequence, Tuple, Union

from ..common.errors import ReproError

__all__ = [
    "EV_CACHE_PRUNE",
    "EV_CELL_FAILED",
    "EV_CELL_RESOLVED",
    "EV_CELL_RETRIED",
    "EV_JOB_DONE",
    "EV_JOB_SUBMITTED",
    "EV_SWEEP_DONE",
    "EV_WORKER_RESPAWNED",
    "EV_WORKER_SPAWNED",
    "LATENCY_BUCKETS_S",
    "M_CACHE_EVICTED_BYTES",
    "M_CACHE_EVICTIONS",
    "M_CACHE_PRUNE_PASSES",
    "M_CELL_LATENCY",
    "M_CELL_RETRIES",
    "M_CELLS_TOTAL",
    "M_FIDELITY_CAMPAIGNS",
    "M_FIDELITY_CLAIM_SCORE",
    "M_FIDELITY_CLAIMS",
    "M_JOBS_TOTAL",
    "M_QUEUE_DEPTH",
    "M_WORKER_RESPAWNS",
    "M_WORKERS_ALIVE",
    "M_WORKERS_BUSY",
    "MAX_SERIES_PER_METRIC",
    "METRIC_NAMES",
    "MetricsRegistry",
    "NullLog",
    "OVERFLOW_LABEL",
    "SpanLog",
    "StructuredLog",
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryError",
    "snapshot_hist",
    "snapshot_total",
    "snapshot_value",
    "standard_registry",
]

#: Version of the snapshot document (`/v1/metrics?format=json`, manifest
#: embed).  Bumped on any incompatible shape change.
TELEMETRY_SCHEMA_VERSION = 1

# --- metric names (OBS003: emit sites must use these, never literals) ----

#: Gauge — cells enqueued and waiting for a worker.
M_QUEUE_DEPTH = "repro_queue_depth"
#: Gauge — worker subprocesses currently alive (local runs: pool size).
M_WORKERS_ALIVE = "repro_workers_alive"
#: Gauge — workers currently executing a cell.
M_WORKERS_BUSY = "repro_workers_busy"
#: Counter, label ``source`` ∈ cache|dedup|run|failed — cells resolved,
#: by dedup layer.  The per-layer counts of one job sum to its cell count.
M_CELLS_TOTAL = "repro_cells_total"
#: Histogram, labels ``benchmark``/``engine`` — executed-cell wall time.
M_CELL_LATENCY = "repro_cell_latency_seconds"
#: Counter, label ``state`` ∈ submitted|done|failed — job lifecycle.
M_JOBS_TOTAL = "repro_jobs_total"
#: Counter — worker subprocesses replaced after dying (idle or mid-cell).
M_WORKER_RESPAWNS = "repro_worker_respawns_total"
#: Counter — cells re-enqueued after a worker died mid-cell.
M_CELL_RETRIES = "repro_cell_retries_total"
#: Counter — DiskCache quota prune passes (local + worker, via sidecar).
M_CACHE_PRUNE_PASSES = "repro_cache_prune_passes_total"
#: Counter — cache entries evicted by quota pruning.
M_CACHE_EVICTIONS = "repro_cache_evictions_total"
#: Counter — bytes freed by quota pruning.
M_CACHE_EVICTED_BYTES = "repro_cache_evicted_bytes_total"
#: Counter, label ``status`` ∈ ok|failed — fidelity campaigns completed.
M_FIDELITY_CAMPAIGNS = "repro_fidelity_campaigns_total"
#: Counter, label ``status`` ∈ pass|fail|skipped — claims scored across
#: all campaigns this process ran.
M_FIDELITY_CLAIMS = "repro_fidelity_claims_total"
#: Gauge, label ``claim`` — last measured value per claim id (value
#: claims only; bool claims report 1.0/0.0).
M_FIDELITY_CLAIM_SCORE = "repro_fidelity_claim_score"

METRIC_NAMES: Tuple[str, ...] = (
    M_QUEUE_DEPTH,
    M_WORKERS_ALIVE,
    M_WORKERS_BUSY,
    M_CELLS_TOTAL,
    M_CELL_LATENCY,
    M_JOBS_TOTAL,
    M_WORKER_RESPAWNS,
    M_CELL_RETRIES,
    M_CACHE_PRUNE_PASSES,
    M_CACHE_EVICTIONS,
    M_CACHE_EVICTED_BYTES,
    M_FIDELITY_CAMPAIGNS,
    M_FIDELITY_CLAIMS,
    M_FIDELITY_CLAIM_SCORE,
)

#: Cell wall-time buckets: tiny smoke cells (sub-ms on the fast engine)
#: through paper-scale oracle cells (minutes).
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 300.0,
)

#: Hard cap on label combinations per metric; overflow collapses into
#: one reserved series so a hostile/buggy label can never grow memory
#: without bound.
MAX_SERIES_PER_METRIC = 64

#: Label value of the collapsed overflow series.
OVERFLOW_LABEL = "(other)"

# --- structured-log event names ------------------------------------------

EV_JOB_SUBMITTED = "job.submitted"
EV_JOB_DONE = "job.done"
EV_CELL_RESOLVED = "cell.resolved"
EV_CELL_FAILED = "cell.failed"
EV_CELL_RETRIED = "cell.retried"
EV_WORKER_SPAWNED = "worker.spawned"
EV_WORKER_RESPAWNED = "worker.respawned"
EV_CACHE_PRUNE = "cache.prune"
EV_SWEEP_DONE = "sweep.done"


class TelemetryError(ReproError):
    """A telemetry declaration or emit was malformed.

    Raised for *programming* errors — emitting to an undeclared metric,
    a kind mismatch (``inc`` on a gauge), labels that do not match the
    declaration — never for runtime conditions: telemetry failing at
    run time must not fail the run, so sinks are best-effort instead.
    """


class _Metric:
    """One declared metric and all of its label series."""

    __slots__ = ("name", "kind", "help", "label_names", "buckets", "series")

    def __init__(self, name: str, kind: str, help_text: str,
                 label_names: Tuple[str, ...],
                 buckets: Optional[Tuple[float, ...]]) -> None:
        self.name = name
        self.kind = kind  # "counter" | "gauge" | "histogram"
        self.help = help_text
        self.label_names = label_names
        self.buckets = buckets
        #: label-value tuple -> float, or [counts..., +Inf count] for
        #: histograms (sum/count kept alongside).
        self.series: Dict[Tuple[str, ...], object] = {}

    def signature(self) -> Tuple:
        return (self.kind, self.label_names, self.buckets)


class _HistSeries:
    """Per-series histogram state: non-cumulative bucket counts."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0


class MetricsRegistry:
    """Declared-name metrics: counters, gauges, fixed-bucket histograms.

    Declaration (``counter``/``gauge``/``histogram``) is idempotent for
    an identical signature and a loud :class:`TelemetryError` for a
    conflicting one.  Emits (``inc``/``set_gauge``/``observe``) must
    name a declared metric — with the exact declared label names — and
    must use a name constant at the call site (lint rule OBS003).

    Thread-safe: the service emits from the event loop while HTTP
    handlers snapshot, and local sweeps emit from the main thread while
    tests poke at values.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # -- declaration -----------------------------------------------------

    def _declare(self, name: str, kind: str, help_text: str,
                 labels: Sequence[str],
                 buckets: Optional[Sequence[float]] = None) -> None:
        label_names = tuple(str(n) for n in labels)
        bucket_t = None
        if kind == "histogram":
            if not buckets:
                raise TelemetryError(f"histogram {name!r} needs buckets")
            bucket_t = tuple(float(b) for b in buckets)
            if list(bucket_t) != sorted(set(bucket_t)):
                raise TelemetryError(
                    f"histogram {name!r} buckets must be strictly increasing"
                )
        metric = _Metric(name, kind, help_text, label_names, bucket_t)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.signature() != metric.signature():
                    raise TelemetryError(
                        f"metric {name!r} re-declared with a different "
                        f"signature ({existing.signature()} vs "
                        f"{metric.signature()})"
                    )
                return
            self._metrics[name] = metric

    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()) -> None:
        """Declare a monotonic counter."""
        self._declare(name, "counter", help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()) -> None:
        """Declare a gauge (set to arbitrary values)."""
        self._declare(name, "gauge", help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = LATENCY_BUCKETS_S) -> None:
        """Declare a fixed-bucket histogram (bounds in ascending order)."""
        self._declare(name, "histogram", help_text, labels, buckets)

    # -- emit ------------------------------------------------------------

    def _series_key(self, metric: _Metric,
                    labels: Dict[str, object]) -> Tuple[str, ...]:
        if tuple(sorted(labels)) != tuple(sorted(metric.label_names)):
            raise TelemetryError(
                f"metric {metric.name!r} declared labels "
                f"{metric.label_names}, emit supplied "
                f"{tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in metric.label_names)
        if key in metric.series:
            return key
        if len(metric.series) >= MAX_SERIES_PER_METRIC:
            # Bounded cardinality: everything past the cap lands in one
            # reserved series instead of growing the registry forever.
            return tuple(OVERFLOW_LABEL for _ in metric.label_names)
        return key

    def _metric(self, name: str, kind: str) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            raise TelemetryError(
                f"metric {name!r} was never declared (declare it in "
                "standard_registry or on this registry first)"
            )
        if metric.kind != kind:
            raise TelemetryError(
                f"metric {name!r} is a {metric.kind}, not a {kind}"
            )
        return metric

    def inc(self, name: str, n: Union[int, float] = 1, **labels) -> None:
        """Add ``n`` (>= 0) to a counter series."""
        if n < 0:
            raise TelemetryError(
                f"counter {name!r} is monotonic; inc({n}) is negative"
            )
        with self._lock:
            metric = self._metric(name, "counter")
            key = self._series_key(metric, labels)
            metric.series[key] = float(metric.series.get(key, 0.0)) + n  # type: ignore[arg-type]

    def set_gauge(self, name: str, value: Union[int, float],
                  **labels) -> None:
        """Set a gauge series to ``value``."""
        with self._lock:
            metric = self._metric(name, "gauge")
            key = self._series_key(metric, labels)
            metric.series[key] = float(value)

    def observe(self, name: str, value: Union[int, float],
                **labels) -> None:
        """Record one observation into a histogram series."""
        with self._lock:
            metric = self._metric(name, "histogram")
            key = self._series_key(metric, labels)
            series = metric.series.get(key)
            if series is None:
                series = _HistSeries(len(metric.buckets or ()))
                metric.series[key] = series
            assert isinstance(series, _HistSeries)
            value = float(value)
            slot = len(metric.buckets or ())  # +Inf unless a bound fits
            for i, bound in enumerate(metric.buckets or ()):
                if value <= bound:
                    slot = i
                    break
            series.counts[slot] += 1
            series.sum += value
            series.count += 1

    # -- read ------------------------------------------------------------

    def value(self, name: str, **labels) -> float:
        """Current value of one counter/gauge series (0.0 if never emitted)."""
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                raise TelemetryError(f"metric {name!r} was never declared")
            if metric.kind == "histogram":
                raise TelemetryError(
                    f"metric {name!r} is a histogram; read it via snapshot()"
                )
            key = self._series_key(metric, labels)
            return float(metric.series.get(key, 0.0))  # type: ignore[arg-type]

    def snapshot(self) -> Dict:
        """Deterministic JSON-serializable view of every series."""
        metrics: Dict[str, Dict] = {}
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                doc: Dict = {
                    "kind": metric.kind,
                    "help": metric.help,
                    "labels": list(metric.label_names),
                }
                if metric.kind == "histogram":
                    doc["buckets"] = list(metric.buckets or ())
                series_docs: List[Dict] = []
                for key in sorted(metric.series):
                    labels = dict(zip(metric.label_names, key))
                    value = metric.series[key]
                    if isinstance(value, _HistSeries):
                        series_docs.append({
                            "labels": labels,
                            "counts": list(value.counts),
                            "sum": value.sum,
                            "count": value.count,
                        })
                    else:
                        series_docs.append({
                            "labels": labels, "value": value,
                        })
                doc["series"] = series_docs
                metrics[name] = doc
        return {"schema": TELEMETRY_SCHEMA_VERSION, "metrics": metrics}

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        snap = self.snapshot()
        lines: List[str] = []
        for name, doc in snap["metrics"].items():
            lines.append(f"# HELP {name} {doc['help']}")
            lines.append(f"# TYPE {name} {doc['kind']}")
            if doc["kind"] == "histogram":
                bounds = doc["buckets"]
                for series in doc["series"]:
                    labels = series["labels"]
                    cumulative = 0
                    for bound, count in zip(bounds, series["counts"]):
                        cumulative += count
                        le = _prom_labels({**labels, "le": _prom_num(bound)})
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    cumulative += series["counts"][-1]
                    le = _prom_labels({**labels, "le": "+Inf"})
                    lines.append(f"{name}_bucket{le} {cumulative}")
                    lab = _prom_labels(labels)
                    lines.append(f"{name}_sum{lab} {_prom_num(series['sum'])}")
                    lines.append(f"{name}_count{lab} {series['count']}")
            else:
                for series in doc["series"]:
                    lab = _prom_labels(series["labels"])
                    lines.append(f"{name}{lab} {_prom_num(series['value'])}")
        return "\n".join(lines) + "\n"


def _prom_num(value: Union[int, float]) -> str:
    """Render numbers the way Prometheus expects (no trailing .0 noise)."""
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _prom_escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_prom_escape(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def standard_registry() -> MetricsRegistry:
    """The shared signal set: serve and local ``run_cells`` both emit it."""
    reg = MetricsRegistry()
    reg.gauge(M_QUEUE_DEPTH, "cells enqueued and waiting for a worker")
    reg.gauge(M_WORKERS_ALIVE, "worker subprocesses currently alive")
    reg.gauge(M_WORKERS_BUSY, "workers currently executing a cell")
    reg.counter(M_CELLS_TOTAL,
                "cells resolved, by dedup layer "
                "(cache | dedup | run | failed)",
                labels=("source",))
    reg.histogram(M_CELL_LATENCY,
                  "executed-cell wall time in seconds",
                  labels=("benchmark", "engine"),
                  buckets=LATENCY_BUCKETS_S)
    reg.counter(M_JOBS_TOTAL, "job lifecycle (submitted | done | failed)",
                labels=("state",))
    reg.counter(M_WORKER_RESPAWNS,
                "worker subprocesses replaced after dying")
    reg.counter(M_CELL_RETRIES,
                "cells re-enqueued after a worker died mid-cell")
    reg.counter(M_CACHE_PRUNE_PASSES, "DiskCache quota prune passes")
    reg.counter(M_CACHE_EVICTIONS,
                "cache entries evicted by quota pruning")
    reg.counter(M_CACHE_EVICTED_BYTES, "bytes freed by quota pruning")
    reg.counter(M_FIDELITY_CAMPAIGNS,
                "fidelity campaigns completed (ok | failed)",
                labels=("status",))
    reg.counter(M_FIDELITY_CLAIMS,
                "claims scored, by verdict (pass | fail | skipped)",
                labels=("status",))
    reg.gauge(M_FIDELITY_CLAIM_SCORE,
              "last measured value per claim id",
              labels=("claim",))
    return reg


# --- snapshot readers (serve top, smoke assertions, tests) ----------------


def snapshot_value(snapshot: Dict, name: str,
                   labels: Optional[Dict[str, object]] = None) -> float:
    """One counter/gauge series value out of a snapshot (0.0 if absent)."""
    doc = snapshot.get("metrics", {}).get(name)
    if doc is None:
        return 0.0
    want = {str(k): str(v) for k, v in (labels or {}).items()}
    for series in doc.get("series", []):
        if {k: str(v) for k, v in series["labels"].items()} == want:
            return float(series.get("value", 0.0))
    return 0.0


def snapshot_total(snapshot: Dict, name: str) -> float:
    """Sum across every series (histograms: total observation count)."""
    doc = snapshot.get("metrics", {}).get(name)
    if doc is None:
        return 0.0
    if doc.get("kind") == "histogram":
        return float(sum(s.get("count", 0) for s in doc.get("series", [])))
    return float(sum(s.get("value", 0.0) for s in doc.get("series", [])))


def snapshot_hist(snapshot: Dict, name: str) -> Tuple[int, float]:
    """A histogram's total ``(count, sum)`` across every series."""
    doc = snapshot.get("metrics", {}).get(name)
    if doc is None or doc.get("kind") != "histogram":
        return (0, 0.0)
    count = sum(s.get("count", 0) for s in doc.get("series", []))
    total = sum(s.get("sum", 0.0) for s in doc.get("series", []))
    return (int(count), float(total))


# --- structured JSONL logging ---------------------------------------------


class NullLog:
    """No-op logger: the default everywhere telemetry is not requested."""

    def bind(self, **_fields) -> "NullLog":
        return self

    def event(self, _name: str, **_fields) -> None:
        return None

    def close(self) -> None:
        return None


class _LogSink:
    """Shared write end of a StructuredLog family (one lock, one stream)."""

    def __init__(self, fh: IO[str], owns: bool) -> None:
        self.fh = fh
        self.owns = owns
        self.lock = threading.Lock()

    def write_line(self, line: str) -> None:
        # Best-effort: a full disk or closed stream must never fail the
        # run the log was describing.
        try:
            with self.lock:
                self.fh.write(line + "\n")
                self.fh.flush()
        except (OSError, ValueError):
            pass

    def close(self) -> None:
        if self.owns:
            try:
                self.fh.close()
            except OSError:
                pass


class StructuredLog:
    """Append-only JSONL event log with bound correlation fields.

    One JSON object per line: ``{"ts": ..., "event": <name>, ...bound
    fields..., ...call fields...}``.  ``bind(job_id=..., worker=...)``
    returns a child logger sharing the sink; every event it writes
    carries the bound fields, which is what makes the log greppable by
    job, cell, tenant or worker.

    Opened with ``path`` the file is appended to (parents created), so
    the server and its worker subprocesses can share one log file —
    each line is a single ``write`` of an ``O_APPEND`` stream.
    """

    def __init__(self, path: Union[str, Path, None] = None,
                 stream: Optional[IO[str]] = None,
                 fields: Optional[Dict] = None,
                 _sink: Optional[_LogSink] = None) -> None:
        if _sink is not None:
            self._sink = _sink
        elif path is not None:
            p = Path(path)
            if p.parent != Path(""):
                p.parent.mkdir(parents=True, exist_ok=True)
            self._sink = _LogSink(open(p, "a", encoding="utf-8"), owns=True)
        else:
            self._sink = _LogSink(stream if stream is not None else sys.stderr,
                                  owns=False)
        self._fields: Dict = dict(fields or {})

    def bind(self, **fields) -> "StructuredLog":
        """A child logger whose every event carries ``fields``."""
        merged = dict(self._fields)
        merged.update(fields)
        return StructuredLog(fields=merged, _sink=self._sink)

    def event(self, name: str, **fields) -> None:
        """Write one event line (bound fields first, call fields win)."""
        record: Dict = {"ts": round(time.time(), 6), "event": name}
        record.update(self._fields)
        record.update(fields)
        self._sink.write_line(json.dumps(record, sort_keys=True, default=str))

    def close(self) -> None:
        self._sink.close()


# --- job -> cell -> worker spans ------------------------------------------


class SpanLog:
    """Bounded in-memory record of executed-cell spans (``/v1/timeline``).

    Each span is one worker executing one cell of one job; the Perfetto
    exporter (:func:`repro.obs.export.service_trace`) renders them as one
    track per worker.  Capacity-bounded with drop-oldest semantics so a
    long-lived server cannot grow without bound; ``n_dropped`` reports
    how many spans aged out.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise TelemetryError("SpanLog capacity must be >= 1")
        self.capacity = capacity
        self._spans: List[Dict] = []
        self.n_dropped = 0
        self._lock = threading.Lock()

    def add(self, *, job_id: str, index: int, benchmark: str, label: str,
            worker: str, source: str, start_s: float, end_s: float,
            attempts: int = 0) -> None:
        span = {
            "job_id": job_id,
            "index": index,
            "benchmark": benchmark,
            "label": label,
            "worker": worker,
            "source": source,
            "start_s": float(start_s),
            "end_s": float(end_s),
            "attempts": attempts,
        }
        with self._lock:
            if len(self._spans) >= self.capacity:
                self._spans.pop(0)
                self.n_dropped += 1
            self._spans.append(span)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def to_wire(self) -> Dict:
        with self._lock:
            return {
                "spans": [dict(s) for s in self._spans],
                "n_dropped": self.n_dropped,
            }
