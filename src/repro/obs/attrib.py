"""Cache-block provenance and lifetime attribution (``repro explain``).

The paper's argument is *causal*: wrong-path and wrong-thread loads act
as indirect prefetches, and the WEC absorbs the pollution they would
otherwise cause.  Aggregate counters (miss rate, WEC hit rate) cannot
separate the helpful fills from the harmful ones; this module can.

Every fill into the L1D or its sidecar is tagged with a **provenance**
(who caused the block to be resident) from the shared enum below —
``PROV_*`` constants are module-level ints exactly like the event kinds
in :mod:`repro.obs.events`, and lint rule OBS002 requires call sites to
pass the named constants, mirroring OBS001 for ``emit()``.  The tags
correspond to the per-block cache flags of :mod:`repro.mem.cache`
(``WRONG`` ↔ wrong-path/wrong-thread fills, ``PREFETCHED`` ↔
next-line/stream prefetches); the flags mark *state* on a cached block
while the provenance tags name the *fill* that created it, so the
collector is the single naming authority for both.

A **lifetime** tracks one speculative fill from its insertion until its
*first correct-path use* (which settles the attribution question) or
until the block leaves the L1+sidecar hierarchy unused.  Closed
lifetimes are classified:

* **useful** — a correct-path access hit the block after the fill
  completed: the fill was a successful prefetch;
* **late** — used, but sooner after the fill than the fill latency: the
  block was still in flight, so only part of the miss was hidden;
* **unused** — evicted without ever being referenced by correct code;
* **polluting** — unused, *and* the correct path later missed on a
  block this fill displaced.

The pollution-attribution chain follows the paper's notion of cache
pollution: *displacement of demand working set from the L1*.  Every
insert into the L1 remembers its cause; when the block it displaced
finally leaves the L1+sidecar hierarchy without being rescued, that
cause is remembered as the evictor, and the evicted block's next
correct demand fill charges the evictor with one pollution miss.  A
victim that is demoted into a sidecar and later bumped out is still
charged to whoever pushed it *out of the L1* (the sidecar gave it a
second chance; the bump merely ended it) — while a speculative fill
that never made the L1 and is bumped out of the sidecar unused charges
nobody: the demand miss that may follow would have happened without
speculation too (a spoiled prefetch, not pollution).

Demand fills are born used (the access that triggered them is the use);
L1 victims demoted into a sidecar open a fresh ``PROV_VICTIM`` lifetime
(Jouppi's victim-caching usefulness), unless they carry a still-pending
speculative lifetime, which continues — matching the way the ``WRONG``
/ ``PREFETCHED`` flags survive demotion in :mod:`repro.mem.hierarchy`.

Like the tracer, profiler and sanitizer, an ``AttributionCollector`` is
passed to :func:`repro.sim.driver.run_simulation` as a separate
argument — never inside hashed :class:`SimParams` — and it only *reads*
simulator state, so attributed runs are bit-identical to plain runs
(``tests/test_attrib.py`` enforces this).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common.errors import AnalysisError
from .events import ATTRIB_POLLUTE, ATTRIB_USE, CAT_ATTRIB

__all__ = [
    "PROV_DEMAND",
    "PROV_WRONG_PATH",
    "PROV_WRONG_THREAD",
    "PROV_NLP",
    "PROV_STREAM",
    "PROV_VICTIM",
    "PROVENANCES",
    "SPECULATIVE_PROVS",
    "WRONG_PROVS",
    "PREFETCH_PROVS",
    "PROV_NAMES",
    "OUTCOME_NAMES",
    "GAP_EDGES",
    "BlockLifetime",
    "AttributionCollector",
    "attribution_delta",
    "explain_report",
    "hist_lines",
    "explain_vs_report",
]


# -- the shared provenance enum ---------------------------------------------

#: Correct-path demand miss: the fill every cache performs.
PROV_DEMAND = 0
#: Load injected down a mispredicted path after branch resolution (§3.1.1).
PROV_WRONG_PATH = 1
#: Load issued by an aborted successor thread running on (§3.1.2).
PROV_WRONG_THREAD = 2
#: Next-line prefetch into the sidecar (§3.2.1 chains, or the nlp config).
PROV_NLP = 3
#: Stream-detector prefetch (the stream-pf extension config).
PROV_STREAM = 4
#: L1 victim demoted into the sidecar (victim caching).
PROV_VICTIM = 5

PROVENANCES: Tuple[int, ...] = (
    PROV_DEMAND, PROV_WRONG_PATH, PROV_WRONG_THREAD,
    PROV_NLP, PROV_STREAM, PROV_VICTIM,
)

#: Fills whose usefulness is speculative (everything but demand).
SPECULATIVE_PROVS: Tuple[int, ...] = (
    PROV_WRONG_PATH, PROV_WRONG_THREAD, PROV_NLP, PROV_STREAM, PROV_VICTIM,
)
#: Wrong-execution provenance classes (the paper's mechanism).
WRONG_PROVS: Tuple[int, ...] = (PROV_WRONG_PATH, PROV_WRONG_THREAD)
#: Explicit-prefetcher provenance classes.
PREFETCH_PROVS: Tuple[int, ...] = (PROV_NLP, PROV_STREAM)

PROV_NAMES: Dict[int, str] = {
    PROV_DEMAND: "demand",
    PROV_WRONG_PATH: "wrong-path",
    PROV_WRONG_THREAD: "wrong-thread",
    PROV_NLP: "nlp-prefetch",
    PROV_STREAM: "stream-prefetch",
    PROV_VICTIM: "victim",
}

# -- lifetime outcomes ------------------------------------------------------

_USEFUL, _LATE, _UNUSED, _POLLUTING = range(4)
OUTCOME_NAMES: Tuple[str, ...] = ("useful", "late", "unused", "polluting")

#: Upper edges of the fill→first-use gap histogram (cycles); one
#: overflow bucket follows.  Replay events share their iteration's start
#: cycle, so bucket 0 (gap = 0) means "used within the same iteration".
GAP_EDGES: Tuple[float, ...] = (0.0, 64.0, 256.0, 1024.0, 4096.0)


class BlockLifetime:
    """One speculative fill's residency, fill → first correct use/eviction."""

    __slots__ = (
        "prov", "tu", "block", "fill_cycle", "latency",
        "region", "pc", "outcome", "pollution", "demoted_by",
    )

    def __init__(
        self,
        prov: int,
        tu: int,
        block: int,
        fill_cycle: float,
        latency: float,
        region: str,
        pc: int,
    ) -> None:
        self.prov = prov
        self.tu = tu
        self.block = block
        self.fill_cycle = fill_cycle
        self.latency = latency
        self.region = region
        self.pc = pc
        #: Outcome index once closed (None while the lifetime is open).
        self.outcome: Optional[int] = None
        #: Correct-path misses charged to this fill (pollution chain).
        self.pollution = 0
        #: For ``PROV_VICTIM``: the cause that displaced this block out
        #: of the L1 (charged if the victim dies unused and re-misses).
        self.demoted_by: Optional[Tuple[int, Optional["BlockLifetime"]]] = None


def _gap_bucket(gap: float) -> int:
    for i, edge in enumerate(GAP_EDGES):
        if gap <= edge:
            return i
    return len(GAP_EDGES)


class AttributionCollector:
    """Per-block provenance/lifetime collector for one simulation run.

    The memory hierarchy calls the ``on_*`` hooks at every fill, use,
    demotion and eviction; the scheduler maintains :attr:`now` and
    :attr:`region` (exactly as it does for a tracer); the thread unit
    declares the active wrong-execution kind before injecting wrong
    loads.  All hooks are read-only on simulator state.

    ``tracer`` (optional) receives ``attrib``-category instants —
    ``attrib_use`` on every first correct use of a speculative fill and
    ``attrib_pollute`` on every charged pollution miss.
    """

    #: Mirrors :attr:`repro.obs.tracer.Tracer.enabled`: components bind a
    #: handle only when True, so a disabled collector costs nothing.
    enabled: bool = True

    __slots__ = (
        "now", "region", "window",
        "_obs", "_wrong_prov", "_wrong_pc", "_last_cause",
        "_open", "_evicted_by",
        "_fills", "_closed", "_pollution", "_gap_hist",
        "_region_stats", "_site_stats", "_buckets",
    )

    def __init__(self, window: float = 4096.0, tracer=None) -> None:
        #: Current simulated cycle, maintained by the scheduler.
        self.now: float = 0.0
        #: Name of the region currently executing (scheduler-maintained).
        self.region: str = ""
        self.window = float(window) if window > 0 else 4096.0
        live = tracer is not None and tracer.enabled
        self._obs = tracer if live and tracer.wants(CAT_ATTRIB) else None
        self._wrong_prov = PROV_WRONG_PATH
        self._wrong_pc = 0
        self._reset_state()

    def _reset_state(self) -> None:
        n = len(PROVENANCES)
        #: Pending cause for the next eviction: (prov, lifetime | None).
        self._last_cause: Tuple[int, Optional[BlockLifetime]] = (PROV_DEMAND, None)
        #: (tu, block) → open (not yet used) lifetime.
        self._open: Dict[Tuple[int, int], BlockLifetime] = {}
        #: (tu, block) → cause that evicted the block out of the hierarchy.
        self._evicted_by: Dict[Tuple[int, int], Tuple[int, Optional[BlockLifetime]]] = {}
        self._fills = [0] * n
        self._closed = [[0, 0, 0, 0] for _ in range(n)]
        self._pollution = [0] * n
        self._gap_hist = [[0] * (len(GAP_EDGES) + 1) for _ in range(n)]
        #: region name → [demand_fills, wrong_fills, useful_wrong, pollution].
        self._region_stats: Dict[str, List[int]] = {}
        #: (region, branch pc) → [wrong fills, useful, pollution] per site.
        self._site_stats: Dict[Tuple[str, int], List[int]] = {}
        #: window index → [spec fills, useful uses, pollution misses].
        self._buckets: Dict[int, List[int]] = {}

    def reset_measurement(self) -> None:
        """Drop everything collected so far (warm-up boundary).

        Mirrors ``Machine.reset_statistics()``: measurement starts from
        warmed cache state, so lifetimes opened during warm-up are
        discarded rather than closed.
        """
        self._reset_state()

    # -- context (thread unit / scheduler) ---------------------------------

    def set_wrong_context(self, prov: int, pc: int = 0) -> None:
        """Declare the wrong-execution kind for subsequent wrong fills.

        ``prov`` must be :data:`PROV_WRONG_PATH` (with the mispredicted
        branch's pc) or :data:`PROV_WRONG_THREAD` (lint OBS002 enforces
        the named constant).
        """
        self._wrong_prov = prov
        self._wrong_pc = pc

    # -- fill hooks (memory hierarchy) -------------------------------------

    def _bucket(self) -> List[int]:
        idx = int(self.now // self.window)
        bucket = self._buckets.get(idx)
        if bucket is None:
            bucket = [0, 0, 0]
            self._buckets[idx] = bucket
        return bucket

    def _region_row(self) -> List[int]:
        row = self._region_stats.get(self.region)
        if row is None:
            row = [0, 0, 0, 0]
            self._region_stats[self.region] = row
        return row

    def on_demand_fill(self, tu: int, block: int) -> None:
        """A correct-path miss filled ``block`` from beyond the hierarchy."""
        self._fills[PROV_DEMAND] += 1
        self._region_row()[0] += 1
        cause = self._evicted_by.pop((tu, block), None)
        if cause is not None:
            # This demand miss exists because someone displaced the block:
            # charge the evictor (the pollution-attribution chain).
            prov, lifetime = cause
            self._pollution[prov] += 1
            self._region_row()[3] += 1
            self._bucket()[2] += 1
            if lifetime is not None:
                lifetime.pollution += 1
                if lifetime.outcome == _UNUSED:
                    # Already closed as unused: reclassify as polluting.
                    self._closed[lifetime.prov][_UNUSED] -= 1
                    self._closed[lifetime.prov][_POLLUTING] += 1
                    lifetime.outcome = _POLLUTING
                if lifetime.prov == PROV_WRONG_PATH:
                    site = self._site_stats.get((lifetime.region, lifetime.pc))
                    if site is not None:
                        site[2] += 1
            if self._obs is not None:
                self._obs.emit(ATTRIB_POLLUTE, tu, block, prov, cycle=self.now)
        self._last_cause = (PROV_DEMAND, None)

    def on_wrong_fill(self, tu: int, block: int, latency: float) -> None:
        """A wrong-execution load filled ``block`` (into L1 or sidecar)."""
        prov = self._wrong_prov
        pc = self._wrong_pc if prov == PROV_WRONG_PATH else 0
        self._fills[prov] += 1
        self._region_row()[1] += 1
        if prov == PROV_WRONG_PATH:
            site = self._site_stats.setdefault((self.region, pc), [0, 0, 0])
            site[0] += 1
        self._evicted_by.pop((tu, block), None)
        lifetime = BlockLifetime(prov, tu, block, self.now, latency,
                                 self.region, pc)
        self._open[(tu, block)] = lifetime
        self._last_cause = (prov, lifetime)
        self._bucket()[0] += 1

    def on_prefetch_fill(self, tu: int, block: int, latency: float,
                         prov: int) -> None:
        """A prefetcher filled ``block`` into the sidecar.

        ``prov`` is :data:`PROV_NLP` or :data:`PROV_STREAM` (OBS002
        enforces the named constant at call sites).
        """
        self._fills[prov] += 1
        self._evicted_by.pop((tu, block), None)
        lifetime = BlockLifetime(prov, tu, block, self.now, latency,
                                 self.region, 0)
        self._open[(tu, block)] = lifetime
        self._last_cause = (prov, lifetime)
        self._bucket()[0] += 1

    # -- use / movement hooks ----------------------------------------------

    def on_use(self, tu: int, block: int) -> None:
        """A correct-path access referenced ``block`` (L1 or sidecar hit)."""
        lifetime = self._open.pop((tu, block), None)
        if lifetime is None:
            # Demand-resident block (or pre-measurement state): the
            # attribution question was already settled.
            self._last_cause = (PROV_DEMAND, None)
            return
        gap = self.now - lifetime.fill_cycle
        outcome = _LATE if gap < lifetime.latency else _USEFUL
        lifetime.outcome = outcome
        prov = lifetime.prov
        self._closed[prov][outcome] += 1
        self._gap_hist[prov][_gap_bucket(gap)] += 1
        if prov in WRONG_PROVS:
            self._region_stats.setdefault(lifetime.region, [0, 0, 0, 0])[2] += 1
            if prov == PROV_WRONG_PATH:
                site = self._site_stats.get((lifetime.region, lifetime.pc))
                if site is not None:
                    site[1] += 1
        self._bucket()[1] += 1
        if self._obs is not None:
            self._obs.emit(ATTRIB_USE, tu, block, prov, cycle=self.now)
        self._last_cause = (prov, lifetime)

    def on_wrong_promote(self, tu: int, block: int) -> None:
        """A wrong-execution sidecar hit promoted ``block`` into the L1.

        Not a correct use — the open lifetime (if any) continues; this
        hook only marks the promoted block as the cause of the eviction
        its insertion is about to perform.
        """
        lifetime = self._open.get((tu, block))
        if lifetime is not None:
            self._last_cause = (lifetime.prov, lifetime)
        else:
            self._last_cause = (PROV_DEMAND, None)

    def on_demote(self, tu: int, block: int) -> None:
        """An L1 victim is being moved into the sidecar.

        A pending speculative lifetime survives the move (the flags do
        too); otherwise a fresh victim-cache lifetime opens — its later
        use is exactly Jouppi's victim-cache save — and remembers who
        displaced the block out of the L1, so a victim that dies unused
        still charges its *displacer*, not whatever later bumped it out
        of the sidecar.
        """
        key = (tu, block)
        lifetime = self._open.get(key)
        if lifetime is None:
            lifetime = BlockLifetime(PROV_VICTIM, tu, block, self.now, 0.0,
                                     self.region, 0)
            lifetime.demoted_by = self._last_cause
            self._open[key] = lifetime
            self._fills[PROV_VICTIM] += 1
        self._last_cause = (lifetime.prov, lifetime)

    def on_evict(self, tu: int, block: int, from_sidecar: bool = False) -> None:
        """``block`` left the L1+sidecar hierarchy entirely.

        ``from_sidecar`` marks sidecar bumps (vs direct L1 departures).
        Pollution eligibility follows the L1-displacement model of the
        module docstring: a direct L1 departure of settled demand state
        charges the insert that displaced it (:attr:`_last_cause`); a
        bumped victim charges its original L1 displacer; a speculative
        fill that dies unused charges nobody.
        """
        key = (tu, block)
        lifetime = self._open.pop(key, None)
        if lifetime is not None:
            outcome = _POLLUTING if lifetime.pollution else _UNUSED
            lifetime.outcome = outcome
            self._closed[lifetime.prov][outcome] += 1
            if lifetime.prov == PROV_VICTIM and lifetime.demoted_by is not None:
                self._evicted_by[key] = lifetime.demoted_by
            return
        if not from_sidecar:
            self._evicted_by[key] = self._last_cause

    # -- derived output ----------------------------------------------------

    def series(self) -> Dict[str, object]:
        """Per-window attribution counts (Perfetto counter tracks)."""
        starts: List[float] = []
        fills: List[int] = []
        uses: List[int] = []
        pollution: List[int] = []
        for idx in sorted(self._buckets):
            f, u, p = self._buckets[idx]
            starts.append(idx * self.window)
            fills.append(f)
            uses.append(u)
            pollution.append(p)
        return {
            "window": self.window,
            "window_start": starts,
            "spec_fills": fills,
            "useful_spec_uses": uses,
            "pollution_misses": pollution,
        }

    def summary(self, instructions: int = 0) -> Dict[str, object]:
        """Aggregate attribution report (JSON-friendly, pure read)."""
        open_by_prov = [0] * len(PROVENANCES)
        for lifetime in self._open.values():
            open_by_prov[lifetime.prov] += 1
        kilo = instructions / 1000.0

        def mpki(count: int) -> float:
            return count / kilo if kilo else 0.0

        demand_fills = self._fills[PROV_DEMAND]
        covered = {
            p: self._closed[p][_USEFUL] + self._closed[p][_LATE]
            for p in PROVENANCES
        }
        # Every useful/late speculative fill turned a would-be demand
        # miss into a hit: the coverage denominator is all correct-path
        # block demands that reached beyond the L1's own LRU residue.
        demand_denom = demand_fills + sum(covered[p] for p in SPECULATIVE_PROVS)

        per_source: Dict[str, Dict[str, object]] = {}
        for p in PROVENANCES:
            useful, late, unused, polluting = self._closed[p]
            fills = self._fills[p]
            per_source[PROV_NAMES[p]] = {
                "fills": fills,
                "useful": useful,
                "late": late,
                "unused": unused,
                "polluting": polluting,
                "open": open_by_prov[p],
                "pollution_misses": self._pollution[p],
                "accuracy": (useful + late) / fills if fills else 0.0,
                "coverage": covered[p] / demand_denom if demand_denom else 0.0,
                "pollution_mpki": mpki(self._pollution[p]),
                "gap_hist": {
                    "edges": list(GAP_EDGES),
                    "counts": list(self._gap_hist[p]),
                },
            }

        def aggregate(provs: Tuple[int, ...]) -> Dict[str, float]:
            fills = sum(self._fills[p] for p in provs)
            used = sum(covered[p] for p in provs)
            pollution = sum(self._pollution[p] for p in provs)
            polluting = sum(self._closed[p][_POLLUTING] for p in provs)
            return {
                "fills": fills,
                "useful": used,
                "polluting": polluting,
                "pollution_misses": pollution,
                "accuracy": used / fills if fills else 0.0,
                "coverage": used / demand_denom if demand_denom else 0.0,
                "polluting_mpki": mpki(pollution),
            }

        wrong = aggregate(WRONG_PROVS)
        prefetch = aggregate(PREFETCH_PROVS)
        spec_pollution = sum(
            self._pollution[p] for p in (*WRONG_PROVS, *PREFETCH_PROVS)
        )

        regions = [
            {
                "region": name,
                "demand_fills": row[0],
                "wrong_fills": row[1],
                "useful_wrong": row[2],
                "pollution_misses": row[3],
            }
            for name, row in sorted(
                self._region_stats.items(),
                key=lambda kv: (-kv[1][0], kv[0]),
            )
        ]
        sites = [
            {
                "region": region,
                "pc": pc,
                "wrong_fills": row[0],
                "useful": row[1],
                "pollution_misses": row[2],
            }
            for (region, pc), row in sorted(
                self._site_stats.items(),
                key=lambda kv: (-kv[1][0], kv[0]),
            )
        ]

        totals = {
            "fills": sum(self._fills),
            "useful": sum(c[_USEFUL] for c in self._closed),
            "late": sum(c[_LATE] for c in self._closed),
            "unused": sum(c[_UNUSED] for c in self._closed),
            "polluting": sum(c[_POLLUTING] for c in self._closed),
            "open": sum(open_by_prov),
            "pollution_misses": sum(self._pollution),
            "demand_fills": demand_fills,
            "demand_mpki": mpki(demand_fills),
            "instructions": instructions,
        }
        return {
            "per_source": per_source,
            "totals": totals,
            "wrong": wrong,
            "prefetch": prefetch,
            "metrics": {
                "wrong_coverage": wrong["coverage"],
                "wrong_accuracy": wrong["accuracy"],
                "wrong_polluting_mpki": wrong["polluting_mpki"],
                "prefetch_accuracy": prefetch["accuracy"],
                "polluting_mpki": mpki(spec_pollution),
                "demand_mpki": totals["demand_mpki"],
            },
            "regions": regions,
            "sites": sites,
            "series": self.series(),
        }


# ---------------------------------------------------------------------------
# Report rendering (`repro explain`, examples, tools/make_report.py)
# ---------------------------------------------------------------------------

def _require_attribution(result) -> Dict:
    attribution = getattr(result, "attribution", None)
    if not attribution:
        raise AnalysisError(
            f"{result.benchmark}/{result.config}: result carries no "
            "attribution data (run with an AttributionCollector attached)"
        )
    return attribution


def hist_lines(name: str, hist: Dict[str, List]) -> List[str]:
    """Text histogram of one source's fill -> first-use gaps."""
    counts = hist["counts"]
    total = sum(counts)
    if not total:
        return []
    edges = hist["edges"]
    labels = []
    lo = 0.0
    for edge in edges:
        labels.append("same iter" if edge == 0.0 else f"{lo:>5.0f}-{edge:<5.0f}")
        lo = edge
    labels.append(f"{lo:>5.0f}+     ")
    width = max(counts)
    lines = [f"  {name}: fill -> first-use gap (cycles)"]
    for label, n in zip(labels, counts):
        bar = "#" * max(1, round(30 * n / width)) if n else ""
        lines.append(f"    {label:<12} {n:>7}  {bar}")
    return lines


def explain_report(result, top: int = 5) -> str:
    """Render one attributed run as a drill-down text report."""
    attribution = _require_attribution(result)
    per_source = attribution["per_source"]
    totals = attribution["totals"]
    wrong = attribution["wrong"]
    prefetch = attribution["prefetch"]
    lines = [
        f"{result.benchmark} on {result.config} ({result.n_tus} TUs, "
        f"scale {result.scale:g}, seed {result.seed})",
        f"  {result.total_cycles:.0f} cycles, ipc {result.ipc:.2f}, "
        f"{totals['demand_fills']} demand misses "
        f"({totals['demand_mpki']:.2f} MPKI), "
        f"{result.effective_misses} effective misses",
        "",
        "  fills by provenance (lifetimes: fill -> first correct use "
        "-> eviction):",
        "  {:<16} {:>7} {:>7} {:>6} {:>7} {:>9} {:>5} {:>9} {:>9}".format(
            "source", "fills", "useful", "late", "unused", "polluting",
            "open", "accuracy", "coverage",
        ),
    ]
    for prov in PROVENANCES:
        src = per_source[PROV_NAMES[prov]]
        if not src["fills"] and not src["open"]:
            continue
        lines.append(
            "  {:<16} {:>7} {:>7} {:>6} {:>7} {:>9} {:>5} {:>8.1%} {:>8.1%}".format(
                PROV_NAMES[prov], src["fills"], src["useful"], src["late"],
                src["unused"], src["polluting"], src["open"],
                src["accuracy"], src["coverage"],
            )
        )
    lines += [
        "",
        f"  wrong execution : coverage {wrong['coverage']:.1%}, "
        f"accuracy {wrong['accuracy']:.1%}, "
        f"{wrong['pollution_misses']} pollution misses "
        f"({wrong['polluting_mpki']:.2f} MPKI)",
        f"  prefetchers     : coverage {prefetch['coverage']:.1%}, "
        f"accuracy {prefetch['accuracy']:.1%}, "
        f"{prefetch['pollution_misses']} pollution misses "
        f"({prefetch['polluting_mpki']:.2f} MPKI)",
    ]
    gap_lines: List[str] = []
    for prov in SPECULATIVE_PROVS:
        src = per_source[PROV_NAMES[prov]]
        gap_lines += hist_lines(PROV_NAMES[prov], src["gap_hist"])
    if gap_lines:
        lines += ["", "  timeliness:"] + gap_lines

    regions = attribution["regions"][:top]
    if regions:
        lines += [
            "",
            f"  top {len(regions)} regions by demand misses:",
            "  {:<24} {:>8} {:>8} {:>8} {:>10}".format(
                "region", "misses", "wrongf", "usefulw", "pollution",
            ),
        ]
        for row in regions:
            lines.append(
                "  {:<24} {:>8} {:>8} {:>8} {:>10}".format(
                    row["region"], row["demand_fills"], row["wrong_fills"],
                    row["useful_wrong"], row["pollution_misses"],
                )
            )
    sites = attribution["sites"][:top]
    if sites:
        lines += [
            "",
            f"  top {len(sites)} wrong-path injection sites (by branch pc):",
            "  {:<24} {:>10} {:>8} {:>8} {:>10}".format(
                "region", "pc", "fills", "useful", "pollution",
            ),
        ]
        for row in sites:
            lines.append(
                "  {:<24} {:>10} {:>8} {:>8} {:>10}".format(
                    row["region"], f"0x{row['pc']:x}", row["wrong_fills"],
                    row["useful"], row["pollution_misses"],
                )
            )
    return "\n".join(lines)


def attribution_delta(a: Dict, b: Dict) -> Dict[str, object]:
    """Attribute the miss delta between two attributed runs (a vs b).

    Positive ``covered_delta`` means side *a* turned more would-be
    misses into hits from that source; positive ``pollution_delta``
    means side *a* suffered more pollution misses from it.
    """
    per: Dict[str, Dict[str, float]] = {}
    for prov in SPECULATIVE_PROVS:
        name = PROV_NAMES[prov]
        sa = a["per_source"][name]
        sb = b["per_source"][name]
        per[name] = {
            "fills_delta": sa["fills"] - sb["fills"],
            "covered_delta": (sa["useful"] + sa["late"])
            - (sb["useful"] + sb["late"]),
            "pollution_delta": sa["pollution_misses"] - sb["pollution_misses"],
        }
    return {
        "demand_misses_delta": a["totals"]["demand_fills"]
        - b["totals"]["demand_fills"],
        "per_source": per,
        "metrics": {
            key: a["metrics"][key] - b["metrics"][key]
            for key in a["metrics"]
            if key in b["metrics"]
        },
    }


def explain_vs_report(result_a, result_b, top: int = 5) -> str:
    """A/B drill-down: where does the miss-rate delta come from?"""
    a = _require_attribution(result_a)
    b = _require_attribution(result_b)
    delta = attribution_delta(a, b)
    ma, mb = a["metrics"], b["metrics"]
    ca, cb = result_a.config, result_b.config
    lines = [
        f"{result_a.benchmark}: {ca} vs {cb} ({result_a.n_tus} TUs, "
        f"scale {result_a.scale:g}, seed {result_a.seed})",
        "",
        "  {:<22} {:>14} {:>14} {:>12}".format("metric", ca[:14], cb[:14], "delta"),
    ]

    def row(label: str, va: float, vb: float, fmt: str) -> None:
        lines.append(
            "  {:<22} {:>14} {:>14} {:>12}".format(
                label, format(va, fmt), format(vb, fmt), format(va - vb, "+" + fmt)
            )
        )

    row("total cycles", result_a.total_cycles, result_b.total_cycles, ".0f")
    row("demand misses", a["totals"]["demand_fills"],
        b["totals"]["demand_fills"], ".0f")
    row("demand MPKI", ma["demand_mpki"], mb["demand_mpki"], ".2f")
    row("wrong coverage", ma["wrong_coverage"], mb["wrong_coverage"], ".1%")
    row("wrong accuracy", ma["wrong_accuracy"], mb["wrong_accuracy"], ".1%")
    row("wrong polluting MPKI", ma["wrong_polluting_mpki"],
        mb["wrong_polluting_mpki"], ".2f")
    row("spec polluting MPKI", ma["polluting_mpki"], mb["polluting_mpki"], ".2f")
    row("prefetch accuracy", ma["prefetch_accuracy"],
        mb["prefetch_accuracy"], ".1%")

    lines += [
        "",
        f"  miss delta attributed by provenance ({ca} minus {cb}):",
        "  {:<16} {:>12} {:>14} {:>16}".format(
            "source", "fills", "covered misses", "pollution misses",
        ),
    ]
    for name, d in delta["per_source"].items():
        if not any(d.values()):
            continue
        lines.append(
            "  {:<16} {:>+12.0f} {:>+14.0f} {:>+16.0f}".format(
                name, d["fills_delta"], d["covered_delta"], d["pollution_delta"],
            )
        )
    wa, wb = a["wrong"], b["wrong"]
    lines += [
        "",
        "  summary:",
        f"  - wrong-execution fills show useful coverage "
        f"{wa['coverage']:.1%} ({ca}) vs {wb['coverage']:.1%} ({cb})",
        f"  - wrong-execution polluting-fill MPKI "
        f"{wa['polluting_mpki']:.2f} ({ca}) vs "
        f"{wb['polluting_mpki']:.2f} ({cb})"
        + (
            f" — {ca} absorbs the pollution"
            if wa["polluting_mpki"] < wb["polluting_mpki"]
            else ""
        ),
        f"  - demand-miss delta {delta['demand_misses_delta']:+.0f} "
        f"({ca} minus {cb})",
    ]
    return "\n".join(lines)
