"""Typed event records for the tracing subsystem.

Every event is a compact :class:`Event` tuple stamped with the simulated
cycle and the thread unit it happened on.  Kinds are small integers (not
enums) so hot emit sites pay one tuple construction and nothing else;
:data:`KIND_NAMES` and :data:`KIND_CATEGORY` map them back to readable
names and to the coarse categories the tracer filters on.

The taxonomy follows the paper's mechanism inventory:

* **thread** — thread-pipelining lifecycle: forks, per-iteration spans
  and retires, wrong-thread aborts/kills (§2.2, §3.1.2);
* **region** — program-structure begin/end markers, one per invocation;
* **branch** — branch resolution (the wrong-path trigger, §3.1.1);
* **mem** — L1/L2 misses and fills, wrong-execution loads and fills,
  L1 evictions;
* **wec** — sidecar (WEC / VC / PB) inserts, correct-path hits and the
  chained next-line prefetches of §3.2.1;
* **ring** — target-store value forwarding between adjacent TUs;
* **attrib** — block-provenance attribution instants emitted by
  :class:`repro.obs.attrib.AttributionCollector` (first correct use of
  a speculative fill, charged pollution misses).
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Tuple

__all__ = [
    "Event",
    "CAT_THREAD",
    "CAT_REGION",
    "CAT_BRANCH",
    "CAT_MEM",
    "CAT_WEC",
    "CAT_RING",
    "CAT_ATTRIB",
    "CATEGORIES",
    "METRICS_CATEGORIES",
    "REGION_BEGIN",
    "REGION_END",
    "ITER_SPAN",
    "ITER_RETIRE",
    "THREAD_FORK",
    "THREAD_ABORT",
    "THREAD_KILL",
    "WP_ENTER",
    "WP_EXIT",
    "BRANCH_RESOLVE",
    "L1_MISS",
    "L1_FILL",
    "L1_EVICT",
    "L2_MISS",
    "L2_FILL",
    "WEC_INSERT",
    "WEC_HIT",
    "WEC_NLP",
    "WRONG_LOAD",
    "WRONG_FILL",
    "RING_FORWARD",
    "ATTRIB_USE",
    "ATTRIB_POLLUTE",
    "KIND_NAMES",
    "KIND_CATEGORY",
    "event_to_dict",
]


class Event(NamedTuple):
    """One traced occurrence.

    ``a`` and ``b`` are kind-specific integer payloads (block address,
    instruction count, flags, ...); ``dur`` is a span length in cycles
    for span-shaped events (zero for instants); ``tag`` carries the rare
    string payload (region names).
    """

    cycle: float
    kind: int
    tu: int
    a: int = 0
    b: int = 0
    dur: float = 0.0
    tag: str = ""


# -- categories -------------------------------------------------------------

CAT_THREAD = "thread"
CAT_REGION = "region"
CAT_BRANCH = "branch"
CAT_MEM = "mem"
CAT_WEC = "wec"
CAT_RING = "ring"
CAT_ATTRIB = "attrib"

CATEGORIES: Tuple[str, ...] = (
    CAT_THREAD, CAT_REGION, CAT_BRANCH, CAT_MEM, CAT_WEC, CAT_RING,
    CAT_ATTRIB,
)

#: Categories the :class:`~repro.obs.tracer.IntervalMetrics` collector
#: consumes; a tracer carrying one reports them as wanted even when the
#: ring filter excludes them.
METRICS_CATEGORIES: Tuple[str, ...] = (CAT_THREAD, CAT_MEM, CAT_WEC)


# -- kinds ------------------------------------------------------------------

#: Region (loop / sequential section) entered; a=invocation, tag=name.
REGION_BEGIN = 1
#: Region completed; a=invocation, b=iterations, dur=region cycles.
REGION_END = 2
#: One iteration's occupancy of a TU; a=global iter, b=n_instr, dur=span.
ITER_SPAN = 3
#: Iteration/chunk retired (write-back done); a=n_instr, b=n_loads.
ITER_RETIRE = 4
#: Successor thread forked onto a TU; a=global iter, b=values forwarded.
THREAD_FORK = 5
#: Speculative thread aborted but allowed to run on wrong (§3.1.2); a=iter.
THREAD_ABORT = 6
#: Wrong thread reached its self-kill; a=wrong loads it performed.
THREAD_KILL = 7
#: Wrong-path injection begins at a resolved misprediction; a=branch pc.
WP_ENTER = 8
#: Wrong-path injection ends; a=wrong loads issued, b=branch index.
WP_EXIT = 9
#: Conditional branch resolved; a=pc, b=1 if mispredicted.
BRANCH_RESOLVE = 10
#: Correct-path L1D miss; a=block, b=1 if store.
L1_MISS = 11
#: Block filled from beyond the L1 on the correct path; a=block, b=latency.
L1_FILL = 12
#: Block evicted from a cache; a=block, b=flags.
L1_EVICT = 13
#: Shared-L2 miss; a=L2 block.
L2_MISS = 14
#: Shared-L2 fill from main memory; a=L2 block, b=latency.
L2_FILL = 15
#: Block installed into the sidecar (WEC / VC / PB); a=block, b=flags.
WEC_INSERT = 16
#: Correct-path access hit the sidecar; a=block, b=flags at hit time.
WEC_HIT = 17
#: Next-line prefetch chained into the sidecar (§3.2.1); a=target block.
WEC_NLP = 18
#: One wrong-execution load issued; a=byte addr, b=1 if wrong-thread.
WRONG_LOAD = 19
#: Wrong-execution load missed and filled (WEC or L1); a=block, b=latency.
WRONG_FILL = 20
#: Target-store values forwarded over the ring; a=value count, tu=receiver.
RING_FORWARD = 21
#: First correct-path use of a speculative fill; a=block, b=provenance.
ATTRIB_USE = 22
#: Correct-path miss charged to an earlier eviction; a=block, b=provenance.
ATTRIB_POLLUTE = 23

KIND_NAMES: Dict[int, str] = {
    REGION_BEGIN: "region_begin",
    REGION_END: "region_end",
    ITER_SPAN: "iter_span",
    ITER_RETIRE: "iter_retire",
    THREAD_FORK: "thread_fork",
    THREAD_ABORT: "thread_abort",
    THREAD_KILL: "thread_kill",
    WP_ENTER: "wp_enter",
    WP_EXIT: "wp_exit",
    BRANCH_RESOLVE: "branch_resolve",
    L1_MISS: "l1_miss",
    L1_FILL: "l1_fill",
    L1_EVICT: "l1_evict",
    L2_MISS: "l2_miss",
    L2_FILL: "l2_fill",
    WEC_INSERT: "wec_insert",
    WEC_HIT: "wec_hit",
    WEC_NLP: "wec_nlp_prefetch",
    WRONG_LOAD: "wrong_load",
    WRONG_FILL: "wrong_fill",
    RING_FORWARD: "ring_forward",
    ATTRIB_USE: "attrib_use",
    ATTRIB_POLLUTE: "attrib_pollute",
}

KIND_CATEGORY: Dict[int, str] = {
    REGION_BEGIN: CAT_REGION,
    REGION_END: CAT_REGION,
    ITER_SPAN: CAT_THREAD,
    ITER_RETIRE: CAT_THREAD,
    THREAD_FORK: CAT_THREAD,
    THREAD_ABORT: CAT_THREAD,
    THREAD_KILL: CAT_THREAD,
    WP_ENTER: CAT_THREAD,
    WP_EXIT: CAT_THREAD,
    BRANCH_RESOLVE: CAT_BRANCH,
    L1_MISS: CAT_MEM,
    L1_FILL: CAT_MEM,
    L1_EVICT: CAT_MEM,
    L2_MISS: CAT_MEM,
    L2_FILL: CAT_MEM,
    WEC_INSERT: CAT_WEC,
    WEC_HIT: CAT_WEC,
    WEC_NLP: CAT_WEC,
    WRONG_LOAD: CAT_MEM,
    WRONG_FILL: CAT_MEM,
    RING_FORWARD: CAT_RING,
    ATTRIB_USE: CAT_ATTRIB,
    ATTRIB_POLLUTE: CAT_ATTRIB,
}


def event_to_dict(event: Event) -> Dict[str, object]:
    """Readable dict form of one event (JSONL export, debugging)."""
    out: Dict[str, object] = {
        "cycle": event.cycle,
        "kind": KIND_NAMES.get(event.kind, str(event.kind)),
        "cat": KIND_CATEGORY.get(event.kind, "?"),
        "tu": event.tu,
        "a": event.a,
        "b": event.b,
    }
    if event.dur:
        out["dur"] = event.dur
    if event.tag:
        out["tag"] = event.tag
    return out
