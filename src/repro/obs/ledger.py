"""Persistent run ledger: append-only performance history across runs.

PR 2 made a *single* run inspectable; the ledger gives the repo memory
*across* runs.  Every recorded run lands as one JSON line in
``$REPRO_PERF_DIR/ledger.jsonl`` (default ``.perf/``) carrying three
groups of facts per (benchmark × config × seed):

* **sim metrics** — the deterministic simulation outcome (cycles, IPC,
  L1 miss rate, WEC hit rate, effective misses, speedup vs the ``orig``
  baseline when one ran alongside);
* **host metrics** — how fast the *simulator* ran (wall seconds,
  simulated events/sec, peak RSS) plus the optional
  :class:`~repro.obs.hostprof.HostProfiler` section breakdown;
* **provenance** — git SHA, the executor's code-version token, the
  config/params fingerprints, seed and scale — enough to know exactly
  which code and knobs produced the numbers.

Records are schema-versioned (:data:`LEDGER_SCHEMA_VERSION`); readers
skip lines they cannot parse or whose schema they do not know, so a
ledger written by a newer checkout never breaks an older one.  The
comparison engine (:mod:`repro.obs.compare`) consumes these records;
``repro perf record/compare/report`` is the CLI surface.

Recording is automatic: :func:`repro.sim.executor.run_cells` appends a
record for every cell it *executes* (never for cache hits — their wall
time would measure a disk read) whenever ``$REPRO_PERF_DIR`` is set.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..common.errors import AnalysisError

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "EXPORT_KIND",
    "Ledger",
    "PerfRecord",
    "default_perf_dir",
    "git_sha",
    "load_records",
    "validate_export",
    "write_export",
]

#: Bumped whenever the record layout changes; readers skip unknown versions.
LEDGER_SCHEMA_VERSION = 1

#: Marker in exported JSON documents (``repro perf report --json``).
EXPORT_KIND = "repro-perf-export"

#: The ledger file name inside the perf directory.
LEDGER_FILENAME = "ledger.jsonl"

#: Sub-resolution wall-clock floor for *rate* metrics.  A cell that
#: completes faster than the host clock can resolve used to drop
#: ``events_per_sec``/``cycles_per_sec`` entirely, which silently
#: removed the record from every A/B comparison of those metrics.  The
#: raw ``wall_s`` is always recorded as measured; rates divide by
#: ``max(wall_s, WALL_EPSILON_S)`` and the record carries
#: ``host["wall_clamped"] = 1.0`` so readers can tell a clamped rate
#: from a measured one.
WALL_EPSILON_S = 1e-6


def default_perf_dir() -> Optional[Path]:
    """``$REPRO_PERF_DIR`` as a path, or ``None`` when recording is off."""
    env = os.environ.get("REPRO_PERF_DIR")
    return Path(env) if env else None


_git_sha: Optional[str] = None


def git_sha() -> str:
    """The working tree's HEAD commit (cached; empty when not a repo)."""
    global _git_sha
    if _git_sha is None:
        try:
            _git_sha = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=Path(__file__).resolve().parent,
                capture_output=True,
                text=True,
                timeout=5,
                check=False,
            ).stdout.strip()
        except OSError:
            _git_sha = ""
    return _git_sha


@dataclass
class PerfRecord:
    """One ledger line: sim + host metrics plus provenance for one run."""

    benchmark: str
    config: str
    seed: int = 0
    scale: float = 0.0
    #: Simulation metrics (deterministic for a fixed seed/scale/code).
    sim: Dict[str, float] = field(default_factory=dict)
    #: Host metrics (stochastic: wall_s, events_per_sec, peak_rss_kb).
    host: Dict[str, float] = field(default_factory=dict)
    #: Optional HostProfiler section breakdown ({section: {s, calls, pct}}).
    profile: Optional[Dict] = None
    #: Who recorded the run ("cli.perf.record", "executor", "bench", ...).
    context: str = ""
    #: Free-form grouping label for A/B comparison (``record --label``).
    label: str = ""
    #: Code/config identity: git_sha, code_token, config_fp, params_fp.
    provenance: Dict[str, str] = field(default_factory=dict)
    ts: float = 0.0
    schema: int = LEDGER_SCHEMA_VERSION

    @classmethod
    def from_result(
        cls,
        result,
        wall_s: float,
        speedup_pct: Optional[float] = None,
        profile: Optional[Dict] = None,
        peak_rss_kb: Optional[int] = None,
        context: str = "",
        label: str = "",
        config_fp: str = "",
        params_fp: str = "",
        code_token: str = "",
        engine: str = "",
        extra_provenance: Optional[Dict[str, str]] = None,
    ) -> "PerfRecord":
        """Build a record from a :class:`~repro.sim.results.SimResult`.

        Rate metrics are always recorded: a ``wall_s`` below the host
        clock's resolution is clamped to :data:`WALL_EPSILON_S` for the
        division (raw ``wall_s`` kept as measured, ``wall_clamped``
        marker set) instead of silently dropping the metrics.

        ``extra_provenance`` merges additional identity keys into the
        provenance dict — the sweep service stamps ``job_id`` and
        ``tenant`` here so every executed cell is traceable to the
        submission that caused it (see ``docs/SERVICE.md``).  Reserved
        keys (git_sha, code_token, ...) cannot be overridden.
        """
        sim = result.sim_metrics()
        if speedup_pct is not None:
            sim["speedup_pct"] = float(speedup_pct)
        host: Dict[str, float] = {"wall_s": float(wall_s)}
        rate_wall = wall_s if wall_s >= WALL_EPSILON_S else WALL_EPSILON_S
        host["events_per_sec"] = result.instructions / rate_wall
        host["cycles_per_sec"] = result.total_cycles / rate_wall
        if wall_s < WALL_EPSILON_S:
            host["wall_clamped"] = 1.0
        if peak_rss_kb is not None:
            host["peak_rss_kb"] = float(peak_rss_kb)
        provenance = {
            "git_sha": git_sha(),
            "code_token": code_token,
            "config_fp": config_fp,
            "params_fp": params_fp,
            "engine": engine or "oracle",
        }
        if extra_provenance:
            for key, value in extra_provenance.items():
                if key not in provenance:
                    provenance[key] = str(value)
        return cls(
            benchmark=result.benchmark,
            config=result.config,
            seed=result.seed,
            scale=result.scale,
            sim=sim,
            host=host,
            profile=profile,
            context=context,
            label=label,
            provenance=provenance,
            # lint: allow(DET001 ledger timestamp: record provenance only, never feeds sim state or cache keys)
            ts=time.time(),
        )

    def metric(self, source: str, name: str) -> Optional[float]:
        """The value of ``sim``/``host`` metric ``name``, or ``None``."""
        group = self.sim if source == "sim" else self.host
        value = group.get(name)
        return float(value) if value is not None else None

    @property
    def group_key(self):
        """Comparison grouping: same workload, config and knobs."""
        return (self.benchmark, self.config, self.seed, self.scale)

    def to_dict(self) -> Dict:
        return {
            "schema": self.schema,
            "ts": self.ts,
            "benchmark": self.benchmark,
            "config": self.config,
            "seed": self.seed,
            "scale": self.scale,
            "context": self.context,
            "label": self.label,
            "provenance": self.provenance,
            "sim": self.sim,
            "host": self.host,
            "profile": self.profile,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PerfRecord":
        """Parse one record; raises on missing required keys."""
        return cls(
            benchmark=data["benchmark"],
            config=data["config"],
            seed=int(data.get("seed", 0)),
            scale=float(data.get("scale", 0.0)),
            sim=dict(data.get("sim") or {}),
            host=dict(data.get("host") or {}),
            profile=data.get("profile"),
            context=str(data.get("context", "")),
            label=str(data.get("label", "")),
            provenance=dict(data.get("provenance") or {}),
            ts=float(data.get("ts", 0.0)),
            schema=int(data.get("schema", LEDGER_SCHEMA_VERSION)),
        )


class Ledger:
    """Append-only JSONL store of :class:`PerfRecord` under one directory."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        if root is None:
            root = default_perf_dir() or Path(".perf")
        self.root = Path(root)
        self.path = self.root / LEDGER_FILENAME
        self._write_warned = False

    def append(self, record: PerfRecord) -> None:
        """Append one record (best-effort: an unwritable dir warns once)."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            line = json.dumps(record.to_dict(), sort_keys=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
        except OSError as exc:
            if not self._write_warned:
                self._write_warned = True
                warnings.warn(
                    f"perf ledger at {self.path} is not writable ({exc}); "
                    "continuing without recording",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def records(self, label: Optional[str] = None) -> List[PerfRecord]:
        """All parseable records, oldest first, optionally label-filtered."""
        out: List[PerfRecord] = []
        if not self.path.is_file():
            return out
        with open(self.path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    if int(data.get("schema", -1)) != LEDGER_SCHEMA_VERSION:
                        continue  # written by a different code generation
                    record = PerfRecord.from_dict(data)
                except (ValueError, KeyError, TypeError):
                    warnings.warn(
                        f"{self.path}:{lineno}: skipping unparseable ledger "
                        "line",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                if label is None or record.label == label:
                    out.append(record)
        return out

    def __len__(self) -> int:
        return len(self.records())


# ---------------------------------------------------------------------------
# Export documents (``repro perf report --json``, BENCH_smoke.json)
# ---------------------------------------------------------------------------


def write_export(
    records: List[PerfRecord], path: Union[str, Path]
) -> Path:
    """Write records as one self-describing JSON document."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "kind": EXPORT_KIND,
        "schema": LEDGER_SCHEMA_VERSION,
        "generated_ts": time.time(),
        "n_records": len(records),
        "records": [r.to_dict() for r in records],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def validate_export(doc: Dict) -> List[str]:
    """Schema-check an export document; returns a list of problems."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["export is not a JSON object"]
    if doc.get("kind") != EXPORT_KIND:
        problems.append(f"kind is {doc.get('kind')!r}, expected {EXPORT_KIND!r}")
    if doc.get("schema") != LEDGER_SCHEMA_VERSION:
        problems.append(f"unknown schema {doc.get('schema')!r}")
    records = doc.get("records")
    if not isinstance(records, list):
        return problems + ["records is not a list"]
    if doc.get("n_records") != len(records):
        problems.append("n_records does not match len(records)")
    for i, data in enumerate(records):
        for key in ("benchmark", "config", "sim", "host"):
            if key not in data:
                problems.append(f"records[{i}] missing {key!r}")
        host = data.get("host")
        if isinstance(host, dict) and "wall_s" not in host:
            problems.append(f"records[{i}].host missing 'wall_s'")
    return problems


def load_records(source: Union[str, Path]) -> List[PerfRecord]:
    """Load records from a ledger dir, a ``.jsonl`` file, or an export.

    ``source`` may be the perf directory itself, the ``ledger.jsonl``
    inside it, or a JSON export document written by :func:`write_export`.
    Raises :class:`~repro.common.errors.AnalysisError` when nothing
    loadable is found.
    """
    path = Path(source)
    if path.is_dir():
        records = Ledger(path).records()
        if not records:
            raise AnalysisError(f"no perf records under {path}")
        return records
    if not path.is_file():
        raise AnalysisError(f"no such perf source: {path}")
    if path.suffix == ".jsonl":
        records = Ledger(path.parent).records() if path.name == LEDGER_FILENAME \
            else _read_jsonl(path)
        if not records:
            raise AnalysisError(f"no perf records in {path}")
        return records
    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except ValueError as exc:
            raise AnalysisError(f"{path} is not valid JSON: {exc}") from None
    problems = validate_export(doc)
    if problems:
        raise AnalysisError(
            f"{path} is not a valid perf export: {'; '.join(problems)}"
        )
    return [PerfRecord.from_dict(d) for d in doc["records"]]


def _read_jsonl(path: Path) -> List[PerfRecord]:
    out: List[PerfRecord] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                if int(data.get("schema", -1)) != LEDGER_SCHEMA_VERSION:
                    continue
                out.append(PerfRecord.from_dict(data))
            except (ValueError, KeyError, TypeError):
                continue
    return out
