"""Host-side self-profiling: wall-clock attribution for the simulator.

The simulator itself is a Python program with hot loops; when its
throughput (simulated work per wall-second) regresses, *where* the time
went matters as much as *that* it went.  :class:`HostProfiler` is a set
of named section accumulators the simulator components stamp with
``time.perf_counter()`` pairs at coarse, already-existing boundaries:

* ``scheduler.parallel`` / ``scheduler.sequential`` — one pair per
  region invocation, timed by the run driver around the scheduler calls
  (these enclose everything below);
* ``tu.ifetch`` / ``tu.replay`` / ``tu.writeback`` — the cache-hierarchy
  instruction-fetch loop, the dynamic-stream replay (loads, branch
  frontend, wrong-path injection) and the store-commit loop, one pair
  each per iteration/chunk;
* ``tu.wrong_thread`` — wrong-thread execution after a loop exit;
* ``tracer.emit`` — tracer overhead, measured by wrapping an attached
  tracer in :class:`TracerOverheadProxy` (only when a run is both
  traced *and* profiled).

Granularity is deliberately per-iteration, not per-event: an iteration
replays hundreds of events, so the timer pairs are amortized and the
profiler's own overhead stays within the ≤5% budget the perf tests
enforce (``tests/test_perf_obs.py``).  Components hold ``None`` when
profiling is off and pay one ``is not None`` test per section.

Section times are *inclusive*: the ``tu.*`` sections run inside the
``scheduler.*`` ones, so percentages are reported against total wall
time, not against each other.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from .tracer import Tracer

__all__ = ["HostProfiler", "TracerOverheadProxy", "peak_rss_kb"]


def peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in KiB, if measurable."""
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes; normalize to KiB.
    import sys
    if sys.platform == "darwin":
        return int(usage // 1024)
    return int(usage)


class HostProfiler:
    """Accumulates (seconds, calls) per named section.

    Sections are created lazily by :meth:`add`; the snapshot reports
    each one as seconds, call count and percent of a caller-supplied
    total wall time.
    """

    __slots__ = ("_sections",)

    def __init__(self) -> None:
        self._sections: Dict[str, list] = {}  # name -> [seconds, calls]

    def add(self, name: str, seconds: float) -> None:
        """Fold one timed span into section ``name``."""
        cell = self._sections.get(name)
        if cell is None:
            self._sections[name] = [seconds, 1]
        else:
            cell[0] += seconds
            cell[1] += 1

    def seconds(self, name: str) -> float:
        cell = self._sections.get(name)
        return cell[0] if cell is not None else 0.0

    def calls(self, name: str) -> int:
        cell = self._sections.get(name)
        return cell[1] if cell is not None else 0

    def __bool__(self) -> bool:
        return bool(self._sections)

    def snapshot(self, total_wall_s: Optional[float] = None) -> Dict[str, Dict]:
        """JSON-friendly per-section summary.

        With ``total_wall_s`` given, each section also carries ``pct``
        (percent of total run wall time — sections nest, so these do
        not sum to 100).
        """
        out: Dict[str, Dict] = {}
        for name in sorted(self._sections):
            secs, calls = self._sections[name]
            entry: Dict[str, object] = {"s": secs, "calls": calls}
            if total_wall_s and total_wall_s > 0:
                entry["pct"] = 100.0 * secs / total_wall_s
            out[name] = entry
        return out

    def wrap_tracer(self, tracer: Optional[Tracer]) -> Optional[Tracer]:
        """Wrap an enabled tracer so its emit cost lands in ``tracer.emit``."""
        if tracer is None or not getattr(tracer, "enabled", False):
            return tracer
        return TracerOverheadProxy(tracer, self)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{n}={v[0]:.3f}s/{v[1]}" for n, v in sorted(self._sections.items())
        )
        return f"HostProfiler({parts})"


class TracerOverheadProxy(Tracer):
    """Forwards every emit to an inner tracer, timing it.

    Installed by the run driver between the machine and a user-supplied
    tracer when a :class:`HostProfiler` is attached, so tracing cost
    shows up as its own section instead of silently inflating the
    component sections.  The caller keeps its reference to the *inner*
    tracer (for ``events()`` / ``metrics``); only the machine sees the
    proxy.
    """

    __slots__ = ("inner", "prof")

    enabled = True

    def __init__(self, inner: Tracer, prof: HostProfiler) -> None:
        super().__init__()
        self.inner = inner
        self.prof = prof

    def wants(self, category: str) -> bool:
        return self.inner.wants(category)

    def emit(self, kind, tu=0, a=0, b=0, dur=0.0, tag="", cycle=None):
        t0 = time.perf_counter()
        self.inner.emit(
            kind, tu, a, b, dur, tag,
            self.now if cycle is None else cycle,
        )
        self.prof.add("tracer.emit", time.perf_counter() - t0)

    def events(self):
        return self.inner.events()
