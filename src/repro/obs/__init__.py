"""repro.obs — structured event tracing, interval metrics, trace export.

The observability subsystem threads a :class:`~repro.obs.tracer.Tracer`
handle through every simulator layer (scheduler, thread units, caches,
sidecar, L2, branch units).  The default is no tracer at all — hot paths
pay a single ``is not None`` test — while an attached
:class:`RingBufferTracer` records the timeline the paper's argument is
made of: wrong-path loads firing after branch resolution, wrong threads
prefetching the next invocation's working set, WEC hits chaining
next-line prefetches.

Quickstart::

    from repro import run_simulation, named_config
    from repro.obs import IntervalMetrics, RingBufferTracer
    from repro.obs.export import write_chrome_trace

    tracer = RingBufferTracer(metrics=IntervalMetrics(window=4096))
    result = run_simulation("181.mcf", named_config("wth-wp-wec"),
                            tracer=tracer)
    write_chrome_trace(tracer.events(), "trace.json",
                       interval_series=result.interval_series)
    # open trace.json in https://ui.perfetto.dev

Or from the command line::

    python -m repro trace 181.mcf wth-wp-wec --out trace.json

See ``docs/OBSERVABILITY.md`` for the event taxonomy, sampling
semantics, and the Perfetto how-to.
"""

from .events import (
    CAT_BRANCH,
    CAT_MEM,
    CAT_REGION,
    CAT_RING,
    CAT_THREAD,
    CAT_WEC,
    CATEGORIES,
    Event,
    KIND_CATEGORY,
    KIND_NAMES,
    event_to_dict,
)
from .export import chrome_trace, write_chrome_trace, write_jsonl
from .tracer import IntervalMetrics, NullTracer, RingBufferTracer, Tracer

__all__ = [
    "CAT_BRANCH",
    "CAT_MEM",
    "CAT_REGION",
    "CAT_RING",
    "CAT_THREAD",
    "CAT_WEC",
    "CATEGORIES",
    "Event",
    "KIND_CATEGORY",
    "KIND_NAMES",
    "event_to_dict",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "IntervalMetrics",
    "NullTracer",
    "RingBufferTracer",
    "Tracer",
]
