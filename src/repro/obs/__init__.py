"""repro.obs — structured event tracing, interval metrics, trace export.

The observability subsystem threads a :class:`~repro.obs.tracer.Tracer`
handle through every simulator layer (scheduler, thread units, caches,
sidecar, L2, branch units).  The default is no tracer at all — hot paths
pay a single ``is not None`` test — while an attached
:class:`RingBufferTracer` records the timeline the paper's argument is
made of: wrong-path loads firing after branch resolution, wrong threads
prefetching the next invocation's working set, WEC hits chaining
next-line prefetches.

Quickstart::

    from repro import run_simulation, named_config
    from repro.obs import IntervalMetrics, RingBufferTracer
    from repro.obs.export import write_chrome_trace

    tracer = RingBufferTracer(metrics=IntervalMetrics(window=4096))
    result = run_simulation("181.mcf", named_config("wth-wp-wec"),
                            tracer=tracer)
    write_chrome_trace(tracer.events(), "trace.json",
                       interval_series=result.interval_series)
    # open trace.json in https://ui.perfetto.dev

Or from the command line::

    python -m repro trace 181.mcf wth-wp-wec --out trace.json

The **performance observatory** rides on the same layer: a persistent
run ledger (:mod:`repro.obs.ledger` — append-only JSONL under
``$REPRO_PERF_DIR``), a benchstat-style A/B comparison engine
(:mod:`repro.obs.compare` — bootstrap CIs, Mann-Whitney significance,
suite rollups) and host-side self-profiling
(:mod:`repro.obs.hostprof` — which simulator component the wall-clock
went to).  CLI surface: ``repro perf record | compare | report``.

**Provenance attribution** (:mod:`repro.obs.attrib`) is the third
pillar: an :class:`AttributionCollector` tags every fill into the
L1D / WEC / VC / prefetch sidecar with its provenance (correct demand,
wrong-path, wrong-thread, next-line or stream prefetch, victim), tracks
block lifetimes fill → first correct use → eviction, and classifies
them useful / late / unused / polluting.  ``repro explain`` renders the
summary; ``repro explain --vs`` diffs two configs.

See ``docs/OBSERVABILITY.md`` for the event taxonomy, sampling
semantics, the Perfetto how-to, the performance-observatory guide and
the attribution model.
"""

from .attrib import (
    AttributionCollector,
    PROV_DEMAND,
    PROV_NAMES,
    PROV_NLP,
    PROV_STREAM,
    PROV_VICTIM,
    PROV_WRONG_PATH,
    PROV_WRONG_THREAD,
    PROVENANCES,
    attribution_delta,
    explain_report,
    explain_vs_report,
)
from .compare import (
    ComparisonReport,
    MetricComparison,
    MetricDef,
    METRICS,
    compare_records,
    compare_samples,
    parse_threshold,
)
from .events import (
    CAT_ATTRIB,
    CAT_BRANCH,
    CAT_MEM,
    CAT_REGION,
    CAT_RING,
    CAT_THREAD,
    CAT_WEC,
    CATEGORIES,
    Event,
    KIND_CATEGORY,
    KIND_NAMES,
    event_to_dict,
)
from .export import (
    chrome_trace,
    service_trace,
    write_chrome_trace,
    write_jsonl,
    write_service_trace,
)
from .hostprof import HostProfiler, peak_rss_kb
from .telemetry import (
    METRIC_NAMES,
    MetricsRegistry,
    NullLog,
    SpanLog,
    StructuredLog,
    TELEMETRY_SCHEMA_VERSION,
    TelemetryError,
    snapshot_hist,
    snapshot_total,
    snapshot_value,
    standard_registry,
)
from .ledger import (
    Ledger,
    PerfRecord,
    default_perf_dir,
    load_records,
    validate_export,
    write_export,
)
from .tracer import IntervalMetrics, NullTracer, RingBufferTracer, Tracer

__all__ = [
    "AttributionCollector",
    "PROV_DEMAND",
    "PROV_NAMES",
    "PROV_NLP",
    "PROV_STREAM",
    "PROV_VICTIM",
    "PROV_WRONG_PATH",
    "PROV_WRONG_THREAD",
    "PROVENANCES",
    "attribution_delta",
    "explain_report",
    "explain_vs_report",
    "CAT_ATTRIB",
    "CAT_BRANCH",
    "CAT_MEM",
    "CAT_REGION",
    "CAT_RING",
    "CAT_THREAD",
    "CAT_WEC",
    "CATEGORIES",
    "Event",
    "KIND_CATEGORY",
    "KIND_NAMES",
    "event_to_dict",
    "chrome_trace",
    "service_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_service_trace",
    "METRIC_NAMES",
    "MetricsRegistry",
    "NullLog",
    "SpanLog",
    "StructuredLog",
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryError",
    "snapshot_hist",
    "snapshot_total",
    "snapshot_value",
    "standard_registry",
    "IntervalMetrics",
    "NullTracer",
    "RingBufferTracer",
    "Tracer",
    "ComparisonReport",
    "HostProfiler",
    "Ledger",
    "MetricComparison",
    "MetricDef",
    "METRICS",
    "PerfRecord",
    "compare_records",
    "compare_samples",
    "default_perf_dir",
    "load_records",
    "parse_threshold",
    "peak_rss_kb",
    "validate_export",
    "write_export",
]
