"""Fidelity observatory: scored reproduction claims, campaigns, drift.

The rest of the observability stack answers "what did this run do" (the
tracer), "how fast did the simulator go" (the perf ledger) and "what is
the fleet doing" (telemetry).  This module answers the tier-1 question
the ROADMAP leaves open: **did we actually reproduce the paper?**

Three pieces:

* **Claim registry** — ``benchmarks/claims.json`` holds every
  quantitative claim extracted from PAPER.md as data: an id, the source
  anchor (figure/table/section), an extraction expression over the
  campaign result grid, a tolerance band, a drift polarity and a
  severity (``gate`` claims fail the check, ``track`` claims are only
  reported).  :func:`load_claims` parses and validates it.
* **Campaign runner** — :func:`campaign_sections` declares the union
  grid behind Figures 8–17 plus the tables; :func:`run_campaign` runs
  it through :func:`repro.sim.sweep.run_grid` (or the sweep service),
  records every executed cell in the perf ledger under
  ``context="fidelity"``, scores every claim and returns a
  schema-versioned export document.  Unevaluable claims surface as
  ``skipped`` with a reason — never silently unevaluated.
* **Drift tracking** — :func:`diff_exports` compares two campaign
  documents claim by claim, polarity-aware like
  :mod:`repro.obs.compare`; a regression on any *gate* claim is a
  failure.  :func:`append_trend`/:func:`load_trend` keep a campaign
  trajectory next to the perf ledger, and ``M_FIDELITY_*`` counters in
  :mod:`repro.obs.telemetry` expose progress and per-claim scores.

Scoring is pure post-processing over the result grid: a
fidelity-instrumented run is bit-identical to a plain one (the tests
enforce the same discipline as for tracer and telemetry).

CLI surface: ``repro fidelity run | check | report``; the committed
artifacts are ``benchmarks/FIDELITY_baseline.json`` and
``docs/FIDELITY.md`` (refresh procedure: docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..analysis.speedup import suite_average_speedup_pct
from ..common.config import CacheConfig, MachineConfig, SidecarKind, SimParams
from ..common.errors import AnalysisError
from ..sim.executor import code_version_token, config_fingerprint
from ..sim.sweep import ResultGrid, benchmarks_of, grid_cells, run_grid
from ..sta.configs import CONFIG_NAMES, TABLE3_ROWS, named_config, table3_config
from ..workloads import BENCHMARK_NAMES, benchmark_infos
from .ledger import git_sha
from .telemetry import (
    M_FIDELITY_CAMPAIGNS,
    M_FIDELITY_CLAIM_SCORE,
    M_FIDELITY_CLAIMS,
)

__all__ = [
    "CLAIM_KINDS",
    "Claim",
    "ClaimDrift",
    "EXPORT_KIND",
    "FIDELITY_SCHEMA_VERSION",
    "FidelityDiff",
    "PERTURBATIONS",
    "POLARITIES",
    "SECTION_NAMES",
    "SEVERITIES",
    "STATUSES",
    "ScoredClaim",
    "append_trend",
    "apply_perturbation",
    "campaign_sections",
    "claim_band",
    "claims_fingerprint",
    "default_claims_path",
    "diff_exports",
    "evaluate_claims",
    "load_claims",
    "load_fidelity_export",
    "load_trend",
    "render_markdown",
    "render_trend",
    "run_campaign",
    "validate_fidelity_export",
]

#: Bumped on any incompatible change to claims.json or the export doc.
FIDELITY_SCHEMA_VERSION = 1

#: Marker in exported campaign documents (FIDELITY_baseline.json).
EXPORT_KIND = "repro-fidelity-export"

#: Campaign trajectory file, next to the perf ledger.
TREND_FILENAME = "fidelity.jsonl"

SEVERITIES = ("gate", "track")
CLAIM_KINDS = ("value", "bool")
#: Drift polarity: which direction of movement is a regression.
#: ``higher``/``lower`` mean higher/lower measured values are better;
#: ``nearer`` means closer to the claim's ``paper_value`` is better.
POLARITIES = ("higher", "lower", "nearer")
STATUSES = ("pass", "fail", "skipped")
_STATUS_RANK = {"pass": 2, "fail": 1, "skipped": 0}

#: Seeded config changes for proving the gate actually gates
#: (``repro fidelity check --perturb no-wec`` must exit 1).
PERTURBATIONS = ("no-wec",)

#: Campaign grid sections, in declaration order.  ``tables`` is the
#: pseudo-section of static Table 1–3 claims (no simulations).
SECTION_NAMES = (
    "tables", "fig08", "fig09", "fig11", "fig12", "fig13", "fig14",
    "fig15", "fig16",
)

#: Avoids pass/fail flapping on exact band endpoints across platforms.
_EPS = 1e-9


def default_claims_path() -> Path:
    """``benchmarks/claims.json`` at the repo root (fallback: cwd)."""
    root = Path(__file__).resolve().parents[3]
    candidate = root / "benchmarks" / "claims.json"
    if candidate.is_file():
        return candidate
    return Path("benchmarks") / "claims.json"


# ---------------------------------------------------------------------------
# Claim registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Claim:
    """One quantitative claim from the paper, as checkable data."""

    #: Stable id, ``<source-group>.<slug>`` (e.g. ``fig11.wec_avg_speedup``).
    id: str
    #: Where the paper makes the claim (figure / table / section anchor).
    source: str
    title: str
    #: ``value`` (numeric, scored against ``band``) or ``bool``
    #: (predicate, pass iff truthy).
    kind: str
    #: Extraction expression over the campaign grid namespace
    #: (see :func:`evaluate_claims`).
    expr: str
    severity: str
    #: Grid sections the expression needs; the claim is ``skipped`` with
    #: a reason when any of them was not part of the campaign.
    requires: Tuple[str, ...]
    unit: str = ""
    #: The paper's number as printed (display string).
    paper: str = ""
    #: The paper's number as a float, when one exists (enables the
    #: Δ-vs-paper column and ``nearer`` drift polarity).
    paper_value: Optional[float] = None
    #: Inclusive ``[lo, hi]`` tolerance band for ``value`` claims;
    #: either end may be ``None`` (unbounded).
    band: Optional[Tuple[Optional[float], Optional[float]]] = None
    better: str = "higher"
    notes: str = ""

    @classmethod
    def from_dict(cls, data: Dict, index: int) -> "Claim":
        where = f"claims[{index}]"
        for key in ("id", "source", "title", "kind", "expr", "severity"):
            if not isinstance(data.get(key), str) or not data.get(key):
                raise AnalysisError(f"{where}: missing or empty {key!r}")
        if data["kind"] not in CLAIM_KINDS:
            raise AnalysisError(
                f"{where}: kind {data['kind']!r} not in {CLAIM_KINDS}")
        if data["severity"] not in SEVERITIES:
            raise AnalysisError(
                f"{where}: severity {data['severity']!r} not in {SEVERITIES}")
        better = data.get("better", "higher")
        if better not in POLARITIES:
            raise AnalysisError(
                f"{where}: better {better!r} not in {POLARITIES}")
        requires = tuple(data.get("requires") or ())
        unknown = [s for s in requires if s not in SECTION_NAMES]
        if unknown:
            raise AnalysisError(
                f"{where}: unknown section(s) {unknown} in requires")
        band = data.get("band")
        if band is not None:
            if (not isinstance(band, (list, tuple)) or len(band) != 2
                    or all(v is None for v in band)):
                raise AnalysisError(
                    f"{where}: band must be [lo, hi] with at least one bound")
            band = tuple(None if v is None else float(v) for v in band)
            if band[0] is not None and band[1] is not None \
                    and band[0] > band[1]:
                raise AnalysisError(f"{where}: band lo > hi")
        if data["kind"] == "value" and band is None:
            raise AnalysisError(f"{where}: value claims need a band")
        if better == "nearer" and data.get("paper_value") is None:
            raise AnalysisError(
                f"{where}: better='nearer' needs a paper_value center")
        paper_value = data.get("paper_value")
        return cls(
            id=data["id"],
            source=data["source"],
            title=data["title"],
            kind=data["kind"],
            expr=data["expr"],
            severity=data["severity"],
            requires=requires,
            unit=str(data.get("unit", "")),
            paper=str(data.get("paper", "")),
            paper_value=None if paper_value is None else float(paper_value),
            band=band,
            better=better,
            notes=str(data.get("notes", "")),
        )


def load_claims(path: Union[str, Path, None] = None) -> List[Claim]:
    """Parse and validate the claim registry."""
    path = Path(path) if path is not None else default_claims_path()
    if not path.is_file():
        raise AnalysisError(f"no claim registry at {path}")
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise AnalysisError(f"{path} is not valid JSON: {exc}") from None
    if not isinstance(doc, dict) or doc.get("kind") != "repro-claims":
        raise AnalysisError(f"{path}: kind is not 'repro-claims'")
    if doc.get("schema") != FIDELITY_SCHEMA_VERSION:
        raise AnalysisError(
            f"{path}: unknown claims schema {doc.get('schema')!r}")
    raw = doc.get("claims")
    if not isinstance(raw, list) or not raw:
        raise AnalysisError(f"{path}: claims must be a non-empty list")
    claims = [Claim.from_dict(d, i) for i, d in enumerate(raw)]
    seen: Dict[str, int] = {}
    for i, claim in enumerate(claims):
        if claim.id in seen:
            raise AnalysisError(
                f"claims[{i}]: duplicate id {claim.id!r} "
                f"(first at claims[{seen[claim.id]}])")
        seen[claim.id] = i
    return claims


def claims_fingerprint(path: Union[str, Path, None] = None) -> str:
    """Content hash of the registry file (campaign provenance)."""
    path = Path(path) if path is not None else default_claims_path()
    if not path.is_file():
        return ""
    return hashlib.sha256(path.read_bytes()).hexdigest()[:16]


def claim_band(
    claim_id: str, path: Union[str, Path, None] = None
) -> Tuple[Optional[float], Optional[float]]:
    """The ``[lo, hi]`` band of one claim — the single source of truth
    the figure benches read instead of hard-coding their thresholds."""
    for claim in load_claims(path):
        if claim.id == claim_id:
            if claim.band is None:
                raise AnalysisError(f"claim {claim_id!r} has no band")
            return claim.band
    raise AnalysisError(f"no claim {claim_id!r} in the registry")


# ---------------------------------------------------------------------------
# Campaign grid
# ---------------------------------------------------------------------------


def campaign_sections() -> "OrderedDict[str, Dict[str, MachineConfig]]":
    """The union grid behind fig08–fig17 + tables, by section.

    Labels are unique across sections so the union runs as one
    :func:`run_grid` axis; configurations that coincide with the
    defaults (e.g. ``orig@8tu`` vs ``orig``) keep their own label — the
    content-addressed cache dedups the actual simulations.  ``fig10``
    reuses the ``fig09`` grid and ``fig17`` the ``fig11`` grid, so
    neither declares cells of its own.
    """
    sections: "OrderedDict[str, Dict[str, MachineConfig]]" = OrderedDict()
    sections["fig11"] = {name: named_config(name) for name in CONFIG_NAMES}
    fig08 = {"t3-base": table3_config(1, single_issue_baseline=True)}
    for n_tus in (1, 2, 4, 8, 16):
        fig08[f"t3-{n_tus}tu"] = table3_config(n_tus)
    sections["fig08"] = fig08
    fig09: Dict[str, MachineConfig] = {}
    for n_tus in (1, 2, 4, 8, 16):
        fig09[f"orig@{n_tus}tu"] = named_config("orig", n_tus=n_tus)
        fig09[f"wec@{n_tus}tu"] = named_config("wth-wp-wec", n_tus=n_tus)
    sections["fig09"] = fig09
    l1_4way = CacheConfig(size=8 * 1024, assoc=4, block_size=64, name="l1d")
    sections["fig12"] = {
        f"{name}@4w": named_config(name, l1d=l1_4way)
        for name in ("orig", "vc", "wth-wp-vc", "wth-wp-wec")
    }
    fig13: Dict[str, MachineConfig] = {}
    for size_kb in (4, 8, 16, 32):
        l1d = CacheConfig(size=size_kb * 1024, assoc=1, block_size=64,
                          name="l1d")
        fig13[f"orig@l1-{size_kb}k"] = named_config("orig", l1d=l1d)
        fig13[f"wec@l1-{size_kb}k"] = named_config("wth-wp-wec", l1d=l1d)
    sections["fig13"] = fig13
    fig14: Dict[str, MachineConfig] = {}
    for size_kb in (128, 256, 512):
        l2 = CacheConfig(size=size_kb * 1024, assoc=4, block_size=128,
                         hit_latency=12, name="l2")
        fig14[f"orig@l2-{size_kb}k"] = named_config("orig", l2=l2)
        fig14[f"wec@l2-{size_kb}k"] = named_config("wth-wp-wec", l2=l2)
    sections["fig14"] = fig14
    fig15: Dict[str, MachineConfig] = {}
    for entries in (4, 16):
        for name in ("vc", "wth-wp-vc", "wth-wp-wec"):
            fig15[f"{name}@{entries}"] = named_config(
                name, sidecar_entries=entries)
    sections["fig15"] = fig15
    sections["fig16"] = {
        "nlp@16": named_config("nlp", sidecar_entries=16),
        "nlp@32": named_config("nlp", sidecar_entries=32),
        "wth-wp-wec@32": named_config("wth-wp-wec", sidecar_entries=32),
    }
    return sections


def apply_perturbation(
    sections: Mapping[str, Dict[str, MachineConfig]], name: str
) -> "OrderedDict[str, Dict[str, MachineConfig]]":
    """A seeded out-of-band config change, for proving the gate gates.

    ``no-wec`` strips the Wrong Execution Cache out of every
    configuration that has one (labels unchanged), which collapses the
    miss-reduction and headline-speedup claims out of their bands.
    """
    if name not in PERTURBATIONS:
        raise AnalysisError(
            f"unknown perturbation {name!r}; known: {PERTURBATIONS}")
    out: "OrderedDict[str, Dict[str, MachineConfig]]" = OrderedDict()
    for section, configs in sections.items():
        out[section] = {}
        for label, cfg in configs.items():
            if cfg.tu.sidecar.kind is SidecarKind.WEC:
                cfg = replace(cfg, tu=replace(
                    cfg.tu, sidecar=replace(
                        cfg.tu.sidecar, kind=SidecarKind.NONE)))
            out[section][label] = cfg
    return out


def _union_axis(
    sections: Mapping[str, Dict[str, MachineConfig]]
) -> Dict[str, MachineConfig]:
    axis: Dict[str, MachineConfig] = {}
    for section, configs in sections.items():
        for label, cfg in configs.items():
            if label in axis and config_fingerprint(axis[label]) \
                    != config_fingerprint(cfg):
                raise AnalysisError(
                    f"section {section!r} redefines label {label!r} with a "
                    "different configuration")
            axis.setdefault(label, cfg)
    return axis


# ---------------------------------------------------------------------------
# Claim evaluation
# ---------------------------------------------------------------------------


def _eval_namespace(grid: ResultGrid) -> Dict[str, object]:
    """The restricted namespace claim expressions evaluate in.

    Everything is a plain function over the campaign grid; speedups are
    percent, ``norm_time`` matches Figure 13/14's normalized execution
    time, ``wins(a, b)`` counts benchmarks where label ``a`` runs fewer
    cycles than label ``b``.
    """
    benches = benchmarks_of(grid) if grid else list(BENCHMARK_NAMES)

    def cell(bench: str, label: str):
        try:
            return grid[(bench, label)]
        except KeyError:
            raise AnalysisError(
                f"no campaign cell ({bench!r}, {label!r})") from None

    def speedup(bench: str, label: str, base: str = "orig") -> float:
        return cell(bench, label).relative_speedup_pct_vs(cell(bench, base))

    def avg_speedup(label: str, base: str = "orig") -> float:
        return suite_average_speedup_pct(grid, base, label)

    def norm_time(bench: str, label: str, base: str) -> float:
        return cell(bench, label).normalized_time_vs(cell(bench, base))

    def avg_norm(label: str, base: str) -> float:
        return sum(norm_time(b, label, base) for b in benches) / len(benches)

    def traffic(bench: str, label: str = "wth-wp-wec",
                base: str = "orig") -> float:
        return cell(bench, label).traffic_increase_pct_vs(cell(bench, base))

    def avg_traffic(label: str = "wth-wp-wec", base: str = "orig") -> float:
        return sum(traffic(b, label, base) for b in benches) / len(benches)

    def missred(bench: str, label: str = "wth-wp-wec",
                base: str = "orig") -> float:
        return cell(bench, label).miss_reduction_pct_vs(cell(bench, base))

    def avg_missred(label: str = "wth-wp-wec", base: str = "orig") -> float:
        return sum(missred(b, label, base) for b in benches) / len(benches)

    def parallel_speedup(bench: str, label: str,
                         base: str = "t3-base") -> float:
        return cell(bench, label).parallel_speedup_vs(cell(bench, base))

    def avg_parallel_speedup(label: str, base: str = "t3-base") -> float:
        return sum(parallel_speedup(b, label, base)
                   for b in benches) / len(benches)

    def wins(label: str, other: str) -> int:
        return sum(1 for b in benches
                   if cell(b, label).total_cycles
                   < cell(b, other).total_cycles)

    def info(bench: str, field: str) -> float:
        for entry in benchmark_infos():
            if entry.name == bench:
                return float(getattr(entry, field))
        raise AnalysisError(f"no benchmark info for {bench!r}")

    def t3_rows() -> List[Tuple[int, ...]]:
        return [tuple(row) for row in TABLE3_ROWS]

    return {
        "__builtins__": {},
        "benchmarks": list(benches),
        "cell": cell,
        "speedup": speedup,
        "avg_speedup": avg_speedup,
        "norm_time": norm_time,
        "avg_norm": avg_norm,
        "traffic": traffic,
        "avg_traffic": avg_traffic,
        "missred": missred,
        "avg_missred": avg_missred,
        "parallel_speedup": parallel_speedup,
        "avg_parallel_speedup": avg_parallel_speedup,
        "wins": wins,
        "info": info,
        "t3_rows": t3_rows,
        "abs": abs, "all": all, "any": any, "len": len, "max": max,
        "min": min, "round": round, "sorted": sorted, "sum": sum,
    }


@dataclass(frozen=True)
class ScoredClaim:
    """One claim after evaluation: verdict + measured value."""

    claim: Claim
    status: str
    measured: Optional[float] = None
    reason: str = ""

    def to_dict(self) -> Dict:
        c = self.claim
        return {
            "id": c.id,
            "source": c.source,
            "title": c.title,
            "kind": c.kind,
            "severity": c.severity,
            "requires": list(c.requires),
            "unit": c.unit,
            "paper": c.paper,
            "paper_value": c.paper_value,
            "band": None if c.band is None else list(c.band),
            "better": c.better,
            "notes": c.notes,
            "status": self.status,
            "measured": self.measured,
            "reason": self.reason,
        }


def _in_band(value: float,
             band: Tuple[Optional[float], Optional[float]]) -> bool:
    lo, hi = band
    if lo is not None and value < lo - _EPS:
        return False
    if hi is not None and value > hi + _EPS:
        return False
    return True


def evaluate_claims(
    claims: Sequence[Claim],
    grid: ResultGrid,
    sections_run: Sequence[str],
) -> List[ScoredClaim]:
    """Score every claim against the campaign grid.

    A claim whose ``requires`` sections were not all part of the
    campaign, or whose expression cannot be evaluated over the grid,
    is scored ``skipped`` with a reason — never dropped.
    """
    have = set(sections_run)
    namespace = _eval_namespace(grid)
    scored: List[ScoredClaim] = []
    for claim in claims:
        missing = [s for s in claim.requires if s not in have]
        if missing:
            scored.append(ScoredClaim(
                claim, "skipped",
                reason=f"campaign did not run section(s) "
                       f"{', '.join(missing)}"))
            continue
        try:
            value = eval(claim.expr, namespace)  # noqa: S307 — registry
            # expressions run with empty __builtins__ over grid helpers.
            if claim.kind == "bool":
                measured = 1.0 if value else 0.0
                status = "pass" if value else "fail"
            else:
                measured = float(value)
                status = "pass" if _in_band(measured, claim.band) else "fail"
            scored.append(ScoredClaim(claim, status,
                                      measured=round(measured, 6)))
        except Exception as exc:  # lint: allow(EXC001 claim isolation: one broken expression must score as skipped, not kill the campaign)
            scored.append(ScoredClaim(
                claim, "skipped",
                reason=f"{type(exc).__name__}: {exc}"))
    return scored


def _summarize(scored: Sequence[ScoredClaim]) -> Dict[str, Dict[str, int]]:
    summary = {sev: {s: 0 for s in STATUSES} for sev in SEVERITIES}
    for item in scored:
        summary[item.claim.severity][item.status] += 1
    return summary


# ---------------------------------------------------------------------------
# Campaign runner
# ---------------------------------------------------------------------------


def run_campaign(
    claims_path: Union[str, Path, None] = None,
    scale: float = 2e-4,
    seed: int = 2003,
    jobs: int = 1,
    engine: Optional[str] = None,
    cache: Optional[bool] = None,
    sections: Optional[Sequence[str]] = None,
    perturb: Optional[str] = None,
    telemetry=None,
    log=None,
    progress: Optional[Callable[[str, str], None]] = None,
    client=None,
) -> Dict:
    """Run the campaign grid, score every claim, return the export doc.

    ``sections`` restricts the grid (default: every section); claims
    needing an unrun section score ``skipped``.  ``client`` (a
    :class:`~repro.serve.client.ServeClient`) routes the grid through
    the sweep service instead of the local executor.  ``telemetry``
    receives both the executor's fleet signals and the ``M_FIDELITY_*``
    campaign metrics.
    """
    claims = load_claims(claims_path)
    all_sections = campaign_sections()
    if sections is None:
        selected = list(SECTION_NAMES)
    else:
        selected = list(sections)
        unknown = [s for s in selected if s not in SECTION_NAMES]
        if unknown:
            raise AnalysisError(
                f"unknown section(s) {unknown}; known: {SECTION_NAMES}")
        if "tables" not in selected:
            selected.insert(0, "tables")
    sim_sections = OrderedDict(
        (name, configs) for name, configs in all_sections.items()
        if name in selected
    )
    if perturb is not None:
        sim_sections = apply_perturbation(sim_sections, perturb)
    axis = _union_axis(sim_sections)
    params = SimParams(seed=seed, scale=scale)
    n_cells = len(grid_cells(axis, list(BENCHMARK_NAMES), params)) \
        if axis else 0

    grid: ResultGrid = {}
    status = "ok"
    try:
        if axis:
            if client is not None:
                grid = _run_via_serve(client, axis, params, engine)
            else:
                grid = run_grid(
                    axis,
                    benchmarks=list(BENCHMARK_NAMES),
                    params=params,
                    progress=progress,
                    jobs=jobs,
                    cache=cache,
                    perf_context="fidelity",
                    engine=engine,
                    telemetry=telemetry,
                    log=log,
                )
        scored = evaluate_claims(claims, grid, selected)
    except Exception:  # lint: allow(EXC001 re-raised unchanged: only marks the campaign counter as failed)
        status = "failed"
        raise
    finally:
        if telemetry is not None:
            telemetry.inc(M_FIDELITY_CAMPAIGNS, status=status)
    if telemetry is not None:
        for item in scored:
            telemetry.inc(M_FIDELITY_CLAIMS, status=item.status)
            if item.measured is not None:
                telemetry.set_gauge(M_FIDELITY_CLAIM_SCORE, item.measured,
                                    claim=item.claim.id)
    return {
        "kind": EXPORT_KIND,
        "schema": FIDELITY_SCHEMA_VERSION,
        "params": {
            "scale": scale,
            "seed": seed,
            "engine": engine or "",
            "perturb": perturb or "",
        },
        "sections": selected,
        "n_cells": n_cells,
        "provenance": {
            "git_sha": git_sha(),
            "code_token": code_version_token(),
            "claims_fp": claims_fingerprint(claims_path),
        },
        "summary": _summarize(scored),
        "claims": [item.to_dict() for item in scored],
    }


def _run_via_serve(client, axis: Dict[str, MachineConfig],
                   params: SimParams, engine: Optional[str]) -> ResultGrid:
    from ..serve.wire import SweepSpec

    spec = SweepSpec(
        benchmarks=tuple(BENCHMARK_NAMES),
        configs=tuple(axis.items()),
        params=params,
        engine=engine,
        tenant="fidelity",
    )
    summary = client.submit(spec)
    job_id = summary["job_id"]
    state = client.wait(job_id)
    if state.get("state") != "done":
        raise AnalysisError(
            f"fidelity campaign job {job_id} ended {state.get('state')!r} "
            f"({state.get('failed', 0)} failed cell(s))")
    return client.result_grid(job_id)


# ---------------------------------------------------------------------------
# Export documents
# ---------------------------------------------------------------------------


def validate_fidelity_export(doc: Dict) -> List[str]:
    """Schema-check a campaign document; returns a list of problems."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["export is not a JSON object"]
    if doc.get("kind") != EXPORT_KIND:
        problems.append(
            f"kind is {doc.get('kind')!r}, expected {EXPORT_KIND!r}")
    if doc.get("schema") != FIDELITY_SCHEMA_VERSION:
        problems.append(f"unknown schema {doc.get('schema')!r}")
    claims = doc.get("claims")
    if not isinstance(claims, list) or not claims:
        return problems + ["claims is not a non-empty list"]
    for i, data in enumerate(claims):
        for key in ("id", "severity", "status"):
            if key not in data:
                problems.append(f"claims[{i}] missing {key!r}")
        if data.get("status") not in STATUSES:
            problems.append(
                f"claims[{i}] has unknown status {data.get('status')!r}")
        if data.get("status") == "skipped" and not data.get("reason"):
            problems.append(f"claims[{i}] skipped without a reason")
    return problems


def load_fidelity_export(path: Union[str, Path]) -> Dict:
    """Load and validate a campaign document written by ``fidelity run``."""
    path = Path(path)
    if not path.is_file():
        raise AnalysisError(f"no fidelity export at {path}")
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise AnalysisError(f"{path} is not valid JSON: {exc}") from None
    problems = validate_fidelity_export(doc)
    if problems:
        raise AnalysisError(
            f"{path} is not a valid fidelity export: {'; '.join(problems)}")
    return doc


# ---------------------------------------------------------------------------
# Drift checking
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClaimDrift:
    """One claim's movement between two campaign documents."""

    claim_id: str
    severity: str
    better: str
    base_status: str
    new_status: str
    base_measured: Optional[float]
    new_measured: Optional[float]
    #: Polarity-aware worsening in percent (positive = worse); ``None``
    #: when either side has no measured value.
    drift_pct: Optional[float]
    regressed: bool
    note: str = ""


@dataclass(frozen=True)
class FidelityDiff:
    """Claim-by-claim comparison of a fresh campaign vs a baseline."""

    rows: Tuple[ClaimDrift, ...]
    threshold_pct: float

    @property
    def gate_regressions(self) -> List[ClaimDrift]:
        return [r for r in self.rows if r.regressed and r.severity == "gate"]

    @property
    def track_regressions(self) -> List[ClaimDrift]:
        return [r for r in self.rows if r.regressed and r.severity == "track"]

    def render(self) -> str:
        lines = [
            f"fidelity drift vs baseline "
            f"(threshold {self.threshold_pct:g}%, {len(self.rows)} claims)"
        ]
        for row in self.rows:
            if not row.regressed and row.base_status == row.new_status:
                continue
            drift = ("" if row.drift_pct is None
                     else f" drift {row.drift_pct:+.1f}%")
            verdict = "REGRESSION" if row.regressed else "changed"
            lines.append(
                f"  [{verdict}] {row.claim_id} ({row.severity}): "
                f"{row.base_status} -> {row.new_status}{drift}"
                + (f" — {row.note}" if row.note else ""))
        gates = self.gate_regressions
        tracks = self.track_regressions
        if gates:
            lines.append(
                f"REGRESSION: {len(gates)} gate claim(s) regressed")
        elif tracks:
            lines.append(
                f"ok (gates held; {len(tracks)} track claim(s) drifted)")
        else:
            lines.append("ok: no fidelity drift")
        return "\n".join(lines)


def _drift_pct(better: str, base: float, new: float,
               center: Optional[float]) -> Optional[float]:
    denom = max(abs(base), _EPS)
    if better == "higher":
        return (base - new) / denom * 100.0
    if better == "lower":
        return (new - base) / denom * 100.0
    if center is None:
        return None
    # nearer: how much further from the paper's number did we move,
    # relative to the paper's number.
    return (abs(new - center) - abs(base - center)) \
        / max(abs(center), 1.0) * 100.0


def diff_exports(base_doc: Dict, new_doc: Dict,
                 threshold_pct: float = 10.0) -> FidelityDiff:
    """Polarity-aware drift between two campaign documents.

    A claim regresses when its status worsens (pass → fail, anything →
    skipped) or when both sides evaluated and the measured value moved
    against the claim's polarity by more than ``threshold_pct``.  Gate
    regressions fail ``repro fidelity check``; track regressions are
    reported only.  A claim present in the baseline but missing from
    the fresh run counts as a regression (it stopped being scored).
    """
    new_by_id = {c["id"]: c for c in new_doc.get("claims", [])}
    rows: List[ClaimDrift] = []
    for base in base_doc.get("claims", []):
        cid = base["id"]
        new = new_by_id.pop(cid, None)
        if new is None:
            rows.append(ClaimDrift(
                claim_id=cid, severity=base.get("severity", "gate"),
                better=base.get("better", "higher"),
                base_status=base["status"], new_status="missing",
                base_measured=base.get("measured"), new_measured=None,
                drift_pct=None, regressed=True,
                note="claim no longer scored"))
            continue
        base_status, new_status = base["status"], new["status"]
        base_measured = base.get("measured")
        new_measured = new.get("measured")
        drift = None
        regressed = _STATUS_RANK[new_status] < _STATUS_RANK[base_status]
        note = ""
        if regressed:
            note = new.get("reason", "")
        if base_measured is not None and new_measured is not None \
                and base.get("kind") != "bool":
            drift = _drift_pct(
                base.get("better", "higher"),
                float(base_measured), float(new_measured),
                base.get("paper_value"))
            if drift is not None and drift > threshold_pct + _EPS:
                regressed = True
                if not note:
                    note = (f"measured {base_measured:g} -> "
                            f"{new_measured:g}")
        rows.append(ClaimDrift(
            claim_id=cid, severity=base.get("severity", "gate"),
            better=base.get("better", "higher"),
            base_status=base_status, new_status=new_status,
            base_measured=base_measured, new_measured=new_measured,
            drift_pct=None if drift is None else round(drift, 3),
            regressed=regressed, note=note))
    for cid, new in new_by_id.items():
        rows.append(ClaimDrift(
            claim_id=cid, severity=new.get("severity", "track"),
            better=new.get("better", "higher"),
            base_status="missing", new_status=new["status"],
            base_measured=None, new_measured=new.get("measured"),
            drift_pct=None, regressed=False,
            note="new claim (not in baseline)"))
    return FidelityDiff(rows=tuple(rows), threshold_pct=threshold_pct)


# ---------------------------------------------------------------------------
# Trajectory (fidelity.jsonl next to the perf ledger)
# ---------------------------------------------------------------------------


def append_trend(doc: Dict, perf_dir: Union[str, Path]) -> Path:
    """Record one campaign in the trajectory file (best effort semantics
    are the caller's choice — this raises on an unwritable dir)."""
    root = Path(perf_dir)
    root.mkdir(parents=True, exist_ok=True)
    path = root / TREND_FILENAME
    headline = {
        c["id"]: c.get("measured")
        for c in doc.get("claims", [])
        if c.get("paper_value") is not None and c.get("measured") is not None
    }
    entry = {
        "schema": FIDELITY_SCHEMA_VERSION,
        # lint: allow(DET001 trajectory timestamp: provenance only, never feeds sim state or cache keys)
        "ts": time.time(),
        "params": doc.get("params", {}),
        "sections": doc.get("sections", []),
        "git_sha": doc.get("provenance", {}).get("git_sha", ""),
        "summary": doc.get("summary", {}),
        "headline": headline,
    }
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def load_trend(perf_dir: Union[str, Path]) -> List[Dict]:
    """All parseable trajectory entries, oldest first."""
    path = Path(perf_dir) / TREND_FILENAME
    if not path.is_file():
        raise AnalysisError(
            f"no fidelity trajectory at {path}; run `repro fidelity run` "
            "with the same --dir first")
    entries: List[Dict] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if entry.get("schema") == FIDELITY_SCHEMA_VERSION:
            entries.append(entry)
    if not entries:
        raise AnalysisError(f"no parseable campaign entries in {path}")
    return entries


def render_trend(entries: Sequence[Dict]) -> str:
    """The campaign trajectory as a fixed-width table."""
    if not entries:
        raise AnalysisError("no campaign entries to render")
    lines = [
        f"fidelity trajectory ({len(entries)} campaign(s))",
        "  #  when (UTC)           scale     gate P/F/S   track P/F/S  "
        "headline",
    ]
    for i, entry in enumerate(entries, 1):
        ts = entry.get("ts", 0.0)
        when = time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(ts))
        gate = entry.get("summary", {}).get("gate", {})
        track = entry.get("summary", {}).get("track", {})
        scale = entry.get("params", {}).get("scale", 0.0)
        headline = entry.get("headline", {})
        head = ", ".join(
            f"{cid.split('.', 1)[-1]}={headline[cid]:+.1f}"
            for cid in sorted(headline)[:3]
        )
        lines.append(
            f"{i:>3}  {when}  {scale:<8g} "
            f" {gate.get('pass', 0)}/{gate.get('fail', 0)}"
            f"/{gate.get('skipped', 0):<8}"
            f" {track.get('pass', 0)}/{track.get('fail', 0)}"
            f"/{track.get('skipped', 0):<8} {head}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Markdown report (docs/FIDELITY.md)
# ---------------------------------------------------------------------------


def _fmt(value: Optional[float], unit: str = "") -> str:
    if value is None:
        return "—"
    text = f"{value:+.2f}" if abs(value) < 1000 else f"{value:+.4g}"
    return f"{text}{(' ' + unit) if unit else ''}"


def _fmt_band(band: Optional[Sequence[Optional[float]]]) -> str:
    if band is None:
        return "—"
    lo, hi = band
    lo_s = "−∞" if lo is None else f"{lo:g}"
    hi_s = "∞" if hi is None else f"{hi:g}"
    return f"[{lo_s}, {hi_s}]"


def render_markdown(doc: Dict) -> str:
    """Render a campaign document as the committed fidelity report."""
    problems = validate_fidelity_export(doc)
    if problems:
        raise AnalysisError(
            f"cannot render invalid export: {'; '.join(problems)}")
    params = doc.get("params", {})
    summary = doc.get("summary", {})
    gate = summary.get("gate", {})
    track = summary.get("track", {})
    lines = [
        "# Fidelity report — measured vs. paper",
        "",
        "Generated by `repro fidelity run`; do not edit by hand.",
        "Claim registry: `benchmarks/claims.json` (schema "
        f"{doc.get('schema')}); semantics: `docs/OBSERVABILITY.md`, "
        "\"Fidelity observatory\".",
        "",
        f"- scale `{params.get('scale')}`, seed `{params.get('seed')}`, "
        f"engine `{params.get('engine') or 'default'}`, "
        f"{doc.get('n_cells', 0)} grid cells, sections: "
        f"{', '.join(doc.get('sections', []))}",
        f"- claims registry fingerprint "
        f"`{doc.get('provenance', {}).get('claims_fp', '')}`",
        "",
        f"**Verdict: {gate.get('pass', 0)}/"
        f"{sum(gate.get(s, 0) for s in STATUSES)} gate claims in band, "
        f"{track.get('pass', 0)}/"
        f"{sum(track.get(s, 0) for s in STATUSES)} track claims in band, "
        f"{gate.get('skipped', 0) + track.get('skipped', 0)} skipped.**",
        "",
    ]
    groups: "OrderedDict[str, List[Dict]]" = OrderedDict()
    for claim in doc["claims"]:
        groups.setdefault(claim["id"].split(".", 1)[0], []).append(claim)
    for group, claims in groups.items():
        lines.append(f"## {claims[0]['source'].split(',')[0].split('—')[0].strip()} (`{group}`)")
        lines.append("")
        lines.append("| claim | severity | paper | measured | band "
                     "| Δ vs paper | status |")
        lines.append("|---|---|---|---|---|---|---|")
        for claim in claims:
            measured = claim.get("measured")
            paper_value = claim.get("paper_value")
            if claim["kind"] == "bool":
                shown = ("—" if measured is None
                         else ("yes" if measured else "no"))
            else:
                shown = _fmt(measured, claim.get("unit", ""))
            delta = (_fmt(measured - paper_value)
                     if measured is not None and paper_value is not None
                     else "—")
            status = claim["status"]
            mark = {"pass": "✅ pass", "fail": "❌ fail",
                    "skipped": "⏭ skipped"}[status]
            title = claim["title"]
            if status == "skipped" and claim.get("reason"):
                title += f" *(skipped: {claim['reason']})*"
            lines.append(
                f"| {title} | {claim['severity']} "
                f"| {claim.get('paper') or '—'} | {shown} "
                f"| {_fmt_band(claim.get('band'))} | {delta} | {mark} |")
        lines.append("")
    lines.append("Refresh: `repro fidelity run --out "
                 "benchmarks/FIDELITY_baseline.json --md docs/FIDELITY.md` "
                 "after any intentional model change, and commit both "
                 "artifacts with it.")
    lines.append("")
    return "\n".join(lines)
