"""Simulation results: per-run records and derived metrics.

A :class:`SimResult` captures everything one (benchmark, configuration)
run produced: cycle counts split by region kind, the full counter dump,
and the headline memory-system metrics the paper's figures are built
from.  Comparison helpers implement the exact quantities plotted:
relative speedup (Figures 9–12, 15, 16), normalized execution time
(Figures 13, 14), and the Figure 17 traffic/miss deltas.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from ..common.errors import AnalysisError
from ..common.stats import normalized_time, relative_speedup_pct, speedup

__all__ = ["SimResult", "require_same_workload"]


@dataclass
class SimResult:
    """The outcome of simulating one benchmark on one machine config."""

    benchmark: str
    config: str
    n_tus: int
    total_cycles: float
    parallel_cycles: float
    sequential_cycles: float
    instructions: int
    # Memory-system headline numbers (summed across TUs):
    l1_traffic: int = 0
    l1_misses: int = 0
    effective_misses: int = 0
    wrong_loads: int = 0
    wrong_thread_loads: int = 0
    sidecar_hits: int = 0
    prefetches: int = 0
    useful_wrong_hits: int = 0
    useful_prefetch_hits: int = 0
    branches: int = 0
    mispredicts: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    #: Full flattened counter dump for deep inspection.
    counters: Dict[str, int] = field(default_factory=dict)
    #: Optional per-region timing detail (``SimParams.record_regions``).
    region_cycles: List[Dict] = field(default_factory=list)
    seed: int = 0
    scale: float = 0.0
    #: Per-window metric series (``repro.obs.IntervalMetrics``); None
    #: unless the run was traced with an interval collector attached.
    interval_series: Optional[Dict] = None
    #: Provenance/lifetime attribution summary
    #: (``repro.obs.attrib.AttributionCollector.summary()``); None unless
    #: the run carried an attribution collector.
    attribution: Optional[Dict] = None

    def __post_init__(self) -> None:
        if self.total_cycles <= 0:
            raise AnalysisError(
                f"{self.benchmark}/{self.config}: non-positive cycle count"
            )

    # -- paper metrics ---------------------------------------------------

    def speedup_vs(self, baseline: "SimResult") -> float:
        """Speedup of *this* run relative to ``baseline`` (>1 = faster)."""
        require_same_workload(self, baseline)
        return speedup(baseline.total_cycles, self.total_cycles)

    def relative_speedup_pct_vs(self, baseline: "SimResult") -> float:
        """Percent speedup, as plotted in Figures 9–12, 15 and 16."""
        require_same_workload(self, baseline)
        return relative_speedup_pct(baseline.total_cycles, self.total_cycles)

    def parallel_speedup_vs(self, baseline: "SimResult") -> float:
        """Speedup over the parallelized portions only (Figure 8)."""
        require_same_workload(self, baseline)
        if self.parallel_cycles <= 0 or baseline.parallel_cycles <= 0:
            raise AnalysisError("no parallel-region cycles recorded")
        return baseline.parallel_cycles / self.parallel_cycles

    def normalized_time_vs(self, baseline: "SimResult") -> float:
        """Execution time normalized to ``baseline`` (Figures 13, 14)."""
        require_same_workload(self, baseline)
        return normalized_time(baseline.total_cycles, self.total_cycles)

    def traffic_increase_pct_vs(self, baseline: "SimResult") -> float:
        """Figure 17: percent increase in processor↔L1D traffic."""
        require_same_workload(self, baseline)
        if baseline.l1_traffic <= 0:
            raise AnalysisError("baseline recorded no L1 traffic")
        return (self.l1_traffic - baseline.l1_traffic) / baseline.l1_traffic * 100.0

    def miss_reduction_pct_vs(self, baseline: "SimResult") -> float:
        """Figure 17: percent reduction in (effective) L1D miss count.

        A miss here is a correct-path access that had to be serviced
        beyond the L1 *and* its parallel sidecar — an L1 miss that hits
        in the WEC behaves as a hit (§3.2.1) and is not counted.
        """
        require_same_workload(self, baseline)
        if baseline.effective_misses <= 0:
            raise AnalysisError("baseline recorded no misses")
        return (
            (baseline.effective_misses - self.effective_misses)
            / baseline.effective_misses
            * 100.0
        )

    @property
    def ipc(self) -> float:
        """Aggregate committed instructions per cycle."""
        return self.instructions / self.total_cycles if self.total_cycles else 0.0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    @property
    def l1_miss_rate(self) -> float:
        """Correct-path L1D misses per correct-path L1D access."""
        return self.l1_misses / self.l1_traffic if self.l1_traffic else 0.0

    @property
    def wec_hit_rate(self) -> float:
        """Fraction of L1D misses absorbed by the sidecar (WEC/VC/PB)."""
        return self.sidecar_hits / self.l1_misses if self.l1_misses else 0.0

    def sim_metrics(self) -> Dict[str, float]:
        """The deterministic headline metrics the perf ledger records.

        Keys match :data:`repro.obs.compare.METRICS` entries with
        ``source == "sim"`` (``speedup_pct`` is added by the recorder
        when a baseline ran alongside).
        """
        out = {
            "total_cycles": float(self.total_cycles),
            "instructions": float(self.instructions),
            "ipc": self.ipc,
            "l1_miss_rate": self.l1_miss_rate,
            "wec_hit_rate": self.wec_hit_rate,
            "effective_misses": float(self.effective_misses),
            "mispredict_rate": self.mispredict_rate,
            "wrong_loads": float(self.wrong_loads),
        }
        if self.attribution:
            # Attributed runs additionally expose the prefetch-taxonomy
            # headlines, so the ledger / `repro perf compare` can diff
            # coverage, accuracy and pollution across configs.
            metrics = self.attribution.get("metrics", {})
            for key in (
                "wrong_coverage",
                "wrong_accuracy",
                "prefetch_accuracy",
                "polluting_mpki",
            ):
                if key in metrics:
                    out[key] = float(metrics[key])
        return out

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict:
        """Plain-dict form (JSON-serializable)."""
        return asdict(self)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict) -> "SimResult":
        return cls(**data)

    def __repr__(self) -> str:
        return (
            f"SimResult({self.benchmark} on {self.config}/{self.n_tus}TU: "
            f"{self.total_cycles:.0f} cycles, ipc={self.ipc:.2f}, "
            f"misses={self.effective_misses})"
        )


def require_same_workload(a: SimResult, b: SimResult) -> None:
    """Guard against comparing runs of different benchmarks or scales."""
    if a.benchmark != b.benchmark:
        raise AnalysisError(
            f"cannot compare different benchmarks: {a.benchmark} vs {b.benchmark}"
        )
    if a.seed != b.seed or a.scale != b.scale:
        raise AnalysisError(
            f"{a.benchmark}: runs used different seed/scale "
            f"({a.seed}/{a.scale} vs {b.seed}/{b.scale})"
        )
