"""Parameter-sweep helpers used by the figure-reproduction benches.

Every figure in the paper is a sweep over {benchmark} × {configuration
axis}; these helpers run such grids and return keyed result maps.  The
heavy lifting lives in :mod:`repro.sim.executor`: cells are resolved
from the persistent result cache when possible, and cache misses can be
fanned out over worker processes with ``jobs=N`` (results are identical
to a serial run — each cell reseeds deterministically from
``params.seed``).  The benchmark *program* is built once per benchmark
per process and shared across configurations (programs are immutable),
so a full Figure 11 grid is six program builds plus 48 machine
simulations — or zero of either when the cache is warm.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..common.config import MachineConfig, SimParams
from ..common.errors import AnalysisError
from ..workloads.benchmarks import BENCHMARK_NAMES
from .executor import SweepCell, run_cells
from .results import SimResult

__all__ = ["grid_cells", "run_grid", "run_config_axis", "ResultGrid"]

#: (benchmark name, axis label) -> SimResult
ResultGrid = Dict[Tuple[str, str], SimResult]


def grid_cells(
    configs: Mapping[str, MachineConfig],
    benchmarks: Optional[Sequence[str]] = None,
    params: SimParams = SimParams(),
) -> List[SweepCell]:
    """Expand a {label: config} axis × benchmarks into ordered cells.

    This is the single source of grid *order* — benchmarks outermost,
    axis labels in mapping order — shared by :func:`run_grid` and the
    sweep service (:mod:`repro.serve`), so a grid submitted remotely
    resolves cell-for-cell identically to a local run.
    """
    if not configs:
        raise AnalysisError("empty configuration axis")
    bench_names = (
        list(benchmarks) if benchmarks is not None else list(BENCHMARK_NAMES)
    )
    if not bench_names:
        raise AnalysisError("empty benchmark list")
    return [
        SweepCell(bname, label, cfg, params)
        for bname in bench_names
        for label, cfg in configs.items()
    ]


def run_grid(
    configs: Mapping[str, MachineConfig],
    benchmarks: Optional[Sequence[str]] = None,
    params: SimParams = SimParams(),
    progress: Optional[Callable[[str, str], None]] = None,
    jobs: int = 1,
    cache: Optional[bool] = None,
    cache_dir: Union[str, Path, None] = None,
    manifest_path: Union[str, Path, None] = None,
    perf_context: str = "sweep",
    engine: Optional[str] = None,
    telemetry=None,
    log=None,
) -> ResultGrid:
    """Run every benchmark × configuration pair.

    ``configs`` maps an axis label (e.g. ``"wth-wp-wec 8"``) to a
    machine configuration.  ``progress`` (if given) is called once per
    cell with ``(benchmark, label)`` — before each run serially, on
    completion when ``jobs > 1``.  ``jobs``/``cache``/``cache_dir``/
    ``manifest_path`` are forwarded to
    :func:`repro.sim.executor.run_cells`; a failing cell raises
    :class:`~repro.common.errors.SweepError` naming its grid key after
    the rest of the grid has been attempted.  When ``$REPRO_PERF_DIR``
    is set, executed cells are appended to the perf ledger under
    ``perf_context``.  ``engine`` selects the simulation engine for
    executed cells (``None``: ``$REPRO_ENGINE`` or ``oracle``).
    ``telemetry``/``log`` (a
    :class:`~repro.obs.telemetry.MetricsRegistry` / ``StructuredLog``)
    receive the fleet signal set — host-side only, results are
    bit-identical with or without them.
    """
    cells = grid_cells(configs, benchmarks, params)
    outcome = run_cells(
        cells,
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        progress=progress,
        manifest_path=manifest_path,
        perf_context=perf_context,
        engine=engine,
        telemetry=telemetry,
        log=log,
    )
    return outcome.results


def run_config_axis(
    config_factory: Callable[[str], MachineConfig],
    axis: Sequence[str],
    benchmarks: Optional[Sequence[str]] = None,
    params: SimParams = SimParams(),
    jobs: int = 1,
    cache: Optional[bool] = None,
) -> ResultGrid:
    """Sweep an axis of labels through ``config_factory``."""
    configs = {label: config_factory(label) for label in axis}
    return run_grid(configs, benchmarks, params, jobs=jobs, cache=cache)


def baseline_of(grid: ResultGrid, baseline_label: str) -> Dict[str, SimResult]:
    """Extract one axis label's results keyed by benchmark."""
    out: Dict[str, SimResult] = {}
    for (bench, label), result in grid.items():
        if label == baseline_label:
            out[bench] = result
    if not out:
        raise AnalysisError(f"baseline label {baseline_label!r} not present in grid")
    return out


def labels_of(grid: ResultGrid) -> List[str]:
    """Axis labels present in the grid, in first-seen order."""
    seen: List[str] = []
    for (_, label) in grid:
        if label not in seen:
            seen.append(label)
    return seen


def benchmarks_of(grid: ResultGrid) -> List[str]:
    """Benchmarks present in the grid, in first-seen order."""
    seen: List[str] = []
    for (bench, _) in grid:
        if bench not in seen:
            seen.append(bench)
    return seen
