"""Parameter-sweep helpers used by the figure-reproduction benches.

Every figure in the paper is a sweep over {benchmark} × {configuration
axis}; these helpers run such grids and return keyed result maps.  The
benchmark *program* is built once per benchmark and shared across
configurations (programs are immutable), so a full Figure 11 grid is
six program builds plus 48 machine simulations.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..common.config import MachineConfig, SimParams
from ..common.errors import AnalysisError
from ..workloads.benchmarks import BENCHMARK_NAMES, build_benchmark
from ..workloads.program import Program
from .driver import run_program
from .results import SimResult

__all__ = ["run_grid", "run_config_axis", "ResultGrid"]

#: (benchmark name, axis label) -> SimResult
ResultGrid = Dict[Tuple[str, str], SimResult]


def run_grid(
    configs: Mapping[str, MachineConfig],
    benchmarks: Optional[Sequence[str]] = None,
    params: SimParams = SimParams(),
    progress: Optional[Callable[[str, str], None]] = None,
) -> ResultGrid:
    """Run every benchmark × configuration pair.

    ``configs`` maps an axis label (e.g. ``"wth-wp-wec 8"``) to a
    machine configuration.  ``progress`` (if given) is called with
    ``(benchmark, label)`` before each run — handy for long sweeps.
    """
    if not configs:
        raise AnalysisError("empty configuration axis")
    bench_names = list(benchmarks) if benchmarks is not None else list(BENCHMARK_NAMES)
    results: ResultGrid = {}
    for bname in bench_names:
        program = build_benchmark(bname, scale=params.scale)
        for label, cfg in configs.items():
            if progress is not None:
                progress(bname, label)
            results[(bname, label)] = run_program(program, cfg, params)
    return results


def run_config_axis(
    config_factory: Callable[[str], MachineConfig],
    axis: Sequence[str],
    benchmarks: Optional[Sequence[str]] = None,
    params: SimParams = SimParams(),
) -> ResultGrid:
    """Sweep an axis of labels through ``config_factory``."""
    configs = {label: config_factory(label) for label in axis}
    return run_grid(configs, benchmarks, params)


def baseline_of(grid: ResultGrid, baseline_label: str) -> Dict[str, SimResult]:
    """Extract one axis label's results keyed by benchmark."""
    out: Dict[str, SimResult] = {}
    for (bench, label), result in grid.items():
        if label == baseline_label:
            out[bench] = result
    if not out:
        raise AnalysisError(f"baseline label {baseline_label!r} not present in grid")
    return out


def labels_of(grid: ResultGrid) -> List[str]:
    """Axis labels present in the grid, in first-seen order."""
    seen: List[str] = []
    for (_, label) in grid:
        if label not in seen:
            seen.append(label)
    return seen


def benchmarks_of(grid: ResultGrid) -> List[str]:
    """Benchmarks present in the grid, in first-seen order."""
    seen: List[str] = []
    for (bench, _) in grid:
        if bench not in seen:
            seen.append(bench)
    return seen
