"""Simulation driving, sweeps, results and table formatting."""

from .cache_only import CacheOnlyResult, replay_cache_only
from .driver import run_program, run_simulation
from .executor import (
    DiskCache,
    SweepCell,
    SweepOutcome,
    SweepStats,
    cell_key,
    config_fingerprint,
    run_cell,
    run_cells,
)
from .results import SimResult, require_same_workload
from .sweep import (
    ResultGrid,
    baseline_of,
    benchmarks_of,
    labels_of,
    run_config_axis,
    run_grid,
)
from .tables import TextTable, format_pct, format_ratio

__all__ = [
    "CacheOnlyResult",
    "replay_cache_only",
    "run_program",
    "run_simulation",
    "DiskCache",
    "SweepCell",
    "SweepOutcome",
    "SweepStats",
    "cell_key",
    "config_fingerprint",
    "run_cell",
    "run_cells",
    "SimResult",
    "require_same_workload",
    "ResultGrid",
    "baseline_of",
    "benchmarks_of",
    "labels_of",
    "run_config_axis",
    "run_grid",
    "TextTable",
    "format_pct",
    "format_ratio",
]
