"""Fast, bit-exact replacements for :class:`repro.common.rng.StreamFactory`.

``StreamFactory.fresh(name)`` dominates the oracle's per-iteration cost:
every iteration trace constructs a ``SeedSequence`` (entropy pooling in
Python-level numpy code) plus a ``Generator``/``PCG64`` pair, ~22 us per
call.  The entropy-pooling algorithm is small and fixed, so we replicate
it in plain Python (~3 us), precompute the seed-dependent prefix once
per factory, and hand the pooled words to ``PCG64`` through a minimal
``ISeedSequence`` shim (:class:`PrepooledSeedSequence`) that skips the
pooling numpy would otherwise redo (~2.5 us instead of ~22 us).

Bit-exactness is non-negotiable: the fast engine must produce the same
``SimResult`` as the oracle.  Two guards enforce it:

* an import-time self-check pools a handful of (seed, name) pairs with
  both implementations and compares the generated state words; on any
  mismatch (e.g. a future numpy changes its pooling constants) the
  factory permanently falls back to the oracle path;
* seeds outside ``[0, 2**32)`` — which numpy would split into multiple
  32-bit entropy words — always take the oracle path.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from numpy.random import Generator, PCG64, SeedSequence
from numpy.random.bit_generator import ISeedSequence

from ...common.rng import stable_hash32

__all__ = ["FastStreamFactory", "PrepooledSeedSequence", "pooled_state_words"]

# SeedSequence pooling constants (numpy/random/bit_generator.pyx).
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = 0xCA01F9DD
_MIX_MULT_R = 0x4973F715
_XSHIFT = 16
_M32 = 0xFFFFFFFF
_POOL_SIZE = 4


def _pool_prefix(seed: int) -> Tuple[List[int], int]:
    """Entropy-pool state after absorbing the seed-only prefix.

    With a single-word seed and one spawn-key word the assembled entropy
    is ``[seed, 0, 0, 0, spawn_word]`` (the entropy run is zero-padded
    to the pool size before the spawn key is appended).  The pool fill
    *and* the cross-mix pass consume only the first four words, so the
    state they leave behind depends only on the seed and is shared by
    every stream of one factory; the spawn word is mixed in afterwards.
    """
    hash_const = _INIT_A
    pool = []
    for word in (seed, 0, 0, 0):
        word ^= hash_const
        hash_const = (hash_const * _MULT_A) & _M32
        word = (word * hash_const) & _M32
        word ^= word >> _XSHIFT
        pool.append(word)
    # Cross-mix every pool word into every other.
    for i_src in range(_POOL_SIZE):
        src = pool[i_src]
        for i_dst in range(_POOL_SIZE):
            if i_src == i_dst:
                continue
            v = src ^ hash_const
            hash_const = (hash_const * _MULT_A) & _M32
            v = (v * hash_const) & _M32
            v ^= v >> _XSHIFT
            r = (_MIX_MULT_L * pool[i_dst] - _MIX_MULT_R * v) & _M32
            pool[i_dst] = r ^ (r >> _XSHIFT)
    return pool, hash_const


def pooled_state_words(seed: int, spawn_word: int) -> Tuple[int, int, int, int]:
    """The four ``uint64`` words ``SeedSequence(seed, spawn_key=(spawn_word,))``
    feeds to ``PCG64`` — computed without constructing a ``SeedSequence``."""
    pool, hash_const = _pool_prefix(seed)
    return _finish_pool(list(pool), hash_const, spawn_word)


def _finish_pool(
    pool: List[int], hash_const: int, spawn_word: int
) -> Tuple[int, int, int, int]:
    # Mix the excess entropy word (the spawn key) into every pool word.
    for i_dst in range(_POOL_SIZE):
        v = spawn_word ^ hash_const
        hash_const = (hash_const * _MULT_A) & _M32
        v = (v * hash_const) & _M32
        v ^= v >> _XSHIFT
        r = (_MIX_MULT_L * pool[i_dst] - _MIX_MULT_R * v) & _M32
        pool[i_dst] = r ^ (r >> _XSHIFT)
    # generate_state(4, uint64): eight uint32 draws, paired little-endian.
    hash_const = _INIT_B
    out32 = []
    for i in range(8):
        v = pool[i % _POOL_SIZE]
        v ^= hash_const
        hash_const = (hash_const * _MULT_B) & _M32
        v = (v * hash_const) & _M32
        v ^= v >> _XSHIFT
        out32.append(v)
    return (
        out32[0] | (out32[1] << 32),
        out32[2] | (out32[3] << 32),
        out32[4] | (out32[5] << 32),
        out32[6] | (out32[7] << 32),
    )


class PrepooledSeedSequence(ISeedSequence):
    """Minimal ``ISeedSequence`` carrying already-pooled state words.

    ``PCG64(seed_seq)`` only ever calls ``generate_state(4, uint64)``;
    handing it the precomputed words skips numpy's pooling entirely
    while seeding the bit generator identically.
    """

    __slots__ = ("_words",)

    def __init__(self, words: Tuple[int, int, int, int]) -> None:
        self._words = words

    def generate_state(self, n_words: int, dtype=np.uint32) -> np.ndarray:
        if n_words == 4 and dtype is np.uint64:
            return np.array(self._words, dtype=np.uint64)
        # Any other request shape means a numpy we did not anticipate;
        # re-derive via uint32 halves (uint64 words are LE word pairs).
        halves: List[int] = []
        for w in self._words:
            halves.append(w & _M32)
            halves.append(w >> 32)
        if dtype is np.uint32 and n_words <= len(halves):
            return np.array(halves[:n_words], dtype=np.uint32)
        raise NotImplementedError(
            f"PrepooledSeedSequence cannot serve generate_state({n_words}, {dtype})"
        )


def _self_check() -> bool:
    """Compare the pure-Python pooling against numpy's on a spread of keys."""
    try:
        for seed in (0, 1, 2003, 0x7FFFFFFF, 0xDEADBEEF):
            for name in ("it:r0:0", "sq:seq:17", "wp:a:3:1", "est:x", ""):
                spawn = stable_hash32(name)
                ref = SeedSequence(entropy=seed, spawn_key=(spawn,)).generate_state(
                    4, np.uint64
                )
                ours = pooled_state_words(seed, spawn)
                if tuple(int(x) for x in ref) != ours:
                    return False
        return True
    # lint: allow(EXC001 import-time capability probe: any failure means "pooling not exact here" and every factory takes the oracle path)
    except Exception:
        return False


#: Whether the pure-Python pooling reproduces numpy's exactly on this
#: installation.  When False every factory uses the oracle path.
POOLING_EXACT = _self_check()


class FastStreamFactory:
    """Drop-in ``fresh()`` provider matching ``StreamFactory`` bit-for-bit."""

    __slots__ = ("_seed", "_fast", "_pool", "_hash_const")

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._fast = POOLING_EXACT and 0 <= seed < (1 << 32)
        if self._fast:
            self._pool, self._hash_const = _pool_prefix(seed)

    def fresh(self, name: str) -> Generator:
        """A new generator for ``name`` — same stream as the oracle's."""
        if not self._fast:
            return Generator(
                PCG64(SeedSequence(entropy=self._seed, spawn_key=(stable_hash32(name),)))
            )
        words = _finish_pool(
            list(self._pool), self._hash_const, stable_hash32(name)
        )
        return Generator(PCG64(PrepooledSeedSequence(words)))
