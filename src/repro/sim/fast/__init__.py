"""Fast-path simulation engine (``engine="fast"``).

Compiled, memoized trace replay with flat dict/list machine state —
bit-identical ``SimResult`` to the oracle interpreter, ~10×+ faster.
See :mod:`repro.sim.fast.engine` for the exactness contract and
``docs/ARCHITECTURE.md`` ("Fast engine") for the design.
"""

from .engine import run_program_fast

__all__ = ["run_program_fast"]
