"""Trace compilation for the fast engine.

The oracle regenerates every iteration trace from scratch: a fresh RNG
stream, a Python CFG walk, per-occurrence address binding, and a numpy
argsort to merge the event streams.  Almost all of that is recomputable
structure:

* a CFG walk is fully determined by its branch decisions, so everything
  position-shaped (event interleave, per-pattern occurrence counts,
  instruction mix, reconvergence anchors) is memoized per *path* — the
  tuple of taken bits — and shared by every iteration that takes the
  same path through the region body;
* bound traces are memoized per ``(seed, iteration)``, which both makes
  the oracle's trace-sharing patterns (wrong threads re-deriving future
  iterations, lookahead into the next sequential chunk) free *and* lets
  every configuration of a sweep grid replay the identical workload
  without regenerating it;
* address binding is vectorized per pattern with numpy (the splitmix64
  mixer, strided/pointer-chase indexing and the hot/cold split all map
  to exact uint64/float64 array expressions).

Compiled state is attached to region objects via a ``WeakKeyDictionary``
so it lives exactly as long as the ``Program`` that owns the regions —
sweep grids that reuse one program across configurations hit the caches,
and nothing leaks once the program is dropped.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ...common.errors import WorkloadError
from ...isa.cfg import MAX_BLOCKS_PER_WALK
from ...isa.encoding import EV_BRANCH, EV_LOAD, EV_STORE, EV_TSTORE
from ...workloads.patterns import (
    AddressPattern,
    HotColdPattern,
    PointerChasePattern,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
)
from ...workloads.program import ParallelRegionSpec, SequentialRegionSpec
from ...workloads.tracegen import code_base_for
from .streams import FastStreamFactory

__all__ = ["CompiledRegion", "FastTrace", "compiled_region_for"]

RegionSpec = Union[ParallelRegionSpec, SequentialRegionSpec]

_M64 = (1 << 64) - 1
_C1 = 0x9E3779B97F4A7C15
_C2 = 0xBF58476D1CE4E5B9
_C3 = 0x94D049BB133111EB

#: L1 data/instruction block size is fixed at 64 bytes across the config
#: ladder; the engine asserts this before using compiled block numbers.
L1_BLOCK_BITS = 6

#: Upper bound on memoized traces per region (safety valve for huge
#: runs; beyond it traces are rebuilt on demand instead of cached).
_MAX_TRACES = 1 << 17

#: Upper bound on memoized paths per region.
_MAX_PATHS = 1 << 14


class _CompiledBlock:
    """Static per-block data needed to replay walk decisions quickly."""

    __slots__ = ("p_eff", "taken_idx", "fall_idx", "next_idx")

    def __init__(self, p_eff, taken_idx, fall_idx, next_idx):
        self.p_eff = p_eff
        self.taken_idx = taken_idx
        self.fall_idx = fall_idx
        self.next_idx = next_idx


class _BindEntry:
    """Per-pattern scatter plan for one path's memory operations."""

    __slots__ = ("pattern", "occ", "lsel", "lidx", "ssel", "sidx", "scalar")

    def __init__(self, pattern, occ, lsel, lidx, ssel, sidx):
        self.pattern = pattern
        self.occ = occ          # uint64 occurrence indices, walk order
        self.lsel = lsel        # positions within occ that are loads
        self.lidx = lidx        # -> index into the trace's load array
        self.ssel = ssel        # positions within occ that are stores
        self.sidx = sidx        # -> index into the trace's store array
        # Vectorization pays for itself only past a handful of elements.
        self.scalar = len(occ) < 8


class PathData:
    """Everything about one walk that is independent of the iteration."""

    __slots__ = (
        "key", "n_instr", "n_loads", "n_stores", "events", "branch_pcs",
        "branch_taken", "branch_next_load", "tstore_idx", "mix",
        "bind", "ifetch_count", "base_cycles",
    )

    def __init__(self, key, walk, region, branch_pcs):
        self.key = key
        self.n_instr = walk.n_instr
        self.mix = walk.mix
        loads: List[Tuple[int, str]] = []
        stores: List[Tuple[int, str, bool]] = []
        load_pos: List[int] = []
        store_pos: List[int] = []
        for pos, pattern_name, is_store, is_tstore in walk.mem_ops:
            if is_store:
                stores.append((pos, pattern_name, is_tstore))
                store_pos.append(pos)
            else:
                loads.append((pos, pattern_name))
                load_pos.append(pos)
        self.n_loads = len(loads)
        self.n_stores = len(stores)
        self.branch_pcs = [pc for _, pc, _ in walk.branches]
        self.branch_taken = [bool(t) for _, _, t in walk.branches]
        self.tstore_idx = [i for i, (_, _, t) in enumerate(stores) if t]
        branch_pos = np.asarray([p for p, _, _ in walk.branches], dtype=np.int64)
        lp = np.asarray(load_pos, dtype=np.int64)
        self.branch_next_load = (
            np.searchsorted(lp, branch_pos, side="left").astype(np.int64).tolist()
        )
        # Merged event order: loads, then stores, then branches, stably
        # sorted by stream position — identical to merged_events().
        n = self.n_loads + self.n_stores + len(walk.branches)
        pos = np.empty(n, dtype=np.int64)
        kinds = np.empty(n, dtype=np.int8)
        idxs = np.empty(n, dtype=np.int64)
        a, b = 0, self.n_loads
        pos[a:b] = lp
        kinds[a:b] = EV_LOAD
        idxs[a:b] = np.arange(self.n_loads)
        a, b = b, b + self.n_stores
        pos[a:b] = np.asarray(store_pos, dtype=np.int64)
        kinds[a:b] = [EV_TSTORE if t else EV_STORE for _, _, t in stores]
        idxs[a:b] = np.arange(self.n_stores)
        a, b = b, b + len(walk.branches)
        pos[a:b] = branch_pos
        kinds[a:b] = EV_BRANCH
        idxs[a:b] = np.arange(len(walk.branches))
        order = np.argsort(pos, kind="stable")
        self.events: List[Tuple[int, int]] = list(
            zip(kinds[order].tolist(), idxs[order].tolist())
        )
        # Per-pattern occurrence plan.  Occurrences count up in dynamic
        # (mem_ops) order per pattern, exactly as the oracle binds them.
        per: Dict[str, List[List[int]]] = {}
        occ_counts: Dict[str, int] = {}
        li = si = 0
        for pos_, pattern_name, is_store, _ in walk.mem_ops:
            entry = per.setdefault(pattern_name, [[], [], [], [], []])
            occ = occ_counts.get(pattern_name, 0)
            occ_counts[pattern_name] = occ + 1
            k = len(entry[0])
            entry[0].append(occ)
            if is_store:
                entry[3].append(k)
                entry[4].append(si)
                si += 1
            else:
                entry[1].append(k)
                entry[2].append(li)
                li += 1
        self.bind: List[_BindEntry] = [
            _BindEntry(
                region.patterns[name],
                np.asarray(e[0], dtype=np.uint64),
                np.asarray(e[1], dtype=np.intp),
                np.asarray(e[2], dtype=np.intp),
                np.asarray(e[3], dtype=np.intp),
                np.asarray(e[4], dtype=np.intp),
            )
            for name, e in per.items()
        ]
        self.ifetch_count = max(1, self.n_instr // 16)
        #: Filled lazily by the engine (depends on the TU timing model).
        self.base_cycles: Optional[float] = None


class FastTrace:
    """A fully bound iteration trace in engine-native (list) form."""

    __slots__ = (
        "path", "load_addrs", "load_blocks", "store_addrs", "store_blocks",
        "targets",
    )

    def __init__(self, path, load_addrs, load_blocks, store_addrs,
                 store_blocks, targets):
        self.path = path
        self.load_addrs = load_addrs
        self.load_blocks = load_blocks
        self.store_addrs = store_addrs
        self.store_blocks = store_blocks
        self.targets = targets


def _vec_addrs(pattern: AddressPattern, iter_idx: int, occ: np.ndarray) -> np.ndarray:
    """Vectorized, bit-exact evaluation of ``pattern.addr`` over ``occ``."""
    if isinstance(pattern, (SequentialPattern, StridedPattern)):
        elem = (iter_idx * pattern.per_iter + occ.astype(np.int64)) % pattern._n_elems
        return pattern.base + elem * pattern.stride
    if isinstance(pattern, PointerChasePattern):
        pos = (iter_idx * pattern.per_iter + occ.astype(np.int64)) % pattern.n_nodes
        return pattern.base + pattern._order[pos] * pattern.node_size
    if isinstance(pattern, RandomPattern):
        h = _vec_mix64(iter_idx, occ, pattern.salt)
        slot = (h % np.uint64(pattern._n_slots)).astype(np.int64)
        return pattern.base + slot * pattern.granule
    if isinstance(pattern, HotColdPattern):
        h = _vec_mix64(iter_idx, occ, pattern.salt)
        hot = ((h & np.uint64(0xFFFF)).astype(np.float64) / 65536.0) < pattern.p_hot
        hi = (h >> np.uint64(16))
        hot_slot = (hi % np.uint64(pattern._hot_slots)).astype(np.int64)
        cold_slot = (hi % np.uint64(pattern._cold_slots)).astype(np.int64)
        return np.where(
            hot,
            pattern.base + hot_slot * pattern.granule,
            pattern.base + pattern.hot_size + cold_slot * pattern.granule,
        )
    # Unknown pattern subclass: fall back to the exact scalar rule.
    return np.asarray(
        [pattern.addr(iter_idx, int(o)) for o in occ.tolist()], dtype=np.int64
    )


def _vec_mix64(a: int, occ: np.ndarray, c: int) -> np.ndarray:
    """splitmix64 finalizer over (a, occ[i], c), wrapping at 64 bits."""
    const = np.uint64(((a * _C1) + (c * _C3) + _C1) & _M64)
    x = occ * np.uint64(_C2) + const
    x ^= x >> np.uint64(30)
    x *= np.uint64(_C2)
    x ^= x >> np.uint64(27)
    x *= np.uint64(_C3)
    x ^= x >> np.uint64(31)
    return x


class CompiledRegion:
    """Compiled static structure + per-seed trace caches for one region."""

    def __init__(self, region: RegionSpec) -> None:
        self.region = region
        self.is_parallel = isinstance(region, ParallelRegionSpec)
        cfg = region.cfg
        names = list(cfg.blocks)
        index = {name: i for i, name in enumerate(names)}
        self.entry_idx = index[cfg.entry]
        blocks: List[_CompiledBlock] = []
        for name in names:
            b = cfg.blocks[name]
            if b.branch is not None:
                br = b.branch
                p = br.taken_prob
                if br.noise > 0.0:
                    p = p * (1.0 - br.noise) + 0.5 * br.noise
                blocks.append(_CompiledBlock(
                    p,
                    index[br.taken_target] if br.taken_target is not None else -1,
                    index[br.fallthrough] if br.fallthrough is not None else -1,
                    -1,
                ))
            else:
                blocks.append(_CompiledBlock(
                    None, -1, -1,
                    index[b.next_block] if b.next_block is not None else -1,
                ))
        self.blocks = blocks
        self.paths: Dict[Tuple[bool, ...], PathData] = {}
        # iteration -> FastTrace, wrong-path key -> List[int], keyed per seed
        self.traces: Dict[int, Dict[int, FastTrace]] = {}
        self.wp_addrs: Dict[int, Dict[Tuple[int, int], List[int]]] = {}
        # I-fetch geometry (shared 64-byte block size with the L1I).
        self.ifetch_base_block = code_base_for(region.name) >> L1_BLOCK_BITS
        self.ifetch_footprint = max(1, region.code_footprint // 64)
        self._prefix = "it:" if self.is_parallel else "sq:"

    # -- walking -------------------------------------------------------

    def _walk_key(self, gen) -> Tuple[bool, ...]:
        """Replay branch decisions only, buffering the double stream.

        Overdraws from the stream in chunks; the values consumed for
        decision *k* are identical to the oracle's scalar draws.
        """
        blocks = self.blocks
        cur = self.entry_idx
        decisions: List[bool] = []
        buf = gen.random(16)
        nbuf = 16
        bi = 0
        steps = 0
        while cur >= 0:
            steps += 1
            if steps > MAX_BLOCKS_PER_WALK:
                raise WorkloadError(
                    f"CFG walk exceeded {MAX_BLOCKS_PER_WALK} blocks; "
                    f"check loop back-edge probabilities"
                )
            blk = blocks[cur]
            p = blk.p_eff
            if p is None:
                cur = blk.next_idx
            else:
                if bi == nbuf:
                    buf = gen.random(64)
                    nbuf = 64
                    bi = 0
                taken = bool(buf[bi] < p)
                bi += 1
                decisions.append(taken)
                cur = blk.taken_idx if taken else blk.fall_idx
        return tuple(decisions)

    def _path_for(self, key: Tuple[bool, ...], streams: FastStreamFactory,
                  name: str) -> PathData:
        path = self.paths.get(key)
        if path is None:
            # Cold path: rerun the oracle's own walker on a second copy
            # of the same stream, so path structure is exact by
            # construction rather than by transliteration.
            walk = self.region.cfg.walk(streams.fresh(name))
            path = PathData(key, walk, self.region, None)
            if len(self.paths) < _MAX_PATHS:
                self.paths[key] = path
        return path

    # -- traces --------------------------------------------------------

    def trace(self, streams: FastStreamFactory, seed: int, index: int) -> FastTrace:
        """The bound trace of iteration/chunk ``index`` (memoized)."""
        per_seed = self.traces.get(seed)
        if per_seed is None:
            per_seed = self.traces[seed] = {}
        trace = per_seed.get(index)
        if trace is not None:
            return trace
        name = f"{self._prefix}{self.region.name}:{index}"
        key = self._walk_key(streams.fresh(name))
        path = self._path_for(key, streams, name)
        la = np.empty(path.n_loads, dtype=np.int64)
        sa = np.empty(path.n_stores, dtype=np.int64)
        for e in self.bind_entries(path):
            if e.scalar:
                addr = e.pattern.addr
                occ = e.occ.tolist()
                for k, j in zip(e.lsel.tolist(), e.lidx.tolist()):
                    la[j] = addr(index, occ[k])
                for k, j in zip(e.ssel.tolist(), e.sidx.tolist()):
                    sa[j] = addr(index, occ[k])
            else:
                vec = _vec_addrs(e.pattern, index, e.occ)
                la[e.lidx] = vec[e.lsel]
                sa[e.sidx] = vec[e.ssel]
        load_addrs = la.tolist()
        store_addrs = sa.tolist()
        trace = FastTrace(
            path,
            load_addrs,
            (la >> L1_BLOCK_BITS).tolist(),
            store_addrs,
            (sa >> L1_BLOCK_BITS).tolist(),
            [store_addrs[i] for i in path.tstore_idx],
        )
        if len(per_seed) < _MAX_TRACES:
            per_seed[index] = trace
        return trace

    @staticmethod
    def bind_entries(path: PathData) -> List[_BindEntry]:
        return path.bind

    # -- wrong execution ----------------------------------------------

    def wrong_path_addrs(
        self,
        streams: FastStreamFactory,
        seed: int,
        trace: FastTrace,
        branch_idx: int,
        index: int,
        future_loads: Optional[List[int]],
    ) -> List[int]:
        """Transliteration of ``TraceGenerator.wrong_path_addrs`` with a
        per-(iteration, branch) memo — valid because the injected loads
        depend only on the workload, never on machine configuration."""
        per_seed = self.wp_addrs.get(seed)
        if per_seed is None:
            per_seed = self.wp_addrs[seed] = {}
        memo_key = (index, branch_idx)
        addrs = per_seed.get(memo_key)
        if addrs is not None:
            return addrs
        region = self.region
        prof = region.wrong_exec
        if prof.wp_max_loads == 0 or prof.wp_mean_loads <= 0:
            addrs = []
        else:
            rng = streams.fresh(f"wp:{region.name}:{index}:{branch_idx}")
            k = int(rng.geometric(min(1.0, 1.0 / prof.wp_mean_loads)))
            k = min(k, prof.wp_max_loads)
            if k <= 0:
                addrs = []
            else:
                addrs = []
                path = trace.path
                next_load = path.branch_next_load[branch_idx]
                own_loads = trace.load_addrs
                n_own = path.n_loads
                n_ext = n_own + (len(future_loads) if future_loads is not None else 0)
                pollution = (
                    region.patterns[region.pollution_pattern]
                    if region.pollution_pattern is not None
                    else None
                )
                convergent = rng.random() < prof.p_convergent and next_load < n_ext
                if convergent:
                    skip = int(rng.integers(0, max(1, prof.wp_lookahead // 4)))
                    start = next_load + skip
                    for idx in range(start, min(start + k, n_ext)):
                        if idx < n_own:
                            addrs.append(own_loads[idx])
                        else:
                            addrs.append(future_loads[idx - n_own])
                elif pollution is not None:
                    for j in range(k):
                        occ = (1 << 20) + branch_idx * 64 + j
                        addrs.append(pollution.addr(index, occ))
                elif n_own:
                    start = min(next_load + prof.wp_lookahead, n_own - 1)
                    for idx in range(start, min(start + k, n_own)):
                        addrs.append(own_loads[idx])
        if len(per_seed) < _MAX_TRACES:
            per_seed[memo_key] = addrs
        return addrs

    def wrong_thread_addrs(
        self, streams: FastStreamFactory, seed: int, index: int
    ) -> List[int]:
        """Loads of extrapolated iteration ``index`` for a wrong thread."""
        prof = self.region.wrong_exec
        if prof.wth_fraction <= 0.0:
            return []
        trace = self.trace(streams, seed, index)
        n = int(round(trace.path.n_loads * prof.wth_fraction))
        return trace.load_addrs[:n]


#: id(region) -> (weakref to region, CompiledRegion).  Region specs are
#: plain (unfrozen, eq-comparing) dataclasses, so they are unhashable
#: and cannot key a WeakKeyDictionary; we key by identity and keep a
#: weak reference purely to notice when an id has been recycled by a
#: new region object.  Dead entries are purged opportunistically.
_COMPILED: Dict[int, Tuple["weakref.ref", "CompiledRegion"]] = {}


def compiled_region_for(region: RegionSpec) -> CompiledRegion:
    """The (cached) compiled form of ``region``."""
    key = id(region)
    entry = _COMPILED.get(key)
    if entry is not None and entry[0]() is region:
        return entry[1]
    if len(_COMPILED) > 256:
        dead = [k for k, (ref, _) in _COMPILED.items() if ref() is None]
        for k in dead:
            del _COMPILED[k]
    compiled = CompiledRegion(region)
    _COMPILED[key] = (weakref.ref(region), compiled)
    return compiled
