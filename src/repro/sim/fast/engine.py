"""The fast-path engine: batched trace replay over compiled regions.

This module re-implements the oracle's hot loop — thread-unit stepping
and hierarchy lookups, per the hostprof ledger — as flat dict/list state
machines fed by :mod:`repro.sim.fast.compile`'s memoized traces.  The
speed comes from four places:

* trace generation is compiled and memoized per ``(seed, iteration)``
  (shared across every configuration of a sweep grid) with numpy-
  vectorized address binding;
* per-walk structure (event interleave, instruction mix, base cycles)
  is memoized per *path* and shared by all iterations taking it;
* the i-fetch loop collapses to its first pass over the code footprint
  (consecutive code blocks occupy distinct L1I sets, so repeat passes
  are hits by construction and contribute zero stall);
* counters are plain dicts and cache sets are plain insertion-ordered
  dicts, mutated inline without per-event attribute dispatch.

Bit-exactness contract: every counter update, LRU movement and float
operation below replays the oracle's in the same order with the same
operand grouping.  The differential suite
(``tests/test_fast_engine.py``) enforces ``SimResult`` equality across
the full configuration ladder; any divergence is a bug in one of the
two engines, never tolerable noise.
"""

from __future__ import annotations

import weakref
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from ...common.config import MachineConfig, SidecarKind, SimParams
from ...common.errors import SimulationError
from ...branch.predictors import make_predictor
from ...core.thread_unit import SEQ_SPLIT
from ...core.timing import STORE_STALL_WEIGHT, CoreTimingModel
from ...isa.encoding import EV_BRANCH, EV_LOAD, EV_TSTORE
from ...mem.cache import DIRTY, PF_FAR, PREFETCHED, WRONG
from ...mem.layout import geometry_of
from ...sta.scheduler import compose_pipeline_step
from ...workloads.program import ParallelRegionSpec, Program
from ..results import SimResult
from .compile import CompiledRegion, compiled_region_for
from .streams import FastStreamFactory

__all__ = ["run_program_fast"]


# Branch-outcome streams shared across configurations.  For a fixed
# (program, seed, n_tus, branch geometry) the sequence of branch-unit
# inputs — which TU resolves which (pc, taken) pairs in which order —
# is the same under every memory-system configuration: wrong-path and
# wrong-thread loads never touch the predictor or BTB, and the
# iteration-to-TU schedule depends only on the program and n_tus.  The
# first run of a sweep grid records, per execute() call, the branch
# outcomes ``(n_branches, btb_target_misses, mispredicted_indices)``;
# every later configuration replays them, skipping predictor/BTB
# simulation entirely.  Keyed like the compile memo: id(program) with a
# weakref identity guard (program specs are unhashable dataclasses).
_BRANCH_STREAMS: Dict[
    int, Tuple["weakref.ref", Dict[tuple, List[tuple]]]
] = {}

# One record per execute() call: ``[n_branches, btb_target_misses,
# mispredicted_indices, wp_events, mem_events]``.  The last two slots
# cache the replayed event lists (lazily filled on first use): the
# execute order of a run is deterministic, so record ``i`` always
# replays the same path content under every configuration — wp_events
# keeps loads/stores plus only the mispredicted branch events,
# mem_events drops branch events entirely.
_BranchStream = List[list]


def _branch_streams_for(program: Program) -> Dict[tuple, _BranchStream]:
    key = id(program)
    entry = _BRANCH_STREAMS.get(key)
    if entry is not None and entry[0]() is program:
        return entry[1]
    if len(_BRANCH_STREAMS) > 8:
        dead = [k for k, (ref, _) in _BRANCH_STREAMS.items() if ref() is None]
        for k in dead:
            del _BRANCH_STREAMS[k]
    streams: Dict[tuple, _BranchStream] = {}
    _BRANCH_STREAMS[key] = (weakref.ref(program), streams)
    return streams


class _RegionInfo:
    """Per-region constants resolved once per run."""

    __slots__ = (
        "compiled", "ilp", "split", "fork_cost", "coupling",
        "code_base", "ifetch_fast", "wth_max_iters",
    )

    def __init__(self, compiled: CompiledRegion, cfg: MachineConfig,
                 l1i_n_sets: int, l1i_block_size: int) -> None:
        region = compiled.region
        self.compiled = compiled
        self.ilp = region.ilp
        self.split = region.stage_split if compiled.is_parallel else SEQ_SPLIT
        self.coupling = region.dep_coupling if compiled.is_parallel else 0.0
        self.fork_cost = (
            cfg.fork_delay + cfg.comm_cycles_per_value * region.n_forward_values
            if compiled.is_parallel
            else 0
        )
        self.code_base = compiled.ifetch_base_block << 6
        # The first-pass-only i-fetch shortcut needs consecutive code
        # blocks to land in distinct L1I sets and the trace's 64-byte
        # granularity to be the L1I's own.
        self.ifetch_fast = (
            l1i_block_size == 64 and compiled.ifetch_footprint <= l1i_n_sets
        )
        self.wth_max_iters = region.wrong_exec.wth_max_iters


class _FastL2:
    """Shared L2 + main memory as one flat state machine."""

    __slots__ = (
        "sets", "mask", "assoc", "block_bits", "hit_latency", "mem_latency",
        "c", "memc",
    )

    def __init__(self, cfg: MachineConfig) -> None:
        geo = geometry_of(cfg.mem.l2)
        # Sets materialize lazily: tiny-scale runs touch a small fraction
        # of 1024 L2 sets, and building empty dicts up front is a
        # measurable share of per-run wall time.
        self.sets: Dict[int, Dict[int, int]] = defaultdict(dict)
        self.mask = geo.set_mask
        self.assoc = geo.assoc
        self.block_bits = geo.block_bits
        self.hit_latency = cfg.mem.l2.hit_latency
        self.mem_latency = cfg.mem.memory_latency
        self.c: Dict[str, int] = defaultdict(int)
        self.memc: Dict[str, int] = defaultdict(int)

    def read(self, byte_addr: int, wrong: bool = False,
             prefetch: bool = False) -> int:
        c = self.c
        c["accesses"] += 1
        if wrong:
            c["wrong_accesses"] += 1
        if prefetch:
            c["prefetch_accesses"] += 1
        block = byte_addr >> self.block_bits
        s = self.sets[block & self.mask]
        flags = s.get(block)
        if flags is not None:
            del s[block]
            s[block] = flags
            c["hits"] += 1
            return self.hit_latency
        c["misses"] += 1
        memc = self.memc
        memc["reads"] += 1
        if len(s) >= self.assoc:
            victim = next(iter(s))
            vflags = s[victim]
            del s[victim]
            if vflags & DIRTY:
                memc["writes"] += 1
                c["writebacks_to_memory"] += 1
        s[block] = 0
        return self.mem_latency

    def writeback(self, byte_addr: int) -> None:
        c = self.c
        c["writebacks_in"] += 1
        block = byte_addr >> self.block_bits
        s = self.sets[block & self.mask]
        flags = s.get(block)
        if flags is not None:
            # lookup-then-set_flags, as the oracle does: LRU refresh.
            del s[block]
            s[block] = flags | DIRTY
            return
        if len(s) >= self.assoc:
            victim = next(iter(s))
            vflags = s[victim]
            del s[victim]
            if vflags & DIRTY:
                memc = self.memc
                memc["writes"] += 1
                c["writebacks_to_memory"] += 1
        s[block] = DIRTY


class _FastTU:
    """One thread unit: L1D/L1I/sidecar, branch unit, membuf, counters."""

    __slots__ = (
        "eng", "tu_id", "l2",
        "core", "m", "bp", "mb",
        "l1d_sets", "l1d_mask", "l1d_assoc", "l1d_bits",
        "l1i_sets", "l1i_mask", "l1i_assoc", "l1i_bits",
        "l1i_rid", "l1i_warm_n",
        "side", "side_cap", "load_hit_mask",
        "sd_table", "sd_cap", "sd_depth",
        "mb_stores", "mb_upstream", "mb_arrived", "mb_cap",
        "predictor", "bp_table", "bp_mask",
        "btb_sets", "btb_nsets", "btb_assoc",
        "penalty", "wrong_path", "wrong_fill_charge",
        "late_near", "late_far",
        "load_correct", "store_correct", "load_wrong",
    )

    def __init__(self, eng: "_FastMachine", tu_id: int) -> None:
        cfg = eng.cfg
        params = eng.params
        tu = cfg.tu
        self.eng = eng
        self.tu_id = tu_id
        self.l2 = eng.l2
        self.core: Dict[str, int] = defaultdict(int)
        self.m: Dict[str, int] = defaultdict(int)
        self.bp: Dict[str, int] = defaultdict(int)
        self.mb: Dict[str, int] = defaultdict(int)
        d = geometry_of(tu.l1d)
        self.l1d_sets: Dict[int, Dict[int, int]] = defaultdict(dict)
        self.l1d_mask = d.set_mask
        self.l1d_assoc = d.assoc
        self.l1d_bits = d.block_bits
        i = geometry_of(tu.l1i)
        self.l1i_sets: Dict[int, Dict[int, int]] = defaultdict(dict)
        self.l1i_mask = i.set_mask
        self.l1i_assoc = i.assoc
        self.l1i_bits = i.block_bits
        # Warm-prefix state for the i-fetch shortcut: the region whose
        # code this TU fetched last, and how many of its leading code
        # blocks are known resident-and-MRU (see execute()).
        self.l1i_rid = -1
        self.l1i_warm_n = 0
        kind = tu.sidecar.kind
        self.side: Optional[Dict[int, int]] = (
            None if kind is SidecarKind.NONE else {}
        )
        self.side_cap = tu.sidecar.entries
        self.sd_table: Dict[int, int] = {}
        self.sd_cap = 16
        self.sd_depth = 2
        self.mb_stores: Dict[int, bool] = {}
        self.mb_upstream: set = set()
        self.mb_arrived: set = set()
        self.mb_cap = tu.mem_buffer_entries
        if tu.branch.kind == "bimodal":
            # Inlined in execute(): a bimodal predictor is one table of
            # 2-bit saturating counters, cheap to keep as a flat list.
            self.predictor = None
            self.bp_table = [2] * (1 << tu.branch.table_bits)
            self.bp_mask = (1 << tu.branch.table_bits) - 1
        else:
            self.predictor = make_predictor(tu.branch)
            self.bp_table = None
            self.bp_mask = 0
        self.btb_nsets = tu.branch.btb_entries // tu.branch.btb_assoc
        self.btb_assoc = tu.branch.btb_assoc
        self.btb_sets: Dict[int, Dict[int, int]] = defaultdict(dict)
        self.penalty = tu.branch.mispredict_penalty
        self.wrong_path = cfg.wrong_exec.wrong_path
        self.wrong_fill_charge = (
            0.0 if kind is SidecarKind.WEC else params.wrong_fill_mshr_fraction
        )
        self.late_near = params.prefetch_late_cycles
        self.late_far = min(
            params.prefetch_late_far_cycles, 0.75 * eng.l2.mem_latency
        )
        # ``load_hit_mask``: flag bits that make an L1D load hit take a
        # policy-specific path (flag clearing, late charge, chained
        # prefetch).  A hit with none of these bits set behaves the same
        # under every policy — refresh, count, 1 cycle — and is inlined
        # in execute(); flagged hits drop into the policy method.
        if kind is SidecarKind.WEC:
            self.load_correct = self._load_correct_wec
            self.store_correct = self._store_correct_sidecar
            self.load_wrong = self._load_wrong_wec
            self.load_hit_mask = 0  # WEC hits never inspect flags
        elif kind is SidecarKind.VICTIM:
            self.load_correct = self._load_correct_vc
            self.store_correct = self._store_correct_sidecar
            self.load_wrong = self._load_wrong_vc
            self.load_hit_mask = WRONG
        elif kind is SidecarKind.PREFETCH:
            self.load_correct = self._load_correct_nlp
            self.store_correct = self._store_correct_nlp
            self.load_wrong = self._load_wrong_nlp
            self.load_hit_mask = WRONG | PREFETCHED
        elif kind is SidecarKind.STREAM:
            self.load_correct = self._load_correct_stream
            self.store_correct = self._store_correct_nlp
            self.load_wrong = self._load_wrong_nlp
            self.load_hit_mask = WRONG | PREFETCHED
        else:
            self.load_correct = self._load_correct_plain
            self.store_correct = self._store_correct_plain
            self.load_wrong = self._load_wrong_plain
            self.load_hit_mask = WRONG

    # -- shared memory-system helpers ----------------------------------

    def _writeback(self, block: int) -> None:
        m = self.m
        m["writebacks"] += 1
        self.l2.writeback(block << self.l1d_bits)

    def _side_insert(self, block: int, flags: int) -> None:
        """Sidecar insert + dirty-bump writeback (no victim accounting)."""
        side = self.side
        if block in side:
            del side[block]
            side[block] = flags
            return
        if len(side) >= self.side_cap:
            victim = next(iter(side))
            vflags = side[victim]
            del side[victim]
            if vflags & DIRTY:
                self._writeback(victim)
        side[block] = flags

    # The four fused fill/promote helpers below collapse the oracle's
    # read → insert → evict call chain into one frame.  Every call site
    # runs strictly after the L1D probe for ``block`` missed (fill paths
    # are miss paths, and flagged-hit paths return before filling), so
    # the inlined insert skips the LRU-refresh branch a general insert
    # would need.  The inlined L2 read is a literal transcription of
    # :meth:`_FastL2.read`; state-mutation order matches the unfused
    # sequence (L2 read first, then the L1 victim's writeback).

    def _fill_evict_l2(self, block: int, flags: int, wrong: bool = False) -> int:
        """Demand fill: L2 read, L1D insert, dirty victim → L2."""
        l2 = self.l2
        c2 = l2.c
        c2["accesses"] += 1
        if wrong:
            c2["wrong_accesses"] += 1
        b2 = (block << self.l1d_bits) >> l2.block_bits
        s2 = l2.sets[b2 & l2.mask]
        f2 = s2.get(b2)
        if f2 is not None:
            del s2[b2]
            s2[b2] = f2
            c2["hits"] += 1
            latency = l2.hit_latency
        else:
            c2["misses"] += 1
            memc = l2.memc
            memc["reads"] += 1
            if len(s2) >= l2.assoc:
                v2 = next(iter(s2))
                vf2 = s2[v2]
                del s2[v2]
                if vf2 & DIRTY:
                    memc["writes"] += 1
                    c2["writebacks_to_memory"] += 1
            s2[b2] = 0
            latency = l2.mem_latency
        s = self.l1d_sets[block & self.l1d_mask]
        if len(s) >= self.l1d_assoc:
            victim = next(iter(s))
            vflags = s[victim]
            del s[victim]
            if vflags & DIRTY:
                self.m["writebacks"] += 1
                l2.writeback(victim << self.l1d_bits)
        s[block] = flags
        return latency

    def _fill_evict_side(self, block: int, flags: int, wrong: bool = False) -> int:
        """Demand fill: L2 read, L1D insert, victim → sidecar."""
        l2 = self.l2
        c2 = l2.c
        c2["accesses"] += 1
        if wrong:
            c2["wrong_accesses"] += 1
        b2 = (block << self.l1d_bits) >> l2.block_bits
        s2 = l2.sets[b2 & l2.mask]
        f2 = s2.get(b2)
        if f2 is not None:
            del s2[b2]
            s2[b2] = f2
            c2["hits"] += 1
            latency = l2.hit_latency
        else:
            c2["misses"] += 1
            memc = l2.memc
            memc["reads"] += 1
            if len(s2) >= l2.assoc:
                v2 = next(iter(s2))
                vf2 = s2[v2]
                del s2[v2]
                if vf2 & DIRTY:
                    memc["writes"] += 1
                    c2["writebacks_to_memory"] += 1
            s2[b2] = 0
            latency = l2.mem_latency
        s = self.l1d_sets[block & self.l1d_mask]
        if len(s) >= self.l1d_assoc:
            victim = next(iter(s))
            vflags = s[victim]
            del s[victim]
            self.m["victims_to_sidecar"] += 1
            self._side_insert(victim, vflags)
        s[block] = flags
        return latency

    def _promote_evict_l2(self, block: int, flags: int) -> None:
        """Sidecar-hit promote: L1D insert, dirty victim → L2."""
        s = self.l1d_sets[block & self.l1d_mask]
        if len(s) >= self.l1d_assoc:
            victim = next(iter(s))
            vflags = s[victim]
            del s[victim]
            if vflags & DIRTY:
                self.m["writebacks"] += 1
                self.l2.writeback(victim << self.l1d_bits)
        s[block] = flags

    def _promote_evict_side(self, block: int, flags: int) -> None:
        """Sidecar-hit promote: L1D insert, victim → sidecar."""
        s = self.l1d_sets[block & self.l1d_mask]
        if len(s) >= self.l1d_assoc:
            victim = next(iter(s))
            vflags = s[victim]
            del s[victim]
            self.m["victims_to_sidecar"] += 1
            self._side_insert(victim, vflags)
        s[block] = flags

    # parity: repro.mem.hierarchy.TUMemSystem._prefetch_next_into_sidecar, repro.mem.hierarchy.TUMemSystem._prefetch_block_into_sidecar
    def _prefetch_block(self, target: int) -> None:
        """Fetch ``target`` into the sidecar (next-line and stream)."""
        if target in self.l1d_sets[target & self.l1d_mask] or target in self.side:
            return
        m = self.m
        m["prefetches"] += 1
        l2 = self.l2
        c2 = l2.c
        c2["accesses"] += 1
        c2["prefetch_accesses"] += 1
        b2 = (target << self.l1d_bits) >> l2.block_bits
        s2 = l2.sets[b2 & l2.mask]
        f2 = s2.get(b2)
        if f2 is not None:
            del s2[b2]
            s2[b2] = f2
            c2["hits"] += 1
            latency = l2.hit_latency
        else:
            c2["misses"] += 1
            memc = l2.memc
            memc["reads"] += 1
            if len(s2) >= l2.assoc:
                v2 = next(iter(s2))
                vf2 = s2[v2]
                del s2[v2]
                if vf2 & DIRTY:
                    memc["writes"] += 1
                    c2["writebacks_to_memory"] += 1
            s2[b2] = 0
            latency = l2.mem_latency
        flags = PREFETCHED
        if latency > l2.hit_latency:
            flags |= PF_FAR
        self._side_insert(target, flags)

    # -- WEC policy ----------------------------------------------------

    # parity: repro.mem.hierarchy.TUMemSystem._load_correct_wec
    def _load_correct_wec(self, addr: int):
        m = self.m
        m["loads"] += 1
        block = addr >> self.l1d_bits
        s = self.l1d_sets[block & self.l1d_mask]
        flags = s.get(block)
        if flags is not None:
            del s[block]
            s[block] = flags
            m["l1_hits"] += 1
            return 1
        m["l1_misses"] += 1
        side = self.side
        sflags = side.get(block)
        if sflags is not None:
            m["sidecar_hits"] += 1
            m["wec_promotions"] += 1
            if sflags & WRONG:
                m["useful_wrong_hits"] += 1
            if sflags & PREFETCHED:
                m["useful_prefetch_hits"] += 1
            del side[block]
            self._promote_evict_side(block, sflags & DIRTY)
            latency = 1
            if sflags & (WRONG | PREFETCHED):
                self._prefetch_block(block + 1)
                if sflags & PREFETCHED and not sflags & WRONG:
                    latency += (
                        self.late_far if sflags & PF_FAR else self.late_near
                    )
            return latency
        m["demand_fills"] += 1
        return 1 + self._fill_evict_side(block, 0)

    # parity: repro.mem.hierarchy.TUMemSystem._store_correct_wec, repro.mem.hierarchy.TUMemSystem._store_correct_vc
    def _store_correct_sidecar(self, addr: int):
        """Store under WEC and VC policies (identical in the oracle)."""
        m = self.m
        m["stores"] += 1
        block = addr >> self.l1d_bits
        s = self.l1d_sets[block & self.l1d_mask]
        flags = s.get(block)
        if flags is not None:
            del s[block]
            s[block] = flags
            m["l1_hits"] += 1
            if not flags & DIRTY:
                s[block] = flags | DIRTY
            return 1
        m["l1_misses"] += 1
        side = self.side
        sflags = side.get(block)
        if sflags is not None:
            m["sidecar_hits"] += 1
            if sflags & WRONG:
                m["useful_wrong_hits"] += 1
            if sflags & PREFETCHED:
                m["useful_prefetch_hits"] += 1
            del side[block]
            self._promote_evict_side(block, DIRTY)
            return 1
        m["demand_fills"] += 1
        return 1 + self._fill_evict_side(block, DIRTY)

    # parity: repro.mem.hierarchy.TUMemSystem._load_wrong_wec
    def _load_wrong_wec(self, addr: int):
        m = self.m
        m["wrong_loads"] += 1
        block = addr >> self.l1d_bits
        s = self.l1d_sets[block & self.l1d_mask]
        flags = s.get(block)
        if flags is not None:
            del s[block]
            s[block] = flags
            m["wrong_l1_hits"] += 1
            return 1
        side = self.side
        sflags = side.get(block)
        if sflags is not None:
            # Oracle uses lookup(): LRU refresh on a wrong WEC hit.
            del side[block]
            side[block] = sflags
            m["wrong_sidecar_hits"] += 1
            return 1
        m["wrong_fills"] += 1
        latency = self.l2.read(block << self.l1d_bits, wrong=True)
        self._side_insert(block, WRONG)
        return 1 + latency

    # -- victim-cache policy -------------------------------------------

    # parity: repro.mem.hierarchy.TUMemSystem._load_correct_vc
    def _load_correct_vc(self, addr: int):
        m = self.m
        m["loads"] += 1
        block = addr >> self.l1d_bits
        s = self.l1d_sets[block & self.l1d_mask]
        flags = s.get(block)
        if flags is not None:
            del s[block]
            s[block] = flags
            m["l1_hits"] += 1
            if flags & WRONG:
                m["useful_wrong_hits"] += 1
                s[block] = flags & ~WRONG
            return 1
        m["l1_misses"] += 1
        side = self.side
        sflags = side.get(block)
        if sflags is not None:
            m["sidecar_hits"] += 1
            if sflags & WRONG:
                m["useful_wrong_hits"] += 1
            if sflags & PREFETCHED:
                m["useful_prefetch_hits"] += 1
            del side[block]
            self._promote_evict_side(block, sflags & DIRTY)
            return 1
        m["demand_fills"] += 1
        return 1 + self._fill_evict_side(block, 0)

    # parity: repro.mem.hierarchy.TUMemSystem._load_wrong_vc
    def _load_wrong_vc(self, addr: int):
        m = self.m
        m["wrong_loads"] += 1
        block = addr >> self.l1d_bits
        s = self.l1d_sets[block & self.l1d_mask]
        flags = s.get(block)
        if flags is not None:
            del s[block]
            s[block] = flags
            m["wrong_l1_hits"] += 1
            return 1
        side = self.side
        sflags = side.get(block)
        if sflags is not None:
            m["wrong_sidecar_hits"] += 1
            del side[block]
            self._promote_evict_side(block, (sflags & DIRTY) | WRONG)
            return 1
        m["wrong_fills"] += 1
        return 1 + self._fill_evict_side(block, WRONG, wrong=True)

    # -- next-line prefetch policy -------------------------------------

    # parity: repro.mem.hierarchy.TUMemSystem._load_correct_nlp
    def _load_correct_nlp(self, addr: int):
        m = self.m
        m["loads"] += 1
        block = addr >> self.l1d_bits
        s = self.l1d_sets[block & self.l1d_mask]
        flags = s.get(block)
        if flags is not None:
            del s[block]
            s[block] = flags
            m["l1_hits"] += 1
            cur = flags
            if flags & WRONG:
                m["useful_wrong_hits"] += 1
                cur &= ~WRONG
                s[block] = cur
            if flags & PREFETCHED:
                late = self.late_far if flags & PF_FAR else self.late_near
                s[block] = cur & ~(PREFETCHED | PF_FAR)
                m["useful_prefetch_hits"] += 1
                self._prefetch_block(block + 1)
                return 1 + late
            return 1
        m["l1_misses"] += 1
        side = self.side
        sflags = side.get(block)
        if sflags is not None:
            m["sidecar_hits"] += 1
            if sflags & WRONG:
                m["useful_wrong_hits"] += 1
            if sflags & PREFETCHED:
                m["useful_prefetch_hits"] += 1
            del side[block]
            self._promote_evict_l2(block, sflags & DIRTY)
            self._prefetch_block(block + 1)
            if sflags & PREFETCHED:
                return 1 + (self.late_far if sflags & PF_FAR else self.late_near)
            return 1 + 0.0
        m["demand_fills"] += 1
        latency = self._fill_evict_l2(block, 0)
        self._prefetch_block(block + 1)
        return 1 + latency

    # parity: repro.mem.hierarchy.TUMemSystem._store_correct_nlp
    def _store_correct_nlp(self, addr: int):
        m = self.m
        m["stores"] += 1
        block = addr >> self.l1d_bits
        s = self.l1d_sets[block & self.l1d_mask]
        flags = s.get(block)
        if flags is not None:
            del s[block]
            s[block] = flags
            m["l1_hits"] += 1
            if not flags & DIRTY:
                s[block] = flags | DIRTY
            return 1
        m["l1_misses"] += 1
        side = self.side
        sflags = side.get(block)
        if sflags is not None:
            m["sidecar_hits"] += 1
            if sflags & WRONG:
                m["useful_wrong_hits"] += 1
            if sflags & PREFETCHED:
                m["useful_prefetch_hits"] += 1
            del side[block]
            self._promote_evict_l2(block, DIRTY)
            return 1
        m["demand_fills"] += 1
        return 1 + self._fill_evict_l2(block, DIRTY)

    # parity: repro.mem.hierarchy.TUMemSystem._load_wrong_nlp
    def _load_wrong_nlp(self, addr: int):
        m = self.m
        m["wrong_loads"] += 1
        block = addr >> self.l1d_bits
        s = self.l1d_sets[block & self.l1d_mask]
        flags = s.get(block)
        if flags is not None:
            del s[block]
            s[block] = flags
            m["wrong_l1_hits"] += 1
            return 1
        side = self.side
        sflags = side.get(block)
        if sflags is not None:
            m["wrong_sidecar_hits"] += 1
            del side[block]
            self._promote_evict_l2(block, (sflags & DIRTY) | WRONG)
            return 1
        m["wrong_fills"] += 1
        return 1 + self._fill_evict_l2(block, WRONG, wrong=True)

    # -- stream-prefetch policy ----------------------------------------
    #
    # The stream detector's insert/advance logic is inlined at its three
    # sites below (helper frames cost more than the logic itself): an
    # insert refreshes a present entry, else drops the FIFO-oldest at
    # capacity; a hit/miss on a tracked block pops it, chases
    # ``sd_depth`` blocks in its direction (non-negative targets only,
    # detector re-armed *before* the chase issues), and a miss with no
    # tracked stream arms both directions instead.

    def _stream_chase(self, block: int) -> None:
        """Pop + advance + chase for a prefetch-hit on ``block``."""
        table = self.sd_table
        direction = table.pop(block, None)
        if direction is None:
            direction = 1
        expected = block + direction
        if expected in table:
            del table[expected]
        elif len(table) >= self.sd_cap:
            del table[next(iter(table))]
        table[expected] = direction
        for i in range(1, self.sd_depth + 1):
            t = block + direction * i
            if t >= 0:
                self._prefetch_block(t)

    # parity: repro.mem.hierarchy.TUMemSystem._load_correct_stream
    def _load_correct_stream(self, addr: int):
        m = self.m
        m["loads"] += 1
        block = addr >> self.l1d_bits
        s = self.l1d_sets[block & self.l1d_mask]
        flags = s.get(block)
        if flags is not None:
            del s[block]
            s[block] = flags
            m["l1_hits"] += 1
            cur = flags
            if flags & WRONG:
                m["useful_wrong_hits"] += 1
                cur &= ~WRONG
                s[block] = cur
            if flags & PREFETCHED:
                late = self.late_far if flags & PF_FAR else self.late_near
                s[block] = cur & ~(PREFETCHED | PF_FAR)
                m["useful_prefetch_hits"] += 1
                self._stream_chase(block)
                return 1 + late
            return 1
        m["l1_misses"] += 1
        side = self.side
        sflags = side.get(block)
        if sflags is not None:
            m["sidecar_hits"] += 1
            if sflags & WRONG:
                m["useful_wrong_hits"] += 1
            if sflags & PREFETCHED:
                m["useful_prefetch_hits"] += 1
            del side[block]
            self._promote_evict_l2(block, sflags & DIRTY)
            self._stream_chase(block)
            if sflags & PREFETCHED:
                return 1 + (self.late_far if sflags & PF_FAR else self.late_near)
            return 1 + 0.0
        m["demand_fills"] += 1
        latency = self._fill_evict_l2(block, 0)
        table = self.sd_table
        direction = table.pop(block, None)
        if direction is not None:
            expected = block + direction
            if expected in table:
                del table[expected]
            elif len(table) >= self.sd_cap:
                del table[next(iter(table))]
            table[expected] = direction
            for i in range(1, self.sd_depth + 1):
                t = block + direction * i
                if t >= 0:
                    self._prefetch_block(t)
        else:
            for expected, d in ((block + 1, 1), (block - 1, -1)):
                if expected in table:
                    del table[expected]
                elif len(table) >= self.sd_cap:
                    del table[next(iter(table))]
                table[expected] = d
        return 1 + latency

    # -- plain policy --------------------------------------------------

    # parity: repro.mem.hierarchy.TUMemSystem._load_correct_plain
    def _load_correct_plain(self, addr: int):
        m = self.m
        m["loads"] += 1
        block = addr >> self.l1d_bits
        s = self.l1d_sets[block & self.l1d_mask]
        flags = s.get(block)
        if flags is not None:
            del s[block]
            s[block] = flags
            m["l1_hits"] += 1
            if flags & WRONG:
                m["useful_wrong_hits"] += 1
                s[block] = flags & ~WRONG
            return 1
        m["l1_misses"] += 1
        m["demand_fills"] += 1
        # Fill fused fully inline: the plain policy carries half the
        # config ladder, so even the one helper frame is worth shaving.
        l2 = self.l2
        c2 = l2.c
        c2["accesses"] += 1
        b2 = (block << self.l1d_bits) >> l2.block_bits
        s2 = l2.sets[b2 & l2.mask]
        f2 = s2.get(b2)
        if f2 is not None:
            del s2[b2]
            s2[b2] = f2
            c2["hits"] += 1
            latency = l2.hit_latency
        else:
            c2["misses"] += 1
            memc = l2.memc
            memc["reads"] += 1
            if len(s2) >= l2.assoc:
                v2 = next(iter(s2))
                vf2 = s2[v2]
                del s2[v2]
                if vf2 & DIRTY:
                    memc["writes"] += 1
                    c2["writebacks_to_memory"] += 1
            s2[b2] = 0
            latency = l2.mem_latency
        if len(s) >= self.l1d_assoc:
            victim = next(iter(s))
            vflags = s[victim]
            del s[victim]
            if vflags & DIRTY:
                m["writebacks"] += 1
                l2.writeback(victim << self.l1d_bits)
        s[block] = 0
        return 1 + latency

    # parity: repro.mem.hierarchy.TUMemSystem._store_correct_plain
    def _store_correct_plain(self, addr: int):
        m = self.m
        m["stores"] += 1
        block = addr >> self.l1d_bits
        s = self.l1d_sets[block & self.l1d_mask]
        flags = s.get(block)
        if flags is not None:
            del s[block]
            s[block] = flags
            m["l1_hits"] += 1
            if not flags & DIRTY:
                s[block] = flags | DIRTY
            return 1
        m["l1_misses"] += 1
        m["demand_fills"] += 1
        l2 = self.l2
        c2 = l2.c
        c2["accesses"] += 1
        b2 = (block << self.l1d_bits) >> l2.block_bits
        s2 = l2.sets[b2 & l2.mask]
        f2 = s2.get(b2)
        if f2 is not None:
            del s2[b2]
            s2[b2] = f2
            c2["hits"] += 1
            latency = l2.hit_latency
        else:
            c2["misses"] += 1
            memc = l2.memc
            memc["reads"] += 1
            if len(s2) >= l2.assoc:
                v2 = next(iter(s2))
                vf2 = s2[v2]
                del s2[v2]
                if vf2 & DIRTY:
                    memc["writes"] += 1
                    c2["writebacks_to_memory"] += 1
            s2[b2] = 0
            latency = l2.mem_latency
        if len(s) >= self.l1d_assoc:
            victim = next(iter(s))
            vflags = s[victim]
            del s[victim]
            if vflags & DIRTY:
                m["writebacks"] += 1
                l2.writeback(victim << self.l1d_bits)
        s[block] = DIRTY
        return 1 + latency

    # parity: repro.mem.hierarchy.TUMemSystem._load_wrong_plain
    def _load_wrong_plain(self, addr: int):
        m = self.m
        m["wrong_loads"] += 1
        block = addr >> self.l1d_bits
        s = self.l1d_sets[block & self.l1d_mask]
        flags = s.get(block)
        if flags is not None:
            del s[block]
            s[block] = flags
            m["wrong_l1_hits"] += 1
            return 1
        m["wrong_fills"] += 1
        l2 = self.l2
        c2 = l2.c
        c2["accesses"] += 1
        c2["wrong_accesses"] += 1
        b2 = (block << self.l1d_bits) >> l2.block_bits
        s2 = l2.sets[b2 & l2.mask]
        f2 = s2.get(b2)
        if f2 is not None:
            del s2[b2]
            s2[b2] = f2
            c2["hits"] += 1
            latency = l2.hit_latency
        else:
            c2["misses"] += 1
            memc = l2.memc
            memc["reads"] += 1
            if len(s2) >= l2.assoc:
                v2 = next(iter(s2))
                vf2 = s2[v2]
                del s2[v2]
                if vf2 & DIRTY:
                    memc["writes"] += 1
                    c2["writebacks_to_memory"] += 1
            s2[b2] = 0
            latency = l2.mem_latency
        if len(s) >= self.l1d_assoc:
            victim = next(iter(s))
            vflags = s[victim]
            del s[victim]
            if vflags & DIRTY:
                m["writebacks"] += 1
                l2.writeback(victim << self.l1d_bits)
        s[block] = WRONG
        return 1 + latency

    # -- instruction fetch ---------------------------------------------

    # parity: repro.mem.hierarchy.TUMemSystem.ifetch
    def _ifetch(self, addr: int) -> int:
        m = self.m
        m["ifetches"] += 1
        block = addr >> self.l1i_bits
        s = self.l1i_sets[block & self.l1i_mask]
        flags = s.get(block)
        if flags is not None:
            del s[block]
            s[block] = flags
            return 1
        m["l1i_misses"] += 1
        latency = self.l2.read(block << self.l1i_bits)
        if len(s) >= self.l1i_assoc:
            del s[next(iter(s))]
        s[block] = 0
        return 1 + latency

    # -- coherence hook ------------------------------------------------

    # parity: repro.mem.hierarchy.TUMemSystem.bus_update
    def bus_update(self, addr: int) -> bool:
        block = addr >> self.l1d_bits
        present = block in self.l1d_sets[block & self.l1d_mask] or (
            self.side is not None and block in self.side
        )
        if present:
            m = self.m
            m["bus_updates"] += 1
        return present

    # -- branch resolve ------------------------------------------------

    # parity: repro.branch.frontend.BranchUnit.resolve
    def _resolve(self, pc: int, taken: bool) -> bool:
        bp = self.bp
        bp["branches"] += 1
        predicted_taken = self.predictor.predict(pc)
        mispredicted = predicted_taken != taken
        if predicted_taken:
            s = self.btb_sets[(pc >> 2) % self.btb_nsets]
            target = s.get(pc)
            if target is None:
                if not mispredicted:
                    mispredicted = True
                    bp["btb_target_misses"] += 1
            else:
                del s[pc]
                s[pc] = target
        self.predictor.update(pc, taken)
        if taken:
            s = self.btb_sets[(pc >> 2) % self.btb_nsets]
            if pc in s:
                del s[pc]
            elif len(s) >= self.btb_assoc:
                del s[next(iter(s))]
            s[pc] = pc + 8
        if mispredicted:
            bp["mispredicts"] += 1
        return mispredicted

    # -- iteration execution -------------------------------------------

    # lint: allow(ENG002 dispatch loop: its counters are per-iteration bookkeeping spread across the oracle pipeline, not a single method transcription; every memory counter fuses under the tagged load/store handlers it calls)
    def execute(self, info: _RegionInfo, index: int, trace, sequential: bool,
                upstream_targets: Optional[List[int]]):
        """Replay one iteration/chunk; returns its four stage cycles."""
        eng = self.eng
        path = trace.path
        comp = info.compiled
        m = self.m
        mb = self.mb

        # Instruction fetch.  The oracle touches max(1, n_instr // 16)
        # consecutive 64-byte code blocks cyclically over the region's
        # footprint.  With the footprint within one L1I pass (block i in
        # set i mod n_sets — all distinct), only the first pass can miss;
        # repeats hit the just-touched MRU block with zero stall and no
        # net LRU movement.  Across executes we extend the shortcut with
        # a warm prefix: this TU's L1I is touched by nothing but its own
        # fetches, so once it has fetched the first ``warm_n`` blocks of
        # a region (and no other region since), those blocks are still
        # resident and MRU-in-their-set — re-touching them is a hit and
        # a no-op LRU refresh, skippable entirely.
        count = path.ifetch_count
        ifetch_stall = 0
        if info.ifetch_fast:
            m["ifetches"] += count
            footprint = comp.ifetch_footprint
            lim = count if count < footprint else footprint
            rid = id(info)
            if self.l1i_rid != rid:
                self.l1i_rid = rid
                self.l1i_warm_n = 0
            if lim > self.l1i_warm_n:
                base_block = comp.ifetch_base_block
                l1i_sets = self.l1i_sets
                l1i_mask = self.l1i_mask
                for j in range(self.l1i_warm_n, lim):
                    block = base_block + j
                    s = l1i_sets[block & l1i_mask]
                    flags = s.get(block)
                    if flags is not None:
                        del s[block]
                        s[block] = flags
                    else:
                        m["l1i_misses"] += 1
                        latency = self.l2.read(block << self.l1i_bits)
                        if len(s) >= self.l1i_assoc:
                            del s[next(iter(s))]
                        s[block] = 0
                        ifetch_stall += latency
                self.l1i_warm_n = lim
        else:
            self.l1i_rid = -1
            self.l1i_warm_n = 0
            base = info.code_base
            footprint = comp.ifetch_footprint
            for j in range(count):
                ifetch_stall += self._ifetch(base + (j % footprint) * 64) - 1

        if upstream_targets is not None:
            up = self.mb_upstream
            for a in upstream_targets:
                up.add(a)
            mb["targets_received"] += len(upstream_targets)

        load_stall = 0.0
        store_stall = 0
        mispredicts = 0
        wrong_loads = 0
        wrong_fill_lat = 0.0
        future_loads = None
        wrong_path = self.wrong_path
        if wrong_path and sequential:
            future_loads = comp.trace(eng.streams, eng.seed, index + 1).load_addrs
        load_addrs = trace.load_addrs
        store_addrs = trace.store_addrs
        branch_pcs = path.branch_pcs
        branch_taken = path.branch_taken
        load_correct = self.load_correct
        store_correct = self.store_correct
        load_wrong = self.load_wrong
        mb_stores = self.mb_stores
        mb_upstream = self.mb_upstream
        mb_arrived = self.mb_arrived
        # Hot-loop locals: counter bumps accumulate in ints and flush to
        # the dicts once per execute (dict equality at collect time does
        # not depend on update order); cache/branch structure lookups
        # are inlined for the common cases and fall back to the policy
        # methods/resolve for the rest.
        l1d = self.l1d_sets
        l1d_mask = self.l1d_mask
        l1d_bits = self.l1d_bits
        hit_mask = self.load_hit_mask
        bp_table = self.bp_table
        btb = self.btb_sets
        btb_assoc = self.btb_assoc
        loads_n = 0
        hits_n = 0
        stores_n = 0
        buffered_n = 0
        btb_tm_n = 0
        n_branches = len(branch_pcs)
        bp_slots = btb_sis = None
        mis_list = None
        replaying = False
        events = path.events
        if bp_table is not None and eng.br_replay is not None:
            # Branch-stream replay: this execute()'s outcomes were
            # recorded by the sweep's first configuration (the stream is
            # config-independent, see _BRANCH_STREAMS).  Counters are
            # bumped in bulk below; the event list shrinks to what the
            # memory system still needs — every branch event kept is a
            # recorded mispredict (wrong-path burst site), and without
            # wrong-path execution none are kept at all.
            rec = eng.br_replay[eng.br_pos]
            eng.br_pos += 1
            if rec[0] != n_branches:
                raise SimulationError(
                    "fast engine: branch-stream replay misaligned "
                    f"({rec[0]} recorded branches vs {n_branches} in path)"
                )
            btb_tm_n = rec[1]
            mis_idxs = rec[2]
            mispredicts = len(mis_idxs)
            replaying = True
            if wrong_path and mis_idxs:
                events = rec[3]
                if events is None:
                    mis = frozenset(mis_idxs)
                    events = rec[3] = [
                        e for e in path.events
                        if e[0] != EV_BRANCH or e[1] in mis
                    ]
            else:
                events = rec[4]
                if events is None:
                    events = rec[4] = eng.mem_events(path)
        else:
            if bp_table is not None and eng.br_record is not None:
                mis_list = []
            bp_slots, btb_sis = eng.branch_aux(
                path, self.bp_mask, self.btb_nsets
            )
        for kind, idx in events:
            if kind == EV_LOAD:
                value = load_addrs[idx]
                if not sequential:
                    if value in mb_stores:
                        mb["local_forwards"] += 1
                    elif value in mb_upstream:
                        mb["dependence_hits"] += 1
                        if value not in mb_arrived:
                            mb["dependence_stalls"] += 1
                block = value >> l1d_bits
                s = l1d[block & l1d_mask]
                f = s.get(block)
                if f is not None and not f & hit_mask:
                    # Plain hit: refresh + count, 1 cycle — identical
                    # under every policy (flagged hits take the method).
                    del s[block]
                    s[block] = f
                    loads_n += 1
                    hits_n += 1
                else:
                    load_stall += load_correct(value) - 1
            elif kind == EV_BRANCH:
                if replaying:
                    # Every surviving branch event is a recorded
                    # mispredict; inject its wrong-path load burst at
                    # the same event position the live resolve would.
                    burst = 0
                    for a in comp.wrong_path_addrs(
                        eng.streams, eng.seed, trace, idx, index,
                        future_loads,
                    ):
                        wrong_fill_lat += load_wrong(a) - 1
                        burst += 1
                    wrong_loads += burst
                    continue
                if bp_table is None:
                    mispredicted = self._resolve(
                        branch_pcs[idx], branch_taken[idx]
                    )
                else:
                    # Inlined BranchUnit.resolve with a bimodal table.
                    slot = bp_slots[idx]
                    c = bp_table[slot]
                    taken = branch_taken[idx]
                    predicted_taken = c >= 2
                    mispredicted = predicted_taken != taken
                    if predicted_taken:
                        bs = btb[btb_sis[idx]]
                        pc = branch_pcs[idx]
                        target = bs.get(pc)
                        if target is None:
                            if not mispredicted:
                                mispredicted = True
                                btb_tm_n += 1
                        else:
                            del bs[pc]
                            bs[pc] = target
                    if taken:
                        if c < 3:
                            bp_table[slot] = c + 1
                        bs = btb[btb_sis[idx]]
                        pc = branch_pcs[idx]
                        if pc in bs:
                            del bs[pc]
                        elif len(bs) >= btb_assoc:
                            del bs[next(iter(bs))]
                        bs[pc] = pc + 8
                    elif c > 0:
                        bp_table[slot] = c - 1
                if mispredicted:
                    mispredicts += 1
                    if mis_list is not None:
                        mis_list.append(idx)
                    if wrong_path:
                        burst = 0
                        for a in comp.wrong_path_addrs(
                            eng.streams, eng.seed, trace, idx, index, future_loads
                        ):
                            wrong_fill_lat += load_wrong(a) - 1
                            burst += 1
                        wrong_loads += burst
            else:  # store / target store
                value = store_addrs[idx]
                if sequential:
                    block = value >> l1d_bits
                    s = l1d[block & l1d_mask]
                    f = s.get(block)
                    if f is not None:
                        # Store hit: refresh + mark dirty, 1 cycle —
                        # identical under every policy.
                        del s[block]
                        s[block] = f | DIRTY
                        stores_n += 1
                        hits_n += 1
                    else:
                        store_stall += store_correct(value) - 1
                    eng.sequential_store(self.tu_id, value)
                else:
                    if len(mb_stores) >= self.mb_cap and value not in mb_stores:
                        mb["overflows"] += 1
                    else:
                        mb_stores[value] = (
                            mb_stores.get(value, False) or kind == EV_TSTORE
                        )
                        buffered_n += 1

        if wrong_fill_lat and self.wrong_fill_charge:
            load_stall += wrong_fill_lat * self.wrong_fill_charge

        if not sequential:
            committed = list(mb_stores.items())
            mb["writebacks"] += 1
            mb_stores.clear()
            mb_upstream.clear()
            mb_arrived.clear()
            for addr, _is_target in committed:
                block = addr >> l1d_bits
                s = l1d[block & l1d_mask]
                f = s.get(block)
                if f is not None:
                    del s[block]
                    s[block] = f | DIRTY
                    stores_n += 1
                    hits_n += 1
                else:
                    store_stall += store_correct(addr) - 1

        if loads_n:
            m["loads"] += loads_n
        if stores_n:
            m["stores"] += stores_n
        if hits_n:
            m["l1_hits"] += hits_n
        if buffered_n:
            mb["stores_buffered"] += buffered_n
        if mis_list is not None:
            eng.br_record.append(
                [n_branches, btb_tm_n, tuple(mis_list), None, None]
            )
        # The _resolve fallback bumps the bp dict itself; flush only the
        # inlined-bimodal accumulators (live or replayed).
        if n_branches and bp_table is not None:
            bp = self.bp
            bp["branches"] += n_branches
            if mispredicts:
                bp["mispredicts"] += mispredicts
            if btb_tm_n:
                bp["btb_target_misses"] += btb_tm_n

        core = self.core
        key = "iterations" if not sequential else "chunks"
        core[key] = core.get(key, 0) + 1
        core["instructions"] += path.n_instr
        if wrong_loads:
            core["wrong_path_loads"] += wrong_loads

        # Timing assembly — identical float grouping to the oracle's
        # CoreTimingModel.iteration_timing.
        base_key = id(path)
        stages = eng.split_memo.get(base_key)
        if stages is None:
            stages = info.split.cycles(eng.timing.base_cycles(path.mix, info.ilp))
            eng.split_memo[base_key] = stages
        cont, tsag, comp_c, wb = stages
        mem_stall = float(load_stall) / eng.mlp
        store_w = float(store_stall) * STORE_STALL_WEIGHT / eng.mlp
        branch_stall = float(mispredicts * self.penalty)
        comp_c += mem_stall + branch_stall + float(ifetch_stall)
        wb += store_w
        return cont, tsag, comp_c, wb

    # lint: allow(ENG002 wrong-thread driver: mirrors the oracle's scheduler loop, not one method; its load counters fuse under the tagged _load_wrong_* handlers)
    def run_wrong_thread(self, comp: CompiledRegion, info: _RegionInfo,
                         start_iter: int) -> int:
        eng = self.eng
        load_wrong = self.load_wrong
        n = 0
        n_tus = eng.n_tus
        for round_ in range(info.wth_max_iters):
            it = start_iter + round_ * n_tus
            for addr in comp.wrong_thread_addrs(eng.streams, eng.seed, it):
                load_wrong(addr)
                n += 1
        core = self.core
        if n:
            core["wrong_thread_loads"] += n
        # The wrong thread reaches its own abort: squash buffered state.
        mb = self.mb
        n_squashed = len(self.mb_stores)
        mb["aborts"] += 1
        if n_squashed:
            mb["stores_squashed"] += n_squashed
        self.mb_stores.clear()
        self.mb_upstream.clear()
        self.mb_arrived.clear()
        core["wrong_threads"] += 1
        return n


class _FastMachine:
    """All per-run state of one fast simulation."""

    __slots__ = (
        "cfg", "params", "l2", "tus", "bus_c", "head_tu", "n_tus",
        "streams", "seed", "timing", "mlp", "split_memo", "region_info",
        "branch_memo", "mem_memo", "br_record", "br_replay", "br_pos",
    )

    def __init__(self, cfg: MachineConfig, params: SimParams) -> None:
        self.cfg = cfg
        self.params = params
        self.l2 = _FastL2(cfg)
        self.n_tus = cfg.n_thread_units
        self.tus = [_FastTU(self, i) for i in range(cfg.n_thread_units)]
        self.bus_c: Dict[str, int] = defaultdict(int)
        self.head_tu = 0
        self.streams = FastStreamFactory(params.seed)
        self.seed = params.seed
        self.timing = CoreTimingModel(cfg.tu, params)
        self.mlp = self.timing.mlp
        self.split_memo: Dict[int, Tuple[float, float, float, float]] = {}
        self.region_info: Dict[int, _RegionInfo] = {}
        self.branch_memo: Dict[int, Tuple[List[int], List[int]]] = {}
        self.mem_memo: Dict[int, List[Tuple[int, int]]] = {}
        # Branch-stream record/replay (see _BRANCH_STREAMS): at most one
        # of the two is set.  ``br_pos`` is the replay cursor, advanced
        # once per execute() call across all TUs.
        self.br_record: Optional[_BranchStream] = None
        self.br_replay: Optional[_BranchStream] = None
        self.br_pos = 0

    def branch_aux(
        self, path, bp_mask: int, btb_nsets: int
    ) -> Tuple[List[int], List[int]]:
        """Per-path predictor slots and BTB set indices.

        The branch PCs of a path are constant, so the bimodal table slot
        and BTB set of each branch are precomputed once per path (the
        geometry is identical on every TU of one machine).
        """
        aux = self.branch_memo.get(id(path))
        if aux is None:
            pcs = path.branch_pcs
            aux = (
                [(pc >> 2) & bp_mask for pc in pcs],
                [(pc >> 2) % btb_nsets for pc in pcs],
            )
            self.branch_memo[id(path)] = aux
        return aux

    def mem_events(self, path) -> List[Tuple[int, int]]:
        """The path's event list with branch events dropped.

        Used by branch-stream replay on configurations without
        wrong-path execution: with branch outcomes known in bulk, the
        event loop only needs the loads and stores, whose relative
        order is all the memory state depends on.
        """
        evs = self.mem_memo.get(id(path))
        if evs is None:
            evs = [e for e in path.events if e[0] != EV_BRANCH]
            self.mem_memo[id(path)] = evs
        return evs

    def _info(self, region) -> _RegionInfo:
        info = self.region_info.get(id(region))
        if info is None:
            l1i = self.cfg.tu.l1i
            info = _RegionInfo(
                compiled_region_for(region), self.cfg,
                l1i.n_sets, l1i.block_size,
            )
            self.region_info[id(region)] = info
        return info

    # lint: allow(ENG002 inlined bus probe: transcribes two oracle sites (sequential_store + bus_update accounting) whose counters cannot be expressed as one qualname; covered by diff-smoke bit-identity)
    def sequential_store(self, writer_tu: int, addr: int) -> None:
        bus_c = self.bus_c
        bus_c["store_broadcasts"] += 1
        updated = 0
        # Inlined tu.bus_update(addr) — a presence probe, no state
        # change beyond the accounting counter.  All TUs share one cache
        # geometry, so the block/set math hoists out of the probe loop;
        # ``sets.get`` keeps the probe from materializing empty sets in
        # the lazy defaultdict.
        tus = self.tus
        block = addr >> tus[0].l1d_bits
        si = block & tus[0].l1d_mask
        for tu in tus:
            if tu.tu_id == writer_tu:
                continue
            s = tu.l1d_sets.get(si)
            if (s is not None and block in s) or (
                tu.side is not None and block in tu.side
            ):
                tu.m["bus_updates"] += 1
                updated += 1
        if updated:
            bus_c["updates_delivered"] += updated

    # -- regions -------------------------------------------------------

    def run_parallel_region(self, region, invocation: int):
        info = self._info(region)
        comp = info.compiled
        n_tus = self.n_tus
        lo, hi = region.global_iter_range(invocation)
        if hi <= lo:
            raise SimulationError(f"region {region.name}: empty iteration range")
        tu_free = [0.0] * n_tus
        prev_cont_end = 0.0
        prev_comp_end = 0.0
        prev_comp_len = 0.0
        prev_wb_end = 0.0
        prev_targets: Optional[List[int]] = None
        region_end = 0.0
        coupling = info.coupling
        multi_tu = n_tus > 1
        streams = self.streams
        seed = self.seed
        tus = self.tus
        for i in range(lo, hi):
            tu = tus[i % n_tus]
            trace = comp.trace(streams, seed, i)
            cont, tsag, comp_c, wb = tu.execute(
                info, i, trace, sequential=False, upstream_targets=prev_targets
            )
            first = i == lo
            fork_cost = info.fork_cost if (not first and multi_tu) else 0.0
            start, cont_end, comp_end, wb_end = compose_pipeline_step(
                first, prev_cont_end if not first else 0.0, fork_cost,
                tu_free[tu.tu_id], cont, tsag, comp_c, wb,
                coupling, prev_comp_end, prev_comp_len, prev_wb_end,
            )
            tu_free[tu.tu_id] = wb_end
            prev_cont_end = cont_end
            prev_comp_end = comp_end
            prev_comp_len = comp_c
            prev_wb_end = wb_end
            if wb_end > region_end:
                region_end = wb_end
            prev_targets = trace.targets
        wrong_loads = 0
        if self.cfg.wrong_exec.wrong_thread and multi_tu:
            for k in range(n_tus - 1):
                wrong_iter = hi + k
                wrong_loads += tus[wrong_iter % n_tus].run_wrong_thread(
                    comp, info, wrong_iter
                )
        self.head_tu = (hi - 1) % n_tus
        return region_end, hi - lo, wrong_loads

    def run_sequential_region(self, region, invocation: int):
        info = self._info(region)
        comp = info.compiled
        tu = self.tus[self.head_tu]
        lo, hi = region.global_chunk_range(invocation)
        cycles = 0.0
        streams = self.streams
        seed = self.seed
        for c in range(lo, hi):
            trace = comp.trace(streams, seed, c)
            cont, tsag, comp_c, wb = tu.execute(
                info, c, trace, sequential=True, upstream_targets=None
            )
            cycles += cont + tsag + comp_c + wb
        return cycles, hi - lo

    # -- statistics ----------------------------------------------------

    def collect_stats(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for tu in self.tus:
            i = tu.tu_id
            for k, v in tu.core.items():
                out[f"tu{i}.core.{k}"] = v
            for k, v in tu.m.items():
                out[f"tu{i}.mem.{k}"] = v
            for k, v in tu.bp.items():
                out[f"tu{i}.bpred.{k}"] = v
            for k, v in tu.mb.items():
                out[f"tu{i}.membuf.{k}"] = v
        for k, v in self.l2.c.items():
            out[f"l2.{k}"] = v
        for k, v in self.l2.memc.items():
            out[f"mem.{k}"] = v
        for k, v in self.bus_c.items():
            out[f"bus.{k}"] = v
        return out

    def reset_statistics(self) -> None:
        groups = [self.l2.c, self.l2.memc, self.bus_c]
        for tu in self.tus:
            groups.extend((tu.core, tu.m, tu.bp, tu.mb))
        for group in groups:
            for k in group:
                group[k] = 0

    def aggregate(self, name: str) -> int:
        return sum(tu.m.get(name, 0) for tu in self.tus)


def run_program_fast(
    program: Program,
    config: MachineConfig,
    params: SimParams = SimParams(),
) -> SimResult:
    """Fast-engine equivalent of :func:`repro.sim.driver.run_program`.

    Takes no tracer/profiler/sanitizer/attrib: observers require the
    oracle's event-level replay (the driver enforces this).  The result
    is bit-identical to the oracle's for any program and configuration.
    """
    eng = _FastMachine(config, params)
    bcfg = config.tu.branch
    br_streams = br_key = None
    if bcfg.kind == "bimodal":
        br_streams = _branch_streams_for(program)
        br_key = (
            params.seed, config.n_thread_units,
            bcfg.table_bits, bcfg.btb_entries, bcfg.btb_assoc,
        )
        recorded = br_streams.get(br_key)
        if recorded is not None:
            eng.br_replay = recorded
        else:
            eng.br_record = []
    total = 0.0
    par_cycles = 0.0
    seq_cycles = 0.0
    wrong_thread_loads = 0
    region_records = []
    warmup = min(params.warmup_invocations, program.n_invocations - 1)
    stats_live = warmup == 0
    for invocation, region in program.schedule():
        if not stats_live and invocation >= warmup:
            eng.reset_statistics()
            stats_live = True
        if isinstance(region, ParallelRegionSpec):
            kind = "parallel"
            cycles, iterations, wtl = eng.run_parallel_region(region, invocation)
            if stats_live:
                par_cycles += cycles
                wrong_thread_loads += wtl
        else:
            kind = "sequential"
            cycles, iterations = eng.run_sequential_region(region, invocation)
            if stats_live:
                seq_cycles += cycles
        if not stats_live:
            continue
        total += cycles
        if params.record_regions:
            region_records.append(
                {
                    "name": region.name,
                    "kind": kind,
                    "invocation": invocation,
                    "cycles": cycles,
                    "iterations": iterations,
                }
            )
    if eng.br_record is not None:
        # Only a completed run publishes its stream (a raised exception
        # above leaves the cache untouched).
        br_streams[br_key] = eng.br_record
    counters = eng.collect_stats()
    instructions = sum(tu.core.get("instructions", 0) for tu in eng.tus)
    return SimResult(
        benchmark=program.name,
        config=config.name,
        n_tus=config.n_thread_units,
        total_cycles=total,
        parallel_cycles=par_cycles,
        sequential_cycles=seq_cycles,
        instructions=instructions,
        l1_traffic=sum(
            tu.m.get("loads", 0) + tu.m.get("stores", 0)
            + tu.m.get("wrong_loads", 0)
            for tu in eng.tus
        ),
        l1_misses=eng.aggregate("l1_misses"),
        effective_misses=eng.aggregate("demand_fills"),
        wrong_loads=eng.aggregate("wrong_loads"),
        wrong_thread_loads=wrong_thread_loads,
        sidecar_hits=eng.aggregate("sidecar_hits"),
        prefetches=eng.aggregate("prefetches"),
        useful_wrong_hits=eng.aggregate("useful_wrong_hits"),
        useful_prefetch_hits=eng.aggregate("useful_prefetch_hits"),
        branches=sum(tu.bp.get("branches", 0) for tu in eng.tus),
        mispredicts=sum(tu.bp.get("mispredicts", 0) for tu in eng.tus),
        l2_accesses=eng.l2.c.get("accesses", 0),
        l2_misses=eng.l2.c.get("misses", 0),
        counters=counters,
        region_cycles=region_records,
        seed=params.seed,
        scale=params.scale,
        interval_series=None,
        attribution=None,
    )
