"""Sweep execution engine: parallel fan-out plus a persistent result cache.

Every figure and ablation in the reproduction is a (benchmark ×
configuration) grid of *pure* simulations: ``run_program`` is a function
of ``(benchmark name, MachineConfig, SimParams)`` and nothing else — the
configuration dataclasses are frozen and every RNG stream is derived
from ``params.seed``.  This module exploits that purity twice:

* **Process fan-out** — grid cells are independent, so :func:`run_cells`
  distributes them over a ``ProcessPoolExecutor``.  Each worker rebuilds
  its own ``TraceGenerator`` from ``params.seed`` exactly as the serial
  path does, so parallel results are bit-identical to serial ones.
  When ``jobs <= 1``, only one cell needs executing, or the platform
  cannot ``fork`` (the only start method that is safe without a
  ``__main__`` guard), execution gracefully falls back to the serial
  in-process path.

* **Content-addressed caching** — a :class:`DiskCache` under
  ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``) persists every
  :class:`~repro.sim.results.SimResult`, keyed by a SHA-256 over the
  *complete* canonicalized config/params dataclasses plus a
  code-version token (a hash of the installed ``repro`` sources).  Any
  change to a config field or to the simulator invalidates exactly the
  affected entries; re-running a bench file or tool on unchanged code
  is near-instant.  Set ``REPRO_NO_CACHE=1`` (or pass ``cache=False``)
  to bypass it.

Observability: :func:`run_cells` returns a :class:`SweepOutcome` whose
:class:`SweepStats` record per-cell wall-clock, cache hit/miss counts
and worker failures keyed by the failing ``(benchmark, label)`` cell —
never a bare traceback — and can be written out as a JSON run manifest.

Quickstart::

    from repro.sim.executor import SweepCell, run_cells

    cells = [SweepCell("181.mcf", name, named_config(name), params)
             for name in CONFIG_NAMES]
    outcome = run_cells(cells, jobs=4)
    outcome.results[("181.mcf", "wth-wp-wec")]   # -> SimResult
    outcome.stats.cache_hits, outcome.stats.executed
"""

from __future__ import annotations

import dataclasses
import enum
import gc
import hashlib
import json
import multiprocessing
import os
import tempfile
import time
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from ..common.config import MachineConfig, SimParams
from ..common.errors import AnalysisError, ConfigError, SweepError
from ..obs.hostprof import HostProfiler, peak_rss_kb
from ..obs.ledger import Ledger, PerfRecord, default_perf_dir
from ..obs.telemetry import (
    EV_CACHE_PRUNE,
    EV_CELL_FAILED,
    EV_CELL_RESOLVED,
    EV_SWEEP_DONE,
    M_CACHE_EVICTED_BYTES,
    M_CACHE_EVICTIONS,
    M_CACHE_PRUNE_PASSES,
    M_CELL_LATENCY,
    M_CELLS_TOTAL,
    M_QUEUE_DEPTH,
    M_WORKERS_ALIVE,
    M_WORKERS_BUSY,
    MetricsRegistry,
    NullLog,
    StructuredLog,
    standard_registry,
)
from ..workloads.benchmarks import build_benchmark
from ..workloads.program import Program
from .driver import ENGINES, run_program
from .results import SimResult

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CELL_WIRE_SCHEMA_VERSION",
    "CacheStats",
    "CellFailure",
    "CellRecord",
    "DiskCache",
    "PruneResult",
    "SweepCell",
    "SweepOutcome",
    "SweepStats",
    "cell_key",
    "code_version_token",
    "config_fingerprint",
    "default_cache_root",
    "default_cache_quota_mb",
    "default_engine",
    "default_jobs",
    "run_cell",
    "run_cell_request",
    "run_cells",
]

#: Bumped whenever the on-disk entry layout changes; part of the cache path.
CACHE_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Content-addressed keys
# ---------------------------------------------------------------------------


def _canonical(obj: object) -> object:
    """Reduce ``obj`` to a JSON-stable structure covering *every* field.

    Dataclasses contribute their class name and all declared fields (so
    adding a field automatically changes every fingerprint), enums their
    value, containers their canonicalized elements.  Unknown objects
    fall back to ``repr``.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: Dict[str, object] = {"__class__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = _canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, (list, tuple)):
        return [_canonical(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    return repr(obj)


def config_fingerprint(obj: object) -> str:
    """SHA-256 hex digest of a canonicalized (frozen) dataclass.

    Unlike a hand-maintained format string this covers every declared
    field — two configs differing in *any* knob (L2 latency, memory
    ports, stream-prefetcher parameters, ...) always get distinct
    fingerprints.
    """
    payload = json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


_code_token: Optional[str] = None


def code_version_token() -> str:
    """A hash of the installed ``repro`` sources (cached per process).

    Folded into every cache key so that editing the simulator invalidates
    stale results instead of silently replaying them.
    """
    global _code_token
    if _code_token is None:
        root = Path(__file__).resolve().parent.parent  # src/repro
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode("utf-8"))
            h.update(path.read_bytes())
        _code_token = h.hexdigest()[:16]
    return _code_token


def cell_key(
    benchmark: str, config: MachineConfig, params: SimParams
) -> str:
    """Content-addressed identity of one grid cell.

    Covers the benchmark name, the full machine configuration, the full
    simulation parameters and the code-version token — everything
    ``run_program`` depends on.
    """
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "code": code_version_token(),
            "benchmark": benchmark,
            "config": _canonical(config),
            "params": _canonical(params),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Persistent result cache
# ---------------------------------------------------------------------------


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def default_cache_quota_mb() -> Optional[float]:
    """``$REPRO_CACHE_MAX_MB`` as a positive float, or ``None`` (no quota).

    A quota makes the cache safe to share between tenants of the sweep
    service: without one, every submitted grid grows the directory
    forever.  A malformed or non-positive value is a loud
    :class:`ConfigError` — a typo'd quota silently meaning "unlimited"
    is exactly the failure mode a quota exists to prevent.
    """
    raw = os.environ.get("REPRO_CACHE_MAX_MB", "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_CACHE_MAX_MB={raw!r} is not a number (megabytes)"
        ) from None
    if value <= 0:
        raise ConfigError(f"REPRO_CACHE_MAX_MB={raw!r} must be positive")
    return value


@dataclass
class CacheStats:
    """Size accounting for one :class:`DiskCache` directory.

    ``prune_passes``/``evicted_entries``/``evicted_bytes`` are the
    *lifetime* quota-eviction totals of this cache directory, persisted
    in a sidecar next to the entry tree (see
    :meth:`DiskCache.eviction_totals`) so they survive process restarts
    and aggregate across the service's worker subprocesses.
    """

    root: str
    entries: int = 0
    total_bytes: int = 0
    quota_mb: Optional[float] = None
    prune_passes: int = 0
    evicted_entries: int = 0
    evicted_bytes: int = 0
    last_prune_ts: Optional[float] = None

    @property
    def total_mb(self) -> float:
        return self.total_bytes / (1024 * 1024)

    def to_dict(self) -> Dict:
        return {
            "root": self.root,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "total_mb": self.total_mb,
            "quota_mb": self.quota_mb,
            "prune_passes": self.prune_passes,
            "evicted_entries": self.evicted_entries,
            "evicted_bytes": self.evicted_bytes,
            "last_prune_ts": self.last_prune_ts,
        }


@dataclass
class PruneResult:
    """What one :meth:`DiskCache.prune` pass removed and kept."""

    removed: int = 0
    freed_bytes: int = 0
    kept: int = 0
    kept_bytes: int = 0


def _json_default(obj: object) -> object:
    # numpy scalars (np.int64 cycle counts etc.) leak into counter dumps;
    # .item() turns them into plain Python numbers.
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


class DiskCache:
    """Content-addressed :class:`SimResult` store under one directory.

    Layout: ``<root>/results/v<schema>/<key[:2]>/<key>.json`` — one JSON
    document per cell, sharded by key prefix to keep directories small.
    Writes go through a uniquely named temp file in the entry's own
    directory (:func:`tempfile.mkstemp`) followed by an atomic
    ``os.replace``: two workers — processes *or* threads — filling the
    same key concurrently each publish a complete document and the last
    writer wins; a reader can never observe a torn entry.  Unreadable
    entries are treated as misses and deleted.

    Eviction: when a quota is set (``max_mb`` argument or
    ``$REPRO_CACHE_MAX_MB``), :meth:`put` periodically prunes the
    least-recently-*used* entries — :meth:`get` refreshes an entry's
    mtime on every hit, so hot cells survive and cold ones age out.
    The scan runs every :data:`PRUNE_INTERVAL` puts (``1`` = every put),
    so the directory can transiently overshoot the quota by at most that
    many entries between scans.
    """

    #: Puts between quota scans (``$REPRO_CACHE_PRUNE_EVERY`` overrides;
    #: a full-directory size scan per put would make large sweeps O(n²)).
    PRUNE_INTERVAL = 16

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        max_mb: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
        log: Union[StructuredLog, NullLog, None] = None,
    ) -> None:
        base = Path(root) if root is not None else default_cache_root()
        self.base = base
        self.root = base / "results" / f"v{CACHE_SCHEMA_VERSION}"
        #: Lifetime eviction totals live *next to* the entry tree, never
        #: under it — ``_entries``/``prune`` rglob the tree and must not
        #: count (or evict) the bookkeeping file.
        self._totals_path = base / "eviction-totals.json"
        self.max_mb = max_mb if max_mb is not None else default_cache_quota_mb()
        self.registry = registry
        self.log = log if log is not None else NullLog()
        try:
            self._prune_interval = max(
                1, int(os.environ.get("REPRO_CACHE_PRUNE_EVERY",
                                      str(self.PRUNE_INTERVAL)))
            )
        except ValueError:
            self._prune_interval = self.PRUNE_INTERVAL
        self._puts_since_prune = 0
        self._write_warned = False
        #: Telemetry baseline: only evictions that happen *after* this
        #: instance opened the directory count into its registry —
        #: historical totals belong to past runs' metrics, not this one's.
        self._synced = self.eviction_totals()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def contains(self, key: str) -> bool:
        """Cheap existence probe (no read/validate; ``get`` still decides)."""
        return self._path(key).is_file()

    def get(self, key: str) -> Optional[SimResult]:
        """The cached result for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                result = SimResult.from_dict(json.load(fh))
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt/incompatible entry (unreadable file, bad JSON, or a
            # schema drift from_dict rejects): drop it, treat as a miss.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            # LRU bookkeeping: a hit marks the entry recently used so
            # quota pruning evicts cold cells first.
            os.utime(path)
        except OSError:
            pass
        return result

    def put(self, key: str, result: SimResult) -> None:
        """Persist ``result`` under ``key`` (atomic, last-writer-wins).

        Best-effort: the cache is an optimization, so an unwritable or
        misconfigured cache directory degrades to uncached operation
        (with a one-time warning) instead of failing the sweep.
        """
        path = self._path(key)
        tmp: Optional[str] = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # mkstemp (not a pid-derived name): unique per *writer*, so
            # two threads of one process racing on the same key cannot
            # interleave writes into a shared temp file.
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(result.to_dict(), fh, default=_json_default)
            os.replace(tmp, path)
            tmp = None
        except OSError as exc:
            if not self._write_warned:
                self._write_warned = True
                warnings.warn(
                    f"result cache at {self.root} is not writable ({exc}); "
                    "continuing without persisting results",
                    RuntimeWarning,
                    stacklevel=2,
                )
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        if self.max_mb is not None:
            self._puts_since_prune += 1
            if self._puts_since_prune >= self._prune_interval:
                self._puts_since_prune = 0
                self.prune(self.max_mb)

    def _entries(self) -> List[Tuple[Path, float, int]]:
        """Every entry as ``(path, mtime, size)``; vanished files skipped."""
        out: List[Tuple[Path, float, int]] = []
        if not self.root.is_dir():
            return out
        for path in self.root.rglob("*.json"):
            try:
                st = path.stat()
            except OSError:
                continue  # concurrently pruned/replaced
            out.append((path, st.st_mtime, st.st_size))
        return out

    def stats(self) -> CacheStats:
        """Entry count, total size, and lifetime eviction totals."""
        stats = CacheStats(root=str(self.root), quota_mb=self.max_mb)
        for _path, _mtime, size in self._entries():
            stats.entries += 1
            stats.total_bytes += size
        totals = self.eviction_totals()
        stats.prune_passes = totals["prune_passes"]
        stats.evicted_entries = totals["evicted_entries"]
        stats.evicted_bytes = totals["evicted_bytes"]
        stats.last_prune_ts = totals["last_prune_ts"]
        return stats

    # -- eviction accounting (quota satellite) ---------------------------

    def eviction_totals(self) -> Dict:
        """Lifetime quota-eviction totals of this cache directory.

        Persisted in a sidecar *next to* the entry tree and updated by
        every prune pass — including the ones the service's worker
        subprocesses run — so the totals aggregate across processes and
        survive restarts.  An unreadable sidecar reads as zeros: the
        totals are observability, never correctness.
        """
        try:
            with open(self._totals_path, "r", encoding="utf-8") as fh:
                raw = json.load(fh)
        except (OSError, ValueError):
            raw = {}
        if not isinstance(raw, dict):
            raw = {}
        return {
            "prune_passes": int(raw.get("prune_passes", 0)),
            "evicted_entries": int(raw.get("evicted_entries", 0)),
            "evicted_bytes": int(raw.get("evicted_bytes", 0)),
            "last_prune_ts": raw.get("last_prune_ts"),
        }

    def _bump_totals(self, removed: int, freed_bytes: int) -> None:
        """Fold one prune pass into the persistent totals (best-effort)."""
        totals = self.eviction_totals()
        totals["prune_passes"] += 1
        totals["evicted_entries"] += removed
        totals["evicted_bytes"] += freed_bytes
        totals["last_prune_ts"] = time.time()  # lint: allow(DET001 host timestamp for cache bookkeeping, never feeds sim state)
        tmp: Optional[str] = None
        try:
            self._totals_path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self._totals_path.parent, prefix=".evict-", suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(totals, fh, sort_keys=True)
            os.replace(tmp, self._totals_path)
            tmp = None
        except OSError:
            pass  # same best-effort posture as put()
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def sync_telemetry(self) -> None:
        """Fold sidecar eviction totals into the attached registry.

        Counters are monotonic, so the sidecar (which other processes —
        service workers — also advance) is reconciled by delta: each call
        adds only what changed since the last sync.  No-op without a
        registry.
        """
        if self.registry is None:
            return
        totals = self.eviction_totals()
        for metric, key in (
            (M_CACHE_PRUNE_PASSES, "prune_passes"),
            (M_CACHE_EVICTIONS, "evicted_entries"),
            (M_CACHE_EVICTED_BYTES, "evicted_bytes"),
        ):
            delta = totals[key] - self._synced[key]
            if delta > 0:
                self.registry.inc(metric, delta)
            self._synced[key] = totals[key]

    def prune(self, max_mb: Optional[float] = None) -> PruneResult:
        """Evict least-recently-used entries until the cache fits ``max_mb``.

        ``max_mb`` defaults to the instance quota; calling without either
        is a :class:`ConfigError` (an unbounded prune would empty the
        cache).  Eviction order is mtime (oldest first) — :meth:`get`
        touches entries on hit, making this true LRU rather than
        fill-order FIFO.  Concurrent writers are safe: a vanished file
        is skipped, and an entry refreshed mid-prune at worst survives
        one extra round.
        """
        if max_mb is None:
            max_mb = self.max_mb
        if max_mb is None:
            raise ConfigError(
                "prune needs a quota: pass max_mb or set REPRO_CACHE_MAX_MB"
            )
        budget = int(max_mb * 1024 * 1024)
        entries = sorted(self._entries(), key=lambda e: (-e[1], e[0]))
        result = PruneResult()
        used = 0
        for path, _mtime, size in entries:
            if used + size <= budget:
                used += size
                result.kept += 1
                result.kept_bytes += size
                continue
            try:
                path.unlink()
            except OSError:
                continue
            result.removed += 1
            result.freed_bytes += size
        self._bump_totals(result.removed, result.freed_bytes)
        self.log.event(
            EV_CACHE_PRUNE,
            root=str(self.root),
            removed=result.removed,
            freed_bytes=result.freed_bytes,
            kept=result.kept,
            kept_bytes=result.kept_bytes,
            quota_mb=max_mb,
        )
        self.sync_telemetry()
        return result

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        n = 0
        if self.root.is_dir():
            for path in self.root.rglob("*.json"):
                try:
                    path.unlink()
                    n += 1
                except OSError:
                    pass
        return n

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.rglob("*.json"))


def _cache_enabled(flag: Optional[bool]) -> bool:
    if flag is not None:
        return flag
    return os.environ.get("REPRO_NO_CACHE", "").lower() not in ("1", "true", "yes")


def default_jobs() -> int:
    """Worker count from ``$REPRO_JOBS`` (default 1 = serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


# ---------------------------------------------------------------------------
# Cells, per-cell records, sweep statistics
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepCell:
    """One (benchmark, configuration) grid cell awaiting execution.

    ``label`` is the axis label the result is keyed under in the output
    grid (often, but not necessarily, ``config.name``).
    """

    benchmark: str
    label: str
    config: MachineConfig
    params: SimParams

    @property
    def grid_key(self) -> Tuple[str, str]:
        return (self.benchmark, self.label)

    def key(self) -> str:
        """Content-addressed cache key (see :func:`cell_key`)."""
        return cell_key(self.benchmark, self.config, self.params)


@dataclass
class CellRecord:
    """How one cell was resolved: from cache or by simulation."""

    benchmark: str
    label: str
    key: str
    source: str  # "cache" | "run"
    wall_s: float
    #: Host metrics collected when perf recording is on (``wall_s``,
    #: ``peak_rss_kb``, a ``profile`` section breakdown); None otherwise.
    host: Optional[Dict] = None


@dataclass
class CellFailure:
    """A cell whose simulation raised, keyed by its grid position."""

    benchmark: str
    label: str
    key: str
    error: str
    traceback: str

    def __str__(self) -> str:
        return f"({self.benchmark}, {self.label}): {self.error}"


@dataclass
class SweepStats:
    """Aggregate observability for one :func:`run_cells` invocation."""

    jobs_requested: int = 1
    jobs_used: int = 1
    n_cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    failed: int = 0
    wall_s: float = 0.0
    cache_root: Optional[str] = None
    code_token: str = ""
    #: The simulation engine every executed cell ran with.
    engine: str = "oracle"
    #: Why a ``jobs > 1`` request ran serially anyway (``None`` when the
    #: fan-out happened, or when serial execution was requested):
    #: ``"single-cell"``, ``"fork-unavailable"`` or ``"all-cells-cached"``.
    serial_fallback: Optional[str] = None
    records: List[CellRecord] = field(default_factory=list)
    failures: List[CellFailure] = field(default_factory=list)
    #: Final :meth:`MetricsRegistry.snapshot` of the run — the same
    #: signal set the service exposes on ``GET /v1/metrics``, embedded
    #: in the manifest so local sweeps are inspectable the same way.
    telemetry: Optional[Dict] = None

    def to_manifest(self) -> Dict:
        """JSON-serializable run manifest."""
        return {
            "schema": CACHE_SCHEMA_VERSION,
            "code_token": self.code_token,
            "engine": self.engine,
            "jobs_requested": self.jobs_requested,
            "jobs_used": self.jobs_used,
            "serial_fallback": self.serial_fallback,
            "n_cells": self.n_cells,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "executed": self.executed,
            "failed": self.failed,
            "wall_s": self.wall_s,
            "cache_root": self.cache_root,
            "cells": [dataclasses.asdict(r) for r in self.records],
            "failures": [dataclasses.asdict(f) for f in self.failures],
            "telemetry": self.telemetry,
        }

    def write_manifest(self, path: Union[str, Path]) -> None:
        """Write the JSON run manifest to ``path`` (parents created)."""
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_manifest(), fh, indent=2)

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.n_cells} cells: {self.cache_hits} cached, "
            f"{self.executed} simulated ({self.jobs_used} worker(s)), "
            f"{self.failed} failed, {self.wall_s:.1f}s"
        )


@dataclass
class SweepOutcome:
    """Results plus statistics of one sweep execution."""

    results: Dict[Tuple[str, str], SimResult]
    stats: SweepStats


# ---------------------------------------------------------------------------
# Worker-side execution
# ---------------------------------------------------------------------------

#: Per-process benchmark-model memo: programs are immutable and shared
#: across every configuration of a sweep, so each worker builds each
#: (benchmark, scale) model at most once.
_worker_programs: Dict[Tuple[str, float], Program] = {}


def _build_program(benchmark: str, scale: float) -> Program:
    key = (benchmark, scale)
    program = _worker_programs.get(key)
    if program is None:
        program = build_benchmark(benchmark, scale=scale)
        _worker_programs[key] = program
    return program


def _execute_cell(
    benchmark: str, config: MachineConfig, params: SimParams,
    profile: bool = False, engine: Optional[str] = None,
) -> Tuple[str, object, object]:
    """Run one cell in the current process.

    Returns ``("ok", result_dict, host_dict)`` or ``("err", message,
    tb)``; exceptions never propagate so that one bad cell cannot take
    down a worker (or, in the serial path, the rest of the grid).
    ``host_dict`` always carries ``wall_s``; with ``profile`` it adds
    the :class:`~repro.obs.hostprof.HostProfiler` section breakdown and
    the process's peak RSS.
    """
    profiler = HostProfiler() if profile else None
    t0 = time.perf_counter()  # lint: allow(DET001 host wall-clock for sweep stats)
    try:
        result = run_program(
            _build_program(benchmark, params.scale), config, params,
            profiler=profiler, engine=engine,
        )
        wall_s = time.perf_counter() - t0  # lint: allow(DET001 host wall-clock for sweep stats)
        host: Dict[str, object] = {"wall_s": wall_s}
        if profiler is not None:
            host["profile"] = profiler.snapshot(wall_s)
            rss = peak_rss_kb()
            if rss is not None:
                host["peak_rss_kb"] = rss
        return ("ok", result.to_dict(), host)
    # lint: allow(EXC001 worker isolation boundary: one bad cell is reported by key, never kills the sweep)
    except Exception as exc:
        return ("err", f"{type(exc).__name__}: {exc}", traceback.format_exc())


#: Version of the cell request/response wire schema spoken between the
#: sweep service and its workers (``repro.serve.worker``).  Bumped on
#: any incompatible change; both sides reject unknown versions loudly.
CELL_WIRE_SCHEMA_VERSION = 1


def run_cell_request(request: Dict) -> Dict:
    """Worker-side cell runner: resolve one wire-schema cell request.

    This is the stable boundary the sweep service shards work across
    (``repro serve`` workers call it in a loop over stdin/stdout JSONL;
    schema documented in ``docs/SERVICE.md``).  A request carries the
    benchmark name, the *full* canonicalized config/params dataclasses
    (decoded by :mod:`repro.serve.wire`), the engine, and job/tenant
    provenance.  The runner resolves the cell exactly like
    :func:`run_cells` does for one cell: disk-cache probe first (another
    worker or an earlier job may have filled the key), then simulate,
    then publish to the cache.  When ``$REPRO_PERF_DIR`` is set,
    executed cells land in the perf ledger with ``job_id``/``tenant``
    stamped into provenance.

    Responses are always well-formed wire dicts — a failing cell returns
    ``status: "err"`` with the error and traceback; exceptions never
    cross the pipe.
    """
    # Local import: repro.serve depends on this module at import time
    # (cell_key, DiskCache); the reverse dependency stays call-time only.
    from ..serve.wire import decode_cell_request

    try:
        req = decode_cell_request(request)
    # lint: allow(EXC001 wire boundary: any undecodable request must come back as a structured error response, never kill the worker)
    except Exception as exc:
        return {
            "kind": "cell-response",
            "schema": CELL_WIRE_SCHEMA_VERSION,
            "id": request.get("id") if isinstance(request, dict) else None,
            "status": "err",
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }
    response: Dict = {
        "kind": "cell-response",
        "schema": CELL_WIRE_SCHEMA_VERSION,
        "id": req.id,
        "key": req.key,
        "benchmark": req.cell.benchmark,
        "label": req.cell.label,
    }
    dcache = DiskCache(req.cache_dir) if req.cache else None
    if dcache is not None:
        hit = dcache.get(req.key)
        if hit is not None:
            response.update(status="ok", source="cache",
                            result=hit.to_dict(), host={"wall_s": 0.0})
            return response
    perf_root = default_perf_dir()
    perf_on = perf_root is not None
    payload = _execute_cell(req.cell.benchmark, req.cell.config,
                            req.cell.params, profile=perf_on,
                            engine=req.engine)
    status, first, second = payload
    if status != "ok":
        response.update(status="err", error=str(first),
                        traceback=str(second))
        return response
    result = SimResult.from_dict(first)  # type: ignore[arg-type]
    host: Dict = dict(second)  # type: ignore[arg-type]
    if dcache is not None:
        dcache.put(req.key, result)
    if perf_on:
        rss = host.get("peak_rss_kb")
        Ledger(perf_root).append(
            PerfRecord.from_result(
                result,
                wall_s=float(host["wall_s"]),
                profile=host.get("profile"),
                peak_rss_kb=int(rss) if rss is not None else None,
                context="serve.worker",
                config_fp=config_fingerprint(req.cell.config),
                params_fp=config_fingerprint(req.cell.params),
                code_token=code_version_token(),
                engine=req.engine,
                extra_provenance={"job_id": req.job_id,
                                  "tenant": req.tenant},
            )
        )
    response.update(status="ok", source="run", result=first, host=host)
    return response


def _fork_available() -> bool:
    # fork is the only start method that is safe without a __main__ guard
    # (spawn re-imports __main__, which would re-run unguarded scripts).
    return "fork" in multiprocessing.get_all_start_methods()


def default_engine() -> str:
    """The engine from ``$REPRO_ENGINE``, validated (default ``oracle``).

    Resolved here — at the process boundary — rather than in the driver:
    the driver stays environment-free so that a result is a pure function
    of ``(program, config, params)``, which is what the disk cache keys
    assume.  A typo in ``REPRO_ENGINE`` is a loud :class:`ConfigError`,
    never a silent fallback.
    """
    value = os.environ.get("REPRO_ENGINE", "").strip().lower()
    if not value:
        return "oracle"
    if value not in ENGINES:
        raise ConfigError(
            f"REPRO_ENGINE={value!r} is not a recognised engine "
            f"(expected one of: {', '.join(ENGINES)})"
        )
    return value


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


def run_cells(
    cells: Iterable[SweepCell],
    jobs: int = 1,
    cache: Optional[bool] = None,
    cache_dir: Union[str, Path, None] = None,
    progress: Optional[Callable[[str, str], None]] = None,
    manifest_path: Union[str, Path, None] = None,
    strict: bool = True,
    perf: Optional[bool] = None,
    perf_dir: Union[str, Path, None] = None,
    perf_context: str = "executor",
    engine: Optional[str] = None,
    telemetry: Optional[MetricsRegistry] = None,
    log: Union[StructuredLog, NullLog, None] = None,
) -> SweepOutcome:
    """Execute a sweep: resolve every cell from cache or simulation.

    Parameters
    ----------
    cells:
        The grid cells to resolve.  Result/record order follows cell
        order regardless of parallel completion order.
    jobs:
        Worker processes for cache-miss cells.  ``1`` (or a platform
        without ``fork``) runs serially in-process.
    cache:
        ``True``/``False`` force the disk cache on/off; ``None`` (the
        default) enables it unless ``REPRO_NO_CACHE`` is set.
    cache_dir:
        Cache root override (default ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro``).
    progress:
        Called once per cell with ``(benchmark, label)`` — before the
        run in serial mode, on completion in parallel mode.
    manifest_path:
        If given, the JSON run manifest is written there.
    strict:
        When ``True`` (default) any cell failure raises
        :class:`~repro.common.errors.SweepError` *after* the whole grid
        has been attempted; the error names each failing cell's grid key
        and carries the partial :class:`SweepOutcome`.  ``False`` returns
        the outcome with ``stats.failures`` populated instead.
    perf:
        ``True``/``False`` force performance recording on/off; ``None``
        (the default) enables it when ``$REPRO_PERF_DIR`` is set.  When
        on, every *executed* cell (never a cache hit — its wall time
        would measure a disk read) runs with a
        :class:`~repro.obs.hostprof.HostProfiler` attached and appends a
        :class:`~repro.obs.ledger.PerfRecord` to the ledger, including
        the speedup vs an ``orig``-labelled cell of the same benchmark
        when one is part of this sweep.
    perf_dir:
        Ledger directory override (default ``$REPRO_PERF_DIR``, or
        ``.perf`` when ``perf=True`` without a directory).
    perf_context:
        The ``context`` string stamped on recorded ledger entries.
    engine:
        Simulation engine for executed cells (``"oracle"``/``"fast"``);
        ``None`` resolves ``$REPRO_ENGINE`` via :func:`default_engine`.
        Deliberately *not* part of the cache key: engines are
        bit-identical on results, so a cached oracle result satisfies a
        fast-engine sweep and vice versa.  The engine used is recorded
        in the manifest and in each ledger record's provenance.
    telemetry:
        A :class:`~repro.obs.telemetry.MetricsRegistry` to emit the
        fleet signal set into (cells by source, cell-latency histogram,
        queue depth, cache evictions — the same names ``repro serve``
        exposes on ``/v1/metrics``).  ``None`` uses a fresh
        :func:`~repro.obs.telemetry.standard_registry`; either way the
        final snapshot lands in ``stats.telemetry`` and the manifest.
        Host-side only — results are bit-identical with or without it.
    log:
        A :class:`~repro.obs.telemetry.StructuredLog` for per-cell and
        sweep-completion events (default: no logging).
    """
    cells = list(cells)
    if engine is None:
        engine = default_engine()
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown engine {engine!r} (expected one of: {', '.join(ENGINES)})"
        )
    t_start = time.perf_counter()  # lint: allow(DET001 host wall-clock for sweep stats)
    registry = telemetry if telemetry is not None else standard_registry()
    tlog = log if log is not None else NullLog()
    dcache = (
        DiskCache(cache_dir, registry=registry, log=tlog)
        if _cache_enabled(cache) else None
    )

    perf_root = Path(perf_dir) if perf_dir is not None else default_perf_dir()
    perf_on = perf if perf is not None else perf_root is not None
    ledger = Ledger(perf_root) if perf_on else None

    stats = SweepStats(
        jobs_requested=jobs,
        n_cells=len(cells),
        cache_root=str(dcache.root) if dcache is not None else None,
        code_token=code_version_token(),
        engine=engine,
    )
    results: Dict[Tuple[str, str], SimResult] = {}
    records: Dict[Tuple[str, str], CellRecord] = {}
    pending = 0  # cache-miss cells not yet ingested (queue-depth gauge)

    def ingest(cell: SweepCell, key: str, payload: Tuple[str, object, object]) -> None:
        nonlocal pending
        status, first, second = payload
        if status == "ok":
            result = SimResult.from_dict(first)  # type: ignore[arg-type]
            host: Dict = dict(second)  # type: ignore[arg-type]
            results[cell.grid_key] = result
            records[cell.grid_key] = CellRecord(
                cell.benchmark, cell.label, key, "run",
                float(host["wall_s"]), host=host,
            )
            stats.executed += 1
            registry.inc(M_CELLS_TOTAL, source="run")
            registry.observe(M_CELL_LATENCY, float(host["wall_s"]),
                             benchmark=cell.benchmark, engine=engine)
            tlog.event(EV_CELL_RESOLVED,
                       cell=f"{cell.benchmark}/{cell.label}",
                       source="run", wall_s=float(host["wall_s"]),
                       engine=engine)
            if dcache is not None:
                dcache.put(key, result)
        else:
            stats.failed += 1
            registry.inc(M_CELLS_TOTAL, source="failed")
            tlog.event(EV_CELL_FAILED,
                       cell=f"{cell.benchmark}/{cell.label}",
                       error=str(first))
            stats.failures.append(
                CellFailure(cell.benchmark, cell.label, key, str(first), str(second))
            )
        pending = max(0, pending - 1)
        registry.set_gauge(M_QUEUE_DEPTH, pending)

    # Phase 1: cache lookups (always in-process — lookups are cheap).
    to_run: List[Tuple[SweepCell, str]] = []
    for cell in cells:
        key = cell.key()
        hit = dcache.get(key) if dcache is not None else None
        if hit is not None:
            if progress is not None:
                progress(cell.benchmark, cell.label)
            results[cell.grid_key] = hit
            records[cell.grid_key] = CellRecord(
                cell.benchmark, cell.label, key, "cache", 0.0
            )
            stats.cache_hits += 1
            registry.inc(M_CELLS_TOTAL, source="cache")
            tlog.event(EV_CELL_RESOLVED,
                       cell=f"{cell.benchmark}/{cell.label}",
                       source="cache", wall_s=0.0)
        else:
            stats.cache_misses += 1
            to_run.append((cell, key))
    pending = len(to_run)
    registry.set_gauge(M_QUEUE_DEPTH, pending)

    # Phase 2: execute the misses — fanned out or serial.  A ``jobs > 1``
    # request that cannot be honoured is recorded in the manifest and
    # warned about, never silently degraded (a sweep that quietly ignores
    # ``jobs`` looks identical to a parallel one except for wall time).
    serial_reason: Optional[str] = None
    if jobs > 1:
        if not to_run:
            serial_reason = "all-cells-cached"
        elif len(to_run) == 1:
            serial_reason = "single-cell"
        elif not _fork_available():
            serial_reason = "fork-unavailable"
    use_parallel = jobs > 1 and serial_reason is None
    stats.serial_fallback = serial_reason
    if serial_reason is not None and to_run:
        warnings.warn(
            f"run_cells: jobs={jobs} requested but executing serially "
            f"({serial_reason})",
            RuntimeWarning,
            stacklevel=2,
        )
    # Warm-up pass, two reasons to run it.  Parallel: build each unique
    # benchmark model (and, with the fast engine, its compile/trace/
    # branch-stream memos) in the parent so forked workers inherit them
    # copy-on-write instead of each rebuilding them.  Serial with perf
    # recording on: the ledger's per-cell walls are meant to measure
    # steady-state engine throughput, so one-time memo construction must
    # not land in whichever cell happens to run first.  Keyed per
    # (benchmark, scale, wrong-exec flavour) because wrong-path and
    # wrong-thread address streams are separate memo families — warming
    # ``orig`` alone would leave the first ``wp``/``wth`` cell cold.
    if to_run and (use_parallel or perf_on):
        warmed = set()
        for cell, _key in to_run:
            we = cell.config.wrong_exec
            wkey = (cell.benchmark, cell.params.scale,
                    we.wrong_path, we.wrong_thread)
            if wkey in warmed:
                continue
            warmed.add(wkey)
            try:
                program = _build_program(cell.benchmark, cell.params.scale)
                if engine == "fast":
                    run_program(program, cell.config, cell.params,
                                engine="fast")
            # lint: allow(EXC001 warm-up is an optimisation only: a failing cell re-runs in its worker/cell and is reported there)
            except Exception:
                pass
    if perf_on and to_run:
        # Measurement hygiene: move every object alive at this point
        # (interpreter, test harness, benchmark models, engine memos)
        # into the GC's permanent generation.  Without this, full
        # collections triggered mid-cell scan the whole long-lived heap
        # and land tens of milliseconds in whichever cell is running —
        # visible as outlier walls in the perf ledger.  After the
        # freeze, collections only trace objects allocated by the cells
        # themselves.  Results are unaffected; frozen objects live
        # until process exit, which is where sweep processes end anyway.
        gc.collect()
        gc.freeze()
    if use_parallel:
        stats.jobs_used = min(jobs, len(to_run))
        registry.set_gauge(M_WORKERS_ALIVE, stats.jobs_used)
        registry.set_gauge(M_WORKERS_BUSY, stats.jobs_used)
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=stats.jobs_used, mp_context=ctx) as pool:
            futures = {
                pool.submit(_execute_cell, cell.benchmark, cell.config,
                            cell.params, perf_on, engine):
                (cell, key)
                for cell, key in to_run
            }
            for future in as_completed(futures):
                cell, key = futures[future]
                if progress is not None:
                    progress(cell.benchmark, cell.label)
                try:
                    payload = future.result()
                # lint: allow(EXC001 pool/pickling breakage surfaces as a per-cell failure, not a dead sweep)
                except Exception as exc:
                    payload = ("err", f"{type(exc).__name__}: {exc}",
                               traceback.format_exc())
                ingest(cell, key, payload)
    else:
        stats.jobs_used = 1
        registry.set_gauge(M_WORKERS_ALIVE, 1 if to_run else 0)
        registry.set_gauge(M_WORKERS_BUSY, 1 if to_run else 0)
        for cell, key in to_run:
            if progress is not None:
                progress(cell.benchmark, cell.label)
            ingest(cell, key,
                   _execute_cell(cell.benchmark, cell.config, cell.params,
                                 perf_on, engine))

    # Deterministic output order: the caller's cell order, not completion
    # order (labels_of/benchmarks_of rely on grid insertion order).
    ordered = {
        cell.grid_key: results[cell.grid_key]
        for cell in cells
        if cell.grid_key in results
    }
    stats.records = [records[c.grid_key] for c in cells if c.grid_key in records]
    stats.wall_s = time.perf_counter() - t_start  # lint: allow(DET001 host wall-clock for sweep stats)

    if ledger is not None:
        _record_perf(ledger, cells, ordered, records, stats, perf_context,
                     engine)

    registry.set_gauge(M_WORKERS_BUSY, 0)
    if dcache is not None:
        dcache.sync_telemetry()
    stats.telemetry = registry.snapshot()
    tlog.event(EV_SWEEP_DONE, engine=engine, n_cells=stats.n_cells,
               cache_hits=stats.cache_hits, executed=stats.executed,
               failed=stats.failed, wall_s=stats.wall_s,
               jobs_used=stats.jobs_used)

    if manifest_path is not None:
        stats.write_manifest(manifest_path)

    outcome = SweepOutcome(results=ordered, stats=stats)
    if strict and stats.failures:
        raise SweepError(
            f"{stats.failed} of {stats.n_cells} sweep cell(s) failed: "
            + "; ".join(str(f) for f in stats.failures),
            failures=stats.failures,
            outcome=outcome,
        )
    return outcome


def _record_perf(
    ledger: Ledger,
    cells: List[SweepCell],
    results: Dict[Tuple[str, str], SimResult],
    records: Dict[Tuple[str, str], CellRecord],
    stats: SweepStats,
    context: str,
    engine: str = "oracle",
) -> None:
    """Append a ledger record for every cell this sweep *executed*.

    Cache hits are skipped: their wall time measures a disk read, not
    the simulator.  ``speedup_pct`` is filled in when an ``orig``-labelled
    cell of the same benchmark ran (or was cached) in the same sweep.
    """
    token = code_version_token()
    for cell in cells:
        record = records.get(cell.grid_key)
        if record is None or record.source != "run" or record.host is None:
            continue
        result = results[cell.grid_key]
        baseline = results.get((cell.benchmark, "orig"))
        speedup_pct = None
        if baseline is not None and cell.label != "orig":
            try:
                speedup_pct = result.relative_speedup_pct_vs(baseline)
            except AnalysisError:
                # Mismatched seed/scale grids have no comparable orig
                # cell; the record simply carries no speedup.
                speedup_pct = None
        host = record.host
        rss = host.get("peak_rss_kb")
        ledger.append(
            PerfRecord.from_result(
                result,
                wall_s=record.wall_s,
                speedup_pct=speedup_pct,
                profile=host.get("profile"),
                peak_rss_kb=int(rss) if rss is not None else None,
                context=context,
                config_fp=config_fingerprint(cell.config),
                params_fp=config_fingerprint(cell.params),
                code_token=token,
                engine=engine,
            )
        )


def run_cell(
    benchmark: str,
    config: MachineConfig,
    params: SimParams = SimParams(),
    cache: Optional[bool] = None,
    cache_dir: Union[str, Path, None] = None,
    engine: Optional[str] = None,
) -> SimResult:
    """Resolve a single (benchmark, configuration) cell through the cache."""
    cell = SweepCell(benchmark, config.name, config, params)
    outcome = run_cells([cell], jobs=1, cache=cache, cache_dir=cache_dir,
                        engine=engine)
    return outcome.results[cell.grid_key]
