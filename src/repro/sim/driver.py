"""Top-level simulation driver: run one benchmark on one machine.

This is the main public entry point::

    from repro import run_simulation, named_config

    result = run_simulation("181.mcf", named_config("wth-wp-wec"))
    base = run_simulation("181.mcf", named_config("orig"))
    print(result.relative_speedup_pct_vs(base))
"""

from __future__ import annotations

import time
from typing import Optional, Union

from ..common.config import MachineConfig, SimParams
from ..common.errors import ConfigError
from ..common.rng import StreamFactory
from ..lint.sanitize import maybe_sanitizer
from ..obs.tracer import IntervalMetrics
from ..sta.machine import Machine
from ..sta.scheduler import Scheduler
from ..workloads.benchmarks import build_benchmark
from ..workloads.program import (
    ParallelRegionSpec,
    Program,
    SequentialRegionSpec,
)
from ..workloads.tracegen import TraceGenerator
from .fast import run_program_fast
from .results import SimResult

__all__ = ["ENGINES", "OBSERVER_POLICY_MSG", "run_simulation", "run_program"]

#: Recognised simulation engines.  ``oracle`` is the reference
#: event-level interpreter below; ``fast`` is the compiled trace-replay
#: engine in :mod:`repro.sim.fast`, bit-identical on results but
#: without event-level observer hooks.
ENGINES = ("oracle", "fast")

#: The one observer/engine policy (docs/OBSERVABILITY.md, "Engines and
#: observers"): every event-level observer — tracer, sanitizer (kwarg
#: *or* ``REPRO_SANITIZE=1``), attribution collector — requires the
#: oracle interpreter, and asking the fast engine to honour one is
#: always the same loud :class:`ConfigError`, never a warning or a
#: silent fallback.  ``{names}`` lists the active observers.
OBSERVER_POLICY_MSG = (
    "engine='fast' has no event-level observer hooks, but {names} "
    "is/are active; re-run with --engine oracle (engine='oracle' / "
    "REPRO_ENGINE=oracle) to keep the observer(s), or drop them to "
    "keep the fast engine"
)


def run_simulation(
    benchmark: Union[str, Program],
    config: MachineConfig,
    params: SimParams = SimParams(),
    tracer=None,
    profiler=None,
    sanitizer=None,
    attrib=None,
    engine: Optional[str] = None,
) -> SimResult:
    """Simulate ``benchmark`` (name or prebuilt program) on ``config``.

    When given a name the benchmark model is built at ``params.scale``;
    passing a :class:`Program` lets callers reuse one across configs
    (they are stateless, so this is purely a construction-time saving).

    ``tracer`` is an optional :mod:`repro.obs` sink (RingBufferTracer,
    IntervalMetrics, ...).  It is deliberately *not* part of
    :class:`SimParams`: params are hashed into the sweep executor's
    result-cache keys and shipped to worker processes, and a stateful
    tracer belongs in neither.  Tracing never perturbs simulated timing
    or the RNG streams, so traced and untraced runs produce identical
    results.

    ``profiler`` is an optional :class:`~repro.obs.hostprof.HostProfiler`
    collecting *host* wall-clock attribution (which simulator component
    the real time went to).  Like the tracer it never touches simulated
    state, so profiled runs are bit-identical to unprofiled ones.

    ``sanitizer`` is an optional :class:`~repro.lint.sanitize.Sanitizer`
    asserting the paper's architectural invariants while the run
    executes (wrong execution never writes state, WEC/L1D exclusivity,
    ring direction, cycle monotonicity).  Like the tracer/profiler it
    stays out of hashed :class:`SimParams` and is read-only on sim
    state, so sanitized runs are bit-identical too.  Left ``None`` it is
    auto-created when ``REPRO_SANITIZE=1`` is set in the environment.

    ``attrib`` is an optional
    :class:`~repro.obs.attrib.AttributionCollector` tagging every fill
    with its provenance and tracking block lifetimes (fill → first
    correct use → eviction).  Same discipline as the tracer: out of
    hashed params, read-only on sim state, bit-identical results; its
    summary lands on :attr:`SimResult.attribution`.

    ``engine`` picks the implementation: ``"oracle"`` (the default, and
    what ``None`` means) is the event-level interpreter; ``"fast"`` is
    the compiled trace-replay engine, bit-identical on every
    :class:`SimResult` field but without event-level observer hooks.
    The driver never reads the environment (results are cached under
    config/params fingerprints): the ``REPRO_ENGINE`` knob is resolved
    by the executor and the CLI and passed down explicitly.
    """
    if isinstance(benchmark, str):
        program = build_benchmark(benchmark, scale=params.scale)
    else:
        program = benchmark
    return run_program(program, config, params, tracer=tracer,
                       profiler=profiler, sanitizer=sanitizer,
                       attrib=attrib, engine=engine)


def run_program(
    program: Program,
    config: MachineConfig,
    params: SimParams = SimParams(),
    tracer=None,
    profiler=None,
    sanitizer=None,
    attrib=None,
    engine: Optional[str] = None,
) -> SimResult:
    """Simulate a prebuilt :class:`Program` on ``config``."""
    if engine is None:
        engine = "oracle"
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown engine {engine!r} (expected one of {', '.join(ENGINES)})"
        )
    if engine == "fast":
        # One policy for every event-level observer (OBSERVER_POLICY_MSG
        # above): tracer, sanitizer and attrib — whether passed as
        # kwargs or auto-created from REPRO_SANITIZE=1 — always raise
        # the same ConfigError naming the --engine oracle escape hatch.
        # (Historically kwargs raised while the env sanitizer warned and
        # fell back; three behaviours for one constraint.)
        blockers = [
            name
            for name, obs in (
                ("tracer", tracer), ("sanitizer", sanitizer),
                ("attrib", attrib),
            )
            if obs is not None
        ]
        if sanitizer is None and maybe_sanitizer(None) is not None:
            blockers.append("sanitizer (from REPRO_SANITIZE=1)")
        if blockers:
            raise ConfigError(
                OBSERVER_POLICY_MSG.format(names=", ".join(blockers))
            )
        # The host profiler never touches sim state; the fast
        # engine has no component sections, so the whole run lands
        # in one bucket.
        if profiler is not None:
            t0 = time.perf_counter()  # lint: allow(DET001 host profiling; never feeds sim state)
            result = run_program_fast(program, config, params)
            profiler.add(
                "engine.fast",
                time.perf_counter() - t0,  # lint: allow(DET001 host profiling; never feeds sim state)
            )
            return result
        return run_program_fast(program, config, params)
    sanitizer = maybe_sanitizer(sanitizer)
    machine_tracer = tracer
    if profiler is not None and tracer is not None:
        # Route the machine's emits through a timing proxy so tracing
        # cost is attributed to "tracer.emit" instead of the component
        # sections; the caller keeps its direct tracer reference.
        machine_tracer = profiler.wrap_tracer(tracer)
    machine = Machine(config, params, tracer=machine_tracer,
                      profiler=profiler, sanitizer=sanitizer,
                      attrib=attrib)
    tracegen = TraceGenerator(StreamFactory(params.seed))
    scheduler = Scheduler(machine, tracegen)

    total = 0.0
    par_cycles = 0.0
    seq_cycles = 0.0
    wrong_thread_loads = 0
    region_records = []

    warmup = min(params.warmup_invocations, program.n_invocations - 1)
    stats_live = warmup == 0

    perf_clock = (  # lint: allow(DET001 host profiling; never feeds sim state)
        time.perf_counter if profiler is not None else None
    )

    for invocation, region in program.schedule():
        if not stats_live and invocation >= warmup:
            # Warm-up complete: measure from warmed state.
            machine.reset_statistics()
            if attrib is not None:
                attrib.reset_measurement()
            stats_live = True
        t0 = perf_clock() if perf_clock is not None else 0.0
        if isinstance(region, ParallelRegionSpec):
            rr = scheduler.run_parallel_region(region, invocation)
            if perf_clock is not None:
                profiler.add("scheduler.parallel", perf_clock() - t0)
            if stats_live:
                par_cycles += rr.cycles
                wrong_thread_loads += rr.wrong_thread_loads
        else:
            rr = scheduler.run_sequential_region(region, invocation)
            if perf_clock is not None:
                profiler.add("scheduler.sequential", perf_clock() - t0)
            if stats_live:
                seq_cycles += rr.cycles
        if not stats_live:
            continue
        total += rr.cycles
        if params.record_regions:
            region_records.append(
                {
                    "name": rr.name,
                    "kind": rr.kind,
                    "invocation": rr.invocation,
                    "cycles": rr.cycles,
                    "iterations": rr.iterations,
                }
            )

    counters = machine.collect_stats()
    instructions = sum(tu.stats["instructions"] for tu in machine.tus)
    interval_series = None
    if tracer is not None:
        metrics = getattr(tracer, "metrics", None)
        if metrics is None and isinstance(tracer, IntervalMetrics):
            metrics = tracer
        if metrics is not None:
            interval_series = metrics.series()
    return SimResult(
        benchmark=program.name,
        config=config.name,
        n_tus=config.n_thread_units,
        total_cycles=total,
        parallel_cycles=par_cycles,
        sequential_cycles=seq_cycles,
        instructions=instructions,
        l1_traffic=machine.l1_traffic,
        l1_misses=machine.l1_misses,
        effective_misses=machine.effective_misses,
        wrong_loads=machine.aggregate("wrong_loads"),
        wrong_thread_loads=wrong_thread_loads,
        sidecar_hits=machine.aggregate("sidecar_hits"),
        prefetches=machine.aggregate("prefetches"),
        useful_wrong_hits=machine.aggregate("useful_wrong_hits"),
        useful_prefetch_hits=machine.aggregate("useful_prefetch_hits"),
        branches=machine.branches,
        mispredicts=machine.mispredicts,
        l2_accesses=machine.l2.stats["accesses"],
        l2_misses=machine.l2.stats["misses"],
        counters=counters,
        region_cycles=region_records,
        seed=params.seed,
        scale=params.scale,
        interval_series=interval_series,
        attribution=(
            attrib.summary(instructions=instructions)
            if attrib is not None else None
        ),
    )
