"""Plain-text table rendering for experiment output.

Every bench target prints its figure/table through :class:`TextTable`,
so the regenerated artifacts are uniform and diffable.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from ..common.errors import AnalysisError

__all__ = ["TextTable", "format_pct", "format_ratio"]

Cell = Union[str, int, float, None]


def format_pct(value: Optional[float], signed: bool = True) -> str:
    """Render a percentage cell (``+9.7%``)."""
    if value is None:
        return "-"
    return f"{value:+.1f}%" if signed else f"{value:.1f}%"


def format_ratio(value: Optional[float], digits: int = 2) -> str:
    """Render a ratio cell (speedup, normalized time)."""
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


class TextTable:
    """A simple right-aligned monospace table with a title."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise AnalysisError("table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, cells: Iterable[Cell]) -> None:
        """Append a row; cells are stringified, None renders as '-'."""
        rendered = []
        for c in cells:
            if c is None:
                rendered.append("-")
            elif isinstance(c, float):
                rendered.append(f"{c:.2f}")
            else:
                rendered.append(str(c))
        if len(rendered) != len(self.columns):
            raise AnalysisError(
                f"row has {len(rendered)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(rendered)

    def render(self) -> str:
        """The complete table as a string."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        # First column left-aligned (row labels), the rest right-aligned.
        def fmt_row(cells: Sequence[str]) -> str:
            parts = [cells[0].ljust(widths[0])]
            parts.extend(c.rjust(w) for c, w in zip(cells[1:], widths[1:]))
            return "  ".join(parts)

        sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
        lines = [self.title, sep, fmt_row(self.columns), sep]
        lines.extend(fmt_row(r) for r in self.rows)
        lines.append(sep)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
