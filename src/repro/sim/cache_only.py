"""Fast cache-only replay: miss rates without the timing model.

For studies that only need memory-hierarchy behaviour (miss rates,
traffic, WEC hit composition), the thread-pipelining timing machinery
is pure overhead.  :func:`replay_cache_only` pushes a program's access
stream through a full :class:`~repro.sta.machine.Machine`'s hierarchy —
including wrong-path/wrong-thread injection and the sidecar policies —
but skips branch-penalty/stage accounting and returns only memory
statistics.

Branch prediction still runs (wrong-path injection is gated on real
mispredictions) and the iteration→TU round-robin matches the timed
simulator, so the cache-state evolution is identical to a timed run;
only the returned observables differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Union

from ..common.config import MachineConfig, SimParams
from ..common.rng import StreamFactory
from ..isa.encoding import EV_BRANCH, EV_LOAD
from ..sta.machine import Machine
from ..workloads.benchmarks import build_benchmark
from ..workloads.program import ParallelRegionSpec, Program
from ..workloads.tracegen import TraceGenerator

__all__ = ["CacheOnlyResult", "replay_cache_only"]


@dataclass
class CacheOnlyResult:
    """Memory-hierarchy observables from a cache-only replay."""

    benchmark: str
    config: str
    loads: int = 0
    stores: int = 0
    l1_misses: int = 0
    effective_misses: int = 0
    sidecar_hits: int = 0
    wrong_loads: int = 0
    wrong_fills: int = 0
    useful_wrong_hits: int = 0
    useful_prefetch_hits: int = 0
    prefetches: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def l1_miss_rate(self) -> float:
        total = self.loads + self.stores
        return self.l1_misses / total if total else 0.0

    @property
    def effective_miss_rate(self) -> float:
        total = self.loads + self.stores
        return self.effective_misses / total if total else 0.0


def replay_cache_only(
    benchmark: Union[str, Program],
    config: MachineConfig,
    params: SimParams = SimParams(),
) -> CacheOnlyResult:
    """Replay ``benchmark`` through ``config``'s memory hierarchy only.

    Several times faster than :func:`repro.sim.driver.run_simulation`;
    produces identical cache statistics (same seeds, same replay order).
    """
    program = (
        build_benchmark(benchmark, scale=params.scale)
        if isinstance(benchmark, str)
        else benchmark
    )
    machine = Machine(config, params)
    tracegen = TraceGenerator(StreamFactory(params.seed))
    wrong_path = config.wrong_exec.wrong_path
    wrong_thread = config.wrong_exec.wrong_thread
    n_tus = machine.n_tus
    warmup = min(params.warmup_invocations, program.n_invocations - 1)
    stats_live = warmup == 0

    for invocation, region in program.schedule():
        if not stats_live and invocation >= warmup:
            machine.reset_statistics()
            stats_live = True
        if isinstance(region, ParallelRegionSpec):
            lo, hi = region.global_iter_range(invocation)
            for i in range(lo, hi):
                tu = machine.tu_for_iteration(i)
                _replay_one(tu, region, i, tracegen, wrong_path, sequential=False)
            if wrong_thread and n_tus > 1:
                for k in range(n_tus - 1):
                    wrong_iter = hi + k
                    machine.tu_for_iteration(wrong_iter).run_wrong_thread(
                        region, wrong_iter, tracegen
                    )
            machine.set_head((hi - 1) % n_tus)
        else:
            lo, hi = region.global_chunk_range(invocation)
            tu = machine.tus[machine.head_tu]
            for c in range(lo, hi):
                _replay_one(tu, region, c, tracegen, wrong_path, sequential=True,
                            bus=machine.bus)

    result = CacheOnlyResult(benchmark=program.name, config=config.name)
    result.loads = machine.aggregate("loads")
    result.stores = machine.aggregate("stores")
    result.l1_misses = machine.l1_misses
    result.effective_misses = machine.effective_misses
    result.sidecar_hits = machine.aggregate("sidecar_hits")
    result.wrong_loads = machine.aggregate("wrong_loads")
    result.wrong_fills = machine.aggregate("wrong_fills")
    result.useful_wrong_hits = machine.aggregate("useful_wrong_hits")
    result.useful_prefetch_hits = machine.aggregate("useful_prefetch_hits")
    result.prefetches = machine.aggregate("prefetches")
    result.l2_accesses = machine.l2.stats["accesses"]
    result.l2_misses = machine.l2.stats["misses"]
    result.counters = machine.collect_stats()
    return result


def _replay_one(tu, region, index, tracegen, wrong_path, sequential, bus=None):
    """Replay one iteration/chunk against the memory system only."""
    if sequential:
        trace = tracegen.chunk_trace(region, index)
    else:
        trace = tracegen.iteration_trace(region, index)
    mem = tu.mem
    load_correct = mem.load_correct
    store_correct = mem.store_correct
    load_wrong = mem.load_wrong
    # Instruction fetch shapes shared-L2 state; replay it like the
    # timed simulator does.
    for addr in tracegen.ifetch_blocks(region, trace.n_instr).tolist():
        mem.ifetch(addr)
    future_loads = None
    if wrong_path and sequential:
        future_loads = tracegen.chunk_trace(region, index + 1).load_addrs
    kinds, values, indices = trace.merged_events()
    branch_taken = trace.branch_taken
    buffered = []
    for kind, value, idx in zip(kinds.tolist(), values.tolist(), indices.tolist()):
        if kind == EV_LOAD:
            load_correct(value)
        elif kind == EV_BRANCH:
            if tu.branch.resolve(value, bool(branch_taken[idx])) and wrong_path:
                for a in tracegen.wrong_path_addrs(
                    region, trace, idx, index, future_loads=future_loads
                ):
                    load_wrong(a)
        elif sequential:
            store_correct(value)
            if bus is not None:
                bus.sequential_store(tu.tu_id, value)
        else:
            # Parallel-region stores commit at write-back, after the
            # iteration's loads — match the timed replay's cache order.
            buffered.append(value)
    # The speculative memory buffer holds one entry per address: commit
    # each unique address once, in first-buffered order (dict semantics).
    for value in dict.fromkeys(buffered):
        store_correct(value)
