"""SARIF 2.1.0 export for ``repro lint --format sarif``.

One run, one tool (``repro-lint``), the full rule catalog as
``tool.driver.rules`` and one result per finding.  The document is what
GitHub's ``upload-sarif`` action ingests to annotate PR diffs, so the
fields kept are the ones code scanning actually renders: rule id +
metadata, message text, and a physical location with a 1-based region
(SARIF columns are 1-based; ``Finding.col`` is a 0-based AST offset).

Stale/missing-baseline warnings are process diagnostics, not code
findings — they surface in the text/json formats and the exit code, not
here.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

from .engine import LintReport
from .rules import RULES

__all__ = ["render_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _artifact_uri(path: str) -> str:
    """Repo-relative POSIX uri when possible, else the path as given."""
    p = Path(path)
    try:
        return p.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return p.as_posix()


def render_sarif(report: LintReport) -> Dict[str, object]:
    """The report as a SARIF 2.1.0 document (a JSON-serializable dict)."""
    rule_index = {rule.id: i for i, rule in enumerate(RULES)}
    rules_meta: List[Dict[str, object]] = [
        {
            "id": rule.id,
            "name": rule.id,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.rationale},
            "helpUri": "docs/STATIC_ANALYSIS.md",
            "properties": {
                "scopes": list(rule.scopes) if rule.scopes else ["everywhere"],
            },
        }
        for rule in RULES
    ]
    results: List[Dict[str, object]] = [
        {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _artifact_uri(finding.path),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in report.findings
    ]
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }
