"""Ordered effect summaries and interprocedural flattening.

Every function gets a structured **effect tree** extracted in source
order: counter increments, resolved call sites, and branches.  ENG001
compares the *flattened counter sequence* of a fast-engine transcription
against its oracle counterpart.

Why a flat sequence and not a CFG: the two engines intentionally differ
in control *structure* (the oracle dispatches through polymorphic
helpers, the fast engine fuses them into straight-line code with its own
branch nesting) while agreeing on the order counters are touched along
every execution path.  Flattening — branches contribute both arms in
source order, loops contribute their body once, early returns are
ignored — erases the structural noise but still changes whenever any
two counter touches swap, which is exactly the drift ENG001 exists to
catch.

The counter alphabet is deliberately narrow:

* ``container["name"] += ...`` where the container resolves to an
  attribute of a project class (``self.m``, ``c = l2.c``);
* ``container.counter("name").add(...)`` — the ``CounterGroup`` idiom.

Plain attribute increments (``self.confirmations += 1``) are *not*
counters: the fast engine legitimately elides bookkeeping the oracle
keeps on helper objects, and the paper's reported metrics all flow
through the two shapes above.  Increment amounts are ignored — order,
not magnitude, is the invariant.

Flattening is **binding-aware**: constant arguments at a call site
(``self._fill_from_l2(block, wrong=True)``), constant parameter
defaults, and constants forwarded through parameter-to-parameter calls
prune ``if param:`` / ``if not param:`` guards in the callee, so the
oracle's shared helpers flatten to the same sequence as the fast
engine's specialized inlinings.  Unknown conditions contribute both
arms; recursion is cut at a revisit.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from ..rules import _WALLCLOCK
from .callgraph import (
    BLOCKING_CALLS,
    CallSite,
    FunctionInfo,
    Project,
    Ref,
    Scope,
)

__all__ = [
    "Branch",
    "CallStep",
    "Ctr",
    "analyze_function",
    "counter_sequence",
]

#: sentinel for "this parameter's value is unknown at this call site"
_UNKNOWN = object()

_ENV_READS = frozenset({"os.environ", "os.getenv"})


class Ctr:
    """One counter touch: ``(owner class, attr)`` namespace + name."""

    __slots__ = ("ns", "name", "line")

    def __init__(self, ns: Tuple[str, str], name: str, line: int) -> None:
        self.ns = ns
        self.name = name
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ctr({self.ns[0]}.{self.ns[1]}[{self.name}])"


class CallStep:
    """One resolved call, kept in the tree for flattening."""

    __slots__ = ("site",)

    def __init__(self, site: CallSite) -> None:
        self.site = site

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CallStep({self.site.target.qualname})"


class Branch:
    """A conditional: both arms kept, pruned at flatten time if the
    condition is a (possibly negated) bare parameter with a known value."""

    __slots__ = ("cond", "then", "orelse")

    def __init__(self, cond: Optional[Tuple[str, bool]],
                 then: List[object], orelse: List[object]) -> None:
        self.cond = cond  # (param_name, polarity) or None
        self.then = then
        self.orelse = orelse

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Branch({self.cond})"


# --- extraction ------------------------------------------------------------


class _Extractor:
    """One source-order pass over a function body.

    Produces the effect tree and, as side products on the
    :class:`FunctionInfo`, the flat call-site list and the blocking/
    wall-clock/environment reference seeds the taint rules start from.
    """

    def __init__(self, project: Project, func: FunctionInfo) -> None:
        self.project = project
        self.func = func
        self.scope: Scope = project.scope_for(func)
        self.params = set(func.param_names)
        self.calls: List[CallSite] = []
        self.blocking: List[Ref] = []
        self.wallclock: List[Ref] = []
        self.env: List[Ref] = []

    # -- statements --------------------------------------------------------

    def stmts(self, body: Sequence[ast.stmt]) -> List[object]:
        steps: List[object] = []
        for stmt in body:
            steps.extend(self.stmt(stmt))
        return steps

    def stmt(self, node: ast.stmt) -> List[object]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return []  # separate scope, analyzed on its own
        if isinstance(node, ast.Expr):
            return self.expr(node.value, stmt_expr=True)
        if isinstance(node, ast.Assign):
            steps = self.expr(node.value)
            for target in node.targets:
                self._target(target, steps)
                self.scope.assign(target, node.value)
            return steps
        if isinstance(node, ast.AnnAssign):
            steps = self.expr(node.value) if node.value is not None else []
            if node.value is not None:
                self._target(node.target, steps)
                self.scope.assign(node.target, node.value)
            return steps
        if isinstance(node, ast.AugAssign):
            steps = self.expr(node.value)
            ctr = self._aug_counter(node)
            if ctr is not None:
                steps.append(ctr)
            else:
                self._target(node.target, steps)
            return steps
        if isinstance(node, ast.If):
            cond_steps = self.expr(node.test)
            then = self.stmts(node.body)
            orelse = self.stmts(node.orelse)
            cond = self._param_cond(node.test)
            if not then and not orelse:
                return cond_steps
            return cond_steps + [Branch(cond, then, orelse)]
        if isinstance(node, (ast.For, ast.AsyncFor)):
            steps = self.expr(node.iter)
            steps.extend(self.stmts(node.body))
            steps.extend(self.stmts(node.orelse))
            return steps
        if isinstance(node, ast.While):
            steps = self.expr(node.test)
            steps.extend(self.stmts(node.body))
            steps.extend(self.stmts(node.orelse))
            return steps
        if isinstance(node, (ast.With, ast.AsyncWith)):
            steps: List[object] = []
            for item in node.items:
                steps.extend(self.expr(item.context_expr))
            steps.extend(self.stmts(node.body))
            return steps
        if isinstance(node, ast.Try):
            steps = self.stmts(node.body)
            for handler in node.handlers:
                steps.extend(self.stmts(handler.body))
            steps.extend(self.stmts(node.orelse))
            steps.extend(self.stmts(node.finalbody))
            return steps
        if isinstance(node, ast.Return):
            return self.expr(node.value) if node.value is not None else []
        if isinstance(node, (ast.Raise, ast.Assert)):
            steps = []
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    steps.extend(self.expr(child))
            return steps
        if isinstance(node, ast.Delete):
            return []
        # Pass/Break/Continue/Global/Nonlocal/Import...
        return []

    def _target(self, target: ast.AST, steps: List[object]) -> None:
        """Subscript/attribute *targets* may hide calls in their indices."""
        if isinstance(target, ast.Subscript):
            steps.extend(self.expr(target.value))
            steps.extend(self.expr(target.slice))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._target(elt, steps)

    def _aug_counter(self, node: ast.AugAssign) -> Optional[Ctr]:
        if not isinstance(node.op, ast.Add):
            return None
        target = node.target
        if not isinstance(target, ast.Subscript):
            return None
        key = target.slice
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        ref = self.scope.container_ref(target.value)
        if ref is None:
            return None
        return Ctr(ref, key.value, node.lineno)

    def _param_cond(self, test: ast.expr) -> Optional[Tuple[str, bool]]:
        if isinstance(test, ast.Name) and test.id in self.params:
            return (test.id, True)
        if (
            isinstance(test, ast.UnaryOp)
            and isinstance(test.op, ast.Not)
            and isinstance(test.operand, ast.Name)
            and test.operand.id in self.params
        ):
            return (test.operand.id, False)
        return None

    # -- expressions --------------------------------------------------------

    def expr(self, node: Optional[ast.expr],
             stmt_expr: bool = False) -> List[object]:
        if node is None:
            return []
        steps: List[object] = []
        self._expr(node, steps, stmt_expr)
        return steps

    def _expr(self, node: ast.expr, steps: List[object],
              stmt_expr: bool = False) -> None:
        self._note_refs(node)
        if isinstance(node, ast.Call):
            ctr = self._counter_call(node)
            if ctr is not None:
                steps.append(ctr)
                return
            self._note_refs(node.func)
            self._note_call_refs(node)
            # arguments evaluate before the call happens
            for arg in node.args:
                inner = arg.value if isinstance(arg, ast.Starred) else arg
                self._expr(inner, steps)
            for kw in node.keywords:
                self._expr(kw.value, steps)
            site = self.scope.resolve_call(node, stmt_expr=stmt_expr)
            if site is not None:
                self.calls.append(site)
                steps.append(CallStep(site))
            else:
                # an unresolved call may still *receive* a resolved
                # callee (asyncio.create_task(self._run_task(...))) —
                # nothing to record, the inner Call was already walked
                pass
            return
        if isinstance(node, ast.Await):
            self._expr(node.value, steps)
            return
        if isinstance(node, ast.IfExp):
            self._expr(node.test, steps)
            then: List[object] = []
            orelse: List[object] = []
            self._expr(node.body, then)
            self._expr(node.orelse, orelse)
            if then or orelse:
                steps.append(Branch(self._param_cond(node.test), then, orelse))
            return
        if isinstance(node, (ast.Lambda, ast.GeneratorExp, ast.ListComp,
                             ast.SetComp, ast.DictComp)):
            return  # deferred evaluation: no effects at this point
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child, steps)

    # -- taint seeds ---------------------------------------------------------

    def _note_refs(self, node: ast.expr) -> None:
        if not isinstance(node, (ast.Name, ast.Attribute)):
            return
        canonical = self.scope.canon(node)
        if canonical is None:
            return
        if canonical in _WALLCLOCK and not self._allow_tagged(node, "DET001"):
            self.wallclock.append(Ref(node.lineno, node.col_offset, canonical))
        elif canonical in _ENV_READS and not self._allow_tagged(node, "DET004"):
            self.env.append(Ref(node.lineno, node.col_offset, canonical))

    def _note_call_refs(self, node: ast.Call) -> None:
        func = node.func
        canonical = self.scope.canon(func)
        if canonical in BLOCKING_CALLS:
            self.blocking.append(Ref(node.lineno, node.col_offset, canonical))
            return
        if (
            isinstance(func, ast.Name)
            and func.id == "open"
            and func.id not in self.scope.mod.aliases
            and func.id not in self.scope.var_types
            and func.id not in self.params
        ):
            self.blocking.append(Ref(node.lineno, node.col_offset, "open"))

    def _allow_tagged(self, node: ast.AST, rule: str) -> bool:
        tags = self.func.module.allow_tags
        return (
            rule in tags.get(node.lineno, {})
            or rule in tags.get(node.lineno - 1, {})
        )

    def _counter_call(self, node: ast.Call) -> Optional[Ctr]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "add"):
            return None
        inner = func.value
        if not isinstance(inner, ast.Call):
            return None
        chain = inner.func
        if not (
            isinstance(chain, ast.Attribute)
            and chain.attr == "counter"
            and inner.args
            and isinstance(inner.args[0], ast.Constant)
            and isinstance(inner.args[0].value, str)
        ):
            return None
        ref = self.scope.container_ref(chain.value)
        if ref is None:
            return None
        return Ctr(ref, inner.args[0].value, node.lineno)


def analyze_function(project: Project, func: FunctionInfo) -> None:
    """Fill ``func.effects`` / call sites / taint seeds (idempotent)."""
    if func.effects is not None:
        return
    extractor = _Extractor(project, func)
    body = getattr(func.node, "body", [])
    func.effects = extractor.stmts(body)
    func.call_sites = extractor.calls
    func.blocking_refs = extractor.blocking
    func.wallclock_refs = extractor.wallclock
    func.env_refs = extractor.env


# --- flattening ------------------------------------------------------------


def _call_bindings(site: CallSite,
                   outer: Dict[str, object]) -> Dict[str, object]:
    """Constant parameter bindings for a callee at one call site."""
    target = site.target
    bindings: Dict[str, object] = dict(target.const_defaults())
    params = target.param_names
    if site.skip_first and params and params[0] == "self":
        params = params[1:]

    def value_of(arg: ast.expr):
        if isinstance(arg, ast.Constant):
            return arg.value
        if isinstance(arg, ast.Name) and arg.id in outer:
            return outer[arg.id]
        return _UNKNOWN

    for i, arg in enumerate(site.node.args):
        if isinstance(arg, ast.Starred) or i >= len(params):
            break
        val = value_of(arg)
        if val is _UNKNOWN:
            bindings.pop(params[i], None)
        else:
            bindings[params[i]] = val
    for kw in site.node.keywords:
        if kw.arg is None:  # **kwargs
            continue
        val = value_of(kw.value)
        if val is _UNKNOWN:
            bindings.pop(kw.arg, None)
        else:
            bindings[kw.arg] = val
    return bindings


def counter_sequence(
    project: Project,
    func: FunctionInfo,
    bindings: Optional[Dict[str, object]] = None,
    _stack: Optional[set] = None,
) -> List[Tuple[Tuple[str, str], str, int]]:
    """Flatten a function's counter touches, following resolved calls.

    Returns ``[(ns, name, line), ...]`` where ``ns`` is the
    ``(class qualname, attr)`` the counter container lives on and
    ``line`` is the line of the touch (in whichever file it lives).
    """
    bindings = bindings or {}
    stack = _stack if _stack is not None else set()
    key = (func.qualname, tuple(sorted(bindings.items(), key=repr)))
    cached = project.seq_memo.get(key)
    if cached is not None:
        return list(cached)
    if func.qualname in stack:
        return []  # recursion: cut the cycle
    stack.add(func.qualname)
    out: List[Tuple[Tuple[str, str], str, int]] = []
    clean = _flatten(project, func.effects or [], bindings, stack, out)
    stack.discard(func.qualname)
    if clean:
        # A sequence truncated by a recursion cut above us in the stack
        # must not be memoized — it would be wrong in other contexts.
        project.seq_memo[key] = tuple(out)
    return out


def _flatten(project: Project, steps: Sequence[object],
             bindings: Dict[str, object], stack: set,
             out: List[Tuple[Tuple[str, str], str, int]]) -> bool:
    clean = True
    for step in steps:
        if isinstance(step, Ctr):
            out.append((step.ns, step.name, step.line))
        elif isinstance(step, Branch):
            if step.cond is not None and step.cond[0] in bindings:
                param, polarity = step.cond
                taken = bool(bindings[param]) == polarity
                clean &= _flatten(project, step.then if taken else step.orelse,
                                  bindings, stack, out)
            else:
                clean &= _flatten(project, step.then, bindings, stack, out)
                clean &= _flatten(project, step.orelse, bindings, stack, out)
        elif isinstance(step, CallStep):
            target = step.site.target
            child = _call_bindings(step.site, bindings)
            out.extend(counter_sequence(project, target, child, stack))
            child_key = (target.qualname,
                         tuple(sorted(child.items(), key=repr)))
            if child_key not in project.seq_memo:
                # the callee hit a recursion cut and was not memoized;
                # this expansion is context-dependent too
                clean = False
    return clean
