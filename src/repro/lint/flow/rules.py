"""Flow rule families: engine parity (ENG*), async safety (ASY*),
interprocedural determinism (DET001/DET004 across module boundaries).

All findings ride the existing :class:`repro.lint.rules.Finding` type,
so allow tags, the baseline ratchet, ``--format json|sarif`` and the
0/1/2 exit convention apply unchanged.  Findings are only *reported*
for files that were actually linted, even though the graph behind them
is whole-program.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..rules import RULES_BY_ID, Finding
from .callgraph import FunctionInfo, Project, Ref
from .effects import Ctr, counter_sequence

__all__ = ["NS_EQUIV", "check_flow"]

#: Counter-namespace equivalences between the oracle's stat containers
#: and the fast engine's plain dicts.  A namespace is the
#: ``module.Class.attr`` the container lives on; both sides of a parity
#: comparison are mapped through this table (default: the bare attr
#: name), so ``self.m["loads"] += 1`` in the fast engine and
#: ``self.stats.counter("loads").add()`` in the oracle compare equal.
NS_EQUIV: Dict[str, str] = {
    "repro.sim.fast.engine._FastTU.m": "mem",
    "repro.mem.hierarchy.TUMemSystem.stats": "mem",
    "repro.sim.fast.engine._FastL2.c": "l2",
    "repro.mem.l2.SharedL2.stats": "l2",
    "repro.sim.fast.engine._FastL2.memc": "mainmem",
    "repro.mem.mainmem.MainMemory.stats": "mainmem",
    "repro.sim.fast.engine._FastTU.bp": "bp",
    "repro.branch.frontend.BranchUnit.stats": "bp",
}

#: Container methods that mutate in place (ASY003 mutation detection).
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
    }
)


def _canon_token(ns: Tuple[str, str], name: str) -> str:
    label = NS_EQUIV.get(f"{ns[0]}.{ns[1]}", ns[1])
    return f"{label}.{name}"


def _def_anchors(func: FunctionInfo) -> Tuple[int, ...]:
    return func.decorator_lines


def _in_scope(rule_id: str, module: str) -> bool:
    return RULES_BY_ID[rule_id].applies_to(module)


# --- ENG001 / ENG002: fast-engine transcription parity ---------------------


def _own_counters(func: FunctionInfo) -> List[Ctr]:
    out: List[Ctr] = []

    def walk(steps) -> None:
        for step in steps:
            if isinstance(step, Ctr):
                out.append(step)
            elif hasattr(step, "then"):
                walk(step.then)
                walk(step.orelse)

    walk(func.effects or [])
    return out


def _check_parity(project: Project, findings: List[Finding]) -> None:
    tagged: List[FunctionInfo] = [
        f for f in project.functions.values() if f.parity
    ]
    for func in tagged:
        if not _in_scope("ENG001", func.module.name):
            continue
        fast_seq = [
            _canon_token(ns, name)
            for ns, name, _ in counter_sequence(project, func)
        ]
        for oracle_qual in func.parity:
            oracle = project.functions.get(oracle_qual)
            if oracle is None:
                findings.append(Finding(
                    "ENG002", func.module.path, func.line,
                    func.node.col_offset,
                    f"`# parity:` tag on {func.name} names "
                    f"`{oracle_qual}`, which does not resolve to a "
                    "project function — fix the qualname or drop the tag",
                    anchors=_def_anchors(func),
                ))
                continue
            oracle_seq = [
                _canon_token(ns, name)
                for ns, name, _ in counter_sequence(project, oracle)
            ]
            if fast_seq == oracle_seq:
                continue
            detail = _divergence(fast_seq, oracle_seq)
            findings.append(Finding(
                "ENG001", func.module.path, func.line,
                func.node.col_offset,
                f"effect sequence of {func.name} diverges from oracle "
                f"`{oracle_qual}`: {detail} — the fast transcription and "
                "the oracle must touch counters in the same order",
                anchors=_def_anchors(func),
            ))


def _divergence(fast_seq: Sequence[str], oracle_seq: Sequence[str]) -> str:
    for i, (a, b) in enumerate(zip(fast_seq, oracle_seq)):
        if a != b:
            return (f"step {i + 1} is `{a}` here but `{b}` in the oracle "
                    f"({len(fast_seq)} vs {len(oracle_seq)} steps)")
    if len(fast_seq) < len(oracle_seq):
        missing = oracle_seq[len(fast_seq)]
        return (f"sequence ends after step {len(fast_seq)}; the oracle "
                f"continues with `{missing}` "
                f"({len(fast_seq)} vs {len(oracle_seq)} steps)")
    extra = fast_seq[len(oracle_seq)]
    return (f"extra step {len(oracle_seq) + 1} `{extra}` past the end of "
            f"the oracle's sequence "
            f"({len(fast_seq)} vs {len(oracle_seq)} steps)")


def _check_untagged_counters(project: Project,
                             findings: List[Finding]) -> None:
    """ENG002: every counter site in scope is tagged or fused *under* a
    tagged site (reachable from one through the call graph)."""
    tagged = [f for f in project.functions.values() if f.parity]
    reachable: Set[str] = set()
    work = [f for f in tagged]
    while work:
        func = work.pop()
        for site in func.call_sites:
            qual = site.target.qualname
            if qual not in reachable:
                reachable.add(qual)
                work.append(site.target)
    tagged_quals = {f.qualname for f in tagged}
    for func in project.functions.values():
        if not _in_scope("ENG002", func.module.name):
            continue
        if func.qualname in tagged_quals or func.qualname in reachable:
            continue
        if not _own_counters(func):
            continue
        findings.append(Finding(
            "ENG002", func.module.path, func.line, func.node.col_offset,
            f"{func.name} increments counters but carries no `# parity:` "
            "tag and is not called from any tagged transcription site — "
            "tag it with its oracle counterpart, or allow(ENG002 ...) "
            "with the reason it has none",
            anchors=_def_anchors(func),
        ))


# --- ASY001: blocking calls reachable inside async defs --------------------


def _blocking_closure(project: Project) -> Dict[str, Tuple[str, object]]:
    """``qualname -> witness`` for every *sync* function that blocks.

    A witness is ``("prim", Ref)`` for a direct primitive or
    ``("call", callee_qualname)`` for the first blocking callee found.
    Propagation never crosses an async callee: calling a coroutine
    function just builds the coroutine — the blocking happens (and is
    reported) inside that coroutine itself.
    """
    blocked: Dict[str, Tuple[str, object]] = {}
    for func in project.functions.values():
        if func.blocking_refs:
            blocked[func.qualname] = ("prim", func.blocking_refs[0])
    changed = True
    while changed:
        changed = False
        for func in project.functions.values():
            if func.is_async or func.qualname in blocked:
                continue
            for site in func.call_sites:
                target = site.target
                if target.is_async:
                    continue
                if target.qualname in blocked:
                    blocked[func.qualname] = ("call", target.qualname)
                    changed = True
                    break
    return blocked


def _witness_chain(blocked: Dict[str, Tuple[str, object]],
                   start: str) -> str:
    parts = [start.split(".")[-1]]
    qual = start
    for _ in range(10):
        kind, payload = blocked.get(qual, (None, None))
        if kind == "prim":
            assert isinstance(payload, Ref)
            parts.append(f"{payload.name}()")
            break
        if kind == "call":
            qual = str(payload)
            parts.append(qual.split(".")[-1])
            continue
        break
    return " -> ".join(parts)


def _check_async_blocking(project: Project,
                          findings: List[Finding]) -> None:
    blocked = _blocking_closure(project)
    for func in project.functions.values():
        if not func.is_async or not _in_scope("ASY001", func.module.name):
            continue
        for ref in func.blocking_refs:
            findings.append(Finding(
                "ASY001", func.module.path, ref.line, ref.col,
                f"blocking call `{ref.name}()` inside `async def "
                f"{func.name}` stalls the event loop — run it in a "
                "worker thread (asyncio.to_thread) or use the async "
                "equivalent",
            ))
        for site in func.call_sites:
            target = site.target
            if target.is_async or target.qualname not in blocked:
                continue
            chain = _witness_chain(blocked, target.qualname)
            findings.append(Finding(
                "ASY001", func.module.path, site.line, site.col,
                f"`async def {func.name}` reaches a blocking call via "
                f"{chain} — every await-free hop in between runs on the "
                "event loop; offload with asyncio.to_thread or make the "
                "chain async",
            ))


# --- ASY002: coroutine calls that are never awaited/scheduled --------------


def _check_dropped_coroutines(project: Project,
                              findings: List[Finding]) -> None:
    for func in project.functions.values():
        if not func.is_async or not _in_scope("ASY002", func.module.name):
            continue
        for site in func.call_sites:
            if site.stmt_expr and site.target.is_async:
                findings.append(Finding(
                    "ASY002", func.module.path, site.line, site.col,
                    f"coroutine `{site.target.name}(...)` is neither "
                    "awaited nor scheduled — the call builds a coroutine "
                    "object and drops it; await it or wrap it in "
                    "asyncio.create_task",
                ))


# --- ASY003: lock-guarded state mutated outside its lock -------------------


class _LockWalker(ast.NodeVisitor):
    """Collect ``self.<attr>`` mutations, tracking lock-held regions."""

    def __init__(self, lock_attrs: Set[str]) -> None:
        self.lock_attrs = lock_attrs
        self.depth = 0
        #: (attr, line, col, under_lock)
        self.mutations: List[Tuple[str, int, int, bool]] = []

    def _is_lock_item(self, item: ast.withitem) -> bool:
        expr = item.context_expr
        return (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in self.lock_attrs
        )

    def visit_With(self, node: ast.With) -> None:
        held = any(self._is_lock_item(item) for item in node.items)
        if held:
            self.depth += 1
        self.generic_visit(node)
        if held:
            self.depth -= 1

    def _self_attr(self, node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _record(self, attr: Optional[str], node: ast.AST) -> None:
        if attr is not None:
            self.mutations.append(
                (attr, node.lineno, node.col_offset, self.depth > 0)
            )

    def _mutation_target(self, target: ast.AST, node: ast.AST) -> None:
        self._record(self._self_attr(target), node)
        if isinstance(target, ast.Subscript):
            self._record(self._self_attr(target.value), node)
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._mutation_target(elt, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._mutation_target(target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._mutation_target(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._mutation_target(node.target, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            self._record(self._self_attr(func.value), node)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs have their own self/locks story

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass


def _check_lock_discipline(project: Project,
                           findings: List[Finding]) -> None:
    for cls in project.classes.values():
        if not _in_scope("ASY003", cls.module.name):
            continue
        if not cls.lock_attrs:
            continue
        per_method: List[Tuple[FunctionInfo, List]] = []
        guarded: Set[str] = set()
        for method in cls.methods.values():
            walker = _LockWalker(cls.lock_attrs)
            for stmt in method.node.body:  # type: ignore[attr-defined]
                walker.visit(stmt)
            per_method.append((method, walker.mutations))
            for attr, _line, _col, under in walker.mutations:
                if under:
                    guarded.add(attr)
        guarded -= cls.lock_attrs
        if not guarded:
            continue
        lock_name = sorted(cls.lock_attrs)[0]
        for method, mutations in per_method:
            if method.name == "__init__":
                continue  # construction precedes sharing
            for attr, line, col, under in mutations:
                if under or attr not in guarded:
                    continue
                findings.append(Finding(
                    "ASY003", cls.module.path, line, col,
                    f"`self.{attr}` is mutated under `self.{lock_name}` "
                    f"elsewhere in {cls.node.name} but not here — every "
                    "mutation of lock-guarded state must hold the lock",
                ))


# --- interprocedural DET001 / DET004 ---------------------------------------


def _taint_closure(project: Project,
                   seed_attr: str) -> Dict[str, Tuple[str, object]]:
    tainted: Dict[str, Tuple[str, object]] = {}
    for func in project.functions.values():
        refs = getattr(func, seed_attr)
        if refs:
            tainted[func.qualname] = ("prim", refs[0])
    changed = True
    while changed:
        changed = False
        for func in project.functions.values():
            if func.qualname in tainted:
                continue
            for site in func.call_sites:
                if site.target.qualname in tainted:
                    tainted[func.qualname] = ("call", site.target.qualname)
                    changed = True
                    break
    return tainted


def _check_interprocedural_det(project: Project, rule_id: str,
                               seed_attr: str, what: str,
                               findings: List[Finding]) -> None:
    tainted = _taint_closure(project, seed_attr)
    for func in project.functions.values():
        if not _in_scope(rule_id, func.module.name):
            continue
        for site in func.call_sites:
            target = site.target
            if _in_scope(rule_id, target.module.name):
                continue  # the AST pass owns in-scope modules
            if target.qualname not in tainted:
                continue
            chain = _witness_chain(tainted, target.qualname)
            findings.append(Finding(
                rule_id, func.module.path, site.line, site.col,
                f"{what} reachable from this call via {chain} — the "
                "callee lives in an exempt module, but calling it from "
                "here pulls the read into a scoped layer",
            ))


# --- entry point -----------------------------------------------------------

_FLOW_RULE_IDS = ("ENG001", "ENG002", "ASY001", "ASY002", "ASY003",
                  "DET001", "DET004")


def check_flow(
    project: Project,
    rules: Optional[Set[str]],
    report_files: Set[Path],
) -> List[Finding]:
    """Run every flow rule; report findings only for ``report_files``."""
    active = set(_FLOW_RULE_IDS) if rules is None else set(rules)
    findings: List[Finding] = []
    if "ENG001" in active or "ENG002" in active:
        _check_parity(project, findings)
    if "ENG002" in active:
        _check_untagged_counters(project, findings)
    if "ASY001" in active:
        _check_async_blocking(project, findings)
    if "ASY002" in active:
        _check_dropped_coroutines(project, findings)
    if "ASY003" in active:
        _check_lock_discipline(project, findings)
    if "DET001" in active:
        _check_interprocedural_det(
            project, "DET001", "wallclock_refs", "wall-clock read",
            findings)
    if "DET004" in active:
        _check_interprocedural_det(
            project, "DET004", "env_refs", "environment read", findings)
    findings = [
        f for f in findings
        if f.rule in active and Path(f.path).resolve() in report_files
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
