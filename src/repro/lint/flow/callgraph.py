"""Whole-program model for the flow pass: modules, classes, call edges.

The AST rules in :mod:`repro.lint.rules` are single-file by design; the
flow rules (ENG*/ASY*, interprocedural DET*) need to see *across* files:
which method a call resolves to, what type ``self.l2`` is, which oracle
method a fast-engine transcription mirrors.  This module builds that
view with stdlib ``ast`` + ``tokenize`` only:

* **module discovery** — from any linted path, the enclosing ``repro``
  package directory is located and *every* ``*.py`` under it is parsed,
  so the graph is whole-program even when only a subtree is linted
  (findings are still only reported for linted files);
* **name resolution** — per-module alias maps (absolute *and* relative
  imports), top-level classes/functions, methods, and nested defs are
  indexed under dotted qualnames (``repro.mem.l2.SharedL2.read``);
* **attribute typing** — ``self.x = ClassName(...)``, annotated
  constructor parameters (including string annotations, ``Optional[T]``
  and ``T | None``), attribute chains (``self.l2 = eng.l2``) and
  conditional expressions are resolved to class qualnames with a small
  fixpoint; anything ambiguous resolves to *nothing*, so dynamic
  dispatch degrades to missing edges, never wrong ones;
* **call edges** — resolved per call site, in source order, by the
  effect extractor in :mod:`repro.lint.flow.effects`.

``# parity: <oracle.qualname>`` comment tags (on the ``def`` line or
the line directly above it / above its decorators) declare which oracle
method a fast-engine function transcribes; ENG001 compares their effect
sequences.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

__all__ = [
    "BLOCKING_CALLS",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "Ref",
    "load_project",
]

#: Canonical names whose *call* blocks the calling thread — the seed set
#: for ASY001 taint.  Builtin ``open`` is matched structurally (a Call
#: of the un-aliased, un-shadowed name ``open``), not by this table.
#: Method calls on unresolved receivers (``path.read_text()``, raw
#: ``fh.write``) are invisible to the pass — a documented limitation of
#: conservative dispatch; route file I/O through helpers the graph can
#: see (as ``DiskCache``/``StructuredLog`` do).
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.fdopen",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
    }
)

#: Lock constructors recognized by ASY003.  Only *thread* locks: the
#: asyncio primitives guard await-points, not cross-thread state.
_LOCK_CTORS = frozenset({"threading.Lock", "threading.RLock"})

_PARITY_RE = re.compile(r"#\s*parity:\s*(.+?)\s*$")


class Ref(NamedTuple):
    """One reference to a canonical name (blocking/wallclock/env seed)."""

    line: int
    col: int
    name: str


class CallSite(NamedTuple):
    """One resolved project-internal call, in source order."""

    line: int
    col: int
    target: "FunctionInfo"
    node: ast.Call
    #: True when the first parameter (``self``) is bound implicitly —
    #: method calls and constructor calls.
    skip_first: bool
    #: True when the call is a bare expression statement (``f(x)`` as a
    #: whole line) — the shape ASY002 cares about for coroutines.
    stmt_expr: bool


class FunctionInfo:
    """One function/method/nested def and its per-function analysis."""

    def __init__(
        self,
        qualname: str,
        module: "ModuleInfo",
        node: ast.AST,
        cls: Optional["ClassInfo"],
        parent: Optional["FunctionInfo"],
    ) -> None:
        self.qualname = qualname
        self.module = module
        self.node = node
        self.cls = cls
        self.parent = parent
        self.is_async = isinstance(node, ast.AsyncFunctionDef)
        self.nested: Dict[str, "FunctionInfo"] = {}
        #: oracle qualnames from a ``# parity:`` tag, if any
        self.parity: Tuple[str, ...] = ()
        # filled by effects.analyze_function:
        self.effects: Optional[List[object]] = None
        self.call_sites: List[CallSite] = []
        self.blocking_refs: List[Ref] = []
        self.wallclock_refs: List[Ref] = []
        self.env_refs: List[Ref] = []

    @property
    def name(self) -> str:
        return self.node.name  # type: ignore[attr-defined]

    @property
    def line(self) -> int:
        return self.node.lineno  # type: ignore[attr-defined]

    @property
    def decorator_lines(self) -> Tuple[int, ...]:
        decs = getattr(self.node, "decorator_list", [])
        return tuple(d.lineno for d in decs)

    @property
    def param_names(self) -> List[str]:
        a = self.node.args  # type: ignore[attr-defined]
        return [p.arg for p in (a.posonlyargs + a.args)]

    def const_defaults(self) -> Dict[str, object]:
        """Parameters whose default is a literal constant."""
        a = self.node.args  # type: ignore[attr-defined]
        out: Dict[str, object] = {}
        pos = a.posonlyargs + a.args
        for param, default in zip(pos[len(pos) - len(a.defaults):], a.defaults):
            if isinstance(default, ast.Constant):
                out[param.arg] = default.value
        for param, default in zip(a.kwonlyargs, a.kw_defaults):
            if isinstance(default, ast.Constant):
                out[param.arg] = default.value
        return out

    def annotation_for(self, param: str) -> Optional[ast.expr]:
        a = self.node.args  # type: ignore[attr-defined]
        for p in a.posonlyargs + a.args + a.kwonlyargs:
            if p.arg == param:
                return p.annotation
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.qualname}>"


class ClassInfo:
    """One top-level class: methods plus inferred attribute types."""

    def __init__(self, qualname: str, module: "ModuleInfo",
                 node: ast.ClassDef) -> None:
        self.qualname = qualname
        self.module = module
        self.node = node
        self.methods: Dict[str, FunctionInfo] = {}
        #: attr -> class qualname; an attr assigned conflicting types is
        #: recorded in ``ambiguous`` and resolves to nothing.
        self.attr_types: Dict[str, str] = {}
        self.ambiguous: set = set()
        #: attrs holding a threading lock (``self._lock = Lock()``)
        self.lock_attrs: set = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClassInfo {self.qualname}>"


class ModuleInfo:
    """One parsed module of the project."""

    def __init__(self, name: str, path: str, tree: ast.Module,
                 text: str) -> None:
        self.name = name
        self.path = path
        self.tree = tree
        #: local name -> canonical dotted name (relative imports resolved)
        self.aliases: Dict[str, str] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.parity_tags: Dict[int, Tuple[str, ...]] = {}
        self.allow_tags: Dict[int, Dict[str, str]] = {}
        self._build_aliases()
        self._scan_comments(text)

    def _build_aliases(self) -> None:
        pkg_parts = self.name.split(".")
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.aliases[local] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    # `from ..common import x` resolved against this
                    # module's dotted name; level 1 is the containing
                    # package.  (The single-file checker skips these —
                    # it never needs project-internal names.)
                    anchor = pkg_parts[: len(pkg_parts) - node.level]
                    if not anchor:
                        continue
                    base = ".".join(anchor + ([node.module] if node.module else []))
                else:
                    base = node.module or ""
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )

    def _scan_comments(self, text: str) -> None:
        from ..engine import parse_allow_tags

        self.allow_tags = parse_allow_tags(text)
        try:
            for tok in tokenize.generate_tokens(io.StringIO(text).readline):
                if tok.type != tokenize.COMMENT:
                    continue
                match = _PARITY_RE.search(tok.string)
                if match is None:
                    continue
                quals = tuple(
                    q.strip() for q in match.group(1).split(",") if q.strip()
                )
                if quals:
                    self.parity_tags[tok.start[0]] = quals
        except tokenize.TokenizeError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ModuleInfo {self.name}>"


# --- scope: expression typing + call resolution inside one function -------


class Scope:
    """Typing context while walking one function body in source order.

    Tracks local variable types (``l2 = self.l2``), counter-container
    aliases (``c = self.c`` -> the *(class, attr)* the dict lives on)
    and resolves calls and attribute chains against the project.  All
    resolution is conservative: unknown receivers produce no edges.
    """

    def __init__(self, project: "Project", func: FunctionInfo) -> None:
        self.project = project
        self.func = func
        self.mod = func.module
        self.cls = func.cls
        self.var_types: Dict[str, Optional[str]] = {}
        self.var_containers: Dict[str, Tuple[str, str]] = {}
        for param in func.param_names:
            ann = func.annotation_for(param)
            t = project.ann_to_class(self.mod, ann)
            if t is not None:
                self.var_types[param] = t

    # -- canonical names (imports) ----------------------------------------

    def canon(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            if node.id in self.var_types or node.id in self.var_containers:
                return None  # shadowed by a local
            return self.mod.aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.canon(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    # -- types -------------------------------------------------------------

    def expr_type(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            if node.id == "self" and self.cls is not None:
                return self.cls.qualname
            return self.var_types.get(node.id)
        if isinstance(node, ast.Attribute):
            base_t = self.expr_type(node.value)
            if base_t is not None:
                ci = self.project.classes.get(base_t)
                if ci is not None and node.attr not in ci.ambiguous:
                    return ci.attr_types.get(node.attr)
            return None
        if isinstance(node, ast.Call):
            target = self.resolve_callable(node.func)
            if isinstance(target, ClassInfo):
                return target.qualname
            if isinstance(target, FunctionInfo):
                returns = getattr(target.node, "returns", None)
                return self.project.ann_to_class(target.module, returns)
            return None
        if isinstance(node, ast.IfExp):
            arms = [
                a for a in (node.body, node.orelse) if not _is_none_const(a)
            ]
            types = {self.expr_type(a) for a in arms}
            if len(types) == 1:
                return types.pop()
            return None
        if isinstance(node, ast.Await):
            return self.expr_type(node.value)
        return None

    def container_ref(self, node: ast.AST) -> Optional[Tuple[str, str]]:
        """Resolve a counter container to the ``(class, attr)`` it lives on."""
        if isinstance(node, ast.Attribute):
            base_t = self.expr_type(node.value)
            if base_t is not None:
                return (base_t, node.attr)
            return None
        if isinstance(node, ast.Name):
            return self.var_containers.get(node.id)
        return None

    # -- calls ---------------------------------------------------------------

    def resolve_callable(self, func_expr: ast.AST):
        """Resolve a call's target to a ClassInfo/FunctionInfo, or None."""
        if isinstance(func_expr, ast.Name):
            name = func_expr.id
            if name in self.var_types or name in self.var_containers:
                return None
            scope_func: Optional[FunctionInfo] = self.func
            while scope_func is not None:
                if name in scope_func.nested:
                    return scope_func.nested[name]
                scope_func = scope_func.parent
            if name in self.mod.functions:
                return self.mod.functions[name]
            if name in self.mod.classes:
                return self.mod.classes[name]
            canonical = self.mod.aliases.get(name)
            if canonical is not None:
                return (
                    self.project.classes.get(canonical)
                    or self.project.functions.get(canonical)
                )
            return None
        if isinstance(func_expr, ast.Attribute):
            canonical = self.canon(func_expr)
            if canonical is not None:
                hit = (
                    self.project.classes.get(canonical)
                    or self.project.functions.get(canonical)
                )
                if hit is not None:
                    return hit
            base_t = self.expr_type(func_expr.value)
            if base_t is not None:
                ci = self.project.classes.get(base_t)
                if ci is not None:
                    return ci.methods.get(func_expr.attr)
            return None
        return None

    def resolve_call(self, node: ast.Call, stmt_expr: bool = False
                     ) -> Optional[CallSite]:
        target = self.resolve_callable(node.func)
        skip_first = isinstance(node.func, ast.Attribute)
        if isinstance(target, ClassInfo):
            init = target.methods.get("__init__")
            if init is None:
                return None
            target, skip_first = init, True
        if not isinstance(target, FunctionInfo):
            return None
        return CallSite(node.lineno, node.col_offset, target, node,
                        skip_first, stmt_expr)

    # -- assignments update the local maps -----------------------------------

    def assign(self, target: ast.AST, value: Optional[ast.AST]) -> None:
        if not isinstance(target, ast.Name) or value is None:
            return
        if isinstance(value, (ast.Attribute, ast.Name)):
            ref = self.container_ref(value)
            if ref is not None:
                self.var_containers[target.id] = ref
        self.var_types[target.id] = self.expr_type(value)


# --- project ---------------------------------------------------------------


class Project:
    """All parsed modules of one ``repro`` package, fully indexed."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: flatten memo used by effects.counter_sequence
        self.seq_memo: Dict[Tuple, Tuple] = {}

    # -- annotations ---------------------------------------------------------

    def ann_to_class(self, mod: ModuleInfo,
                     ann: Optional[ast.AST]) -> Optional[str]:
        """Resolve an annotation to a project class qualname, if single.

        Handles string annotations, ``Optional[T]`` and unions with
        ``None``; a union of two or more real classes is ambiguous and
        resolves to nothing (conservative dispatch).
        """
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.Subscript):
            base = _dotted_name(ann.value)
            if base is not None and base.split(".")[-1] == "Optional":
                return self.ann_to_class(mod, ann.slice)
            return None
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            arms = [a for a in (ann.left, ann.right) if not _is_none_const(a)]
            if len(arms) == 1:
                return self.ann_to_class(mod, arms[0])
            return None
        dotted = _dotted_name(ann)
        if dotted is None:
            return None
        return self._resolve_class_name(mod, dotted)

    def _resolve_class_name(self, mod: ModuleInfo,
                            dotted: str) -> Optional[str]:
        head, _, rest = dotted.partition(".")
        if not rest:
            if head in mod.classes:
                return mod.classes[head].qualname
            canonical = mod.aliases.get(head)
            if canonical is not None and canonical in self.classes:
                return canonical
            return None
        canonical = mod.aliases.get(head)
        if canonical is not None:
            full = f"{canonical}.{rest}"
            if full in self.classes:
                return full
        return None

    def scope_for(self, func: FunctionInfo) -> Scope:
        return Scope(self, func)


def _dotted_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted_name(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def _is_none_const(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


# --- loading ---------------------------------------------------------------


def _package_root(path: Path) -> Optional[Path]:
    """The enclosing directory named ``repro``, if the path has one."""
    parts = path.parts
    if "repro" not in parts[:-1]:
        return None
    dirs = parts[:-1]
    idx = len(dirs) - 1 - dirs[::-1].index("repro")
    return Path(*parts[: idx + 1])


def _scope_children(body: Iterable[ast.stmt]):
    """Defs/classes at this scope, descending through compound statements
    (``if``/``for``/``try``/``with``) but never into nested scopes."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            yield stmt
        elif isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While,
                               ast.With, ast.AsyncWith)):
            yield from _scope_children(stmt.body)
            yield from _scope_children(getattr(stmt, "orelse", []))
        elif isinstance(stmt, ast.Try):
            yield from _scope_children(stmt.body)
            for handler in stmt.handlers:
                yield from _scope_children(handler.body)
            yield from _scope_children(stmt.orelse)
            yield from _scope_children(stmt.finalbody)


def _index_functions(project: Project, mod: ModuleInfo) -> None:
    def walk(body, qual_prefix: str, cls: Optional[ClassInfo],
             parent: Optional[FunctionInfo]) -> None:
        for node in _scope_children(body):
            if isinstance(node, ast.ClassDef):
                if cls is not None or parent is not None:
                    continue  # nested classes: out of model, no edges
                info = ClassInfo(f"{mod.name}.{node.name}", mod, node)
                mod.classes[node.name] = info
                project.classes[info.qualname] = info
                walk(node.body, info.qualname, info, None)
            else:
                qual = f"{qual_prefix}.{node.name}"
                func = FunctionInfo(qual, mod, node, cls, parent)
                project.functions[qual] = func
                if parent is not None:
                    parent.nested[node.name] = func
                elif cls is not None:
                    cls.methods[node.name] = func
                else:
                    mod.functions[node.name] = func
                _attach_parity(mod, func)
                walk(node.body, qual, cls, func)

    walk(mod.tree.body, mod.name, None, None)


def _attach_parity(mod: ModuleInfo, func: FunctionInfo) -> None:
    candidates = [func.line, func.line - 1]
    if func.decorator_lines:
        candidates.append(func.decorator_lines[0] - 1)
    for line in candidates:
        quals = mod.parity_tags.get(line)
        if quals:
            func.parity = quals
            return


def _infer_attr_types(project: Project) -> None:
    """Fixpoint over ``self.x = ...`` assignments in every method.

    A few passes let chains like ``self.l2 = eng.l2`` resolve once
    ``_FastMachine.l2`` is known; conflicting assignments mark the attr
    ambiguous for good.
    """
    for _ in range(4):
        changed = False
        for cls in project.classes.values():
            for method in cls.methods.values():
                scope = project.scope_for(method)
                for node in ast.walk(method.node):
                    target = None
                    value = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value = node.target, node.value
                    else:
                        continue
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    attr = target.attr
                    if attr in cls.ambiguous:
                        continue
                    if isinstance(node, ast.AnnAssign) and value is None:
                        t = project.ann_to_class(cls.module, node.annotation)
                    else:
                        t = scope.expr_type(value) if value is not None else None
                        if t is None and isinstance(node, ast.AnnAssign):
                            t = project.ann_to_class(cls.module, node.annotation)
                        if (t is None and value is not None
                                and not _is_none_const(value)
                                and isinstance(value, (ast.Call, ast.Attribute,
                                                       ast.Name))):
                            # unresolved non-None assignment: leave any
                            # earlier resolution alone (first write wins,
                            # matching __init__-then-update idiom)
                            t = cls.attr_types.get(attr)
                    if value is not None and isinstance(value, ast.Call):
                        ctor = scope.canon(value.func)
                        if ctor in _LOCK_CTORS:
                            cls.lock_attrs.add(attr)
                    if t is None:
                        continue
                    prior = cls.attr_types.get(attr)
                    if prior is None:
                        cls.attr_types[attr] = t
                        changed = True
                    elif prior != t:
                        cls.ambiguous.add(attr)
                        del cls.attr_types[attr]
                        changed = True
        if not changed:
            break


def load_project(files: Sequence[Path]) -> Project:
    """Parse the whole ``repro`` package enclosing the linted files."""
    from .effects import analyze_function

    roots: List[Path] = []
    seen = set()
    for f in files:
        root = _package_root(Path(f))
        if root is None:
            continue
        key = root.resolve()
        if key not in seen:
            seen.add(key)
            roots.append(root)

    project = Project()
    for root in roots:
        prefix = root.parts[:-1]
        for path in sorted(root.rglob("*.py")):
            try:
                text = path.read_text(encoding="utf-8")
                tree = ast.parse(text, filename=str(path))
            except (OSError, SyntaxError):
                # Unparseable package files degrade the graph, not the
                # lint: the per-file AST pass reports them loudly for
                # every file that was actually linted.
                continue
            rel = path.parts[len(prefix):]
            dotted = list(rel)
            dotted[-1] = path.stem
            if dotted[-1] == "__init__":
                dotted.pop()
            name = ".".join(dotted)
            if name in project.modules:
                continue
            mod = ModuleInfo(name, str(path), tree, text)
            project.modules[name] = mod
            _index_functions(project, mod)

    _infer_attr_types(project)
    for func in project.functions.values():
        analyze_function(project, func)
    return project
