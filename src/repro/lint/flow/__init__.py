"""Whole-program flow analysis for ``repro lint --flow``.

Call graph + per-function effect summaries + interprocedural taint over
the ``repro`` package, feeding the ENG*/ASY* rule families and the
interprocedural upgrade of DET001/DET004.  See
docs/STATIC_ANALYSIS.md ("Flow analysis") for the rule catalog, the
``# parity:`` tag contract and the pass's conservatism guarantees.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Set

from ..rules import Finding
from .callgraph import Project, load_project
from .effects import counter_sequence
from .rules import NS_EQUIV, check_flow

__all__ = [
    "NS_EQUIV",
    "Project",
    "check_flow",
    "counter_sequence",
    "load_project",
    "run_flow",
]


def run_flow(
    files: Sequence[Path],
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Build the project graph for ``files`` and run every flow rule.

    The graph is whole-program (the entire enclosing ``repro`` package
    is parsed) but findings are reported only for ``files``.  Allow-tag
    and baseline suppression happen in the engine, like any finding.
    """
    project = load_project([Path(f) for f in files])
    report_files: Set[Path] = {Path(f).resolve() for f in files}
    wanted = set(rules) if rules is not None else None
    return check_flow(project, wanted, report_files)
