"""Rule catalog and AST checker for ``repro lint``.

Each rule encodes an invariant the reproduction's correctness rests on.
The determinism rules (DET*) guard the axiom behind the content-addressed
result cache and the perf regression gate: *same config + same code =>
same metrics, bit for bit*.  KEY001 guards the hashing side of that axiom
(configs that feed cache keys and ledger fingerprints must be frozen and
hashable by value).  OBS001 keeps the tracer schema typed, and EXC001
keeps simulator bugs from being swallowed by blanket handlers.

Rules are scoped by dotted module prefix: a rule only fires in modules
whose dotted name matches one of its ``scopes`` (empty scopes = every
module).  Module names are derived from the file path by
:func:`repro.lint.engine.module_name`.

The checker is a single :class:`ast.NodeVisitor` pass per file.  Import
aliases are tracked (``import numpy as np``, ``from time import
perf_counter``) so that rules match the *canonical* dotted name of a
reference, not its spelling at the use site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Finding", "Rule", "RULES", "RULES_BY_ID", "check_module"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    ``anchors`` lists *additional* lines where an allow tag suppresses
    this finding (beyond the finding's own line and the line above it).
    Findings on decorated defs/classes anchor to their decorator list,
    so a tag above the decorators still counts.  Anchors are suppression
    metadata, not location — they stay out of ``to_dict``.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    anchors: Tuple[int, ...] = ()

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def tag_lines(self) -> Tuple[int, ...]:
        """Every line where an allow tag suppresses this finding."""
        lines = {self.line, self.line - 1}
        for anchor in self.anchors:
            lines.add(anchor)
            lines.add(anchor - 1)
        return tuple(sorted(lines))

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class Rule:
    """Metadata for one lint rule.

    ``scopes`` is a tuple of dotted module prefixes the rule applies to;
    the empty tuple means the rule applies everywhere.
    """

    id: str
    title: str
    rationale: str
    scopes: Tuple[str, ...] = ()

    def applies_to(self, module: str) -> bool:
        if not self.scopes:
            return True
        return any(
            module == scope or module.startswith(scope + ".") for scope in self.scopes
        )


#: Modules that hold simulated state or compute simulated time.  Host
#: wall-clock readings here would leak nondeterminism into cached results.
_SIM_SCOPES = ("repro.core", "repro.sta", "repro.mem", "repro.branch", "repro.sim")

#: Pure-simulation layers that must not read process environment: their
#: outputs are cached under config/params fingerprints which do not (and
#: must not need to) capture env vars.  ``repro.sim.executor`` is
#: deliberately excluded — cache/jobs/perf-dir knobs live there by design
#: and affect only *where* results go, never their values.
_PURE_SIM_SCOPES = (
    "repro.core",
    "repro.sta",
    "repro.mem",
    "repro.branch",
    "repro.isa",
    "repro.workloads",
    "repro.sim.driver",
)

#: Layers whose iteration order feeds simulation state or serialized
#: output (reports, traces, exports, analysis tables).
_ORDER_SCOPES = _SIM_SCOPES + (
    "repro.isa",
    "repro.workloads",
    "repro.obs",
    "repro.analysis",
)

RULES: Tuple[Rule, ...] = (
    Rule(
        "DET001",
        "no wall-clock in simulation paths",
        "Host time (time.time/perf_counter/datetime.now) read inside a "
        "simulation layer can leak into cached metrics; simulated time is "
        "the scheduler's cycle count.  Host profiling that provably never "
        "feeds sim state carries an allow tag.",
        _SIM_SCOPES,
    ),
    Rule(
        "DET002",
        "no global RNG state",
        "Module-level random/np.random calls share hidden global state "
        "across call sites and processes; draw from repro.common.rng "
        "streams or an explicitly seeded Generator/Random instance.",
    ),
    Rule(
        "DET003",
        "no unordered iteration feeding state or output",
        "Iterating a bare set (or .keys() handed straight to output) makes "
        "order an accident of hashing; sort, or iterate the insertion-"
        "ordered container directly.",
        _ORDER_SCOPES,
    ),
    Rule(
        "DET004",
        "no environment reads in pure-sim layers",
        "os.environ/os.getenv in core/sta/mem/branch/workloads or the sim "
        "driver makes results depend on state the cache key never sees; "
        "env knobs belong at the executor/CLI boundary.",
        _PURE_SIM_SCOPES,
    ),
    Rule(
        "DET005",
        "no salted builtin hash()",
        "Python salts str/bytes hash() per process (PYTHONHASHSEED); use "
        "repro.common.rng.stable_hash32 or hashlib for anything that feeds "
        "keys, sampling, or placement.",
    ),
    Rule(
        "KEY001",
        "frozen-dataclass hygiene for hashed configs",
        "Config dataclasses are hashed into cache keys and ledger "
        "fingerprints: they must be frozen=True, default-immutable, "
        "mutated only in __post_init__, and must not grow runtime "
        "observability fields (tracer/profiler/sanitizer).",
        ("repro.common.config",),
    ),
    Rule(
        "OBS001",
        "tracer emits use EventKind constants",
        "emit(...) with a literal kind bypasses the typed event schema in "
        "obs/events.py; exporters and filters only understand registered "
        "kinds.",
    ),
    Rule(
        "OBS002",
        "attribution calls use PROV_* constants",
        "set_wrong_context(...)/on_prefetch_fill(...) with a literal "
        "provenance bypasses the shared enum in obs/attrib.py; reports "
        "and the explain CLI only understand registered provenances.",
    ),
    Rule(
        "OBS003",
        "telemetry emits use registry name constants",
        "inc/set_gauge/observe with a literal metric name bypasses the "
        "declared schema in obs/telemetry.py; scrapers, dashboards and "
        "the manifest embed only understand registered M_* names.",
    ),
    Rule(
        "EXC001",
        "no blanket exception handlers",
        "bare except / except Exception hides simulator bugs as silent "
        "fallbacks; catch typed errors, or justify the boundary with "
        "# lint: allow(EXC001 reason).",
    ),
    # -- flow rules: fired by repro.lint.flow (repro lint --flow), not by
    # the single-file AST pass below.  They live in this catalog so the
    # CLI, SARIF export, allow tags and the baseline treat them like any
    # other rule.
    Rule(
        "ENG001",
        "fast-engine transcriptions mirror their oracle's effect order",
        "Each `# parity: <oracle.qualname>`-tagged function in the fast "
        "engine is a hand-fused transcription of an oracle policy method; "
        "its flattened counter-touch sequence must be order-identical to "
        "the oracle's, or the bit-identity the diff gate samples is "
        "silently broken for unsampled configs.",
        ("repro.sim.fast",),
    ),
    Rule(
        "ENG002",
        "fast-engine counter sites declare their oracle counterpart",
        "A function in the fast engine that touches counters without a "
        "`# parity:` tag (and without being fused under a tagged site) "
        "is a transcription the parity check cannot see; tag it, or "
        "justify with allow(ENG002 reason) why it has no oracle twin.",
        ("repro.sim.fast",),
    ),
    Rule(
        "ASY001",
        "no blocking calls reachable inside async defs",
        "A blocking call (time.sleep, sync file I/O, subprocess.run) "
        "reachable from an async def through any chain of sync helpers "
        "stalls the server's event loop for every job in flight; offload "
        "with asyncio.to_thread or use the async equivalent.",
        ("repro.serve", "repro.obs.telemetry"),
    ),
    Rule(
        "ASY002",
        "coroutines are awaited or scheduled",
        "Calling a coroutine function as a bare statement builds a "
        "coroutine object and drops it — the body never runs; await it, "
        "or hand it to asyncio.create_task.",
        ("repro.serve", "repro.obs.telemetry"),
    ),
    Rule(
        "ASY003",
        "lock-guarded state is mutated only under its lock",
        "An attribute mutated under a declared threading lock anywhere "
        "in a class is shared state; mutating it outside the lock races "
        "the HTTP snapshot threads against the event loop.",
        ("repro.serve", "repro.obs.telemetry"),
    ),
)

RULES_BY_ID: Dict[str, Rule] = {r.id: r for r in RULES}


# --- canonical names matched by the determinism rules ---------------------

#: AttributionCollector methods taking a provenance tag (OBS002), with
#: the positional index of that argument at the call site.
_PROV_ARG_METHODS: Dict[str, int] = {
    "set_wrong_context": 0,
    "on_prefetch_fill": 3,
}

#: MetricsRegistry emit methods (OBS003): the metric name is the first
#: positional argument (or the ``name`` keyword).
_METRIC_EMIT_METHODS = frozenset({"inc", "set_gauge", "observe"})

_WALLCLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Module-level functions on the stdlib ``random`` module that read or
#: mutate the hidden global Mersenne Twister.
_RANDOM_GLOBAL = frozenset(
    {
        "seed",
        "random",
        "randint",
        "randrange",
        "uniform",
        "gauss",
        "normalvariate",
        "expovariate",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "betavariate",
        "gammavariate",
        "lognormvariate",
        "paretovariate",
        "weibullvariate",
        "triangular",
        "vonmisesvariate",
        "getrandbits",
        "randbytes",
    }
)

#: Names under ``numpy.random`` that are fine to reference: constructing
#: an explicit bit generator / Generator is the *compliant* pattern.
_NP_RANDOM_OK = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "default_rng",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

_MUTABLE_DEFAULT_CALLS = frozenset({"list", "dict", "set", "bytearray"})

#: Runtime observability objects that must never become fields of a
#: hashed config dataclass (they would change the cache key per run).
_FOREIGN_CONFIG_FIELDS = frozenset({"tracer", "profiler", "sanitizer"})


class _Checker(ast.NodeVisitor):
    """Single-pass AST visitor applying every active rule to one module."""

    def __init__(self, module: str, path: str, active: Sequence[Rule]) -> None:
        self.module = module
        self.path = path
        self.active = {r.id for r in active}
        self.findings: List[Finding] = []
        #: local name -> canonical dotted name, built from this file's imports
        self.aliases: Dict[str, str] = {}
        self._func_stack: List[str] = []
        self._config_module = "KEY001" in self.active

    # -- helpers -----------------------------------------------------------

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        if rule in self.active:
            # Findings on decorated defs/classes anchor to the decorator
            # list so an allow tag above the decorators still suppresses
            # (node.lineno is the `def`/`class` line, *below* decorators).
            anchors = tuple(
                d.lineno for d in getattr(node, "decorator_list", [])
            )
            self.findings.append(
                Finding(rule, self.path, node.lineno, node.col_offset,
                        message, anchors=anchors)
            )

    def _canon(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to its canonical dotted name.

        Returns ``None`` for anything not rooted in an import of this
        file (locals, attributes of sim objects, ...), so rules never
        fire on e.g. a method that happens to be called ``choice``.
        """
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._canon(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    # -- imports build the alias map --------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            canonical = alias.name if alias.asname else alias.name.split(".")[0]
            self.aliases[local] = canonical
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                self.aliases[local] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    # -- DET001 / DET004: references to wall-clock and environment --------

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            canonical = self.aliases.get(node.id)
            if canonical in _WALLCLOCK:
                self._report(
                    "DET001",
                    node,
                    f"wall-clock reference `{canonical}` in a simulation path; "
                    "simulated time is the scheduler cycle count "
                    "(host profiling needs an allow tag)",
                )
            elif canonical in ("os.environ", "os.getenv"):
                self._report(
                    "DET004",
                    node,
                    f"environment read `{canonical}` in a pure-sim layer; "
                    "env knobs belong at the executor/CLI boundary",
                )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        canonical = self._canon(node)
        if canonical in _WALLCLOCK:
            self._report(
                "DET001",
                node,
                f"wall-clock reference `{canonical}` in a simulation path; "
                "simulated time is the scheduler cycle count "
                "(host profiling needs an allow tag)",
            )
            return  # do not also flag the inner `time` Name
        if canonical in ("os.environ", "os.getenv"):
            self._report(
                "DET004",
                node,
                f"environment read `{canonical}` in a pure-sim layer; "
                "env knobs belong at the executor/CLI boundary",
            )
            return
        self.generic_visit(node)

    # -- calls: DET002 / DET005 / OBS001 / KEY001 post-init mutation ------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        canonical = self._canon(func)

        if canonical is not None:
            if canonical.startswith("random."):
                tail = canonical.split(".", 1)[1]
                if tail in _RANDOM_GLOBAL:
                    self._report(
                        "DET002",
                        node,
                        f"`{canonical}(...)` uses the hidden global RNG; draw "
                        "from repro.common.rng streams or a seeded "
                        "random.Random(seed) instance",
                    )
            elif canonical.startswith("numpy.random."):
                tail = canonical.rsplit(".", 1)[1]
                if tail not in _NP_RANDOM_OK:
                    self._report(
                        "DET002",
                        node,
                        f"`{canonical}(...)` uses numpy's global RNG state; "
                        "use numpy.random.default_rng(seed) / "
                        "repro.common.rng streams",
                    )

        if (
            isinstance(func, ast.Name)
            and func.id == "hash"
            and func.id not in self.aliases
        ):
            self._report(
                "DET005",
                node,
                "builtin hash() is salted per process (PYTHONHASHSEED); use "
                "repro.common.rng.stable_hash32 or hashlib",
            )

        if isinstance(func, ast.Attribute) and func.attr == "emit":
            kind_arg: Optional[ast.expr] = node.args[0] if node.args else None
            if kind_arg is None:
                for kw in node.keywords:
                    if kw.arg == "kind":
                        kind_arg = kw.value
                        break
            if isinstance(kind_arg, ast.Constant):
                self._report(
                    "OBS001",
                    node,
                    "emit(...) with a literal kind bypasses the typed event "
                    "schema; use an EventKind constant from repro.obs.events",
                )

        if isinstance(func, ast.Attribute) and func.attr in _PROV_ARG_METHODS:
            pos = _PROV_ARG_METHODS[func.attr]
            prov_arg: Optional[ast.expr] = (
                node.args[pos] if len(node.args) > pos else None
            )
            if prov_arg is None:
                for kw in node.keywords:
                    if kw.arg == "prov":
                        prov_arg = kw.value
                        break
            if isinstance(prov_arg, ast.Constant):
                self._report(
                    "OBS002",
                    node,
                    f"{func.attr}(...) with a literal provenance bypasses "
                    "the shared enum; use a PROV_* constant from "
                    "repro.obs.attrib",
                )

        if isinstance(func, ast.Attribute) and func.attr in _METRIC_EMIT_METHODS:
            name_arg: Optional[ast.expr] = node.args[0] if node.args else None
            if name_arg is None:
                for kw in node.keywords:
                    if kw.arg == "name":
                        name_arg = kw.value
                        break
            if isinstance(name_arg, ast.Constant):
                self._report(
                    "OBS003",
                    node,
                    f"{func.attr}(...) with a literal metric name bypasses "
                    "the declared registry schema; use an M_* constant from "
                    "repro.obs.telemetry",
                )

        if (
            self._config_module
            and isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
            and "__post_init__" not in self._func_stack
        ):
            self._report(
                "KEY001",
                node,
                "object.__setattr__ outside __post_init__ mutates a frozen "
                "config after it may have been hashed into a cache key",
            )

        self.generic_visit(node)

    # -- DET003: unordered iteration --------------------------------------

    def _unordered_desc(self, node: ast.expr) -> Optional[str]:
        """Describe ``node`` if iterating it has hash-dependent order."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in ("set", "frozenset")
                and func.id not in self.aliases
            ):
                return f"{func.id}(...)"
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "keys"
                and not node.args
                and not node.keywords
                and self._canon(func) is None
            ):
                return ".keys()"
        return None

    def _check_iter(self, node: ast.expr) -> None:
        desc = self._unordered_desc(node)
        if desc is not None:
            self._report(
                "DET003",
                node,
                f"iteration over {desc} has hash-dependent order; sort it or "
                "iterate the insertion-ordered container",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for gen in node.generators:  # type: ignore[attr-defined]
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    # -- EXC001: blanket handlers ------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        blanket: Optional[str] = None
        if node.type is None:
            blanket = "bare `except:`"
        else:
            exprs = (
                list(node.type.elts)
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for expr in exprs:
                name = None
                if isinstance(expr, ast.Name):
                    name = expr.id
                elif isinstance(expr, ast.Attribute):
                    name = expr.attr
                if name in ("Exception", "BaseException"):
                    blanket = f"`except {name}`"
                    break
        if blanket is not None:
            self._report(
                "EXC001",
                node,
                f"{blanket} hides simulator bugs as silent fallbacks; catch "
                "typed errors or justify with `# lint: allow(EXC001 reason)`",
            )
        self.generic_visit(node)

    # -- KEY001: dataclass hygiene -----------------------------------------

    @staticmethod
    def _dataclass_decorator(dec: ast.expr) -> Tuple[bool, bool]:
        """Return ``(is_dataclass, frozen)`` for one decorator node."""

        def _is_dc(expr: ast.expr) -> bool:
            if isinstance(expr, ast.Name):
                return expr.id == "dataclass"
            if isinstance(expr, ast.Attribute):
                return expr.attr == "dataclass"
            return False

        if _is_dc(dec):
            return True, False
        if isinstance(dec, ast.Call) and _is_dc(dec.func):
            for kw in dec.keywords:
                if kw.arg == "frozen":
                    value = kw.value
                    return True, isinstance(value, ast.Constant) and value.value is True
            return True, False
        return False, False

    @staticmethod
    def _mutable_default(value: Optional[ast.expr]) -> Optional[str]:
        if isinstance(value, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            if value.func.id in _MUTABLE_DEFAULT_CALLS:
                return value.func.id
        return None

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._config_module:
            self.generic_visit(node)
            return

        is_dataclass = frozen = False
        for dec in node.decorator_list:
            dc, fr = self._dataclass_decorator(dec)
            if dc:
                is_dataclass, frozen = True, fr
                break

        if is_dataclass:
            if not frozen:
                self._report(
                    "KEY001",
                    node,
                    f"config dataclass {node.name} must be frozen=True; it is "
                    "hashed into cache keys and ledger fingerprints",
                )
            for stmt in node.body:
                target_name: Optional[str] = None
                default: Optional[ast.expr] = None
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    target_name, default = stmt.target.id, stmt.value
                elif (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                ):
                    target_name, default = stmt.targets[0].id, stmt.value
                if target_name is None:
                    continue
                if target_name in _FOREIGN_CONFIG_FIELDS:
                    self._report(
                        "KEY001",
                        stmt,
                        f"field `{target_name}` is a runtime observability "
                        "object; keep it out of hashed config dataclasses "
                        "(pass it as a run_simulation/run_program kwarg)",
                    )
                kind = self._mutable_default(default)
                if kind is not None:
                    self._report(
                        "KEY001",
                        stmt,
                        f"field `{target_name}` has a mutable {kind} default; "
                        "use field(default_factory=...) with an immutable "
                        "value, or a tuple",
                    )
        self.generic_visit(node)

    # -- function stack (for the __post_init__ exception) ------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()


def check_module(
    tree: ast.AST,
    module: str,
    path: str,
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run every rule active for ``module`` over a parsed tree.

    ``rules`` optionally restricts the pass to a subset of rule ids
    (already validated by the engine).  Findings come back in source
    order; allow-tag and baseline filtering happen in the engine.
    """
    selected = RULES if rules is None else tuple(RULES_BY_ID[r] for r in rules)
    active = [r for r in selected if r.applies_to(module)]
    if not active:
        return []
    checker = _Checker(module, path, active)
    checker.visit(tree)
    checker.findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return checker.findings
