"""Static analysis and runtime sanitizing for the WEC reproduction.

Two complementary halves guard the determinism axiom the result cache,
perf ledger, and regression gate all rest on ("same config + same code
=> same metrics"):

``repro.lint.rules`` / ``repro.lint.engine``
    An AST-based static pass (stdlib :mod:`ast` + :mod:`tokenize` only)
    with a small catalog of rules encoding the repo's real invariants —
    no wall-clock or environment reads in sim paths, no global RNG
    state, no unordered iteration feeding sim state or serialization,
    frozen-dataclass hygiene for hashed configs, typed tracer event
    kinds, and no blanket ``except``.  Exposed as ``repro lint`` with
    the established 0/1/2 exit convention.

``repro.lint.flow``
    A whole-program pass (``repro lint --flow``) on a project call
    graph with per-function effect summaries: fast-engine/oracle
    counter-order parity (ENG001/ENG002 via ``# parity:`` tags),
    async-safety for the serve layer (ASY001–ASY003), and
    interprocedural DET001/DET004 — a wall-clock or environment read
    in an exempt module is flagged at the call site that makes it
    reachable from a scoped layer.

``repro.lint.sanitize``
    A runtime sanitizer (``REPRO_SANITIZE=1`` or ``--sanitize``) that
    asserts the paper's architectural invariants while a simulation
    runs: wrong-execution loads never write architectural state,
    WEC/L1D fills stay mutually exclusive, aborted wrong threads never
    fork or write back, ring communication stays unidirectional, and
    per-TU cycles are monotone.  Violations raise a structured
    :class:`~repro.lint.sanitize.SanitizerError` naming the TU, cycle,
    and event; sanitized runs are bit-identical to unsanitized runs.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalog, the allow-tag
syntax (``# lint: allow(RULE reason)``), and the baseline workflow.
"""

from __future__ import annotations

from .engine import LintReport, lint_paths, lint_source, load_baseline, write_baseline
from .rules import RULES, RULES_BY_ID, Finding, Rule
from .sanitize import Sanitizer, SanitizerError, maybe_sanitizer, sanitize_enabled
from .sarif import render_sarif

__all__ = [
    "Finding",
    "LintReport",
    "RULES",
    "RULES_BY_ID",
    "Rule",
    "Sanitizer",
    "SanitizerError",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "maybe_sanitizer",
    "render_sarif",
    "sanitize_enabled",
    "write_baseline",
]
