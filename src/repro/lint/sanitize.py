"""Runtime simulation sanitizer: the paper's invariants, checked live.

Enabled per run (``run_simulation(..., sanitizer=Sanitizer())``), per
process (``REPRO_SANITIZE=1``), or from the CLI (``--sanitize``), the
sanitizer rides along a simulation and asserts the architectural
invariants the WEC design rests on:

* **wrong execution never writes architectural state** — a wrong-path /
  wrong-thread load never dirties a cache block it brought in, and a
  wrong (aborted) thread never stores, never writes back its
  speculative memory buffer, and never retains buffered stores past its
  abort;
* **WEC/L1D mutual exclusion** — a block never resides in the L1 and
  the sidecar at once, and under the WEC policy a wrong-execution fill
  never installs into the L1 (pollution elimination, Figure 6);
* **aborted threads never fork** — successors are forked only by live
  threads, and only to the next TU around the ring;
* **ring communication is unidirectional** — target stores flow from
  TU *i* to TU *(i+1) mod n* exclusively;
* **per-TU cycle monotonicity** — an iteration never ends before it
  starts, never starts before the TU's previous iteration retired, and
  the global region clock never moves backwards.

Violations raise :class:`SanitizerError` carrying the check name, the
TU, and the cycle.  The sanitizer is *read-only* on simulated state: it
observes caches through the non-mutating ``probe``/``__contains__``
accessors (never the LRU-touching ``lookup``), so sanitized runs are
bit-identical to unsanitized ones (enforced in
``tests/test_sanitizer.py``).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Set

from ..common.errors import SimulationError

__all__ = ["SanitizerError", "Sanitizer", "maybe_sanitizer", "sanitize_enabled"]

#: Cycle comparisons run on floats accumulated in different orders;
#: allow relative rounding noise, never a real step backwards.
_REL_TOL = 1e-9

ENV_VAR = "REPRO_SANITIZE"


class SanitizerError(SimulationError):
    """An architectural invariant was violated during simulation.

    Attributes name the failing ``check``, the ``tu`` it fired on, and
    the simulated ``cycle`` (best known estimate; memory-system checks
    report the cycle of the enclosing region event).
    """

    def __init__(self, check: str, tu: int, cycle: float, detail: str) -> None:
        super().__init__(
            f"sanitizer: {check} violated on TU {tu} at cycle {cycle:.1f}: {detail}"
        )
        self.check = check
        self.tu = tu
        self.cycle = cycle
        self.detail = detail


class Sanitizer:
    """Invariant checker threaded through Machine/Scheduler/TUMemSystem.

    One instance covers one simulation.  It keeps no per-run results —
    only the bookkeeping needed to evaluate the invariants (which TUs
    are currently wrong threads, each TU's last retire cycle, the region
    clock) plus an ``n_checks`` counter so tests can prove it was live.
    """

    __slots__ = ("n_checks", "_wrong", "_iter_end", "_clock")

    def __init__(self) -> None:
        self.n_checks = 0
        #: TUs currently executing as wrong (aborted) threads.  Used for
        #: membership tests only — never iterated.
        self._wrong: Set[int] = set()
        self._iter_end: Dict[int, float] = {}
        self._clock = 0.0

    def _fail(self, check: str, tu: int, detail: str, cycle: Optional[float] = None) -> None:
        raise SanitizerError(check, tu, self._clock if cycle is None else cycle, detail)

    @staticmethod
    def _tol(*values: float) -> float:
        return _REL_TOL * max(1.0, *(abs(v) for v in values))

    # ------------------------------------------------------------------
    # thread lifecycle (wired in ThreadUnit / Scheduler)
    # ------------------------------------------------------------------

    def enter_wrong(self, tu: int, start_iter: int) -> None:
        """TU begins running as a wrong thread for ``start_iter``."""
        self.n_checks += 1
        if tu in self._wrong:
            self._fail(
                "wrong_thread_reentry",
                tu,
                f"TU re-entered wrong-thread mode for iteration {start_iter} "
                "without aborting its previous wrong thread",
            )
        self._wrong.add(tu)

    def exit_wrong(self, tu: int, membuf_occupancy: int) -> None:
        """TU reached its abort; its speculative buffer must be empty."""
        self.n_checks += 1
        self._wrong.discard(tu)
        if membuf_occupancy:
            self._fail(
                "wrong_thread_writeback",
                tu,
                f"aborted wrong thread retained {membuf_occupancy} buffered "
                "store(s) past its abort (speculative state must be squashed)",
            )

    def check_execute(self, tu: int) -> None:
        """A wrong thread must never execute correct-path work."""
        self.n_checks += 1
        if tu in self._wrong:
            self._fail(
                "wrong_thread_execute",
                tu,
                "TU executed a correct-path iteration while marked as a "
                "wrong (aborted) thread",
            )

    def check_writeback(self, tu: int) -> None:
        """Only live threads may commit their speculative buffers."""
        self.n_checks += 1
        if tu in self._wrong:
            self._fail(
                "wrong_thread_writeback",
                tu,
                "wrong (aborted) thread attempted to write back buffered stores",
            )

    def check_fork(self, src_tu: int) -> None:
        """Only live threads fork successors."""
        self.n_checks += 1
        if src_tu in self._wrong:
            self._fail(
                "wrong_thread_fork",
                src_tu,
                "wrong (aborted) thread forked a successor thread",
            )

    def check_ring(self, src_tu: int, dst_tu: int, n_tus: int) -> None:
        """Target stores travel one hop forward around the ring, only."""
        self.n_checks += 1
        if n_tus > 1 and dst_tu != (src_tu + 1) % n_tus:
            self._fail(
                "ring_unidirectional",
                dst_tu,
                f"target-store forwarding from TU {src_tu} to TU {dst_tu} "
                f"is not the unidirectional ring successor "
                f"(expected TU {(src_tu + 1) % n_tus} of {n_tus})",
            )

    # ------------------------------------------------------------------
    # cycle accounting (wired in Scheduler)
    # ------------------------------------------------------------------

    def check_iter(self, tu: int, start: float, end: float) -> None:
        """One iteration's span: non-negative, after the TU's last retire."""
        self.n_checks += 1
        if end < start - self._tol(start, end):
            self._fail(
                "iter_negative_span",
                tu,
                f"iteration ends at cycle {end:.1f} before it starts at "
                f"{start:.1f}",
                cycle=start,
            )
        last = self._iter_end.get(tu)
        if last is not None and start < last - self._tol(start, last):
            self._fail(
                "tu_cycle_monotonic",
                tu,
                f"iteration starts at cycle {start:.1f} before the TU's "
                f"previous iteration retired at {last:.1f}",
                cycle=start,
            )
        self._iter_end[tu] = end

    def check_clock(self, now: float) -> None:
        """The global region clock only moves forward."""
        self.n_checks += 1
        if now < self._clock - self._tol(now, self._clock):
            self._fail(
                "clock_monotonic",
                -1,
                f"region clock moved backwards: {self._clock:.1f} -> {now:.1f}",
                cycle=now,
            )
        self._clock = now

    # ------------------------------------------------------------------
    # memory-system invariants (wired in TUMemSystem)
    # ------------------------------------------------------------------

    def attach_memory_checks(self, mem) -> None:
        """Wrap a :class:`~repro.mem.hierarchy.TUMemSystem`'s policies.

        The wrappers re-bind the ``load_correct``/``store_correct``/
        ``load_wrong`` slots with checking versions.  All observation
        goes through ``__contains__``/``probe`` — the accessors that do
        not touch LRU state — so wrapped and unwrapped runs take
        identical microarchitectural decisions.
        """
        from ..common.config import SidecarKind
        from ..mem.cache import DIRTY

        san = self
        tu = mem.tu_id
        l1d = mem.l1d
        sidecar = mem.sidecar
        block_bits = l1d.block_bits
        is_wec = mem.sidecar_kind is SidecarKind.WEC
        inner_load_correct = mem.load_correct
        inner_store_correct = mem.store_correct
        inner_load_wrong = mem.load_wrong

        def _check_exclusive(block: int) -> None:
            if (
                sidecar is not None
                and block in l1d
                and sidecar.probe(block) is not None
            ):
                san._fail(
                    "l1_sidecar_exclusive",
                    tu,
                    f"block {block:#x} resides in both the L1D and the "
                    f"{mem.sidecar_kind.value} sidecar after an access",
                )

        def load_correct(addr: int) -> int:
            latency = inner_load_correct(addr)
            san.n_checks += 1
            _check_exclusive(addr >> block_bits)
            return latency

        def store_correct(addr: int) -> int:
            san.n_checks += 1
            if tu in san._wrong:
                san._fail(
                    "wrong_thread_store",
                    tu,
                    f"wrong (aborted) thread stored to address {addr:#x}",
                )
            latency = inner_store_correct(addr)
            _check_exclusive(addr >> block_bits)
            return latency

        def load_wrong(addr: int) -> int:
            block = addr >> block_bits
            pre_l1 = block in l1d
            pre_sidecar = sidecar is not None and sidecar.probe(block) is not None
            latency = inner_load_wrong(addr)
            san.n_checks += 1
            if is_wec and not pre_l1 and block in l1d:
                san._fail(
                    "wec_wrong_fill_l1",
                    tu,
                    f"wrong-execution fill of block {block:#x} installed "
                    "into the L1D under the WEC policy (must fill the WEC "
                    "only — pollution elimination, Figure 6)",
                )
            if not pre_l1 and not pre_sidecar:
                flags = l1d.probe(block)
                if flags is None and sidecar is not None:
                    flags = sidecar.probe(block)
                if flags is not None and flags & DIRTY:
                    san._fail(
                        "wrong_load_writes_state",
                        tu,
                        f"wrong-execution load of block {block:#x} created "
                        "dirty (architecturally written) cache state",
                    )
            _check_exclusive(block)
            return latency

        mem.load_correct = load_correct
        mem.store_correct = store_correct
        mem.load_wrong = load_wrong


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` requests sanitized runs."""
    return os.environ.get(ENV_VAR, "").strip().lower() not in ("", "0", "false", "no")


def maybe_sanitizer(explicit: Optional[Sanitizer] = None) -> Optional[Sanitizer]:
    """Resolve the sanitizer for one run.

    An explicitly passed instance always wins; otherwise a fresh one is
    created when ``REPRO_SANITIZE=1`` is set (so the env var sanitizes
    whole test suites and forked sweep workers without code changes),
    and ``None`` — the zero-cost default — is returned otherwise.
    """
    if explicit is not None:
        return explicit
    return Sanitizer() if sanitize_enabled() else None
