"""File walking, allow-tags, baseline, and reporting for ``repro lint``.

Suppression model, in precedence order:

1. **Allow tags** — ``# lint: allow(RULE reason)`` on the finding's line
   or the line directly above it.  The reason is mandatory; a tag
   without one does not suppress.  Tags are the preferred mechanism:
   they live next to the code and document *why* the exception is safe.
2. **Baseline** — a committed ``lint-baseline.json`` ratchet file listing
   pre-existing findings by (rule, path, line) with a mandatory reason.
   Entries that no longer match anything are reported as stale so the
   baseline only ever shrinks.

Invocation problems (unknown rule, missing path, unparseable source,
malformed baseline, baselined entry without a reason) raise
:class:`~repro.common.errors.LintError`, which the CLI maps to exit 2;
findings are data and map to exit 1.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..common.errors import LintError
from .rules import RULES, RULES_BY_ID, Finding, check_module

__all__ = [
    "BaselineEntry",
    "LintReport",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "module_name",
    "parse_allow_tags",
    "write_baseline",
]

#: ``# lint: allow(DET001 host profiling only)`` — rule id, then the
#: mandatory free-text reason, inside one pair of parentheses.  Several
#: tags may share a comment: ``# lint: allow(DET001 x) allow(EXC001 y)``.
_ALLOW_RE = re.compile(r"allow\(\s*([A-Z]{3}\d{3})\s+([^)]*?)\s*\)")
_TAG_RE = re.compile(r"#\s*lint:\s*(.+)$")


def module_name(path: Path) -> str:
    """Derive a dotted module name from a file path.

    Paths containing a ``repro`` component are resolved relative to it
    (``src/repro/mem/cache.py`` -> ``repro.mem.cache``) so scoped rules
    apply regardless of the checkout location.  Anything else falls back
    to the bare stem, which only globally-scoped rules match.
    """
    parts = list(path.parts)
    parts[-1] = path.stem
    if parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        start = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[start:])
    return parts[-1] if parts else path.stem


def parse_allow_tags(text: str) -> Dict[int, Dict[str, str]]:
    """Extract ``# lint: allow(RULE reason)`` tags from comments.

    Returns ``{line: {rule_id: reason}}``.  Tokenizing (rather than
    regexing raw lines) means string literals that merely *mention* the
    tag syntax — such as the fixtures in ``tests/test_lint.py`` — never
    suppress anything.
    """
    tags: Dict[int, Dict[str, str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            tag_match = _TAG_RE.search(tok.string)
            if tag_match is None:
                continue
            for rule_id, reason in _ALLOW_RE.findall(tag_match.group(1)):
                if reason:
                    tags.setdefault(tok.start[0], {})[rule_id] = reason
    except tokenize.TokenizeError:
        pass  # the ast.parse in lint_source reports the syntax error
    return tags


def lint_source(
    text: str,
    path: str = "<memory>",
    module: Optional[str] = None,
    rules: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], int]:
    """Lint one source string; returns ``(findings, n_suppressed)``.

    ``module`` defaults to :func:`module_name` of ``path``.  Findings
    covered by a justified allow tag on their own line or the line above
    are counted in ``n_suppressed`` instead of being returned.
    """
    if module is None:
        module = module_name(Path(path))
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: cannot lint, file does not parse: {exc}") from exc
    raw = check_module(tree, module, path, rules)
    if not raw:
        return [], 0
    return _apply_allow_tags(raw, parse_allow_tags(text))


def _apply_allow_tags(
    raw: Sequence[Finding], tags: Dict[int, Dict[str, str]]
) -> Tuple[List[Finding], int]:
    """Split findings into (kept, n_suppressed) using justified tags.

    A tag counts on the finding's line, the line above it, and every
    anchor line (plus the line above each anchor) — anchors are how a
    finding on a decorated def spans its decorator list.
    """
    findings: List[Finding] = []
    suppressed = 0
    for finding in raw:
        if any(finding.rule in tags.get(line, {})
               for line in finding.tag_lines()):
            suppressed += 1
        else:
            findings.append(finding)
    return findings, suppressed


# --- baseline -------------------------------------------------------------


@dataclass(frozen=True)
class BaselineEntry:
    """One ratcheted finding: (rule, path, line) plus its justification."""

    rule: str
    path: str
    line: int
    reason: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "reason": self.reason,
        }


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Load and validate a baseline file; every entry needs a reason."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != 1:
        raise LintError(f"baseline {path}: expected an object with version 1")
    raw_entries = data.get("entries")
    if not isinstance(raw_entries, list):
        raise LintError(f"baseline {path}: 'entries' must be a list")
    entries: List[BaselineEntry] = []
    for i, raw in enumerate(raw_entries):
        if not isinstance(raw, dict):
            raise LintError(f"baseline {path}: entry {i} is not an object")
        rule = raw.get("rule")
        rel = raw.get("path")
        line = raw.get("line")
        reason = raw.get("reason")
        if not isinstance(rule, str) or rule not in RULES_BY_ID:
            raise LintError(f"baseline {path}: entry {i} has unknown rule {rule!r}")
        if not isinstance(rel, str) or not rel:
            raise LintError(f"baseline {path}: entry {i} needs a 'path' string")
        if not isinstance(line, int):
            raise LintError(f"baseline {path}: entry {i} needs an integer 'line'")
        if not isinstance(reason, str) or not reason.strip():
            raise LintError(
                f"baseline {path}: entry {i} ({rule} {rel}:{line}) has no "
                "reason — every baselined finding must be justified"
            )
        if reason.strip().upper().startswith("TODO"):
            raise LintError(
                f"baseline {path}: entry {i} ({rule} {rel}:{line}) still has "
                "a TODO placeholder reason — replace it with a real "
                "justification"
            )
        entries.append(BaselineEntry(rule, rel, line, reason.strip()))
    return entries


def write_baseline(findings: Sequence[Finding], path: Path, root: Path) -> None:
    """Write ``findings`` as a fresh baseline, paths relative to ``root``.

    Reasons are stamped as TODO markers on purpose: the loader rejects
    them until a human replaces each with a real justification, so a
    regenerated baseline cannot silently launder new violations.
    """
    entries = [
        {
            "rule": f.rule,
            "path": _relativize(Path(f.path), root),
            "line": f.line,
            "reason": "TODO: justify this baselined finding",
        }
        for f in findings
    ]
    payload = {"version": 1, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def _relativize(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


# --- report ---------------------------------------------------------------


@dataclass
class LintReport:
    """Aggregated outcome of one lint invocation."""

    findings: List[Finding] = field(default_factory=list)
    n_files: int = 0
    n_suppressed: int = 0
    n_baselined: int = 0
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    missing_baseline: List[BaselineEntry] = field(default_factory=list)
    rules: Tuple[str, ...] = ()

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def render_text(self) -> str:
        lines = [
            f"{f.location}: {f.rule} {f.message}  [{RULES_BY_ID[f.rule].title}]"
            for f in self.findings
        ]
        for entry in self.stale_baseline:
            lines.append(
                f"warning: stale baseline entry {entry.rule} "
                f"{entry.path}:{entry.line} no longer matches — remove it"
            )
        for entry in self.missing_baseline:
            lines.append(
                f"warning: baseline entry {entry.rule} "
                f"{entry.path}:{entry.line} points at a file that no "
                "longer exists — remove the entry"
            )
        extras = []
        if self.n_suppressed:
            extras.append(f"{self.n_suppressed} allow-tagged")
        if self.n_baselined:
            extras.append(f"{self.n_baselined} baselined")
        suffix = f" ({', '.join(extras)})" if extras else ""
        lines.append(
            f"{len(self.findings)} finding(s) in {self.n_files} file(s){suffix}"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "files": self.n_files,
            "rules": list(self.rules),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": self.n_suppressed,
            "baselined": self.n_baselined,
            "stale_baseline": [e.to_dict() for e in self.stale_baseline],
            "missing_baseline": [e.to_dict() for e in self.missing_baseline],
        }


def _expand_paths(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise LintError(f"no such file or directory: {path}")
    seen = set()
    unique = []
    for f in files:
        key = f.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def lint_paths(
    paths: Iterable[Path],
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Path] = None,
    flow: bool = False,
) -> LintReport:
    """Lint files/directories and return an aggregated :class:`LintReport`.

    ``rules`` restricts the pass to the given rule ids (unknown ids are
    a :class:`LintError`).  ``baseline`` applies a ratchet file; entry
    paths are resolved relative to the baseline file's directory.
    ``flow`` additionally runs the whole-program pass
    (:mod:`repro.lint.flow`): the call graph is built over the entire
    enclosing ``repro`` package, findings are reported for the linted
    files only, and allow tags / the baseline apply to them as usual.
    """
    if rules is not None:
        unknown = sorted(set(rules) - set(RULES_BY_ID))
        if unknown:
            known = ", ".join(r.id for r in RULES)
            raise LintError(
                f"unknown rule id(s): {', '.join(unknown)} (known: {known})"
            )
        rules = sorted(set(rules))

    files = _expand_paths([Path(p) for p in paths])
    report = LintReport(
        n_files=len(files),
        rules=tuple(rules) if rules is not None else tuple(r.id for r in RULES),
    )
    texts: Dict[str, str] = {}
    for file_path in files:
        try:
            text = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {file_path}: {exc}") from exc
        texts[str(file_path)] = text
        findings, suppressed = lint_source(text, path=str(file_path), rules=rules)
        report.findings.extend(findings)
        report.n_suppressed += suppressed

    if flow:
        from .flow import run_flow

        raw = run_flow(files, rules=rules)
        by_path: Dict[str, List[Finding]] = {}
        for finding in raw:
            by_path.setdefault(finding.path, []).append(finding)
        for path_str, path_findings in by_path.items():
            text = texts.get(path_str)
            if text is None:  # flow path spelling differs from lint walk
                try:
                    text = Path(path_str).read_text(encoding="utf-8")
                except OSError:
                    text = ""
            kept, suppressed = _apply_allow_tags(
                path_findings, parse_allow_tags(text)
            )
            report.findings.extend(kept)
            report.n_suppressed += suppressed

    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    if baseline is not None:
        entries = load_baseline(baseline)
        base_dir = baseline.resolve().parent
        present = [e for e in entries if (base_dir / e.path).is_file()]
        report.missing_baseline = [
            e for e in entries if not (base_dir / e.path).is_file()
        ]
        matched: Dict[Tuple[str, Path, int], BaselineEntry] = {
            (e.rule, (base_dir / e.path).resolve(), e.line): e for e in present
        }
        used = set()
        remaining: List[Finding] = []
        for finding in report.findings:
            key = (finding.rule, Path(finding.path).resolve(), finding.line)
            if key in matched:
                used.add(key)
                report.n_baselined += 1
            else:
                remaining.append(finding)
        report.findings = remaining
        report.stale_baseline = [
            entry for key, entry in matched.items() if key not in used
        ]
    return report
