"""Mechanistic timing model for one thread-unit core.

Full cycle-accurate out-of-order simulation is three orders of magnitude
too slow in pure Python (the repro-feasibility note for this paper says
exactly this), so the core is modelled mechanistically — the approach of
interval analysis: per iteration,

``base cycles``
    issue-limited: ``instructions / min(issue_width, workload ILP)``,
    further bounded below by functional-unit throughput (Table 3 gives
    each TU a specific ALU/MULT/FP mix);
``memory stall cycles``
    the sum of beyond-L1 latencies of correct-path loads, divided by the
    memory-level parallelism the ROB/LSQ can sustain;
``branch stall cycles``
    mispredictions × refill penalty;
``store commit cycles``
    stores retire from the speculative memory buffer during write-back,
    largely off the critical path (weighted down accordingly).

All components are additive per iteration; the thread-pipelining
scheduler then composes iterations across TUs.  This preserves exactly
the quantities the paper's conclusions rest on: relative execution time
across memory-system variants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.config import SimParams, ThreadUnitConfig
from ..common.errors import SimulationError
from ..isa.encoding import StageSplit
from ..isa.instructions import InstructionMix

__all__ = ["IterationTiming", "CoreTimingModel"]

#: Fraction of a store-commit stall charged to the write-back stage —
#: stores drain from the memory buffer in the background.
STORE_STALL_WEIGHT = 0.2


@dataclass
class IterationTiming:
    """Cycle breakdown of one iteration (or sequential chunk)."""

    continuation: float
    tsag: float
    computation: float
    writeback: float
    # Diagnostics (already folded into the stage numbers above):
    base_cycles: float = 0.0
    mem_stall: float = 0.0
    store_stall: float = 0.0
    branch_stall: float = 0.0
    ifetch_stall: float = 0.0
    n_mispredicts: int = 0
    n_wrong_path_loads: int = 0

    @property
    def total(self) -> float:
        """End-to-end cycles of the iteration on an unloaded TU."""
        return self.continuation + self.tsag + self.computation + self.writeback


class CoreTimingModel:
    """Translates replay measurements into per-iteration cycle counts."""

    __slots__ = ("cfg", "params", "_mlp", "_fu_counts")

    def __init__(self, cfg: ThreadUnitConfig, params: SimParams) -> None:
        self.cfg = cfg
        self.params = params
        mlp = (cfg.rob_size / 16.0) * params.mlp_per_16_rob
        # The LSQ bounds outstanding memory operations as well.
        mlp = min(mlp, cfg.lsq_size / 8.0)
        self._mlp = max(1.0, min(params.mlp_cap, mlp))
        fu = cfg.func_units
        self._fu_counts = {
            "int_alu": fu.int_alu,
            "int_mult": fu.int_mult,
            "fp_alu": fu.fp_alu,
            "fp_mult": fu.fp_mult,
        }

    @property
    def mlp(self) -> float:
        """Modelled memory-level parallelism (overlappable misses)."""
        return self._mlp

    def base_cycles(self, mix: InstructionMix, ilp: float) -> float:
        """Issue- and FU-throughput-limited execution cycles."""
        if ilp <= 0:
            raise SimulationError("non-positive ILP")
        total = mix.total
        if total == 0:
            return 0.0
        eff_issue = min(float(self.cfg.issue_width), ilp)
        cycles = total / eff_issue
        for pool, demand in mix.fu_demand().items():
            pool_cycles = demand / self._fu_counts[pool]
            if pool_cycles > cycles:
                cycles = pool_cycles
        return cycles

    def iteration_timing(
        self,
        mix: InstructionMix,
        ilp: float,
        stage_split: StageSplit,
        load_stall_sum: float,
        store_stall_sum: float,
        n_mispredicts: int,
        mispredict_penalty: int,
        ifetch_stall_sum: float = 0.0,
        n_wrong_path_loads: int = 0,
    ) -> IterationTiming:
        """Assemble the full timing of one iteration.

        ``load_stall_sum`` / ``store_stall_sum`` are the summed
        beyond-hit latencies measured by the cache replay;
        ``ifetch_stall_sum`` likewise for the L1I.
        """
        base = self.base_cycles(mix, ilp)
        mem_stall = load_stall_sum / self._mlp
        store_stall = store_stall_sum * STORE_STALL_WEIGHT / self._mlp
        branch_stall = float(n_mispredicts * mispredict_penalty)
        cont, tsag, comp, wb = stage_split.cycles(base)
        comp += mem_stall + branch_stall + ifetch_stall_sum
        wb += store_stall
        return IterationTiming(
            continuation=cont,
            tsag=tsag,
            computation=comp,
            writeback=wb,
            base_cycles=base,
            mem_stall=mem_stall,
            store_stall=store_stall,
            branch_stall=branch_stall,
            ifetch_stall=ifetch_stall_sum,
            n_mispredicts=n_mispredicts,
            n_wrong_path_loads=n_wrong_path_loads,
        )
