"""The paper's core machinery: TU cores, timing, speculative buffers."""

from .membuffer import SpeculativeMemBuffer
from .thread_unit import SEQ_SPLIT, ThreadUnit
from .timing import CoreTimingModel, IterationTiming

__all__ = [
    "SpeculativeMemBuffer",
    "SEQ_SPLIT",
    "ThreadUnit",
    "CoreTimingModel",
    "IterationTiming",
]
