"""Speculative memory buffer with target-store dependence checking (§2.2).

Each thread unit caches its speculative stores here during a parallel
region; nothing reaches the memory system until the in-order write-back
stage commits the buffer.  This is why wrong threads are harmless to
memory state: they never reach write-back, so their buffered stores
simply evaporate (§3.1.2).

The buffer also implements run-time data-dependence checking: *target
store* addresses computed in the TSAG stage are forwarded to all
downstream threads' buffers; a downstream load whose address matches a
forwarded entry has a cross-thread dependence and must wait for the
value to arrive over the communication ring.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..common.errors import SimulationError
from ..common.stats import CounterGroup

__all__ = ["SpeculativeMemBuffer"]


class SpeculativeMemBuffer:
    """Per-TU fully-associative speculative store buffer (§4.1: 128 entries)."""

    __slots__ = ("capacity", "stats", "_stores", "_upstream_targets", "_arrived")

    def __init__(self, capacity: int = 128, name: str = "membuf") -> None:
        if capacity < 1:
            raise SimulationError("memory buffer needs at least one entry")
        self.capacity = capacity
        self.stats = CounterGroup(name)
        #: This thread's own buffered stores: addr -> is_target_store.
        self._stores: Dict[int, bool] = {}
        #: Target-store addresses forwarded from upstream threads.
        self._upstream_targets: Set[int] = set()
        #: Upstream target addresses whose data has already arrived.
        self._arrived: Set[int] = set()

    # -- producer side ------------------------------------------------

    def buffer_store(self, addr: int, is_target: bool = False) -> bool:
        """Buffer one of this thread's speculative stores.

        Returns False (and counts an overflow) when the buffer is full —
        the modelled machine would stall the thread; the timing model
        charges overflow events through the write-back stage.
        """
        if len(self._stores) >= self.capacity and addr not in self._stores:
            self.stats.counter("overflows").add()
            return False
        self._stores[addr] = self._stores.get(addr, False) or is_target
        self.stats.counter("stores_buffered").add()
        return True

    def target_addresses(self) -> List[int]:
        """This thread's target-store addresses (forwarded downstream)."""
        return [a for a, is_t in self._stores.items() if is_t]

    # -- consumer side --------------------------------------------------

    def receive_targets(self, addrs) -> None:
        """Install target-store addresses forwarded by an upstream thread."""
        for a in addrs:
            self._upstream_targets.add(a)
        self.stats.counter("targets_received").add(len(list(addrs)) if not hasattr(addrs, "__len__") else len(addrs))

    def data_arrived(self, addr: int) -> None:
        """Mark an upstream target store's data as delivered."""
        if addr in self._upstream_targets:
            self._arrived.add(addr)

    def check_load(self, addr: int) -> bool:
        """Run-time dependence check for a load (§2.2 computation stage).

        Returns True when the load depends on an upstream target store
        whose data has *not yet* arrived — the load must stall (the core
        executes independent instructions meanwhile).
        """
        if addr in self._stores:
            # Forwarded from this thread's own buffered store.
            self.stats.counter("local_forwards").add()
            return False
        if addr in self._upstream_targets:
            self.stats.counter("dependence_hits").add()
            if addr not in self._arrived:
                self.stats.counter("dependence_stalls").add()
                return True
        return False

    # -- commit / abort ---------------------------------------------------

    def writeback(self) -> List[Tuple[int, bool]]:
        """Commit: drain all buffered stores in order (write-back stage).

        Returns the ``(addr, is_target)`` list for the caller to apply
        to the cache hierarchy, then clears the buffer.
        """
        out = list(self._stores.items())
        self.stats.counter("writebacks").add()
        self._clear()
        return out

    def abort(self) -> int:
        """Squash: drop all buffered state (wrong threads end here).

        Returns the number of stores discarded.
        """
        n = len(self._stores)
        self.stats.counter("aborts").add()
        if n:
            self.stats.counter("stores_squashed").add(n)
        self._clear()
        return n

    def _clear(self) -> None:
        self._stores.clear()
        self._upstream_targets.clear()
        self._arrived.clear()

    @property
    def occupancy(self) -> int:
        return len(self._stores)

    def __repr__(self) -> str:
        return (
            f"SpeculativeMemBuffer({self.occupancy}/{self.capacity} stores, "
            f"{len(self._upstream_targets)} upstream targets)"
        )
