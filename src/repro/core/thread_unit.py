"""One thread processing unit: replay engine + timing assembly.

A :class:`ThreadUnit` owns the per-TU hardware (private L1 I/D caches
with optional WEC/VC/prefetch sidecar, branch unit, speculative memory
buffer) and knows how to *execute* one loop iteration or sequential
chunk: it replays the iteration's dynamic trace against that hardware,
injecting wrong-path loads at resolved mispredictions when the machine
configuration allows it, and returns the iteration's cycle breakdown
for the thread-pipelining scheduler to compose.
"""

from __future__ import annotations

# Host-profiler section timing only; guarded by `prof is not None` at
# every use and never feeds simulated state (see obs.hostprof).
from time import perf_counter
from typing import Iterable, Optional, Union

from ..branch.frontend import BranchUnit
from ..common.config import MachineConfig, SidecarKind, SimParams
from ..common.stats import CounterGroup
from ..isa.encoding import EV_BRANCH, EV_LOAD, EV_TSTORE, IterationTrace, StageSplit
from ..mem.coherence import UpdateBus
from ..mem.hierarchy import TUMemSystem
from ..mem.l2 import SharedL2
from ..obs.attrib import PROV_WRONG_PATH, PROV_WRONG_THREAD
from ..obs.events import (
    CAT_MEM,
    CAT_THREAD,
    THREAD_ABORT,
    THREAD_KILL,
    WP_ENTER,
    WP_EXIT,
    WRONG_LOAD,
)
from ..workloads.program import ParallelRegionSpec, SequentialRegionSpec
from ..workloads.tracegen import TraceGenerator
from .membuffer import SpeculativeMemBuffer
from .timing import CoreTimingModel, IterationTiming

__all__ = ["ThreadUnit", "SEQ_SPLIT"]

#: Sequential chunks have no thread-pipelining structure: all computation.
SEQ_SPLIT = StageSplit(0.0, 0.0, 1.0, 0.0)

RegionLike = Union[ParallelRegionSpec, SequentialRegionSpec]


class ThreadUnit:
    """A superscalar core with private caches inside the STA ring."""

    __slots__ = (
        "tu_id",
        "cfg",
        "params",
        "mem",
        "branch",
        "timing",
        "membuf",
        "stats",
        "_wrong_fill_charge",
        "_obs_thread",
        "_obs_mem",
        "_prof",
        "_san",
        "_attrib",
    )

    def __init__(
        self,
        tu_id: int,
        machine_cfg: MachineConfig,
        l2: SharedL2,
        params: SimParams,
        tracer=None,
        profiler=None,
        sanitizer=None,
        attrib=None,
    ) -> None:
        tu = machine_cfg.tu
        self.tu_id = tu_id
        self.cfg = machine_cfg
        self.params = params
        live = tracer is not None and tracer.enabled
        self._obs_thread = tracer if live and tracer.wants(CAT_THREAD) else None
        self._obs_mem = tracer if live and tracer.wants(CAT_MEM) else None
        #: Host wall-clock profiler (None → no section timing at all).
        self._prof = profiler
        #: Runtime invariant checker (None → unsanitized, zero cost).
        self._san = sanitizer
        #: Block-provenance collector (None → unattributed, zero cost).
        self._attrib = attrib if attrib is not None and attrib.enabled else None
        self.mem = TUMemSystem(
            tu_id, tu.l1d, tu.l1i, tu.sidecar, l2,
            prefetch_late_cycles=params.prefetch_late_cycles,
            prefetch_late_far_cycles=params.prefetch_late_far_cycles,
            tracer=tracer,
            sanitizer=sanitizer,
            attrib=attrib,
        )
        # Wrong-execution fills that install into the L1 occupy its fill
        # port and MSHRs for their full fill latency; the WEC has a
        # parallel datapath and does not.
        self._wrong_fill_charge = (
            0.0
            if tu.sidecar.kind is SidecarKind.WEC
            else params.wrong_fill_mshr_fraction
        )
        self.branch = BranchUnit(
            tu.branch, name=f"tu{tu_id}.bpred", tracer=tracer, tu_id=tu_id
        )
        self.timing = CoreTimingModel(tu, params)
        self.membuf = SpeculativeMemBuffer(tu.mem_buffer_entries, f"tu{tu_id}.membuf")
        self.stats = CounterGroup(f"tu{tu_id}.core")

    # ------------------------------------------------------------------

    def execute_iteration(
        self,
        region: ParallelRegionSpec,
        global_iter: int,
        trace: IterationTrace,
        tracegen: TraceGenerator,
        upstream_targets: Optional[Iterable[int]] = None,
    ) -> IterationTiming:
        """Execute one parallel-loop iteration under thread pipelining.

        Stores are buffered in the speculative memory buffer and commit
        to the cache hierarchy during the write-back phase of the same
        call; wrong-path loads are injected at resolved mispredictions
        when the machine's :class:`WrongExecutionConfig` enables them.
        """
        return self._execute(
            region,
            global_iter,
            trace,
            tracegen,
            stage_split=trace.stage_split,
            ilp=region.ilp,
            sequential=False,
            update_bus=None,
            upstream_targets=upstream_targets,
        )

    def execute_sequential_chunk(
        self,
        region: SequentialRegionSpec,
        global_chunk: int,
        trace: IterationTrace,
        tracegen: TraceGenerator,
        update_bus: Optional[UpdateBus] = None,
    ) -> IterationTiming:
        """Execute one chunk of sequential code as the (only) live thread.

        Stores go straight to the cache and are broadcast on the update
        bus so idle TUs' cached copies stay coherent (§3.2.2).
        """
        return self._execute(
            region,
            global_chunk,
            trace,
            tracegen,
            stage_split=SEQ_SPLIT,
            ilp=region.ilp,
            sequential=True,
            update_bus=update_bus,
            upstream_targets=None,
        )

    # ------------------------------------------------------------------

    def _execute(
        self,
        region: RegionLike,
        index: int,
        trace: IterationTrace,
        tracegen: TraceGenerator,
        stage_split: StageSplit,
        ilp: float,
        sequential: bool,
        update_bus: Optional[UpdateBus],
        upstream_targets: Optional[Iterable[int]],
    ) -> IterationTiming:
        mem = self.mem
        membuf = self.membuf
        wrong_path = self.cfg.wrong_exec.wrong_path
        stats = self.stats
        prof = self._prof
        san = self._san
        if san is not None:
            san.check_execute(self.tu_id)

        # -- instruction fetch ------------------------------------------
        # Host-profiling timers are per-iteration (one pair per section,
        # amortized over hundreds of replayed events), never per-event.
        t0 = perf_counter() if prof is not None else 0.0  # lint: allow(DET001 host profiling only)
        ifetch_stall = 0
        for addr in tracegen.ifetch_blocks(region, trace.n_instr).tolist():
            ifetch_stall += mem.ifetch(addr) - 1
        if prof is not None:
            prof.add("tu.ifetch", perf_counter() - t0)  # lint: allow(DET001 host profiling only)

        if upstream_targets is not None:
            membuf.receive_targets(list(upstream_targets))

        # -- replay the dynamic stream ----------------------------------
        load_stall = 0.0
        store_stall = 0
        mispredicts = 0
        wrong_loads = 0
        wrong_fill_lat = 0.0
        # A deeply speculating wrong path reaches past this chunk's own
        # loads into the following code; give the injector that pool.
        future_loads = None
        if wrong_path and sequential:
            future_loads = tracegen.chunk_trace(region, index + 1).load_addrs
        kinds, values, indices = trace.merged_events()
        branch_taken = trace.branch_taken
        load_correct = mem.load_correct
        load_wrong = mem.load_wrong
        if prof is not None:
            t0 = perf_counter()  # lint: allow(DET001 host profiling only)
        for kind, value, idx in zip(kinds.tolist(), values.tolist(), indices.tolist()):
            if kind == EV_LOAD:
                if not sequential:
                    membuf.check_load(value)
                load_stall += load_correct(value) - 1
            elif kind == EV_BRANCH:
                if self.branch.resolve(value, bool(branch_taken[idx])):
                    mispredicts += 1
                    if wrong_path:
                        obs_t = self._obs_thread
                        obs_m = self._obs_mem
                        if obs_t is not None:
                            obs_t.emit(WP_ENTER, self.tu_id, value)
                        if self._attrib is not None:
                            # Subsequent wrong fills are this branch's.
                            self._attrib.set_wrong_context(
                                PROV_WRONG_PATH, value
                            )
                        burst = 0
                        for a in tracegen.wrong_path_addrs(
                            region, trace, idx, index, future_loads=future_loads
                        ):
                            if obs_m is not None:
                                obs_m.emit(WRONG_LOAD, self.tu_id, a)
                            wrong_fill_lat += load_wrong(a) - 1
                            burst += 1
                        wrong_loads += burst
                        if obs_t is not None:
                            obs_t.emit(WP_EXIT, self.tu_id, burst, idx)
            else:  # store / target store
                if sequential:
                    store_stall += mem.store_correct(value) - 1
                    if update_bus is not None:
                        update_bus.sequential_store(self.tu_id, value)
                else:
                    membuf.buffer_store(value, kind == EV_TSTORE)

        if prof is not None:
            prof.add("tu.replay", perf_counter() - t0)  # lint: allow(DET001 host profiling only)

        # Port/MSHR contention from wrong-execution fills into the L1,
        # proportional to the fill latencies they occupy resources for
        # (zero when a WEC services them on its parallel datapath).
        if wrong_fill_lat and self._wrong_fill_charge:
            load_stall += wrong_fill_lat * self._wrong_fill_charge

        # -- write-back stage: commit buffered stores in order -----------
        if not sequential:
            if san is not None:
                san.check_writeback(self.tu_id)
            if prof is not None:
                t0 = perf_counter()  # lint: allow(DET001 host profiling only)
            for addr, _is_target in membuf.writeback():
                store_stall += mem.store_correct(addr) - 1
            if prof is not None:
                prof.add("tu.writeback", perf_counter() - t0)  # lint: allow(DET001 host profiling only)

        stats.counter("iterations" if not sequential else "chunks").add()
        stats.counter("instructions").add(trace.n_instr)
        if wrong_loads:
            stats.counter("wrong_path_loads").add(wrong_loads)

        return self.timing.iteration_timing(
            mix=trace.mix,
            ilp=ilp,
            stage_split=stage_split,
            load_stall_sum=float(load_stall),
            store_stall_sum=float(store_stall),
            n_mispredicts=mispredicts,
            mispredict_penalty=self.branch.mispredict_penalty,
            ifetch_stall_sum=float(ifetch_stall),
            n_wrong_path_loads=wrong_loads,
        )

    # ------------------------------------------------------------------

    def run_wrong_thread(
        self,
        region: ParallelRegionSpec,
        start_iter: int,
        tracegen: TraceGenerator,
    ) -> int:
        """Continue executing as a *wrong thread* (§3.1.2).

        This TU was speculatively forked with iteration ``start_iter``,
        which turned out to lie beyond the loop exit.  Instead of being
        killed it keeps executing: its loads access the memory system
        (via the wrong-execution path — the WEC absorbs them when
        present), it may not fork, and its buffered stores are squashed
        when it reaches its own abort.

        Returns the number of wrong-thread loads performed.
        """
        load_wrong = self.mem.load_wrong
        obs_t = self._obs_thread
        obs_m = self._obs_mem
        prof = self._prof
        san = self._san
        if san is not None:
            san.enter_wrong(self.tu_id, start_iter)
        t0 = perf_counter() if prof is not None else 0.0  # lint: allow(DET001 host profiling only)
        if obs_t is not None:
            obs_t.emit(THREAD_ABORT, self.tu_id, start_iter)
        if self._attrib is not None:
            self._attrib.set_wrong_context(PROV_WRONG_THREAD)
        n = 0
        n_tus = self.cfg.n_thread_units
        for round_ in range(region.wrong_exec.wth_max_iters):
            it = start_iter + round_ * n_tus
            for addr in tracegen.wrong_thread_addrs(region, it).tolist():
                if obs_m is not None:
                    obs_m.emit(WRONG_LOAD, self.tu_id, addr, 1)
                load_wrong(addr)
                n += 1
        if n:
            self.stats.counter("wrong_thread_loads").add(n)
        # The wrong thread reaches its own abort: squash buffered state.
        self.membuf.abort()
        if san is not None:
            san.exit_wrong(self.tu_id, self.membuf.occupancy)
        self.stats.counter("wrong_threads").add()
        if obs_t is not None:
            obs_t.emit(THREAD_KILL, self.tu_id, n)
        if prof is not None:
            prof.add("tu.wrong_thread", perf_counter() - t0)  # lint: allow(DET001 host profiling only)
        return n

    def fork_cost(self, n_forward_values: int) -> float:
        """Cycles to fork a successor thread (§4.1: 4 + 2 per value)."""
        return self.cfg.fork_delay + self.cfg.comm_cycles_per_value * n_forward_values

    def reset(self) -> None:
        """Clear all microarchitectural state and statistics."""
        self.mem.reset()
        self.branch.reset()
        self.membuf.abort()
        self.membuf.stats.reset()
        self.stats.reset()
