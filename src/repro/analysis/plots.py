"""ASCII bar charts for terminal-friendly figure rendering.

The bench targets print each reproduced figure both as a table and as a
grouped bar chart, mirroring the paper's grouped-bar presentation.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..common.errors import AnalysisError

__all__ = ["bar_chart", "grouped_bar_chart"]

_BAR = "#"
_NEG = "-"


def bar_chart(
    title: str,
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "%",
) -> str:
    """Render one series of labelled horizontal bars.

    Negative values are drawn with a distinct fill so slowdowns (e.g.
    175.vpr under ``orig`` parallel execution) stand out.
    """
    if not values:
        raise AnalysisError("bar chart with no values")
    max_abs = max(abs(v) for v in values.values()) or 1.0
    label_w = max(len(k) for k in values)
    lines = [title]
    for label, v in values.items():
        n = int(round(abs(v) / max_abs * width))
        fill = (_NEG if v < 0 else _BAR) * n
        lines.append(f"  {label.ljust(label_w)} |{fill} {v:+.1f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    title: str,
    groups: Sequence[str],
    series: Mapping[str, Mapping[str, float]],
    width: int = 40,
    unit: str = "%",
) -> str:
    """Render grouped bars: for each group, one bar per series.

    ``series`` maps a series name (e.g. a configuration) to its
    per-group values (e.g. per benchmark) — the layout of Figures 9–16.
    """
    if not series:
        raise AnalysisError("grouped bar chart with no series")
    all_vals = [
        v for per_group in series.values() for v in per_group.values()
    ]
    if not all_vals:
        raise AnalysisError("grouped bar chart with no values")
    max_abs = max(abs(v) for v in all_vals) or 1.0
    series_w = max(len(s) for s in series)
    lines = [title]
    for group in groups:
        lines.append(f"  {group}")
        for sname, per_group in series.items():
            if group not in per_group:
                continue
            v = per_group[group]
            n = int(round(abs(v) / max_abs * width))
            fill = (_NEG if v < 0 else _BAR) * n
            lines.append(f"    {sname.ljust(series_w)} |{fill} {v:+.1f}{unit}")
    return "\n".join(lines)
