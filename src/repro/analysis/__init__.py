"""Result analysis: speedups, charts, experiment reports."""

from .plots import bar_chart, grouped_bar_chart
from .report import ExperimentRecord, ShapeCheck, render_report
from .speedup import (
    normalized_times,
    relative_speedups,
    speedup_table_rows,
    suite_average_speedup_pct,
)

__all__ = [
    "bar_chart",
    "grouped_bar_chart",
    "ExperimentRecord",
    "ShapeCheck",
    "render_report",
    "normalized_times",
    "relative_speedups",
    "speedup_table_rows",
    "suite_average_speedup_pct",
]
