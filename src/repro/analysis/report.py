"""Experiment-report helpers: paper-vs-measured comparison records.

``EXPERIMENTS.md`` is generated from :class:`ExperimentRecord` entries —
one per reproduced table/figure — each carrying the paper's reported
values, our measured values, and a pass/fail *shape* verdict (the
reproduction targets orderings and rough magnitudes, not absolute
cycle counts; see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..common.errors import AnalysisError

__all__ = ["ShapeCheck", "ExperimentRecord", "render_report"]


@dataclass
class ShapeCheck:
    """One qualitative expectation from the paper and its verdict."""

    description: str
    expected: str
    measured: str
    passed: bool

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return (
            f"- [{mark}] {self.description}\n"
            f"    paper:    {self.expected}\n"
            f"    measured: {self.measured}"
        )


@dataclass
class ExperimentRecord:
    """Everything recorded about one reproduced table or figure."""

    exp_id: str            # e.g. "Figure 11"
    title: str
    workload: str          # benchmarks + key parameters
    bench_target: str      # which benchmarks/ file regenerates it
    checks: List[ShapeCheck] = field(default_factory=list)
    notes: str = ""

    def add_check(
        self, description: str, expected: str, measured: str, passed: bool
    ) -> None:
        self.checks.append(ShapeCheck(description, expected, measured, passed))

    @property
    def passed(self) -> bool:
        """True when every shape check passed."""
        return all(c.passed for c in self.checks)

    def render(self) -> str:
        lines = [
            f"## {self.exp_id} — {self.title}",
            "",
            f"*Workload*: {self.workload}",
            f"*Regenerate with*: `{self.bench_target}`",
            "",
        ]
        if self.checks:
            lines.extend(c.render() for c in self.checks)
        if self.notes:
            lines.extend(["", self.notes])
        lines.append("")
        return "\n".join(lines)


def render_report(records: List[ExperimentRecord], header: str = "") -> str:
    """Assemble a full EXPERIMENTS.md-style report."""
    if not records:
        raise AnalysisError("no experiment records to render")
    n_pass = sum(1 for r in records if r.passed)
    lines = []
    if header:
        lines.extend([header, ""])
    lines.append(
        f"**Shape verdicts: {n_pass}/{len(records)} experiments "
        f"match the paper's qualitative results.**"
    )
    lines.append("")
    for r in records:
        lines.append(r.render())
    return "\n".join(lines)
