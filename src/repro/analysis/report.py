"""Experiment-report helpers: paper-vs-measured comparison records.

``EXPERIMENTS.md`` is generated from :class:`ExperimentRecord` entries —
one per reproduced table/figure — each carrying the paper's reported
values, our measured values, and a pass/fail *shape* verdict (the
reproduction targets orderings and rough magnitudes, not absolute
cycle counts; see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..common.errors import AnalysisError

__all__ = [
    "ShapeCheck",
    "ExperimentRecord",
    "claims_to_record",
    "render_report",
]


@dataclass
class ShapeCheck:
    """One qualitative expectation from the paper and its verdict."""

    description: str
    expected: str
    measured: str
    passed: bool

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return (
            f"- [{mark}] {self.description}\n"
            f"    paper:    {self.expected}\n"
            f"    measured: {self.measured}"
        )


@dataclass
class ExperimentRecord:
    """Everything recorded about one reproduced table or figure."""

    exp_id: str            # e.g. "Figure 11"
    title: str
    workload: str          # benchmarks + key parameters
    bench_target: str      # which benchmarks/ file regenerates it
    checks: List[ShapeCheck] = field(default_factory=list)
    notes: str = ""

    def add_check(
        self, description: str, expected: str, measured: str, passed: bool
    ) -> None:
        self.checks.append(ShapeCheck(description, expected, measured, passed))

    @property
    def passed(self) -> bool:
        """True when every shape check passed."""
        return all(c.passed for c in self.checks)

    def render(self) -> str:
        lines = [
            f"## {self.exp_id} — {self.title}",
            "",
            f"*Workload*: {self.workload}",
            f"*Regenerate with*: `{self.bench_target}`",
            "",
        ]
        if self.checks:
            lines.extend(c.render() for c in self.checks)
        if self.notes:
            lines.extend(["", self.notes])
        lines.append("")
        return "\n".join(lines)


def claims_to_record(
    scored_claims: List[Dict],
    exp_id: str,
    title: str,
    workload: str,
    bench_target: str,
    notes: str = "",
) -> ExperimentRecord:
    """An :class:`ExperimentRecord` from scored fidelity claims.

    ``scored_claims`` are claim dicts as produced by
    :func:`repro.obs.fidelity.evaluate_claims` (via
    ``ScoredClaim.to_dict``) — the registry in ``benchmarks/claims.json``
    becomes the single source of tolerance bands, replacing hand-rolled
    per-report thresholds.  Skipped claims render as failed checks with
    the skip reason, so a report can never silently omit a claim.
    """
    if not scored_claims:
        raise AnalysisError(f"{exp_id}: no scored claims to record")
    record = ExperimentRecord(
        exp_id=exp_id, title=title, workload=workload,
        bench_target=bench_target, notes=notes,
    )
    for claim in scored_claims:
        measured = claim.get("measured")
        unit = claim.get("unit", "")
        if claim.get("status") == "skipped":
            shown = f"skipped: {claim.get('reason', 'unknown')}"
        elif claim.get("kind") == "bool":
            shown = "yes" if measured else "no"
        else:
            shown = f"{measured:+.2f}{(' ' + unit) if unit else ''}"
            band = claim.get("band")
            if band:
                lo = "-inf" if band[0] is None else f"{band[0]:g}"
                hi = "inf" if band[1] is None else f"{band[1]:g}"
                shown += f" (band [{lo}, {hi}])"
        record.add_check(
            f"{claim['id']}: {claim['title']}",
            claim.get("paper") or "(shape predicate)",
            shown,
            claim.get("status") == "pass",
        )
    return record


def render_report(records: List[ExperimentRecord], header: str = "") -> str:
    """Assemble a full EXPERIMENTS.md-style report."""
    if not records:
        raise AnalysisError("no experiment records to render")
    n_pass = sum(1 for r in records if r.passed)
    lines = []
    if header:
        lines.extend([header, ""])
    lines.append(
        f"**Shape verdicts: {n_pass}/{len(records)} experiments "
        f"match the paper's qualitative results.**"
    )
    lines.append("")
    for r in records:
        lines.append(r.render())
    return "\n".join(lines)
