"""Suite-level speedup aggregation over result grids.

These helpers turn a :data:`~repro.sim.sweep.ResultGrid` into the rows
the paper's figures plot: per-benchmark relative speedups against a
baseline axis label, plus the execution-time-weighted suite average
("average" bar in Figures 9–12 and 15–17).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..common.errors import AnalysisError
from ..common.stats import weighted_mean_speedup
from ..sim.results import SimResult
from ..sim.sweep import ResultGrid, benchmarks_of, labels_of

__all__ = [
    "relative_speedups",
    "suite_average_speedup_pct",
    "normalized_times",
    "speedup_table_rows",
]


def _cell(grid: ResultGrid, bench: str, label: str) -> SimResult:
    """The grid cell for ``(bench, label)``, or a named AnalysisError."""
    result = grid.get((bench, label))
    if result is None:
        raise AnalysisError(f"grid is missing {bench} for {label!r}")
    return result


def relative_speedups(
    grid: ResultGrid, baseline_label: str, label: str
) -> Dict[str, float]:
    """Per-benchmark percent speedup of ``label`` over ``baseline_label``."""
    out: Dict[str, float] = {}
    for bench in benchmarks_of(grid):
        base = _cell(grid, bench, baseline_label)
        new = _cell(grid, bench, label)
        out[bench] = new.relative_speedup_pct_vs(base)
    return out


def suite_average_speedup_pct(
    grid: ResultGrid, baseline_label: str, label: str
) -> float:
    """Execution-time-weighted mean percent speedup across the suite.

    Matches the paper's methodology (§5, citing Lilja): each benchmark
    is weighted equally regardless of absolute run length.
    """
    base_times: List[float] = []
    new_times: List[float] = []
    for bench in benchmarks_of(grid):
        base_times.append(_cell(grid, bench, baseline_label).total_cycles)
        new_times.append(_cell(grid, bench, label).total_cycles)
    return (weighted_mean_speedup(base_times, new_times) - 1.0) * 100.0


def normalized_times(
    grid: ResultGrid, baseline_label: str, label: str
) -> Dict[str, float]:
    """Per-benchmark execution time normalized to the baseline label."""
    out: Dict[str, float] = {}
    for bench in benchmarks_of(grid):
        base = _cell(grid, bench, baseline_label)
        new = _cell(grid, bench, label)
        out[bench] = new.normalized_time_vs(base)
    return out


def speedup_table_rows(
    grid: ResultGrid,
    baseline_label: str,
    labels: Optional[Sequence[str]] = None,
) -> List[Tuple[str, Dict[str, float]]]:
    """One row per benchmark (plus 'average'): label -> percent speedup."""
    use_labels = [
        l for l in (labels if labels is not None else labels_of(grid))
        if l != baseline_label
    ]
    rows: List[Tuple[str, Dict[str, float]]] = []
    for bench in benchmarks_of(grid):
        base = _cell(grid, bench, baseline_label)
        row = {
            label: _cell(grid, bench, label).relative_speedup_pct_vs(base)
            for label in use_labels
        }
        rows.append((bench, row))
    avg_row = {
        label: suite_average_speedup_pct(grid, baseline_label, label)
        for label in use_labels
    }
    rows.append(("average", avg_row))
    return rows
