"""Synthetic workloads: address patterns, programs, benchmarks, traces."""

from .benchmarks import (
    BENCHMARK_INFO,
    BENCHMARK_NAMES,
    benchmark_infos,
    build_benchmark,
)
from .microbench import MICROBENCH_NAMES, build_microbenchmark
from .patterns import (
    AddressPattern,
    HotColdPattern,
    PointerChasePattern,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
    mix64,
)
from .program import (
    BenchmarkInfo,
    ParallelRegionSpec,
    Program,
    RegionSpec,
    SequentialRegionSpec,
    WrongExecProfile,
)
from .tracegen import TraceGenerator, code_base_for

__all__ = [
    "MICROBENCH_NAMES",
    "build_microbenchmark",
    "BENCHMARK_INFO",
    "BENCHMARK_NAMES",
    "benchmark_infos",
    "build_benchmark",
    "AddressPattern",
    "HotColdPattern",
    "PointerChasePattern",
    "RandomPattern",
    "SequentialPattern",
    "StridedPattern",
    "mix64",
    "BenchmarkInfo",
    "ParallelRegionSpec",
    "Program",
    "RegionSpec",
    "SequentialRegionSpec",
    "WrongExecProfile",
    "TraceGenerator",
    "code_base_for",
]
