"""Pure-pattern microbenchmarks for controlled mechanism studies.

The six SPEC-like models mix several access patterns per program, which
is right for reproducing the paper but awkward for answering questions
like "how much of the WEC's gain on streams comes from chaining vs
wrong-thread seeding?".  Each microbenchmark here exercises *one*
memory behaviour through the full machine (parallel region + sequential
glue), with the same wrong-execution plumbing as the real models:

``stream``
    block-granular sequential walk, re-streamed every invocation —
    isolates next-line chaining and wrong-thread stream seeding;
``stream-cold``
    the same walk but never revisited — isolates prefetch timeliness;
``chase``
    a pointer chase over a never-revisited region — isolates valid
    wrong-path chase-ahead (the mcf mechanism); next-line prefetching
    gets nothing (128-byte nodes, heads only);
``random``
    uniform touches over an L2-resident table — largely incompressible
    misses; a lower-bound workload for any prefetcher;
``mixed``
    one part each of stream, chase and random.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..common.errors import WorkloadError
from ..isa.cfg import BlockSpec, BranchSpec, IterationCFG, MemSlot
from ..isa.encoding import StageSplit
from ..isa.instructions import InstrClass
from .patterns import (
    AddressPattern,
    PointerChasePattern,
    RandomPattern,
    SequentialPattern,
)
from .program import (
    ParallelRegionSpec,
    Program,
    SequentialRegionSpec,
    WrongExecProfile,
)

__all__ = ["MICROBENCH_NAMES", "build_microbenchmark"]

MICROBENCH_NAMES: Tuple[str, ...] = (
    "stream",
    "stream-cold",
    "chase",
    "random",
    "mixed",
)

KB = 1024
_BASE = 0x7000_0000
_MIX = {InstrClass.IALU: 0.8, InstrClass.OTHER: 0.2}


def _data_patterns(kind: str, iters: int, n_inv: int) -> Dict[str, AddressPattern]:
    touched = iters * 4 * 64  # 4 block-granular touches per iteration
    if kind == "stream":
        data: AddressPattern = SequentialPattern(
            "mb.data", _BASE, touched, stride=64, per_iter=4
        )
    elif kind == "stream-cold":
        data = SequentialPattern(
            "mb.data", _BASE, touched * n_inv * 2, stride=64, per_iter=4
        )
    elif kind == "chase":
        data = PointerChasePattern(
            "mb.data", _BASE, n_nodes=iters * 4 * n_inv * 2,
            node_size=128, per_iter=4, seed=77,
        )
    elif kind == "random":
        data = RandomPattern("mb.data", _BASE, 96 * KB, granule=64, salt=7)
    else:
        raise WorkloadError(f"unknown microbenchmark kind {kind!r}")
    return {
        "mb.data": data,
        "mb.out": SequentialPattern(
            "mb.out", _BASE + 0x0800_0000, 16 * KB, stride=8, per_iter=1
        ),
        "mb.poll": RandomPattern(
            "mb.poll", _BASE + 0x1000_0000, 48 * KB, granule=64, salt=13
        ),
    }


def _mixed_patterns(iters: int, n_inv: int) -> Dict[str, AddressPattern]:
    touched = iters * 2 * 64
    return {
        "mb.stream": SequentialPattern(
            "mb.stream", _BASE, touched, stride=64, per_iter=2
        ),
        "mb.chase": PointerChasePattern(
            "mb.chase", _BASE + 0x0400_0000, n_nodes=iters * 1 * n_inv * 2,
            node_size=128, per_iter=1, seed=79,
        ),
        "mb.random": RandomPattern(
            "mb.random", _BASE + 0x0800_0000, 48 * KB, granule=64, salt=7
        ),
        "mb.out": SequentialPattern(
            "mb.out", _BASE + 0x0C00_0000, 16 * KB, stride=8, per_iter=1
        ),
        "mb.poll": RandomPattern(
            "mb.poll", _BASE + 0x1000_0000, 48 * KB, granule=64, salt=13
        ),
    }


def build_microbenchmark(
    kind: str,
    iters_per_invocation: int = 200,
    n_invocations: int = 4,
    wrong_exec: WrongExecProfile = WrongExecProfile(
        wp_mean_loads=3.0, wp_max_loads=8, p_convergent=0.6,
        wp_lookahead=12, wth_fraction=0.7, wth_max_iters=1,
    ),
) -> Program:
    """Build one single-pattern microbenchmark program.

    Parameters
    ----------
    kind:
        One of :data:`MICROBENCH_NAMES`.
    iters_per_invocation:
        Parallel-loop trip count per invocation (sets the footprint for
        footprint-proportional kinds).
    n_invocations:
        Outer re-entries; the first is typically used as warm-up.
    wrong_exec:
        Wrong-execution profile for the parallel region.
    """
    if kind not in MICROBENCH_NAMES:
        raise WorkloadError(
            f"unknown microbenchmark {kind!r}; choose from {MICROBENCH_NAMES}"
        )
    if iters_per_invocation < 8:
        raise WorkloadError("need at least 8 iterations per invocation")

    if kind == "mixed":
        patterns = _mixed_patterns(iters_per_invocation, n_invocations)
        slots = (
            MemSlot("mb.stream"), MemSlot("mb.chase"),
            MemSlot("mb.random"), MemSlot("mb.stream"),
            MemSlot("mb.out", is_store=True, is_target_store=True),
        )
    else:
        patterns = _data_patterns(kind, iters_per_invocation, n_invocations)
        slots = (
            MemSlot("mb.data"), MemSlot("mb.data"),
            MemSlot("mb.data"), MemSlot("mb.data"),
            MemSlot("mb.out", is_store=True, is_target_store=True),
        )

    cfg = IterationCFG(
        entry="head",
        blocks=[
            BlockSpec(
                "head",
                n_instr=24,
                mix_weights=_MIX,
                mem_slots=slots[:3],
                branch=BranchSpec(0.88, "tail", "tail", noise=0.08),
            ),
            BlockSpec(
                "tail",
                n_instr=20,
                mix_weights=_MIX,
                mem_slots=slots[3:],
            ),
        ],
    )
    region = ParallelRegionSpec(
        name=f"micro.{kind}",
        cfg=cfg,
        patterns=patterns,
        iters_per_invocation=iters_per_invocation,
        stage_split=StageSplit(0.05, 0.05, 0.85, 0.05),
        ilp=2.5,
        dep_coupling=0.05,
        code_footprint=2 * KB,
        pollution_pattern="mb.poll",
        wrong_exec=wrong_exec,
    )
    # A minimal sequential shim between invocations (the head thread has
    # to run *something* for wrong threads to overlap with).
    glue_cfg = IterationCFG(
        entry="g",
        blocks=[
            BlockSpec(
                "g",
                n_instr=30,
                mix_weights=_MIX,
                mem_slots=(MemSlot("mb.out"), MemSlot("mb.out", is_store=True)),
            )
        ],
        pc_base=0x900000,
    )
    glue = SequentialRegionSpec(
        name=f"micro.{kind}.glue",
        cfg=glue_cfg,
        patterns=patterns,
        chunks_per_invocation=max(4, iters_per_invocation // 10),
        ilp=2.0,
    )
    return Program(f"micro.{kind}", [glue, region], n_invocations)
