"""Program representation: regions, loop nests, benchmark metadata.

A :class:`Program` is the unit the simulator executes: an ordered *body*
of regions executed for ``n_invocations`` rounds (the paper's
benchmarks spend their time re-entering the same parallelized loops).

Iteration indices are **global across invocations**: invocation *k* of a
parallel region covers iterations ``[k*iters_per_invocation,
(k+1)*iters_per_invocation)``.  Combined with the stateless address
patterns this gives wrong-thread execution its prefetching power with
no tuning: a wrong thread that runs past the loop exit evaluates
iterations the *next* invocation will really execute — on the same
thread unit, since round-robin assignment is also by global index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..common.errors import WorkloadError
from ..isa.cfg import IterationCFG
from ..isa.encoding import StageSplit
from .patterns import AddressPattern

__all__ = [
    "WrongExecProfile",
    "ParallelRegionSpec",
    "SequentialRegionSpec",
    "RegionSpec",
    "Program",
    "BenchmarkInfo",
]


@dataclass(frozen=True)
class WrongExecProfile:
    """How a region behaves under wrong execution (§3.1).

    ``wp_mean_loads`` / ``wp_max_loads``
        Number of ready loads that continue down a wrong path after the
        branch resolves (geometric with the given mean, capped).
    ``p_convergent``
        Probability that a wrong-path load touches data the correct
        path will reference within ``wp_lookahead`` upcoming loads
        (control-flow reconvergence); the rest touch off-path data
        drawn from the region's pollution pattern.
    ``wth_fraction``
        Fraction of an extrapolated iteration's loads a wrong thread
        completes before its own abort kills it.
    ``wth_max_iters``
        How many beyond-the-exit iterations a wrong thread covers
        before self-aborting (bounded by the following sequential
        region's length in the paper; a small constant here).
    """

    wp_mean_loads: float = 3.0
    wp_max_loads: int = 8
    p_convergent: float = 0.5
    wp_lookahead: int = 8
    wth_fraction: float = 1.0
    wth_max_iters: int = 1

    def __post_init__(self) -> None:
        if self.wp_mean_loads < 0 or self.wp_max_loads < 0:
            raise WorkloadError("negative wrong-path load counts")
        if not 0.0 <= self.p_convergent <= 1.0:
            raise WorkloadError("p_convergent outside [0,1]")
        if self.wp_lookahead < 1:
            raise WorkloadError("wp_lookahead must be >= 1")
        if not 0.0 <= self.wth_fraction <= 1.0:
            raise WorkloadError("wth_fraction outside [0,1]")
        if self.wth_max_iters < 0:
            raise WorkloadError("negative wth_max_iters")


@dataclass
class ParallelRegionSpec:
    """One parallelized loop nest (§2.2 thread-pipelining target).

    Parameters
    ----------
    cfg:
        The loop body as an :class:`IterationCFG`.
    patterns:
        Named address patterns referenced by the CFG's memory slots.
    iters_per_invocation:
        Dynamic iterations executed each time the region is entered.
    stage_split:
        Fraction of the body in each thread-pipelining stage.
    n_forward_values:
        Values forwarded at each fork (drives communication cost).
    ilp:
        Intrinsic instruction-level parallelism of the body — the
        effective issue rate is ``min(issue_width, ilp)``.
    dep_coupling:
        Fraction in [0, 1] of the computation stage that must wait for
        the upstream thread's target-store data (cross-iteration
        dependences).  High coupling serializes threads (175.vpr).
    code_footprint:
        Bytes of instruction memory the body spans (L1I behaviour).
    pollution_pattern:
        Pattern name used for the non-convergent share of wrong-path
        loads (off-path data structures).
    """

    name: str
    cfg: IterationCFG
    patterns: Dict[str, AddressPattern]
    iters_per_invocation: int
    stage_split: StageSplit = field(default_factory=StageSplit)
    n_forward_values: int = 2
    ilp: float = 2.0
    dep_coupling: float = 0.1
    code_footprint: int = 4096
    pollution_pattern: Optional[str] = None
    wrong_exec: WrongExecProfile = field(default_factory=WrongExecProfile)

    def __post_init__(self) -> None:
        if self.iters_per_invocation < 1:
            raise WorkloadError(f"region {self.name}: needs at least one iteration")
        if not 0.0 <= self.dep_coupling <= 1.0:
            raise WorkloadError(f"region {self.name}: dep_coupling outside [0,1]")
        if self.ilp <= 0:
            raise WorkloadError(f"region {self.name}: ilp must be positive")
        self._check_patterns()

    def _check_patterns(self) -> None:
        referenced = {
            slot.pattern
            for block in self.cfg.blocks.values()
            for slot in block.mem_slots
        }
        if self.pollution_pattern is not None:
            referenced.add(self.pollution_pattern)
        missing = referenced - set(self.patterns)
        if missing:
            raise WorkloadError(
                f"region {self.name}: CFG references unknown patterns {sorted(missing)}"
            )

    def global_iter_range(self, invocation: int) -> Tuple[int, int]:
        """Global iteration index range covered by ``invocation``."""
        lo = invocation * self.iters_per_invocation
        return lo, lo + self.iters_per_invocation


@dataclass
class SequentialRegionSpec:
    """A sequential section executed by a single (head) thread unit.

    ``chunks_per_invocation`` CFG walks are performed per entry; chunk
    indices are global across invocations like parallel iterations.
    """

    name: str
    cfg: IterationCFG
    patterns: Dict[str, AddressPattern]
    chunks_per_invocation: int
    ilp: float = 1.5
    code_footprint: int = 8192
    #: Wrong-path behaviour of the head thread inside sequential code.
    wrong_exec: WrongExecProfile = field(default_factory=WrongExecProfile)
    pollution_pattern: Optional[str] = None

    def __post_init__(self) -> None:
        if (
            self.pollution_pattern is not None
            and self.pollution_pattern not in self.patterns
        ):
            raise WorkloadError(
                f"region {self.name}: unknown pollution pattern "
                f"{self.pollution_pattern!r}"
            )
        if self.chunks_per_invocation < 1:
            raise WorkloadError(f"region {self.name}: needs at least one chunk")
        if self.ilp <= 0:
            raise WorkloadError(f"region {self.name}: ilp must be positive")
        referenced = {
            slot.pattern
            for block in self.cfg.blocks.values()
            for slot in block.mem_slots
        }
        missing = referenced - set(self.patterns)
        if missing:
            raise WorkloadError(
                f"region {self.name}: CFG references unknown patterns {sorted(missing)}"
            )

    def global_chunk_range(self, invocation: int) -> Tuple[int, int]:
        """Global chunk index range covered by ``invocation``."""
        lo = invocation * self.chunks_per_invocation
        return lo, lo + self.chunks_per_invocation


RegionSpec = Union[ParallelRegionSpec, SequentialRegionSpec]


@dataclass(frozen=True)
class BenchmarkInfo:
    """Table 1 + Table 2 metadata for one benchmark program."""

    name: str
    suite: str
    input_set: str
    whole_minstr: float        # whole-benchmark dynamic Minstructions
    targeted_minstr: float     # instructions in the parallelized loops
    #: Loop transformations applied in the manual parallelization (Table 1).
    transformations: Tuple[str, ...] = ()

    @property
    def fraction_parallelized(self) -> float:
        """Table 2's "Fraction Parallelized" column."""
        return self.targeted_minstr / self.whole_minstr

    def __post_init__(self) -> None:
        if self.targeted_minstr > self.whole_minstr:
            raise WorkloadError(
                f"{self.name}: targeted instructions exceed whole-benchmark count"
            )


class Program:
    """An executable benchmark model: body regions × invocations."""

    def __init__(
        self,
        name: str,
        body: Sequence[RegionSpec],
        n_invocations: int,
        info: Optional[BenchmarkInfo] = None,
    ) -> None:
        if n_invocations < 1:
            raise WorkloadError("program needs at least one invocation")
        if not body:
            raise WorkloadError("program body is empty")
        names = [r.name for r in body]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate region names in program body: {names}")
        self.name = name
        self.body: List[RegionSpec] = list(body)
        self.n_invocations = n_invocations
        self.info = info

    @property
    def parallel_regions(self) -> List[ParallelRegionSpec]:
        return [r for r in self.body if isinstance(r, ParallelRegionSpec)]

    @property
    def sequential_regions(self) -> List[SequentialRegionSpec]:
        return [r for r in self.body if isinstance(r, SequentialRegionSpec)]

    def schedule(self):
        """Yield ``(invocation, region)`` in execution order."""
        for inv in range(self.n_invocations):
            for region in self.body:
                yield inv, region

    def __repr__(self) -> str:
        kinds = "".join(
            "P" if isinstance(r, ParallelRegionSpec) else "S" for r in self.body
        )
        return (
            f"Program({self.name!r}, body={kinds}, "
            f"invocations={self.n_invocations})"
        )
