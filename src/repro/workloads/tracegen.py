"""Dynamic trace generation: CFG walks bound to address patterns.

The generator is *stateless across calls*: the trace of iteration ``i``
of a region depends only on ``(master seed, region name, i)``.  That
invariant is what guarantees every machine configuration in an
experiment sees an identical workload — the cornerstone of the paper's
methodology (same binary, different memory systems).

Wrong-execution streams are derived here too:

* :meth:`TraceGenerator.wrong_path_addrs` synthesizes the loads that
  continue past a resolved-wrong branch: a geometric number of loads,
  each either *convergent* (an address the correct path will touch
  within the next few loads — control-flow reconvergence) or *polluting*
  (drawn from the region's designated off-path pattern);
* :meth:`TraceGenerator.wrong_thread_addrs` returns the loads of an
  extrapolated (beyond-the-exit) iteration — which the next invocation
  of the loop will genuinely execute, making them natural prefetches.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from ..common.errors import WorkloadError
from ..common.rng import StreamFactory, stable_hash32
from ..isa.cfg import WalkResult
from ..isa.encoding import IterationTrace
from .program import ParallelRegionSpec, SequentialRegionSpec, WrongExecProfile

__all__ = ["TraceGenerator", "code_base_for"]

#: Instructions per 64-byte I-cache block (4-byte fixed-width encoding).
_INSTR_PER_IBLOCK = 16

#: Occurrence-space offset for pollution draws, so they never collide
#: with correct-path occurrence indices of the same pattern.
_POLLUTION_OCC_BASE = 1 << 20


def code_base_for(region_name: str) -> int:
    """A stable, per-region instruction-space base address.

    Code lives high above the data heap so I- and D-footprints never
    alias in the shared L2.
    """
    return (1 << 40) | (stable_hash32(region_name) << 20)


class TraceGenerator:
    """Produces reproducible dynamic traces for program regions."""

    #: Entries kept in the small chunk-trace cache (a chunk's trace is
    #: needed twice: once as lookahead for wrong-path injection in the
    #: previous chunk, once as the chunk's own replay).
    _CACHE_SIZE = 8

    def __init__(self, streams: StreamFactory) -> None:
        self.streams = streams
        self._chunk_cache: "dict[tuple, IterationTrace]" = {}

    # ------------------------------------------------------------------
    # correct-path traces
    # ------------------------------------------------------------------

    def _bind(
        self,
        region: Union[ParallelRegionSpec, SequentialRegionSpec],
        walk: WalkResult,
        index: int,
    ) -> IterationTrace:
        """Bind a CFG walk's memory slots to concrete addresses."""
        patterns = region.patterns
        occ_counts: dict = {}
        n_mem = len(walk.mem_ops)
        load_addrs: List[int] = []
        load_pos: List[int] = []
        store_addrs: List[int] = []
        store_pos: List[int] = []
        tstore: List[bool] = []
        for pos, pattern_name, is_store, is_tstore in walk.mem_ops:
            occ = occ_counts.get(pattern_name, 0)
            occ_counts[pattern_name] = occ + 1
            addr = patterns[pattern_name].addr(index, occ)
            if is_store:
                store_addrs.append(addr)
                store_pos.append(pos)
                tstore.append(is_tstore)
            else:
                load_addrs.append(addr)
                load_pos.append(pos)
        branches = walk.branches
        n_br = len(branches)
        b_pos = np.empty(n_br, dtype=np.int64)
        b_pc = np.empty(n_br, dtype=np.int64)
        b_taken = np.empty(n_br, dtype=bool)
        for i, (pos, pc, taken) in enumerate(branches):
            b_pos[i] = pos
            b_pc[i] = pc
            b_taken[i] = taken
        stage_split = getattr(region, "stage_split", None)
        kwargs = {}
        if stage_split is not None:
            kwargs["stage_split"] = stage_split
            kwargs["n_forward_values"] = region.n_forward_values
        return IterationTrace(
            n_instr=walk.n_instr,
            mix=walk.mix,
            load_addrs=np.asarray(load_addrs, dtype=np.int64),
            load_pos=np.asarray(load_pos, dtype=np.int64),
            store_addrs=np.asarray(store_addrs, dtype=np.int64),
            store_pos=np.asarray(store_pos, dtype=np.int64),
            tstore_mask=np.asarray(tstore, dtype=bool),
            branch_pcs=b_pc,
            branch_pos=b_pos,
            branch_taken=b_taken,
            **kwargs,
        )

    def iteration_trace(
        self, region: ParallelRegionSpec, global_iter: int
    ) -> IterationTrace:
        """The correct-path trace of one parallel-loop iteration."""
        rng = self.streams.fresh(f"it:{region.name}:{global_iter}")
        walk = region.cfg.walk(rng)
        return self._bind(region, walk, global_iter)

    def chunk_trace(
        self, region: SequentialRegionSpec, global_chunk: int
    ) -> IterationTrace:
        """The trace of one sequential-region chunk (cached, small LRU)."""
        key = (region.name, global_chunk)
        cached = self._chunk_cache.get(key)
        if cached is not None:
            return cached
        rng = self.streams.fresh(f"sq:{region.name}:{global_chunk}")
        walk = region.cfg.walk(rng)
        trace = self._bind(region, walk, global_chunk)
        if len(self._chunk_cache) >= self._CACHE_SIZE:
            self._chunk_cache.pop(next(iter(self._chunk_cache)))
        self._chunk_cache[key] = trace
        return trace

    # ------------------------------------------------------------------
    # wrong execution (§3.1)
    # ------------------------------------------------------------------

    def wrong_path_addrs(
        self,
        region: Union[ParallelRegionSpec, SequentialRegionSpec],
        trace: IterationTrace,
        branch_idx: int,
        global_iter: int,
        future_loads: Optional[np.ndarray] = None,
    ) -> List[int]:
        """Loads issued down the wrong path of mispredicted branch ``branch_idx``.

        Only called after the branch has *resolved* as mispredicted —
        these are the extra loads the ``wp`` configurations allow
        (Figure 3's loads C and D), not the pre-resolution speculative
        loads that every configuration already issues.

        ``future_loads`` extends the convergence pool past the end of
        this trace's own load stream: a deeply speculating core's wrong
        path runs tens of instructions ahead, reaching loads of the
        *following* code (the next sequential chunk) — exactly the
        fresh, soon-needed blocks whose prefetch the WEC captures.
        """
        prof = region.wrong_exec
        if prof.wp_max_loads == 0 or prof.wp_mean_loads <= 0:
            return []
        rng = self.streams.fresh(f"wp:{region.name}:{global_iter}:{branch_idx}")
        k = int(rng.geometric(min(1.0, 1.0 / prof.wp_mean_loads)))
        k = min(k, prof.wp_max_loads)
        if k <= 0:
            return []
        addrs: List[int] = []
        next_load = int(trace.branch_next_load[branch_idx])
        own_loads = trace.load_addrs
        n_own = trace.n_loads
        n_ext = n_own + (len(future_loads) if future_loads is not None else 0)
        pollution = (
            region.patterns[region.pollution_pattern]
            if region.pollution_pattern is not None
            else None
        )
        # Convergence is an *episode-level* outcome: either the wrong
        # path reconverges quickly and executes the genuinely upcoming
        # loads — consecutively, as the real code would — or it diverges
        # and wanders off-path data until the redirect.
        convergent = rng.random() < prof.p_convergent and next_load < n_ext
        if convergent:
            skip = int(rng.integers(0, max(1, prof.wp_lookahead // 4)))
            start = next_load + skip
            for idx in range(start, min(start + k, n_ext)):
                if idx < n_own:
                    addrs.append(int(own_loads[idx]))
                else:
                    addrs.append(int(future_loads[idx - n_own]))
        elif pollution is not None:
            for j in range(k):
                occ = _POLLUTION_OCC_BASE + branch_idx * 64 + j
                addrs.append(pollution.addr(global_iter, occ))
        elif n_own:
            # No pollution pattern registered: touch far-future loads
            # (pure convergence model).
            start = min(next_load + prof.wp_lookahead, n_own - 1)
            for idx in range(start, min(start + k, n_own)):
                addrs.append(int(own_loads[idx]))
        return addrs

    def wrong_thread_addrs(
        self, region: ParallelRegionSpec, global_iter: int
    ) -> np.ndarray:
        """Loads a wrong thread executes for extrapolated ``global_iter``.

        The iteration is generated exactly as a real future iteration
        would be (same seed path), then truncated to the fraction the
        wrong thread completes before killing itself.
        """
        prof = region.wrong_exec
        if prof.wth_fraction <= 0.0:
            return np.empty(0, dtype=np.int64)
        trace = self.iteration_trace(region, global_iter)
        n = int(round(trace.n_loads * prof.wth_fraction))
        return trace.load_addrs[:n]

    # ------------------------------------------------------------------
    # instruction fetch
    # ------------------------------------------------------------------

    def ifetch_blocks(
        self,
        region: Union[ParallelRegionSpec, SequentialRegionSpec],
        n_instr: int,
        iblock_size: int = 64,
    ) -> np.ndarray:
        """Instruction-block addresses fetched while executing ``n_instr``.

        The body's code footprint is walked cyclically — a loop body
        re-fetches the same blocks every iteration, so after warm-up the
        L1I hit rate is near 1 (as in the paper, whose focus is the
        D-cache).
        """
        count = max(1, n_instr // _INSTR_PER_IBLOCK)
        base = code_base_for(region.name)
        footprint_blocks = max(1, region.code_footprint // iblock_size)
        offsets = (np.arange(count, dtype=np.int64) % footprint_blocks) * iblock_size
        return base + offsets

    # ------------------------------------------------------------------
    # sizing helpers
    # ------------------------------------------------------------------

    def estimate_iteration_cost(
        self,
        region: Union[ParallelRegionSpec, SequentialRegionSpec],
        n_samples: int = 16,
    ) -> float:
        """Mean dynamic instructions per CFG walk (for workload sizing)."""
        if n_samples < 1:
            raise WorkloadError("need at least one sample")
        rng = self.streams.fresh(f"est:{region.name}")
        total = 0
        for _ in range(n_samples):
            total += region.cfg.walk(rng).n_instr
        return total / n_samples
