"""The six SPEC2000-like benchmark models (Tables 1 and 2).

The paper evaluates four SPECint2000 programs (175.vpr, 164.gzip,
181.mcf, 197.parser) and two SPECfp2000 programs (183.equake, 177.mesa),
manually parallelized for the superthreaded execution model and run on
MinneSPEC reduced inputs.  We cannot ship SPEC, so each model here is a
synthetic loop-nest program whose *memory and control behaviour* mirrors
the published characterization of its namesake:

================  ==========================================================
benchmark         model
================  ==========================================================
175.vpr           small working set (placement grids close to cache-
                  resident), high intrinsic ILP, strong cross-iteration
                  coupling (it *slows down* with more TUs in the paper),
                  and hard data-dependent accept/reject branches → the
                  largest wrong-path traffic (Figure 17).
164.gzip          hot/cold hash+window lookups plus an input stream; tiny
                  cross-iteration coupling (near-linear 14x TLP speedup in
                  Figure 8).
181.mcf           pointer chasing over an arc network far larger than any
                  cache; memory bound, low ILP; wrong execution validly
                  chases ahead → the largest WEC speedup (≈18.5%) but the
                  smallest relative miss-count reduction (Figure 17).
197.parser        dictionary pointer chasing over a medium, partially
                  reused footprint with noisy parse decisions.
183.equake        sparse matrix-vector product: streaming value/index
                  arrays plus gathers through a vector.
177.mesa          regular FP rasterization streams with high spatial
                  locality → next-line prefetching (and hence the WEC)
                  removes up to ~73% of misses (Figure 17).
================  ==========================================================

Sizing discipline (MinneSPEC applied twice): dynamic instruction budgets
come from Table 2 scaled by ``SimParams.scale``; *data footprints are
sized in touched-bytes* — a stream that the paper's code re-walks every
outer invocation is sized to exactly one invocation's advance, so it
wraps per invocation and exhibits the same reuse structure at any scale.
Structures the original never re-visits (mcf's arc chase) are sized so
they never wrap within a run.  Each benchmark also has a *hot* set
(locals, headers, LUTs) somewhat larger than the 8KB L1, giving the
direct-mapped L1 real conflict/capacity reuse misses — which is what
makes wrong-execution pollution genuinely costly without a WEC.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from ..common.errors import WorkloadError
from ..isa.cfg import BlockSpec, BranchSpec, IterationCFG, MemSlot
from ..isa.encoding import StageSplit
from ..isa.instructions import InstrClass
from .patterns import (
    AddressPattern,
    HotColdPattern,
    PointerChasePattern,
    RandomPattern,
    SequentialPattern,
)
from .program import (
    BenchmarkInfo,
    ParallelRegionSpec,
    Program,
    SequentialRegionSpec,
    WrongExecProfile,
)

__all__ = [
    "BENCHMARK_NAMES",
    "BENCHMARK_INFO",
    "N_INVOCATIONS",
    "build_benchmark",
    "benchmark_infos",
]

#: Invocations of the program body per run (outer re-entries of the
#: parallelized loops).
N_INVOCATIONS = 4

KB = 1024
MB = 1024 * 1024

# Data-space bases, 256 MB apart per benchmark so footprints never alias.
_HEAP_BASE = 0x1000_0000
_HEAP_STRIDE = 0x1000_0000

_INT_MIX = {InstrClass.IALU: 0.82, InstrClass.IMULT: 0.03, InstrClass.OTHER: 0.15}
_FP_MIX = {
    InstrClass.IALU: 0.35,
    InstrClass.FPALU: 0.40,
    InstrClass.FPMULT: 0.15,
    InstrClass.OTHER: 0.10,
}

#: Table 1 — program transformations used in the manual parallelization.
_TRANSFORMS: Dict[str, Tuple[str, ...]] = {
    "175.vpr": ("loop unrolling", "statement reordering to increase overlap"),
    "164.gzip": ("loop coalescing", "statement reordering to increase overlap"),
    "181.mcf": ("loop unrolling", "statement reordering to increase overlap"),
    "197.parser": ("loop coalescing", "loop unrolling"),
    "183.equake": ("loop coalescing", "loop unrolling",
                   "statement reordering to increase overlap"),
    "177.mesa": ("loop unrolling", "statement reordering to increase overlap"),
}

#: Table 2 — whole-benchmark and targeted dynamic instruction counts (M).
BENCHMARK_INFO: Dict[str, BenchmarkInfo] = {
    "175.vpr": BenchmarkInfo(
        "175.vpr", "SPEC2000/INT", "SPEC test", 1126.5, 97.2, _TRANSFORMS["175.vpr"]
    ),
    "164.gzip": BenchmarkInfo(
        "164.gzip", "SPEC2000/INT", "MinneSPEC large", 1550.7, 243.6,
        _TRANSFORMS["164.gzip"],
    ),
    "181.mcf": BenchmarkInfo(
        "181.mcf", "SPEC2000/INT", "MinneSPEC large", 601.6, 217.3,
        _TRANSFORMS["181.mcf"],
    ),
    "197.parser": BenchmarkInfo(
        "197.parser", "SPEC2000/INT", "MinneSPEC medium", 514.0, 88.6,
        _TRANSFORMS["197.parser"],
    ),
    "183.equake": BenchmarkInfo(
        "183.equake", "SPEC2000/FP", "MinneSPEC large", 716.3, 152.6,
        _TRANSFORMS["183.equake"],
    ),
    "177.mesa": BenchmarkInfo(
        "177.mesa", "SPEC2000/FP", "SPEC test", 1832.1, 319.0,
        _TRANSFORMS["177.mesa"],
    ),
}

BENCHMARK_NAMES: Tuple[str, ...] = tuple(BENCHMARK_INFO)


# ---------------------------------------------------------------------------
# sizing helpers
# ---------------------------------------------------------------------------

def _budgets(info: BenchmarkInfo, scale: float) -> Tuple[float, float]:
    """(parallel, sequential) dynamic-instruction budgets for one run."""
    whole = info.whole_minstr * 1e6 * scale
    par = info.targeted_minstr * 1e6 * scale
    return par, whole - par


def _estimate_instr(cfg: IterationCFG, n_samples: int = 32) -> float:
    """Expected dynamic instructions per CFG walk (deterministic sampling)."""
    rng = np.random.Generator(np.random.PCG64(np.random.SeedSequence(12345)))
    return sum(cfg.walk(rng).n_instr for _ in range(n_samples)) / n_samples


def _iters(par_budget: float, cfg: IterationCFG, share: float = 1.0) -> int:
    """Iterations per invocation that spend ``share`` of the budget."""
    per_iter = _estimate_instr(cfg)
    return max(8, int(round(par_budget * share / N_INVOCATIONS / per_iter)))


def _chunks(seq_budget: float, cfg: IterationCFG) -> int:
    """Chunks per invocation for a sequential region."""
    per_chunk = _estimate_instr(cfg)
    return max(2, int(round(seq_budget / N_INVOCATIONS / per_chunk)))


def _wrap_size(ipi: int, per_iter: int, stride: int, wraps: float = 1.0) -> int:
    """Array size such that one invocation advances ``wraps`` times around.

    ``wraps=1`` → the structure is re-walked exactly once per invocation
    (reused across invocations, L2-warm after the first);
    ``wraps=1/N_INVOCATIONS`` → never wraps within a run (always cold).
    """
    if wraps <= 0:
        raise WorkloadError("wraps must be positive")
    size = int(ipi * per_iter * stride / wraps)
    return max(4 * KB, (size // 64) * 64)


def _chase_nodes(ipi: int, per_iter: int, wraps: float = 1.0) -> int:
    """Node count for a pointer chase with the given wrap structure."""
    if wraps <= 0:
        raise WorkloadError("wraps must be positive")
    return max(64, int(ipi * per_iter / wraps))



def _densify(
    blocks: List[BlockSpec],
    every: int = 12,
    bias: float = 0.9,
    noise: float = 0.05,
) -> List[BlockSpec]:
    """Split large basic blocks to a realistic branch density.

    Real integer code carries a conditional branch every ~8–15
    instructions; the coarse hand-written blocks above would otherwise
    understate misprediction *episode* volume — and wrong-path load
    injection happens per episode.  Each oversized block becomes a chain
    of ``~every``-instruction sub-blocks separated by biased hammock
    branches (both arms reconverge on the next sub-block, so control
    flow and memory slots are unchanged); the original terminator stays
    on the last sub-block.  Memory slots are distributed round-robin.
    """
    out: List[BlockSpec] = []
    for b in blocks:
        n_parts = max(1, b.n_instr // every)
        if n_parts == 1:
            out.append(b)
            continue
        per = b.n_instr // n_parts
        slots = list(b.mem_slots)
        for i in range(n_parts):
            sub_name = b.name if i == 0 else f"{b.name}.{i}"
            sub_slots = tuple(
                slots[j] for j in range(len(slots)) if j % n_parts == i
            )
            if i < n_parts - 1:
                nxt = f"{b.name}.{i + 1}"
                out.append(
                    BlockSpec(
                        sub_name,
                        per,
                        b.mix_weights,
                        sub_slots,
                        branch=BranchSpec(bias, nxt, nxt, noise=noise),
                    )
                )
            else:
                out.append(
                    BlockSpec(
                        sub_name,
                        b.n_instr - per * (n_parts - 1),
                        b.mix_weights,
                        sub_slots,
                        branch=b.branch,
                        next_block=b.next_block,
                    )
                )
    return out


def _seq_region(
    name: str,
    base: int,
    seq_budget: float,
    mix: Dict[InstrClass, float],
    ilp: float = 2.0,
    hot_size: int = 6 * KB,
    wrong_exec: WrongExecProfile = WrongExecProfile(
        wp_mean_loads=2.0, wp_max_loads=6, p_convergent=0.45, wp_lookahead=18
    ),
    stream_wraps: float = 1.0,
) -> SequentialRegionSpec:
    """A generic sequential section between parallelized loops.

    Real glue code is dominated by a *hot* working set (locals, small
    tables) with high L1 residency, plus a trickle of result stores —
    not by streaming, which would hand next-line prefetching an
    unrealistic feast.  The hot set is sized near the L1 so the region
    has some reuse misses, the occasional stores exercise the
    sequential-mode update bus, and a single moderately biased branch
    gives the head thread realistic wrong-path episodes.
    """
    patterns: Dict[str, AddressPattern] = {
        f"{name}.hot": RandomPattern(
            f"{name}.hot", base, hot_size, granule=32, salt=61
        ),
        f"{name}.out": SequentialPattern(
            f"{name}.out", base + 2 * MB, 16 * KB, stride=8, per_iter=1
        ),
    }
    cfg = IterationCFG(
        entry="head",
        blocks=_densify([
            BlockSpec(
                "head",
                n_instr=90,
                mix_weights=mix,
                mem_slots=tuple(MemSlot(f"{name}.hot") for _ in range(5))
                + (MemSlot(f"{name}.stream"), MemSlot(f"{name}.stream")),
                # (stream pattern is sized after the chunk count below)
                branch=BranchSpec(0.92, "tail", "slow", noise=0.04),
            ),
            BlockSpec(
                "slow",
                n_instr=30,
                mix_weights=mix,
                mem_slots=(MemSlot(f"{name}.hot"), MemSlot(f"{name}.hot")),
                next_block="tail",
            ),
            BlockSpec(
                "tail",
                n_instr=40,
                mix_weights=mix,
                mem_slots=(
                    MemSlot(f"{name}.hot"),
                    MemSlot(f"{name}.stream"),
                    MemSlot(f"{name}.out", is_store=True),
                ),
            ),
        ]),
        pc_base=0x500000,
    )
    chunks = _chunks(seq_budget, cfg)
    # A working stream walked on one TU (no round-robin striping here):
    # sized to wrap once per invocation, so it is L2-warm after the
    # first pass — both prefetching schemes can chain on it.
    stream_advance = 2 * 32  # per_iter * stride
    patterns[f"{name}.stream"] = SequentialPattern(
        f"{name}.stream", base + 1 * MB,
        max(4 * KB, int(chunks * stream_advance / stream_wraps) // 64 * 64),
        stride=32, per_iter=2,
    )
    return SequentialRegionSpec(
        name=name,
        cfg=cfg,
        patterns=patterns,
        chunks_per_invocation=chunks,
        ilp=ilp,
        wrong_exec=wrong_exec,
        pollution_pattern=f"{name}.hot",
    )


# ---------------------------------------------------------------------------
# 175.vpr — FPGA place & route: small footprint, ILP-rich, TLP-poor
# ---------------------------------------------------------------------------

def _build_vpr(scale: float) -> Program:
    info = BENCHMARK_INFO["175.vpr"]
    par_budget, seq_budget = _budgets(info, scale)
    base = _HEAP_BASE + 0 * _HEAP_STRIDE
    cfg = IterationCFG(
        entry="try_swap",
        blocks=_densify([
            BlockSpec(
                "try_swap",
                n_instr=30,
                mix_weights=_INT_MIX,
                mem_slots=(MemSlot("grid"), MemSlot("nets"), MemSlot("grid")),
                # Simulated-annealing accept/reject: essentially a coin
                # flip the predictor cannot learn (vpr's hallmark).
                branch=BranchSpec(0.5, "accept", "reject", noise=0.9),
            ),
            BlockSpec(
                "accept",
                n_instr=35,
                mix_weights=_INT_MIX,
                mem_slots=(
                    MemSlot("grid"),
                    MemSlot("cost"),
                    MemSlot("grid", is_store=True, is_target_store=True),
                ),
                next_block="cost_upd",
            ),
            BlockSpec(
                "reject",
                n_instr=15,
                mix_weights=_INT_MIX,
                mem_slots=(MemSlot("cost"),),
                next_block="cost_upd",
            ),
            BlockSpec(
                "cost_upd",
                n_instr=45,
                mix_weights=_INT_MIX,
                mem_slots=(
                    MemSlot("nets"),
                    MemSlot("cost"),
                    MemSlot("grid"),
                    MemSlot("cost", is_store=True),
                ),
                # Bounding-box recompute needed only occasionally.
                branch=BranchSpec(0.92, None, "bbox", noise=0.02),
            ),
            BlockSpec(
                "bbox",
                n_instr=18,
                mix_weights=_INT_MIX,
                mem_slots=(MemSlot("nets"), MemSlot("grid")),
            ),
        ]),
    )
    ipi = _iters(par_budget, cfg)
    # vpr's structures: a placement grid + net list + cost arrays, all
    # modest; combined hot footprint ~2.5x the 8K L1.
    patterns: Dict[str, AddressPattern] = {
        "grid": RandomPattern("grid", base, 9 * KB, granule=32, salt=7),
        "nets": SequentialPattern(
            "nets", base + 64 * KB,
            _wrap_size(ipi, 6, 16, wraps=4.0), stride=16, per_iter=6,
        ),
        "cost": RandomPattern("cost", base + 256 * KB, 6 * KB, granule=16, salt=11),
        # Off-path loads still touch the same small placement structures.
        "wp_pollute": RandomPattern(
            "wp_pollute", base, 20 * KB, granule=64, salt=13
        ),
    }
    region = ParallelRegionSpec(
        name="vpr.place_loop",
        cfg=cfg,
        patterns=patterns,
        iters_per_invocation=ipi,
        stage_split=StageSplit(0.08, 0.07, 0.77, 0.08),
        n_forward_values=4,
        ilp=10.0,
        dep_coupling=0.88,
        code_footprint=6 * KB,
        pollution_pattern="wp_pollute",
        wrong_exec=WrongExecProfile(
            wp_mean_loads=3.5, wp_max_loads=8, p_convergent=0.30,
            wp_lookahead=6, wth_fraction=0.5, wth_max_iters=1,
        ),
    )
    seq = _seq_region(
        "vpr.seq", base + 4 * MB, seq_budget, _INT_MIX, ilp=4.0,
        hot_size=8 * KB,
        wrong_exec=WrongExecProfile(
            wp_mean_loads=3.5, wp_max_loads=8, p_convergent=0.4, wp_lookahead=18
        ),
    )
    return Program("175.vpr", [seq, region], N_INVOCATIONS, info)


# ---------------------------------------------------------------------------
# 164.gzip — compression: hot/cold tables, near-perfect TLP
# ---------------------------------------------------------------------------

def _build_gzip(scale: float) -> Program:
    info = BENCHMARK_INFO["164.gzip"]
    par_budget, seq_budget = _budgets(info, scale)
    base = _HEAP_BASE + 1 * _HEAP_STRIDE
    cfg = IterationCFG(
        entry="fill",
        blocks=_densify([
            BlockSpec(
                "fill",
                n_instr=45,
                mix_weights=_INT_MIX,
                mem_slots=tuple(MemSlot("input") for _ in range(8)),
                next_block="match",
            ),
            BlockSpec(
                "match",
                n_instr=40,
                mix_weights=_INT_MIX,
                mem_slots=(MemSlot("hashtab"), MemSlot("window"), MemSlot("window")),
                # Match/no-match: biased but data dependent.
                branch=BranchSpec(0.86, "emit_match", "emit_literal", noise=0.1),
            ),
            BlockSpec(
                "emit_match",
                n_instr=50,
                mix_weights=_INT_MIX,
                mem_slots=(
                    MemSlot("window"),
                    MemSlot("window"),
                    MemSlot("output", is_store=True),
                    MemSlot("hashtab", is_store=True, is_target_store=True),
                ),
                branch=BranchSpec(0.12, "match", None, noise=0.03),
            ),
            BlockSpec(
                "emit_literal",
                n_instr=25,
                mix_weights=_INT_MIX,
                mem_slots=(MemSlot("output", is_store=True),),
                branch=BranchSpec(0.12, "match", None, noise=0.03),
            ),
        ]),
    )
    ipi = _iters(par_budget, cfg)
    patterns: Dict[str, AddressPattern] = {
        # The input stream is consumed once: never wraps.
        "input": SequentialPattern(
            "input", base,
            _wrap_size(ipi, 8, 64, wraps=1.0 / N_INVOCATIONS), stride=64, per_iter=8,
        ),
        # Sliding window + hash chains: hot head, cold tail.
        "window": HotColdPattern(
            "window", base + 64 * MB, hot_size=7 * KB, cold_size=96 * KB,
            p_hot=0.9, granule=8, salt=3,
        ),
        "hashtab": RandomPattern("hashtab", base + 80 * MB, 32 * KB, granule=8, salt=5),
        "output": SequentialPattern(
            "output", base + 96 * MB,
            _wrap_size(ipi, 2, 64, wraps=1.0), stride=64, per_iter=2,
        ),
        "wp_pollute": RandomPattern(
            "wp_pollute", base + 112 * MB, 48 * KB, granule=64, salt=17
        ),
    }
    region = ParallelRegionSpec(
        name="gzip.deflate_loop",
        cfg=cfg,
        patterns=patterns,
        iters_per_invocation=ipi,
        stage_split=StageSplit(0.03, 0.03, 0.91, 0.03),
        n_forward_values=2,
        ilp=3.0,
        dep_coupling=0.02,
        code_footprint=8 * KB,
        pollution_pattern="wp_pollute",
        wrong_exec=WrongExecProfile(
            wp_mean_loads=4.0, wp_max_loads=8, p_convergent=0.7,
            wp_lookahead=8, wth_fraction=0.55, wth_max_iters=1,
        ),
    )
    seq = _seq_region("gzip.seq", base + 128 * MB, seq_budget, _INT_MIX, ilp=2.5,
                      hot_size=6 * KB)
    return Program("164.gzip", [seq, region], N_INVOCATIONS, info)


# ---------------------------------------------------------------------------
# 181.mcf — network simplex: giant pointer chase, memory bound
# ---------------------------------------------------------------------------

def _build_mcf(scale: float) -> Program:
    info = BENCHMARK_INFO["181.mcf"]
    par_budget, seq_budget = _budgets(info, scale)
    base = _HEAP_BASE + 2 * _HEAP_STRIDE
    cfg = IterationCFG(
        entry="price",
        blocks=_densify([
            BlockSpec(
                "price",
                n_instr=25,
                mix_weights=_INT_MIX,
                mem_slots=(
                    MemSlot("arcs"), MemSlot("arcs"), MemSlot("arcs"),
                    MemSlot("hot"),
                ),
                # Reduced-cost test: data dependent, moderately biased.
                branch=BranchSpec(0.8, "chase", "basis", noise=0.22),
            ),
            BlockSpec(
                "chase",
                n_instr=20,
                mix_weights=_INT_MIX,
                mem_slots=(
                    MemSlot("arcs"), MemSlot("arcs"),
                    MemSlot("hot"), MemSlot("costs"),
                ),
                branch=BranchSpec(0.15, "chase", "basis", noise=0.08),
            ),
            BlockSpec(
                "basis",
                n_instr=22,
                mix_weights=_INT_MIX,
                mem_slots=(
                    MemSlot("arcs"), MemSlot("hot"),
                    MemSlot("hot", is_store=True, is_target_store=True),
                ),
            ),
        ]),
    )
    ipi = _iters(par_budget, cfg)
    patterns: Dict[str, AddressPattern] = {
        # The arc network: never re-visited within a run — every chase
        # step is a cold, memory-serviced miss (mcf's signature).
        "arcs": PointerChasePattern(
            "arcs", base,
            n_nodes=_chase_nodes(ipi, 7, wraps=1.0 / N_INVOCATIONS),
            node_size=128, per_iter=7, seed=101,
        ),
        # Node headers / locals: hot, slightly exceeding the L1.
        "hot": RandomPattern("hot", base + 64 * MB, 7 * KB, granule=32, salt=19),
        "costs": SequentialPattern(
            "costs", base + 80 * MB,
            _wrap_size(ipi, 3, 8, wraps=1.0), stride=8, per_iter=3,
        ),
        "wp_pollute": RandomPattern(
            "wp_pollute", base + 96 * MB, 48 * KB, granule=64, salt=23
        ),
    }
    region = ParallelRegionSpec(
        name="mcf.arc_loop",
        cfg=cfg,
        patterns=patterns,
        iters_per_invocation=ipi,
        stage_split=StageSplit(0.05, 0.06, 0.83, 0.06),
        n_forward_values=3,
        ilp=1.6,
        dep_coupling=0.12,
        code_footprint=4 * KB,
        pollution_pattern="wp_pollute",
        wrong_exec=WrongExecProfile(
            # Loop-exit mispredictions validly continue the same chase:
            # convergence is high and reaches deep (§6 of DESIGN.md).
            wp_mean_loads=2.8, wp_max_loads=7, p_convergent=0.62,
            wp_lookahead=10, wth_fraction=0.8, wth_max_iters=1,
        ),
    )
    # mcf's sequential phases (refresh, price-out) chase the same arc
    # structures: the sequential region is memory bound too, and its
    # wrong paths validly chase ahead into upcoming chunks.
    seq_cfg = IterationCFG(
        entry="head",
        blocks=_densify([
            BlockSpec(
                "head",
                n_instr=80,
                mix_weights=_INT_MIX,
                mem_slots=(
                    MemSlot("mcf.seq.hot"), MemSlot("mcf.seq.hot"),
                    MemSlot("mcf.seq.chase"), MemSlot("mcf.seq.chase"),
                    MemSlot("mcf.seq.hot"),
                ),
                branch=BranchSpec(0.86, "tail", "slow", noise=0.08),
            ),
            BlockSpec(
                "slow",
                n_instr=30,
                mix_weights=_INT_MIX,
                mem_slots=(MemSlot("mcf.seq.chase"), MemSlot("mcf.seq.hot")),
                next_block="tail",
            ),
            BlockSpec(
                "tail",
                n_instr=40,
                mix_weights=_INT_MIX,
                mem_slots=(
                    MemSlot("mcf.seq.chase"),
                    MemSlot("mcf.seq.hot"),
                    MemSlot("mcf.seq.out", is_store=True),
                ),
            ),
        ]),
        pc_base=0x500000,
    )
    seq_chunks = _chunks(seq_budget, seq_cfg)
    seq_patterns: Dict[str, AddressPattern] = {
        "mcf.seq.hot": RandomPattern(
            "mcf.seq.hot", base + 128 * MB, 6 * KB, granule=32, salt=61
        ),
        "mcf.seq.chase": PointerChasePattern(
            "mcf.seq.chase", base + 160 * MB,
            n_nodes=max(64, seq_chunks * 3 * (N_INVOCATIONS + 1)),
            node_size=128, per_iter=3, seed=107,
        ),
        "mcf.seq.out": SequentialPattern(
            "mcf.seq.out", base + 192 * MB, 16 * KB, stride=8, per_iter=1
        ),
    }
    seq = SequentialRegionSpec(
        name="mcf.seq",
        cfg=seq_cfg,
        patterns=seq_patterns,
        chunks_per_invocation=seq_chunks,
        ilp=1.5,
        wrong_exec=WrongExecProfile(
            wp_mean_loads=3.2, wp_max_loads=8, p_convergent=0.68,
            wp_lookahead=24,
        ),
        pollution_pattern="mcf.seq.hot",
    )
    return Program("181.mcf", [seq, region], N_INVOCATIONS, info)


# ---------------------------------------------------------------------------
# 197.parser — link grammar: dictionary chases with noisy decisions
# ---------------------------------------------------------------------------

def _build_parser(scale: float) -> Program:
    info = BENCHMARK_INFO["197.parser"]
    par_budget, seq_budget = _budgets(info, scale)
    base = _HEAP_BASE + 3 * _HEAP_STRIDE
    cfg = IterationCFG(
        entry="nextword",
        blocks=_densify([
            BlockSpec(
                "nextword",
                n_instr=30,
                mix_weights=_INT_MIX,
                mem_slots=(MemSlot("sentence"), MemSlot("sentence"), MemSlot("dict")),
                next_block="lookup",
            ),
            BlockSpec(
                "lookup",
                n_instr=28,
                mix_weights=_INT_MIX,
                mem_slots=(MemSlot("dict"), MemSlot("dict"), MemSlot("links")),
                next_block="lookup2",
            ),
            BlockSpec(
                "lookup2",
                n_instr=28,
                mix_weights=_INT_MIX,
                mem_slots=(MemSlot("dict"), MemSlot("dict"), MemSlot("links")),
                # Occasional deep lookup; parse decisions stay noisy.
                branch=BranchSpec(0.22, "lookup", "connect", noise=0.12),
            ),
            BlockSpec(
                "connect",
                n_instr=35,
                mix_weights=_INT_MIX,
                mem_slots=(
                    MemSlot("links"),
                    MemSlot("links", is_store=True, is_target_store=True),
                    MemSlot("hot"),
                ),
                branch=BranchSpec(0.13, "nextword", None, noise=0.05),
            ),
        ]),
    )
    ipi = _iters(par_budget, cfg)
    patterns: Dict[str, AddressPattern] = {
        # Dictionary tries: partially re-visited (wraps every other
        # invocation) — between gzip's hot reuse and mcf's cold chase.
        "dict": PointerChasePattern(
            "dict", base,
            n_nodes=_chase_nodes(ipi, 6, wraps=0.25),
            node_size=128, per_iter=6, seed=201,
        ),
        "sentence": SequentialPattern(
            "sentence", base + 64 * MB,
            _wrap_size(ipi, 3, 64, wraps=1.0 / N_INVOCATIONS), stride=64, per_iter=3,
        ),
        "links": HotColdPattern(
            "links", base + 80 * MB, hot_size=6 * KB, cold_size=96 * KB,
            p_hot=0.75, granule=16, salt=29,
        ),
        "hot": RandomPattern("hot", base + 96 * MB, 6 * KB, granule=32, salt=37),
        "wp_pollute": RandomPattern(
            "wp_pollute", base + 112 * MB, 48 * KB, granule=64, salt=31
        ),
    }
    region = ParallelRegionSpec(
        name="parser.parse_loop",
        cfg=cfg,
        patterns=patterns,
        iters_per_invocation=ipi,
        stage_split=StageSplit(0.06, 0.06, 0.82, 0.06),
        n_forward_values=3,
        ilp=2.2,
        dep_coupling=0.28,
        code_footprint=10 * KB,
        pollution_pattern="wp_pollute",
        wrong_exec=WrongExecProfile(
            wp_mean_loads=1.8, wp_max_loads=5, p_convergent=0.45,
            wp_lookahead=8, wth_fraction=0.55, wth_max_iters=1,
        ),
    )
    seq = _seq_region("parser.seq", base + 128 * MB, seq_budget, _INT_MIX, ilp=2.0,
                      hot_size=6 * KB)
    return Program("197.parser", [seq, region], N_INVOCATIONS, info)


# ---------------------------------------------------------------------------
# 183.equake — earthquake FEM: sparse MVP (stream + gather)
# ---------------------------------------------------------------------------

def _build_equake(scale: float) -> Program:
    info = BENCHMARK_INFO["183.equake"]
    par_budget, seq_budget = _budgets(info, scale)
    base = _HEAP_BASE + 4 * _HEAP_STRIDE
    smvp_cfg = IterationCFG(
        entry="row",
        blocks=_densify([
            BlockSpec(
                "row",
                n_instr=15,
                mix_weights=_FP_MIX,
                mem_slots=(MemSlot("colidx"),),
                next_block="elems",
            ),
            BlockSpec(
                "elems",
                n_instr=30,
                mix_weights=_FP_MIX,
                mem_slots=(
                    MemSlot("matval"), MemSlot("matval"),
                    MemSlot("colidx"), MemSlot("vec"), MemSlot("vec"),
                ),
                next_block="elems2",
            ),
            BlockSpec(
                "elems2",
                n_instr=30,
                mix_weights=_FP_MIX,
                mem_slots=(
                    MemSlot("matval"), MemSlot("matval"),
                    MemSlot("colidx"), MemSlot("vec"), MemSlot("vec"),
                ),
                # FEM rows are near-constant length: rare long rows only.
                branch=BranchSpec(0.1, "elems", "reduce", noise=0.03),
            ),
            BlockSpec(
                "reduce",
                n_instr=20,
                mix_weights=_FP_MIX,
                mem_slots=(MemSlot("result", is_store=True, is_target_store=True),),
            ),
        ]),
    )
    ipi = _iters(par_budget, smvp_cfg, share=0.7)
    time_cfg = IterationCFG(
        entry="disp",
        blocks=_densify([
            BlockSpec(
                "disp",
                n_instr=60,
                mix_weights=_FP_MIX,
                mem_slots=(
                    MemSlot("result"), MemSlot("result"),
                    MemSlot("vec"), MemSlot("result", is_store=True),
                ),
                branch=BranchSpec(0.08, "disp", None, noise=0.02),
            ),
        ]),
        pc_base=0x600000,
    )
    ipi_t = _iters(par_budget, time_cfg, share=0.3)
    patterns: Dict[str, AddressPattern] = {
        # Matrix values/indices: re-streamed every timestep (invocation).
        "matval": SequentialPattern(
            "matval", base,
            _wrap_size(ipi, 6, 64, wraps=1.0 / N_INVOCATIONS), stride=64, per_iter=6,
        ),
        "colidx": SequentialPattern(
            "colidx", base + 64 * MB,
            _wrap_size(ipi, 4, 8, wraps=1.0), stride=8, per_iter=4,
        ),
        "vec": RandomPattern("vec", base + 80 * MB, 12 * KB, granule=8, salt=41),
        "result": SequentialPattern(
            "result", base + 96 * MB,
            _wrap_size(max(ipi, ipi_t), 3, 8, wraps=1.0), stride=8, per_iter=3,
        ),
        "wp_pollute": RandomPattern(
            "wp_pollute", base + 112 * MB, 48 * KB, granule=64, salt=43
        ),
    }
    smvp = ParallelRegionSpec(
        name="equake.smvp",
        cfg=smvp_cfg,
        patterns=patterns,
        iters_per_invocation=ipi,
        stage_split=StageSplit(0.04, 0.05, 0.86, 0.05),
        n_forward_values=2,
        ilp=3.5,
        dep_coupling=0.08,
        code_footprint=5 * KB,
        pollution_pattern="wp_pollute",
        wrong_exec=WrongExecProfile(
            wp_mean_loads=3.2, wp_max_loads=8, p_convergent=0.7,
            wp_lookahead=10, wth_fraction=0.4, wth_max_iters=1,
        ),
    )
    timeint = ParallelRegionSpec(
        name="equake.time_integration",
        cfg=time_cfg,
        patterns=patterns,
        iters_per_invocation=ipi_t,
        stage_split=StageSplit(0.05, 0.04, 0.86, 0.05),
        n_forward_values=2,
        ilp=4.0,
        dep_coupling=0.06,
        code_footprint=3 * KB,
        pollution_pattern="wp_pollute",
        wrong_exec=WrongExecProfile(
            wp_mean_loads=2.4, wp_max_loads=6, p_convergent=0.7,
            wp_lookahead=6, wth_fraction=0.6, wth_max_iters=1,
        ),
    )
    seq = _seq_region(
        "equake.seq", base + 128 * MB, seq_budget, _FP_MIX, ilp=3.0,
        hot_size=6 * KB,
        wrong_exec=WrongExecProfile(
            wp_mean_loads=2.4, wp_max_loads=6, p_convergent=0.65, wp_lookahead=18
        ),
        stream_wraps=1.0 / N_INVOCATIONS,
    )
    return Program("183.equake", [seq, smvp, timeint], N_INVOCATIONS, info)


# ---------------------------------------------------------------------------
# 177.mesa — 3D rasterization: dense FP streams, high spatial locality
# ---------------------------------------------------------------------------

def _build_mesa(scale: float) -> Program:
    info = BENCHMARK_INFO["177.mesa"]
    par_budget, seq_budget = _budgets(info, scale)
    base = _HEAP_BASE + 5 * _HEAP_STRIDE
    cfg = IterationCFG(
        entry="xform",
        blocks=_densify([
            BlockSpec(
                "xform",
                n_instr=55,
                mix_weights=_FP_MIX,
                mem_slots=(
                    MemSlot("verts"), MemSlot("verts"), MemSlot("verts"),
                    MemSlot("state"),
                ),
                next_block="shade",
            ),
            BlockSpec(
                "shade",
                n_instr=45,
                mix_weights=_FP_MIX,
                mem_slots=(
                    MemSlot("texture"), MemSlot("texture"),
                    MemSlot("verts"),
                ),
                # Backface/clip test: strongly biased.
                branch=BranchSpec(0.88, "raster", "skip", noise=0.06),
            ),
            BlockSpec(
                "raster",
                n_instr=60,
                mix_weights=_FP_MIX,
                mem_slots=(
                    MemSlot("fb"), MemSlot("fb", is_store=True),
                    MemSlot("texture"),
                    MemSlot("fb", is_store=True, is_target_store=True),
                ),
                # Spans per triangle are near constant: rare long spans.
                branch=BranchSpec(0.1, "raster", None, noise=0.03),
            ),
            BlockSpec("skip", n_instr=8, mix_weights=_INT_MIX),
        ]),
    )
    ipi = _iters(par_budget, cfg)
    patterns: Dict[str, AddressPattern] = {
        # Vertex/texture/framebuffer streams: one pass per frame
        # (invocation); high spatial locality within a block.
        "verts": SequentialPattern(
            "verts", base, _wrap_size(ipi, 4, 64, wraps=1.0 / N_INVOCATIONS), stride=64, per_iter=4,
        ),
        "texture": SequentialPattern(
            "texture", base + 64 * MB,
            _wrap_size(ipi, 3, 64, wraps=1.0), stride=64, per_iter=3,
        ),
        "fb": SequentialPattern(
            "fb", base + 96 * MB,
            _wrap_size(ipi, 4, 64, wraps=1.0 / N_INVOCATIONS), stride=64, per_iter=4,
        ),
        "state": RandomPattern("state", base + 128 * MB, 6 * KB, granule=32, salt=53),
        "wp_pollute": RandomPattern(
            "wp_pollute", base + 160 * MB, 48 * KB, granule=64, salt=59
        ),
    }
    region = ParallelRegionSpec(
        name="mesa.raster_loop",
        cfg=cfg,
        patterns=patterns,
        iters_per_invocation=ipi,
        stage_split=StageSplit(0.03, 0.04, 0.90, 0.03),
        n_forward_values=2,
        ilp=4.0,
        dep_coupling=0.05,
        code_footprint=9 * KB,
        pollution_pattern="wp_pollute",
        wrong_exec=WrongExecProfile(
            wp_mean_loads=2.2, wp_max_loads=6, p_convergent=0.8,
            wp_lookahead=10, wth_fraction=0.55, wth_max_iters=1,
        ),
    )
    seq = _seq_region(
        "mesa.seq", base + 192 * MB, seq_budget, _FP_MIX, ilp=3.5,
        hot_size=6 * KB,
        wrong_exec=WrongExecProfile(
            wp_mean_loads=2.2, wp_max_loads=6, p_convergent=0.7, wp_lookahead=18
        ),
        stream_wraps=0.5,
    )
    return Program("177.mesa", [seq, region], N_INVOCATIONS, info)


_BUILDERS: Dict[str, Callable[[float], Program]] = {
    "175.vpr": _build_vpr,
    "164.gzip": _build_gzip,
    "181.mcf": _build_mcf,
    "197.parser": _build_parser,
    "183.equake": _build_equake,
    "177.mesa": _build_mesa,
}


def build_benchmark(name: str, scale: float = 2e-4) -> Program:
    """Build the named benchmark model at the given instruction scale.

    ``name`` accepts either the full SPEC id (``"181.mcf"``) or the bare
    short name (``"mcf"``).
    """
    if name not in _BUILDERS:
        matches = [k for k in _BUILDERS if k.split(".", 1)[-1] == name]
        if len(matches) == 1:
            name = matches[0]
        else:
            raise WorkloadError(
                f"unknown benchmark {name!r}; choose from {sorted(_BUILDERS)}"
            )
    if not 0.0 < scale <= 1.0:
        raise WorkloadError(f"scale {scale} outside (0, 1]")
    return _BUILDERS[name](scale)


def benchmark_infos() -> List[BenchmarkInfo]:
    """Table 2 metadata for all six benchmarks, in the paper's order."""
    return [BENCHMARK_INFO[n] for n in BENCHMARK_NAMES]
