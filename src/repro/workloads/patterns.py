"""Deterministic address-pattern generators.

Every pattern is a pure function of ``(iteration index, occurrence
index)`` — no hidden cursor state.  This property is load-bearing for
the reproduction:

* iterations are distributed round-robin over thread units, so the
  addresses iteration *i* touches must depend only on *i*, not on the
  order in which TUs happen to generate traces;
* **wrong threads** continue past the loop exit by simply evaluating the
  same patterns at ``iter_idx >= n_iterations`` — if the program later
  re-walks the same data (the common case for the paper's loop nests),
  those wrong-thread loads are *naturally* useful prefetches, with no
  tuned "usefulness probability";
* regenerating a trace is free, which keeps memory flat.

Randomness comes from a counter-based hash (splitmix64-style), seeded
per pattern, so traces are reproducible across runs and machines.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..common.errors import WorkloadError

__all__ = [
    "AddressPattern",
    "SequentialPattern",
    "StridedPattern",
    "RandomPattern",
    "PointerChasePattern",
    "HotColdPattern",
    "mix64",
]

_M64 = (1 << 64) - 1
_C1 = 0x9E3779B97F4A7C15
_C2 = 0xBF58476D1CE4E5B9
_C3 = 0x94D049BB133111EB


def mix64(a: int, b: int, c: int) -> int:
    """Stateless 64-bit mixer (splitmix64 finalizer over a 3-word key)."""
    x = (a * _C1 + b * _C2 + c * _C3 + _C1) & _M64
    x ^= x >> 30
    x = (x * _C2) & _M64
    x ^= x >> 27
    x = (x * _C3) & _M64
    x ^= x >> 31
    return x


class AddressPattern(abc.ABC):
    """Base class: a named region of memory plus an access rule.

    ``stagger`` (default True) offsets the base by a name-derived amount
    of up to 256KB, in L2-block multiples.  Without it, the benchmark
    builders' power-of-two array spacing would start every array at
    cache set 0 — an alignment pathology real allocators do not produce
    — flooding both cache levels with artificial conflict misses.
    """

    def __init__(self, name: str, base: int, size: int, stagger: bool = True) -> None:
        if size <= 0:
            raise WorkloadError(f"pattern {name!r}: size must be positive")
        if base < 0:
            raise WorkloadError(f"pattern {name!r}: negative base address")
        self.name = name
        if stagger:
            from ..common.rng import stable_hash32

            base += (stable_hash32(name) % 2048) * 128
        self.base = base
        self.size = size

    @property
    def footprint_bytes(self) -> int:
        """Bytes this pattern can touch."""
        return self.size

    @abc.abstractmethod
    def addr(self, iter_idx: int, occ: int) -> int:
        """Byte address for occurrence ``occ`` within iteration ``iter_idx``."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, base={self.base:#x}, "
            f"size={self.size})"
        )


class SequentialPattern(AddressPattern):
    """Streaming access: iteration *i*, occurrence *j* touches element
    ``i*per_iter + j`` of a contiguous array, wrapping at the end.

    ``stride`` is the element size in bytes; a small stride gives high
    spatial locality (many touches per cache block), which is what makes
    next-line prefetching — and the WEC's prefetch side — so effective
    on the FP codes (mesa, equake).
    """

    def __init__(
        self,
        name: str,
        base: int,
        size: int,
        stride: int = 8,
        per_iter: int = 16,
        stagger: bool = True,
    ) -> None:
        super().__init__(name, base, size, stagger=stagger)
        if stride <= 0 or per_iter <= 0:
            raise WorkloadError(f"pattern {name!r}: stride/per_iter must be positive")
        self.stride = stride
        self.per_iter = per_iter
        self._n_elems = max(1, size // stride)

    def addr(self, iter_idx: int, occ: int) -> int:
        elem = (iter_idx * self.per_iter + occ) % self._n_elems
        return self.base + elem * self.stride


class StridedPattern(AddressPattern):
    """Large-stride access (e.g. column-major walks): like
    :class:`SequentialPattern` but typically with ``stride`` greater
    than the block size, so spatial locality is poor."""

    def __init__(
        self,
        name: str,
        base: int,
        size: int,
        stride: int,
        per_iter: int = 16,
        stagger: bool = True,
    ) -> None:
        super().__init__(name, base, size, stagger=stagger)
        if stride <= 0 or per_iter <= 0:
            raise WorkloadError(f"pattern {name!r}: stride/per_iter must be positive")
        self.stride = stride
        self.per_iter = per_iter
        self._n_elems = max(1, size // stride)

    def addr(self, iter_idx: int, occ: int) -> int:
        elem = (iter_idx * self.per_iter + occ) % self._n_elems
        return self.base + elem * self.stride


class RandomPattern(AddressPattern):
    """Uniformly random touches across a region (hash-indexed tables).

    ``granule`` is the object size; ``salt`` decorrelates multiple
    random patterns over the same region.
    """

    def __init__(
        self,
        name: str,
        base: int,
        size: int,
        granule: int = 8,
        salt: int = 0,
        stagger: bool = True,
    ) -> None:
        super().__init__(name, base, size, stagger=stagger)
        if granule <= 0:
            raise WorkloadError(f"pattern {name!r}: granule must be positive")
        self.granule = granule
        self.salt = salt
        self._n_slots = max(1, size // granule)

    def addr(self, iter_idx: int, occ: int) -> int:
        slot = mix64(iter_idx, occ, self.salt) % self._n_slots
        return self.base + slot * self.granule


class PointerChasePattern(AddressPattern):
    """A pointer chase over a randomly-ordered linked structure.

    The node visit order is a fixed random permutation cycle of
    ``n_nodes`` nodes, precomputed once; iteration *i*, occurrence *j*
    visits the node at walk position ``i*per_iter + j``.  Consecutive
    accesses therefore have essentially no spatial locality, and the
    footprint (``n_nodes * node_size``) dwarfs small caches — the mcf
    behaviour.  Because the walk order is shared across invocations,
    wrong threads that run past the loop end touch exactly the nodes the
    next invocation will visit first.
    """

    def __init__(
        self,
        name: str,
        base: int,
        n_nodes: int,
        node_size: int = 64,
        per_iter: int = 16,
        seed: int = 1,
        stagger: bool = True,
    ) -> None:
        if n_nodes <= 0 or node_size <= 0:
            raise WorkloadError(f"pattern {name!r}: bad node geometry")
        super().__init__(name, base, n_nodes * node_size, stagger=stagger)
        self.n_nodes = n_nodes
        self.node_size = node_size
        self.per_iter = per_iter
        rng = np.random.Generator(np.random.PCG64(np.random.SeedSequence(seed)))
        self._order = rng.permutation(n_nodes).astype(np.int64)

    def addr(self, iter_idx: int, occ: int) -> int:
        pos = (iter_idx * self.per_iter + occ) % self.n_nodes
        return self.base + int(self._order[pos]) * self.node_size


class HotColdPattern(AddressPattern):
    """Mostly-hot lookups: probability ``p_hot`` of touching a small hot
    region, else a large cold region (gzip's tables / sliding window).
    """

    def __init__(
        self,
        name: str,
        base: int,
        hot_size: int,
        cold_size: int,
        p_hot: float = 0.9,
        granule: int = 8,
        salt: int = 0,
        stagger: bool = True,
    ) -> None:
        if hot_size <= 0 or cold_size <= 0:
            raise WorkloadError(f"pattern {name!r}: region sizes must be positive")
        if not 0.0 <= p_hot <= 1.0:
            raise WorkloadError(f"pattern {name!r}: p_hot outside [0,1]")
        super().__init__(name, base, hot_size + cold_size, stagger=stagger)
        self.hot_size = hot_size
        self.cold_size = cold_size
        self.p_hot = p_hot
        self.granule = granule
        self.salt = salt
        self._hot_slots = max(1, hot_size // granule)
        self._cold_slots = max(1, cold_size // granule)

    def addr(self, iter_idx: int, occ: int) -> int:
        h = mix64(iter_idx, occ, self.salt)
        # Low bits choose hot/cold; high bits choose the slot.
        if (h & 0xFFFF) / 65536.0 < self.p_hot:
            slot = (h >> 16) % self._hot_slots
            return self.base + slot * self.granule
        slot = (h >> 16) % self._cold_slots
        return self.base + self.hot_size + slot * self.granule
