"""Thread-pipelining scheduler: composes iteration timings across TUs.

Implements the execution model of Figure 2 as a pipeline schedule over
iterations.  For iteration *i* (global index), assigned round-robin to
TU ``i mod T``:

* **fork**: iteration *i* is forked at the end of iteration *i-1*'s
  continuation stage and pays the fork delay plus per-value forwarding
  cost (§4.1) — also guaranteeing that continuation stages of adjacent
  threads never overlap (§2.2);
* **TU availability**: a TU can start a new iteration only after its
  previous iteration's write-back completes (the head thread must
  retire before its unit is reused);
* **cross-iteration dependences**: the computation stage may not finish
  before the upstream thread has produced the target-store data it
  consumes; the region's ``dep_coupling`` locates that production point
  inside the upstream computation stage;
* **in-order write-back**: write-back stages are serialized in program
  order (§2.2), preserving non-speculative memory state.

At the loop exit the speculatively-forked successor threads are either
killed instantly (``orig``) or marked *wrong* and allowed to run on
(§3.1.2) — overlapping the following sequential region, to which they
add no cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..common.errors import SimulationError
from ..core.thread_unit import ThreadUnit
from ..obs.events import (
    CAT_REGION,
    CAT_RING,
    CAT_THREAD,
    ITER_RETIRE,
    ITER_SPAN,
    REGION_BEGIN,
    REGION_END,
    RING_FORWARD,
    THREAD_FORK,
)
from ..workloads.program import ParallelRegionSpec, SequentialRegionSpec
from ..workloads.tracegen import TraceGenerator
from .machine import Machine

__all__ = ["RegionResult", "Scheduler", "compose_pipeline_step"]


def compose_pipeline_step(
    first: bool,
    fork_base: float,
    fork_cost: float,
    tu_avail: float,
    cont: float,
    tsag: float,
    comp: float,
    wb: float,
    coupling: float,
    prev_comp_end: float,
    prev_comp_len: float,
    prev_wb_end: float,
):
    """Place one iteration into the thread-pipelining schedule.

    Pure function shared by the oracle scheduler and the fast engine so
    both compose iteration timings with literally the same arithmetic
    (bit-identical floats).  Returns ``(start, cont_end, comp_end,
    wb_end)``.
    """
    if first:
        start = tu_avail
    else:
        start = max(fork_base + fork_cost, tu_avail)
    cont_end = start + cont
    tsag_end = cont_end + tsag
    # Cross-iteration dependence: the upstream thread produces the
    # forwarded data `coupling` of the way *from the end* of its
    # computation stage; downstream computation cannot complete earlier
    # than that production point plus its own work.
    if not first and coupling > 0.0:
        dep_ready = prev_comp_end - (1.0 - coupling) * prev_comp_len
        comp_start = max(tsag_end, dep_ready)
    else:
        comp_start = tsag_end
    comp_end = comp_start + comp
    wb_start = max(comp_end, prev_wb_end)
    wb_end = wb_start + wb
    return start, cont_end, comp_end, wb_end


@dataclass
class RegionResult:
    """Timing outcome of one region execution (one invocation)."""

    name: str
    kind: str  # "parallel" | "sequential"
    cycles: float
    invocation: int
    iterations: int = 0
    wrong_thread_loads: int = 0
    detail: Dict[str, float] = field(default_factory=dict)


class Scheduler:
    """Drives a :class:`Machine` through a program's regions."""

    __slots__ = (
        "machine", "tracegen", "_clock",
        "_tracer", "_obs_region", "_obs_thread", "_obs_ring", "_san",
        "_attrib",
    )

    def __init__(self, machine: Machine, tracegen: TraceGenerator) -> None:
        self.machine = machine
        self.tracegen = tracegen
        # Global simulated-cycle base: regions execute one after another,
        # so each region's local schedule is offset by the cycles of
        # everything that ran before it.  Only tracing consumes this.
        self._clock = 0.0
        self._san = machine.sanitizer
        tracer = machine.tracer
        live = tracer is not None and tracer.enabled
        self._tracer = tracer if live else None
        self._obs_region = tracer if live and tracer.wants(CAT_REGION) else None
        self._obs_thread = tracer if live and tracer.wants(CAT_THREAD) else None
        self._obs_ring = tracer if live and tracer.wants(CAT_RING) else None
        attrib = machine.attrib
        # The attribution collector consumes the same estimated clock and
        # region context a tracer does (lifetime gaps, per-region tables).
        self._attrib = attrib if attrib is not None and attrib.enabled else None

    # ------------------------------------------------------------------
    # parallel regions
    # ------------------------------------------------------------------

    def run_parallel_region(
        self, region: ParallelRegionSpec, invocation: int
    ) -> RegionResult:
        """Execute one invocation of a parallelized loop."""
        machine = self.machine
        tracegen = self.tracegen
        n_tus = machine.n_tus
        lo, hi = region.global_iter_range(invocation)
        if hi <= lo:
            raise SimulationError(f"region {region.name}: empty iteration range")

        tu_free = [0.0] * n_tus
        prev_cont_end = 0.0
        prev_comp_end = 0.0
        prev_comp_len = 0.0
        prev_wb_end = 0.0
        prev_targets: Optional[np.ndarray] = None
        region_end = 0.0
        coupling = region.dep_coupling
        multi_tu = n_tus > 1
        base = self._clock
        obs = self._tracer
        att = self._attrib
        obs_t = self._obs_thread
        san = self._san
        if att is not None:
            att.region = region.name
        if self._obs_region is not None:
            self._obs_region.emit(
                REGION_BEGIN, 0, invocation, tag=region.name, cycle=base
            )

        for i in range(lo, hi):
            tu = machine.tu_for_iteration(i)
            if san is not None and i > lo:
                # Iteration i was forked by its ring predecessor, which
                # also forwarded the target stores consumed below: both
                # must come from a live thread one hop back on the ring.
                src = (i - 1) % n_tus
                san.check_fork(src)
                san.check_ring(src, tu.tu_id, n_tus)
            trace = tracegen.iteration_trace(region, i)
            if obs is not None or att is not None:
                # Replay happens before the schedule times are composed;
                # stamp its events with the best available estimate of
                # this iteration's start (exact when the fork-point bound
                # dominates, which it almost always does).
                now = base + max(prev_cont_end, tu_free[tu.tu_id])
                if obs is not None:
                    obs.now = now
                if att is not None:
                    att.now = now
            timing = tu.execute_iteration(
                region,
                i,
                trace,
                tracegen,
                upstream_targets=(
                    prev_targets.tolist() if prev_targets is not None else None
                ),
            )
            if i == lo:
                fork_at = 0.0
                fork_cost = 0.0
            else:
                fork_at = prev_cont_end
                fork_cost = tu.fork_cost(trace.n_forward_values) if multi_tu else 0.0
            start, cont_end, comp_end, wb_end = compose_pipeline_step(
                i == lo, fork_at, fork_cost, tu_free[tu.tu_id],
                timing.continuation, timing.tsag,
                timing.computation, timing.writeback,
                coupling, prev_comp_end, prev_comp_len, prev_wb_end,
            )

            if obs_t is not None:
                # Exact post-hoc schedule events (timings are now known).
                if i > lo and multi_tu:
                    obs_t.emit(
                        THREAD_FORK, tu.tu_id, i, trace.n_forward_values,
                        cycle=base + fork_at,
                    )
                obs_t.emit(
                    ITER_SPAN, tu.tu_id, i, trace.n_instr,
                    wb_end - start, cycle=base + start,
                )
                obs_t.emit(
                    ITER_RETIRE, tu.tu_id, trace.n_instr, trace.n_loads,
                    cycle=base + wb_end,
                )
            if (
                self._obs_ring is not None
                and prev_targets is not None
                and len(prev_targets)
            ):
                self._obs_ring.emit(
                    RING_FORWARD, tu.tu_id, int(len(prev_targets)),
                    cycle=base + start,
                )

            if san is not None:
                san.check_iter(tu.tu_id, base + start, base + wb_end)
            tu_free[tu.tu_id] = wb_end
            prev_cont_end = cont_end
            prev_comp_end = comp_end
            prev_comp_len = timing.computation
            prev_wb_end = wb_end
            if wb_end > region_end:
                region_end = wb_end
            prev_targets = trace.store_addrs[trace.tstore_mask]

        # Loop exit: the head thread aborts its speculative successors.
        wrong_loads = 0
        if machine.cfg.wrong_exec.wrong_thread and multi_tu:
            # Successor threads were forked for iterations hi, hi+1, ...;
            # instead of dying they run on as wrong threads (§3.1.2),
            # overlapping the following sequential code at zero cost.
            if obs is not None:
                obs.now = base + region_end
            if att is not None:
                att.now = base + region_end
            for k in range(n_tus - 1):
                wrong_iter = hi + k
                tu = machine.tu_for_iteration(wrong_iter)
                wrong_loads += tu.run_wrong_thread(region, wrong_iter, tracegen)
        machine.set_head((hi - 1) % n_tus)
        self._clock = base + region_end
        if san is not None:
            san.check_clock(self._clock)
        if self._obs_region is not None:
            self._obs_region.emit(
                REGION_END, 0, invocation, hi - lo, region_end,
                tag=region.name, cycle=base + region_end,
            )

        return RegionResult(
            name=region.name,
            kind="parallel",
            cycles=region_end,
            invocation=invocation,
            iterations=hi - lo,
            wrong_thread_loads=wrong_loads,
        )

    # ------------------------------------------------------------------
    # sequential regions
    # ------------------------------------------------------------------

    def run_sequential_region(
        self, region: SequentialRegionSpec, invocation: int
    ) -> RegionResult:
        """Execute one invocation of a sequential section on the head TU."""
        machine = self.machine
        tracegen = self.tracegen
        tu = machine.tus[machine.head_tu]
        lo, hi = region.global_chunk_range(invocation)
        cycles = 0.0
        base = self._clock
        obs = self._tracer
        att = self._attrib
        obs_t = self._obs_thread
        if att is not None:
            att.region = region.name
        if self._obs_region is not None:
            self._obs_region.emit(
                REGION_BEGIN, tu.tu_id, invocation, tag=region.name, cycle=base
            )
        san = self._san
        for c in range(lo, hi):
            if obs is not None:
                obs.now = base + cycles
            if att is not None:
                att.now = base + cycles
            trace = tracegen.chunk_trace(region, c)
            timing = tu.execute_sequential_chunk(
                region, c, trace, tracegen, update_bus=machine.bus
            )
            if san is not None:
                san.check_iter(tu.tu_id, base + cycles, base + cycles + timing.total)
            if obs_t is not None:
                obs_t.emit(
                    ITER_SPAN, tu.tu_id, c, trace.n_instr,
                    timing.total, cycle=base + cycles,
                )
                obs_t.emit(
                    ITER_RETIRE, tu.tu_id, trace.n_instr, trace.n_loads,
                    cycle=base + cycles + timing.total,
                )
            cycles += timing.total
        self._clock = base + cycles
        if san is not None:
            san.check_clock(self._clock)
        if self._obs_region is not None:
            self._obs_region.emit(
                REGION_END, tu.tu_id, invocation, hi - lo, cycles,
                tag=region.name, cycle=base + cycles,
            )
        return RegionResult(
            name=region.name,
            kind="sequential",
            cycles=cycles,
            invocation=invocation,
            iterations=hi - lo,
        )
