"""The paper's named machine configurations (§4.3) and Table 3 scaling.

Configuration families evaluated in §5:

=============  ==============================================================
``orig``       baseline STA; speculative loads before resolution only.
``vc``         + small fully-associative victim cache beside each L1D.
``wp``         + wrong-path execution (loads continue after branch resolve).
``wth``        + wrong-thread execution (aborted threads run on).
``wth-wp``     both forms of wrong execution, no sidecar.
``wth-wp-vc``  both forms + victim cache (pollution still reaches the L1).
``wth-wp-wec`` both forms + the Wrong Execution Cache (the contribution).
``nlp``        tagged next-line prefetching with a prefetch buffer,
               no wrong execution (the classic-prefetching comparator).
=============  ==============================================================

:func:`table3_config` reproduces Table 3's constant-total-parallelism
design points (issue × TUs = 16) used for the Figure 8 baseline study.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

from ..common.config import (
    BranchPredictorConfig,
    CacheConfig,
    FuncUnitMix,
    MachineConfig,
    MemorySystemConfig,
    SidecarConfig,
    SidecarKind,
    ThreadUnitConfig,
    WrongExecutionConfig,
)
from ..common.errors import ConfigError

__all__ = [
    "CONFIG_NAMES",
    "ABLATION_CONFIG_NAMES",
    "named_config",
    "table3_config",
    "TABLE3_ROWS",
]

CONFIG_NAMES: Tuple[str, ...] = (
    "orig",
    "vc",
    "wp",
    "wth",
    "wth-wp",
    "wth-wp-vc",
    "wth-wp-wec",
    "nlp",
)

#: Extra configurations this reproduction adds beyond the paper's §4.3,
#: used by the channel-decomposition ablation: the WEC fed by only one
#: of the two wrong-execution sources, and the WEC as a pure victim
#: cache (no wrong execution at all).
ABLATION_CONFIG_NAMES: Tuple[str, ...] = (
    "wp-wec",
    "wth-wec",
    "wec-victim-only",
    "stream-pf",
)

_SIDECARS: Dict[str, SidecarKind] = {
    "orig": SidecarKind.NONE,
    "vc": SidecarKind.VICTIM,
    "wp": SidecarKind.NONE,
    "wth": SidecarKind.NONE,
    "wth-wp": SidecarKind.NONE,
    "wth-wp-vc": SidecarKind.VICTIM,
    "wth-wp-wec": SidecarKind.WEC,
    "nlp": SidecarKind.PREFETCH,
    "wp-wec": SidecarKind.WEC,
    "wth-wec": SidecarKind.WEC,
    "wec-victim-only": SidecarKind.WEC,
    "stream-pf": SidecarKind.STREAM,
}

_WRONG_EXEC: Dict[str, WrongExecutionConfig] = {
    "orig": WrongExecutionConfig(False, False),
    "vc": WrongExecutionConfig(False, False),
    "wp": WrongExecutionConfig(wrong_path=True, wrong_thread=False),
    "wth": WrongExecutionConfig(wrong_path=False, wrong_thread=True),
    "wth-wp": WrongExecutionConfig(True, True),
    "wth-wp-vc": WrongExecutionConfig(True, True),
    "wth-wp-wec": WrongExecutionConfig(True, True),
    "nlp": WrongExecutionConfig(False, False),
    "wp-wec": WrongExecutionConfig(wrong_path=True, wrong_thread=False),
    "wth-wec": WrongExecutionConfig(wrong_path=False, wrong_thread=True),
    "wec-victim-only": WrongExecutionConfig(False, False),
    "stream-pf": WrongExecutionConfig(False, False),
}


def named_config(
    name: str,
    n_tus: int = 8,
    sidecar_entries: int = 8,
    l1d: Optional[CacheConfig] = None,
    l2: Optional[CacheConfig] = None,
    issue_width: int = 8,
) -> MachineConfig:
    """Build one of the eight §4.3 configurations (or an ablation extra).

    Defaults follow §5.2: eight 8-issue TUs, 64-entry ROB/LSQ,
    8 INT ALU / 4 INT MULT / 8 FP ALU / 4 FP MULT, 8KB direct-mapped L1D
    with 64-byte blocks, 8-entry sidecar, 512KB 4-way shared L2.
    """
    if name not in CONFIG_NAMES and name not in ABLATION_CONFIG_NAMES:
        raise ConfigError(
            f"unknown configuration {name!r}; choose from "
            f"{CONFIG_NAMES + ABLATION_CONFIG_NAMES}"
        )
    l1d = l1d or CacheConfig(size=8 * 1024, assoc=1, block_size=64, name="l1d")
    tu = ThreadUnitConfig(
        issue_width=issue_width,
        rob_size=64,
        lsq_size=64,
        func_units=FuncUnitMix(int_alu=8, int_mult=4, fp_alu=8, fp_mult=4),
        l1d=l1d,
        sidecar=SidecarConfig(kind=_SIDECARS[name], entries=sidecar_entries),
    )
    mem = MemorySystemConfig() if l2 is None else MemorySystemConfig(l2=l2)
    return MachineConfig(
        name=name,
        n_thread_units=n_tus,
        tu=tu,
        mem=mem,
        wrong_exec=_WRONG_EXEC[name],
    )


#: Table 3: (#TUs, issue, ROB, INT ALU, INT MULT, FP ALU, FP MULT, L1D KB).
#: The first row is the single-thread single-issue baseline of Figure 8.
TABLE3_ROWS: Tuple[Tuple[int, int, int, int, int, int, int, int], ...] = (
    (1, 1, 8, 1, 1, 1, 1, 2),
    (1, 16, 128, 16, 8, 16, 8, 32),
    (2, 8, 64, 8, 4, 8, 4, 16),
    (4, 4, 32, 4, 2, 4, 2, 8),
    (8, 2, 16, 2, 1, 2, 1, 4),
    (16, 1, 8, 1, 1, 1, 1, 2),
)


def table3_config(n_tus: int, single_issue_baseline: bool = False) -> MachineConfig:
    """One of Table 3's constant-parallelism design points.

    ``single_issue_baseline=True`` returns the 1-TU single-issue
    processor Figure 8 normalizes against; otherwise ``n_tus`` selects
    the row with ``issue = 16 / n_tus`` and the per-TU L1D scaled so the
    total L1 capacity stays at 32KB.
    """
    for row in TABLE3_ROWS:
        tus, issue, rob, ialu, imult, fpalu, fpmult, l1kb = row
        if single_issue_baseline:
            if tus == 1 and issue == 1:
                break
        elif tus == n_tus and issue == 16 // n_tus:
            break
    else:
        raise ConfigError(f"no Table 3 row for {n_tus} thread units")
    l1d = CacheConfig(size=l1kb * 1024, assoc=4, block_size=64, name="l1d")
    tu = ThreadUnitConfig(
        issue_width=issue,
        rob_size=rob,
        lsq_size=max(8, rob),
        func_units=FuncUnitMix(
            int_alu=ialu, int_mult=imult, fp_alu=fpalu, fp_mult=fpmult
        ),
        l1d=l1d,
        sidecar=SidecarConfig(kind=SidecarKind.NONE),
    )
    label = "base-1x1" if single_issue_baseline else f"table3-{tus}tu-{issue}w"
    return MachineConfig(
        name=label,
        n_thread_units=tus,
        tu=tu,
        wrong_exec=WrongExecutionConfig(False, False),
    )
